// SSE2 backend (2 doubles per vector). Baseline x86-64 already
// guarantees SSE2, so this TU needs no extra -m flags.
#include "support/simd.h"

#include "simd/kernels_impl.h"

namespace felix {
namespace simd {

static_assert(FELIX_SIMD_ARCH_NS::Vec::kWidth == 2,
              "sse2 backend TU compiled with unexpected flags");

extern const KernelSet kKernelsSse2 =
    makeKernelSet<FELIX_SIMD_ARCH_NS::Vec>("sse2");

} // namespace simd
} // namespace felix
