// AVX2 backend (4 doubles per vector). CMake compiles this TU with
// -mavx2; it must only ever be CALLED after dispatch.cc has checked
// __builtin_cpu_supports("avx2"), so nothing here may run at static
// initialization (the KernelSet is constant data).
#include "support/simd.h"

#include "simd/kernels_impl.h"

namespace felix {
namespace simd {

static_assert(FELIX_SIMD_ARCH_NS::Vec::kWidth == 4,
              "avx2 backend TU compiled without -mavx2");

extern const KernelSet kKernelsAvx2 =
    makeKernelSet<FELIX_SIMD_ARCH_NS::Vec>("avx2");

} // namespace simd
} // namespace felix
