// AVX-512 backend (8 doubles per vector, predicate masks). CMake
// compiles this TU with -mavx512f -mavx512dq (DQ for the 512-bit FP
// bitwise ops behind vneg/vabs); dispatch.cc gates calls on both
// CPU feature bits. Nothing here may run at static initialization.
#include "support/simd.h"

#include "simd/kernels_impl.h"

namespace felix {
namespace simd {

static_assert(FELIX_SIMD_ARCH_NS::Vec::kWidth == 8,
              "avx512 backend TU compiled without -mavx512f/-mavx512dq");

extern const KernelSet kKernelsAvx512 =
    makeKernelSet<FELIX_SIMD_ARCH_NS::Vec>("avx512");

} // namespace simd
} // namespace felix
