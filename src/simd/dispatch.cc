/**
 * @file
 * Runtime CPU-feature dispatch between the compiled SIMD backends.
 *
 * Backends present in the binary are declared by the FELIX_HAVE_*
 * macros CMake defines alongside the backend translation units
 * (src/simd/CMakeLists.txt); at first use the widest backend the
 * CPU supports wins. Overrides, strongest first: setPreferredWidth()
 * (felix-tune --simd plumbs into it), then the FELIX_SIMD
 * environment variable ("off" or a width, for ablating prebuilt
 * binaries). The active lane width is published as the `simd.width`
 * gauge.
 */
#include "simd/kernels.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "support/logging.h"

namespace felix {
namespace simd {

extern const KernelSet kKernelsScalar;
#ifdef FELIX_HAVE_SSE2_KERNELS
extern const KernelSet kKernelsSse2;
#endif
#ifdef FELIX_HAVE_AVX2_KERNELS
extern const KernelSet kKernelsAvx2;
#endif
#ifdef FELIX_HAVE_AVX512_KERNELS
extern const KernelSet kKernelsAvx512;
#endif
#ifdef FELIX_HAVE_NEON_KERNELS
extern const KernelSet kKernelsNeon;
#endif

namespace {

bool
cpuSupportsBackend(const KernelSet &set)
{
#if defined(__x86_64__) || defined(__i386__)
    switch (set.width) {
      case 1:
      case 2:
        return true; // SSE2 is baseline x86-64
      case 4:
        return __builtin_cpu_supports("avx2") != 0;
      case 8:
        return __builtin_cpu_supports("avx512f") != 0 &&
               __builtin_cpu_supports("avx512dq") != 0;
      default:
        return false;
    }
#else
    (void)set;
    return true; // scalar / NEON need no runtime check
#endif
}

/** Compiled-in backends, ascending width; scalar is always [0]. */
const KernelSet *const kCompiledSets[] = {
    &kKernelsScalar,
#ifdef FELIX_HAVE_SSE2_KERNELS
    &kKernelsSse2,
#endif
#ifdef FELIX_HAVE_NEON_KERNELS
    &kKernelsNeon,
#endif
#ifdef FELIX_HAVE_AVX2_KERNELS
    &kKernelsAvx2,
#endif
#ifdef FELIX_HAVE_AVX512_KERNELS
    &kKernelsAvx512,
#endif
};

std::atomic<const KernelSet *> g_active{nullptr};
std::mutex g_mutex;     // serializes resolution + overrides
int g_override = 0;     // 0 = auto; else a forced width
bool g_envChecked = false;

const KernelSet *
findWidth(int width)
{
    for (const KernelSet *set : kCompiledSets)
        if (set->width == width && cpuSupportsBackend(*set))
            return set;
    return nullptr;
}

const KernelSet *
widestSupported()
{
    const KernelSet *best = &kKernelsScalar;
    for (const KernelSet *set : kCompiledSets)
        if (set->width > best->width && cpuSupportsBackend(*set))
            best = set;
    return best;
}

void
publish(const KernelSet *set)
{
    g_active.store(set, std::memory_order_release);
    obs::MetricsRegistry::instance().gauge("simd.width").set(
        static_cast<double>(set->width));
    inform("simd: dispatching to ", set->name, " backend (",
           set->width, " lanes/vector)");
}

/** Resolve under g_mutex: override > FELIX_SIMD env > widest. */
const KernelSet *
resolveLocked()
{
    if (g_override == 0 && !g_envChecked) {
        g_envChecked = true;
        if (const char *env = std::getenv("FELIX_SIMD")) {
            const std::string value(env);
            const int width =
                value == "off" ? 1 : std::atoi(value.c_str());
            if (findWidth(width)) {
                g_override = width;
            } else {
                warn("simd: ignoring FELIX_SIMD='", value,
                     "' (not an available width)");
            }
        }
    }
    if (g_override != 0) {
        if (const KernelSet *set = findWidth(g_override))
            return set;
    }
    return widestSupported();
}

} // namespace

const KernelSet &
activeKernels()
{
    const KernelSet *set = g_active.load(std::memory_order_acquire);
    if (set == nullptr) {
        std::lock_guard<std::mutex> lock(g_mutex);
        set = g_active.load(std::memory_order_acquire);
        if (set == nullptr) {
            set = resolveLocked();
            publish(set);
        }
    }
    return *set;
}

bool
setPreferredWidth(int width)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (width != 0 && findWidth(width) == nullptr)
        return false;
    g_override = width;
    g_envChecked = true; // an explicit override outranks the env
    publish(resolveLocked());
    return true;
}

int
activeWidth()
{
    return activeKernels().width;
}

const char *
activeBackendName()
{
    return activeKernels().name;
}

std::vector<int>
availableWidths()
{
    std::vector<int> widths;
    for (const KernelSet *set : kCompiledSets)
        if (cpuSupportsBackend(*set))
            widths.push_back(set->width);
    return widths;
}

} // namespace simd
} // namespace felix
