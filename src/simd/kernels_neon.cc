// NEON backend (2 doubles per vector). Advanced SIMD is mandatory
// on aarch64, so this TU needs no extra flags and no runtime check.
#include "support/simd.h"

#include "simd/kernels_impl.h"

namespace felix {
namespace simd {

static_assert(FELIX_SIMD_ARCH_NS::Vec::kWidth == 2,
              "neon backend TU compiled for unexpected target");

extern const KernelSet kKernelsNeon =
    makeKernelSet<FELIX_SIMD_ARCH_NS::Vec>("neon");

} // namespace simd
} // namespace felix
