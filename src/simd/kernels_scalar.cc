// The always-available scalar backend: the templated kernels
// compiled against the one-lane Vec, which reproduces the plain-loop
// batched code bit for bit. This TU must stay free of -m flags.
#define FELIX_SIMD_FORCE_SCALAR 1

#include "support/simd.h"

#include "simd/kernels_impl.h"

namespace felix {
namespace simd {

static_assert(FELIX_SIMD_ARCH_NS::Vec::kWidth == 1,
              "scalar backend TU picked a vector backend");

extern const KernelSet kKernelsScalar =
    makeKernelSet<FELIX_SIMD_ARCH_NS::Vec>("scalar");

} // namespace simd
} // namespace felix
