/**
 * @file
 * The templated kernel bodies behind simd/kernels.h, written once
 * against the Vec API of support/simd.h and instantiated per backend
 * by the kernels_<arch>.cc translation units (each compiled with the
 * matching -m flags, so including this header anywhere else is
 * almost certainly a mistake).
 *
 * Determinism: every loop below processes independent SoA lanes in
 * chunks of V::kWidth with the scalar per-lane operation sequence
 * (see the vector kernels in expr/op_kernels.h and the blocked-order
 * comments inline). kBatchLanes is statically a multiple of every
 * backend width, so the tape/MLP row loops never carry a ragged
 * tail; the Adam kernel runs over arbitrary-length parameter vectors
 * and finishes the remainder with the identical scalar formula.
 */
#ifndef FELIX_SIMD_KERNELS_IMPL_H_
#define FELIX_SIMD_KERNELS_IMPL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "expr/op_kernels.h"
#include "expr/tape.h"
#include "simd/kernels.h"
#include "support/batch.h"
#include "support/logging.h"
#include "support/simd.h"

namespace felix {
namespace simd {

/** CompiledExprs::forwardBatch instruction sweep (SSA slots: the
 *  destination row never aliases the operand rows).
 *
 *  The tape is mostly one long dependent chain — instruction i+1
 *  usually consumes slot i — so a naive sweep pays a store-to-load
 *  round trip per instruction on the critical path. When a row is a
 *  single vector (C == 1), `last` mirrors the previous instruction's
 *  result in a register; operands that name slot-1 read the register
 *  copy instead of reloading the row just stored, which shortens the
 *  chain to the arithmetic itself. The bits are identical either way
 *  (the register copy is exactly what was stored), so per-lane
 *  exactness is unaffected. With C > 1 the chunks already form C
 *  independent chains that overlap in the pipeline, and carrying C
 *  live registers plus per-chunk blends costs more than the reloads
 *  save, so the plain loads are kept. */
template <class V>
void
tapeForwardT(const expr::TapeProgram &program, double *vals)
{
    constexpr std::size_t L = kBatchLanes;
    constexpr std::size_t W = V::kWidth;
    constexpr std::size_t C = L / W;     // chunks per row
    constexpr bool kFwd = (C == 1);      // register-forward slot-1?
    namespace opk = expr::opk;
    std::size_t slot = program.firstOpSlot();
    if (program.instrs.empty())
        return;
    // Seed `last` with slot-1's row (always a leaf slot: an
    // optimized tape with instructions has at least one variable or
    // constant), so the first instruction needs no special case.
    V last[1] = {V::broadcast(0.0)};
    if constexpr (kFwd)
        last[0] = V::load(&vals[(slot - 1) * L]);
    for (const expr::TapeInstr &instr : program.instrs) {
        const int prev = static_cast<int>(slot) - 1;
        const bool f0 = kFwd && instr.a0 == prev;
        const bool f1 = kFwd && instr.a1 == prev;
        const double *a =
            &vals[static_cast<std::size_t>(instr.a0) * L];
        const double *b =
            instr.a1 >= 0
                ? &vals[static_cast<std::size_t>(instr.a1) * L]
                : a;
        const double *c =
            instr.a2 >= 0
                ? &vals[static_cast<std::size_t>(instr.a2) * L]
                : a;
        double *out = &vals[slot++ * L];

#define FELIX_SIMD_LANES_1(KER)                                        \
    for (std::size_t ch = 0; ch < C; ++ch) {                           \
        const V va = f0 ? last[0] : V::load(a + ch * W);               \
        const V r = opk::KER<V>(va);                                   \
        r.store(out + ch * W);                                         \
        if constexpr (kFwd)                                            \
            last[0] = r;                                               \
    }                                                                  \
    break
#define FELIX_SIMD_LANES_2(KER)                                        \
    for (std::size_t ch = 0; ch < C; ++ch) {                           \
        const V va = f0 ? last[0] : V::load(a + ch * W);               \
        const V vb = f1 ? last[0] : V::load(b + ch * W);               \
        const V r = opk::KER<V>(va, vb);                               \
        r.store(out + ch * W);                                         \
        if constexpr (kFwd)                                            \
            last[0] = r;                                               \
    }                                                                  \
    break

        switch (instr.op) {
          case expr::OpCode::Add: FELIX_SIMD_LANES_2(fwdAddV);
          case expr::OpCode::Sub: FELIX_SIMD_LANES_2(fwdSubV);
          case expr::OpCode::Mul: FELIX_SIMD_LANES_2(fwdMulV);
          case expr::OpCode::Div: FELIX_SIMD_LANES_2(fwdDivV);
          case expr::OpCode::Pow: FELIX_SIMD_LANES_2(fwdPowV);
          case expr::OpCode::Min: FELIX_SIMD_LANES_2(fwdMinV);
          case expr::OpCode::Max: FELIX_SIMD_LANES_2(fwdMaxV);
          case expr::OpCode::Neg: FELIX_SIMD_LANES_1(fwdNegV);
          case expr::OpCode::Log: FELIX_SIMD_LANES_1(fwdLogV);
          case expr::OpCode::Exp: FELIX_SIMD_LANES_1(fwdExpV);
          case expr::OpCode::Sqrt: FELIX_SIMD_LANES_1(fwdSqrtV);
          case expr::OpCode::Abs: FELIX_SIMD_LANES_1(fwdAbsV);
          case expr::OpCode::Floor: FELIX_SIMD_LANES_1(fwdFloorV);
          case expr::OpCode::Atan: FELIX_SIMD_LANES_1(fwdAtanV);
          case expr::OpCode::Sigmoid: FELIX_SIMD_LANES_1(fwdSigmoidV);
          case expr::OpCode::Lt: FELIX_SIMD_LANES_2(fwdLtV);
          case expr::OpCode::Le: FELIX_SIMD_LANES_2(fwdLeV);
          case expr::OpCode::Gt: FELIX_SIMD_LANES_2(fwdGtV);
          case expr::OpCode::Ge: FELIX_SIMD_LANES_2(fwdGeV);
          case expr::OpCode::Eq: FELIX_SIMD_LANES_2(fwdEqV);
          case expr::OpCode::Ne: FELIX_SIMD_LANES_2(fwdNeV);
          case expr::OpCode::Select: {
            const bool f2 = kFwd && instr.a2 == prev;
            for (std::size_t ch = 0; ch < C; ++ch) {
                const V va = f0 ? last[0] : V::load(a + ch * W);
                const V vb = f1 ? last[0] : V::load(b + ch * W);
                const V vc = f2 ? last[0] : V::load(c + ch * W);
                const V r = opk::fwdSelectV<V>(va, vb, vc);
                r.store(out + ch * W);
                if constexpr (kFwd)
                    last[0] = r;
            }
            break;
          }
          case expr::OpCode::ConstOp:
          case expr::OpCode::VarOp:
            panic("leaf opcode in optimized tape");
        }

#undef FELIX_SIMD_LANES_1
#undef FELIX_SIMD_LANES_2
    }
}

/** CompiledExprs::backwardBatch reverse sweep. The chunk-level
 *  all-zero skip is the vector form of the scalar per-lane zero
 *  skip: skipping a chunk whose adjoints are all +0.0 adds nothing,
 *  and chunks with any live lane go through backpropOpV, whose
 *  blends add exact +0.0 on the dead lanes (a bitwise no-op on
 *  accumulator rows — see the kernel's comment). */
template <class V>
void
tapeBackwardT(const expr::TapeProgram &program, const double *vals,
              double *adjs)
{
    constexpr std::size_t L = kBatchLanes;
    const V zero = V::broadcast(0.0);
    for (std::size_t i = program.instrs.size(); i-- > 0;) {
        const expr::TapeInstr &instr = program.instrs[i];
        const std::size_t slot = program.firstOpSlot() + i;
        const double *adjRow = &adjs[slot * L];
        const double *valRow = &vals[slot * L];
        const double *a0Row =
            &vals[static_cast<std::size_t>(instr.a0) * L];
        double *adj0Row =
            &adjs[static_cast<std::size_t>(instr.a0) * L];
        const double *a1Row =
            instr.a1 >= 0
                ? &vals[static_cast<std::size_t>(instr.a1) * L]
                : nullptr;
        double *adj1Row =
            instr.a1 >= 0
                ? &adjs[static_cast<std::size_t>(instr.a1) * L]
                : nullptr;
        double *adj2Row =
            instr.a2 >= 0
                ? &adjs[static_cast<std::size_t>(instr.a2) * L]
                : nullptr;
        for (std::size_t l = 0; l < L; l += V::kWidth) {
            const V adj = V::load(adjRow + l);
            if (!anyLane(cne(adj, zero)))
                continue;
            expr::opk::backpropOpV<V>(
                instr.op, adj, V::load(valRow + l),
                V::load(a0Row + l),
                a1Row ? V::load(a1Row + l) : zero, adj0Row + l,
                adj1Row ? adj1Row + l : nullptr,
                adj2Row ? adj2Row + l : nullptr);
        }
    }
}

/** Blocked batched MLP layer forward (Mlp::forwardLayerBatch): four
 *  neurons share each input-row load; per lane the accumulation
 *  order stays bias first, then inputs 0..in-1. */
template <class V>
void
mlpForwardLayerT(const double *weights, const double *bias, int in,
                 int out, bool hidden, const double *cur,
                 double *out_rows)
{
    constexpr std::size_t L = kBatchLanes;
    constexpr std::size_t W = V::kWidth;
    constexpr std::size_t C = L / W; // chunks per row
    const V zero = V::broadcast(0.0);
    constexpr int kBlock = 4;
    const int fullEnd = out - out % kBlock;
    for (int ob = 0; ob < fullEnd; ob += kBlock) {
        V acc[kBlock][C];
        for (int b = 0; b < kBlock; ++b)
            for (std::size_t ch = 0; ch < C; ++ch)
                acc[b][ch] = V::broadcast(bias[ob + b]);
        for (int i = 0; i < in; ++i) {
            const double *curRow =
                cur + static_cast<std::size_t>(i) * L;
            for (int b = 0; b < kBlock; ++b) {
                const V w = V::broadcast(
                    weights[static_cast<std::size_t>(ob + b) * in +
                            i]);
                for (std::size_t ch = 0; ch < C; ++ch)
                    acc[b][ch] =
                        acc[b][ch] + w * V::load(curRow + ch * W);
            }
        }
        for (int b = 0; b < kBlock; ++b) {
            double *outRow =
                out_rows + static_cast<std::size_t>(ob + b) * L;
            for (std::size_t ch = 0; ch < C; ++ch) {
                V a = acc[b][ch];
                if (hidden)
                    a = select(clt(a, zero), zero, a);
                a.store(outRow + ch * W);
            }
        }
    }
    for (int o = fullEnd; o < out; ++o) {
        V acc[C];
        for (std::size_t ch = 0; ch < C; ++ch)
            acc[ch] = V::broadcast(bias[o]);
        const double *row =
            weights + static_cast<std::size_t>(o) * in;
        for (int i = 0; i < in; ++i) {
            const V w = V::broadcast(row[i]);
            const double *curRow =
                cur + static_cast<std::size_t>(i) * L;
            for (std::size_t ch = 0; ch < C; ++ch)
                acc[ch] = acc[ch] + w * V::load(curRow + ch * W);
        }
        double *outRow = out_rows + static_cast<std::size_t>(o) * L;
        for (std::size_t ch = 0; ch < C; ++ch) {
            V a = acc[ch];
            if (hidden)
                a = select(clt(a, zero), zero, a);
            a.store(outRow + ch * W);
        }
    }
}

/** One layer of Mlp::forwardInputGradBatch's backward: the masked
 *  adjoint rows (madj = gate ? adj : 0 BEFORE the multiplies — the
 *  -0.0 argument in mlp.cc), then the 8-neuron blocked accumulate;
 *  per (input, lane) additions run in ascending neuron order. */
template <class V>
void
mlpBackwardLayerT(const double *weights, int in, int out, bool hidden,
                  const double *out_acts, const double *adj,
                  double *madj, double *prev)
{
    constexpr std::size_t L = kBatchLanes;
    constexpr std::size_t W = V::kWidth;
    const V zero = V::broadcast(0.0);
    for (int o = 0; o < out; ++o) {
        const double *outRow =
            out_acts + static_cast<std::size_t>(o) * L;
        const double *aRow = adj + static_cast<std::size_t>(o) * L;
        double *mRow = madj + static_cast<std::size_t>(o) * L;
        for (std::size_t l = 0; l < L; l += W) {
            V a = V::load(aRow + l);
            if (hidden)
                a = select(cgt(V::load(outRow + l), zero), a, zero);
            a.store(mRow + l);
        }
    }
    constexpr int kBlock = 8;
    for (int ob = 0; ob < out; ob += kBlock) {
        const int oe = std::min(out, ob + kBlock);
        for (int i = 0; i < in; ++i) {
            double *pRow = prev + static_cast<std::size_t>(i) * L;
            for (std::size_t l = 0; l < L; l += W) {
                // Keeping the chunk in a register across the block
                // changes memory traffic only; the per-lane addition
                // order is untouched.
                V p = V::load(pRow + l);
                for (int o = ob; o < oe; ++o) {
                    const V w = V::broadcast(
                        weights[static_cast<std::size_t>(o) * in +
                                i]);
                    p = p + V::load(madj +
                                    static_cast<std::size_t>(o) * L +
                                    l) *
                                w;
                }
                p.store(pRow + l);
            }
        }
    }
}

/** Adam parameter update (optim/adam.cc formula order), vector body
 *  plus a scalar ragged tail with the identical operation sequence. */
template <class V>
void
adamStepT(double *x, const double *g, double *m, double *v,
          std::size_t n, double beta1, double beta2, double corr1,
          double corr2, double lr, double eps)
{
    constexpr std::size_t W = V::kWidth;
    const V b1 = V::broadcast(beta1);
    const V b2 = V::broadcast(beta2);
    const V ob1 = V::broadcast(1.0 - beta1);
    const V ob2 = V::broadcast(1.0 - beta2);
    const V c1 = V::broadcast(corr1);
    const V c2 = V::broadcast(corr2);
    const V vlr = V::broadcast(lr);
    const V veps = V::broadcast(eps);
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
        const V gi = V::load(g + i);
        const V mi = b1 * V::load(m + i) + ob1 * gi;
        const V vi = b2 * V::load(v + i) + (ob2 * gi) * gi;
        mi.store(m + i);
        vi.store(v + i);
        const V mHat = mi / c1;
        const V vHat = vi / c2;
        (V::load(x + i) - (vlr * mHat) / (vsqrt(vHat) + veps))
            .store(x + i);
    }
    for (; i < n; ++i) {
        m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
        v[i] = beta2 * v[i] + (1.0 - beta2) * g[i] * g[i];
        const double mHat = m[i] / corr1;
        const double vHat = v[i] / corr2;
        x[i] -= lr * mHat / (std::sqrt(vHat) + eps);
    }
}

/** The FMA-contraction canary: fl(fl(a*b)+c) through this backend's
 *  multiply and add. If the TU is (re)compiled with contraction
 *  enabled — e.g. the global -ffp-contract=off is dropped under
 *  FELIX_NATIVE — the compiler may fuse this into one rounding and
 *  tests/test_simd.cc's guard fails. */
template <class V>
double
probeMulAddT(double a, double b, double c)
{
    double out[V::kWidth];
    (V::broadcast(a) * V::broadcast(b) + V::broadcast(c)).store(out);
    return out[0];
}

/** Assemble one backend's table. */
template <class V>
KernelSet
makeKernelSet(const char *name)
{
    static_assert(kBatchLanes % V::kWidth == 0,
                  "kBatchLanes must be a multiple of every backend "
                  "vector width");
    return KernelSet{static_cast<int>(V::kWidth),
                     name,
                     &tapeForwardT<V>,
                     &tapeBackwardT<V>,
                     &mlpForwardLayerT<V>,
                     &mlpBackwardLayerT<V>,
                     &adamStepT<V>,
                     &probeMulAddT<V>};
}

} // namespace simd
} // namespace felix

#endif // FELIX_SIMD_KERNELS_IMPL_H_
