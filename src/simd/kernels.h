/**
 * @file
 * Runtime-dispatched SIMD kernel table for the hot SoA loops: tape
 * forward/backward (expr/compiled.cc), the blocked batched MLP
 * layer kernels (costmodel/mlp.cc), and the Adam parameter update
 * (optim/adam.cc, costmodel/mlp.cc).
 *
 * Every backend is the SAME templated kernel body
 * (src/simd/kernels_impl.h) instantiated against one vector type
 * from support/simd.h and compiled in its own translation unit with
 * the matching -m flags. Dispatch picks the widest backend the CPU
 * supports at first use (overridable: setPreferredWidth(), the
 * FELIX_SIMD environment variable, felix-tune --simd) and publishes
 * the active lane width as the `simd.width` gauge. Because each
 * lane executes the identical scalar operation sequence at every
 * width (see support/simd.h), switching backends never changes a
 * bit of any result — tests/test_simd.cc enforces exactly that.
 */
#ifndef FELIX_SIMD_KERNELS_H_
#define FELIX_SIMD_KERNELS_H_

#include <cstddef>
#include <vector>

#include "expr/tape.h"

namespace felix {
namespace simd {

/** One compiled backend: function pointers plus identity. */
struct KernelSet
{
    int width;        ///< doubles per vector register
    const char *name; ///< "scalar", "sse2", "avx2", "avx512", "neon"

    /** Instruction sweep of CompiledExprs::forwardBatch over the
     *  kBatchLanes-wide SoA slot buffer. */
    void (*tapeForward)(const expr::TapeProgram &program,
                        double *vals);
    /** Reverse sweep of CompiledExprs::backwardBatch (seeding and
     *  input-gradient extraction stay with the caller). */
    void (*tapeBackward)(const expr::TapeProgram &program,
                         const double *vals, double *adjs);

    /** One batched MLP layer forward: out_rows[o*L+l] from
     *  cur[i*L+l], with ReLU when hidden. */
    void (*mlpForwardLayer)(const double *weights, const double *bias,
                            int in, int out, bool hidden,
                            const double *cur, double *out_rows);
    /** One batched MLP layer of the input-gradient backward: fills
     *  the masked adjoint rows madj from adj/out_acts and
     *  accumulates prev[i*L+l] += madj[o*L+l] * w[o][i] in the
     *  blocked scalar order (prev must arrive zeroed). */
    void (*mlpBackwardLayer)(const double *weights, int in, int out,
                             bool hidden, const double *out_acts,
                             const double *adj, double *madj,
                             double *prev);

    /** One Adam update over a flat parameter vector, vectorized with
     *  a scalar ragged tail running the identical formula order. */
    void (*adamStep)(double *x, const double *g, double *m, double *v,
                     std::size_t n, double beta1, double beta2,
                     double corr1, double corr2, double lr,
                     double eps);

    /** fl(a*b)+c through this backend's mul/add — the FMA-contraction
     *  canary (must equal the separately-rounded scalar result). */
    double (*probeMulAdd)(double a, double b, double c);
};

/**
 * The backend the hot paths should call through. Resolved on first
 * use: widest compiled-in backend the CPU reports support for,
 * unless overridden by setPreferredWidth() or FELIX_SIMD
 * ("off" or a width). Cheap (one relaxed atomic load) — but hot
 * loops should still hoist the reference out of per-row loops.
 */
const KernelSet &activeKernels();

/**
 * Force a backend by lane width: 0 restores auto-detection, 1 is the
 * scalar fallback, 2/4/8 select SSE2/NEON, AVX2, AVX-512. Returns
 * false (and changes nothing) if that width is not compiled in or
 * the CPU lacks it. Not synchronized against kernels already
 * running — switch between batches, not during one.
 */
bool setPreferredWidth(int width);

/** Lane width of the active backend (also the `simd.width` gauge). */
int activeWidth();

/** Name of the active backend ("scalar", "sse2", ...). */
const char *activeBackendName();

/**
 * Widths usable on this machine (compiled in AND supported by the
 * CPU), ascending; always contains 1.
 */
std::vector<int> availableWidths();

} // namespace simd
} // namespace felix

#endif // FELIX_SIMD_KERNELS_H_
