/**
 * @file
 * Traffic-weighted task scheduling: which subgraph gets the next
 * background tuning round.
 *
 * The paper's Ansor-style scheduler (src/tuner/tuner.h,
 * selectNextTask) spends rounds where the most *network* latency
 * remains: score_i = weight_i * best_latency_i, damped by a
 * stagnation backoff. A serving fleet doesn't care about one
 * network — it cares about the latency-volume product across every
 * request it answers. The serving scheduler therefore generalizes
 * the score to
 *
 *   score_i = traffic_share_i * best_latency_i * 0.5^min(6, stag_i)
 *
 * where traffic_share_i is the count-min-sketch estimate of the
 * fraction of fleet traffic hitting subgraph i (traffic.h). With a
 * single network and uniform traffic this degenerates to exactly
 * the paper's rule (shares proportional to task weights), so the
 * daemon's policy is a strict generalization, not a fork.
 *
 * Tasks the fleet has never requested (share 0) score 0 and are
 * only picked by the visit-once rule, mirroring the tuner's "every
 * task gets one round first" warm-up.
 */
#ifndef FELIX_SERVE_SCHEDULER_H_
#define FELIX_SERVE_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "serve/traffic.h"

namespace felix {
namespace serve {

/** Scheduling inputs of one registered tuning task. */
struct TaskStats
{
    uint64_t hash = 0;            ///< subgraph structural hash
    double bestLatencySec = 0.0;  ///< current best per-kernel latency
    int rounds = 0;               ///< tuning rounds spent so far
    int stagnantRounds = 0;       ///< rounds without improvement
};

/** Score of one task under the traffic-weighted policy. */
double trafficScore(const TaskStats &stats,
                    const CountMinSketch &traffic);

/**
 * Pick the next task to tune: first any never-tuned task (lowest
 * index first), then the highest traffic-weighted score; ties break
 * on the lowest index. Returns -1 when @p tasks is empty.
 */
int pickNextTask(const std::vector<TaskStats> &tasks,
                 const CountMinSketch &traffic);

} // namespace serve
} // namespace felix

#endif // FELIX_SERVE_SCHEDULER_H_
