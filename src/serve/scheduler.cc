#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>

namespace felix {
namespace serve {

double
trafficScore(const TaskStats &stats, const CountMinSketch &traffic)
{
    double backoff =
        std::pow(0.5, std::min(6, stats.stagnantRounds));
    return traffic.share(stats.hash) * stats.bestLatencySec * backoff;
}

int
pickNextTask(const std::vector<TaskStats> &tasks,
             const CountMinSketch &traffic)
{
    if (tasks.empty())
        return -1;
    for (size_t i = 0; i < tasks.size(); ++i) {
        if (tasks[i].rounds == 0)
            return static_cast<int>(i);
    }
    int best = 0;
    double bestScore = -1.0;
    for (size_t i = 0; i < tasks.size(); ++i) {
        double score = trafficScore(tasks[i], traffic);
        if (score > bestScore) {
            bestScore = score;
            best = static_cast<int>(i);
        }
    }
    return best;
}

} // namespace serve
} // namespace felix
