/**
 * @file
 * The felix-serve session: a long-lived tuning service answering
 * NDJSON schedule requests (protocol.h) from a schedule cache
 * (cache.h), accounting fleet traffic (traffic.h), and spending
 * background tuning rounds on the subgraphs that dominate fleet
 * latency (scheduler.h) through a reentrant GraphTuner.
 *
 * The session is transport-agnostic: handle() maps one request
 * line to one response line, runStdio() pumps std::istream ->
 * std::ostream (tests, CI, and `felix-serve --stdio`), and the
 * Unix-domain-socket front end in tools/felix_serve.cc reuses the
 * same handle() per connection line.
 *
 * Determinism contract (docs/serving.md): given a fixed request
 * trace, seed, and warm-start log, every response byte is
 * reproducible — across runs and across --jobs values. Responses
 * therefore never carry wall-clock state; wall time goes to the
 * serve.* metrics and the serve log only.
 */
#ifndef FELIX_SERVE_SERVER_H_
#define FELIX_SERVE_SERVER_H_

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/window.h"
#include "serve/cache.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/traffic.h"
#include "sim/device.h"
#include "tuner/tuner.h"

namespace felix {
namespace serve {

/** Daemon configuration. */
struct ServeOptions
{
    /** Tuning target; tune requests naming another device error. */
    std::string device = "a5000";
    /** Tuning-record log: warm-starts the cache at startup, and
     *  flush/shutdown persist improved schedules back to it. */
    std::string recordsPath;
    /** JSONL serve log (one line per request; docs/serving.md). */
    std::string serveLogPath;
    /** Tuner-state checkpoint file: restored at startup (so a
     *  restarted daemon resumes its background tuning where it
     *  left off, not just its cached schedules) and rewritten
     *  crash-safely on flush and shutdown (docs/distributed.md). */
    std::string checkpointPath;
    /** Heavy-hitter slots and count-min sketch geometry. */
    size_t heavyHitterK = 8;
    int sketchDepth = 4;
    int sketchWidth = 2048;
    /** Sliding window (in subgraph lookups) for the windowed cache
     *  hit rate reported by the admin stats op. */
    size_t hitWindow = 256;
    /** Search/clock/seed knobs for the background tuner. */
    tuner::TunerOptions tuner;
};

/** One serving session (single-threaded request loop). */
class ServeSession
{
  public:
    ServeSession(ServeOptions options, costmodel::CostModel model);

    /** One request line in, one response line out (no newline). */
    std::string handle(const std::string &line);

    bool shutdownRequested() const { return shutdown_; }

    /**
     * Serve schedules for already-extracted tasks (the programmatic
     * face of {"op":"tune"}; tests drive it directly).
     */
    TuneResponse tune(const std::string &network_name,
                      const std::vector<graph::Task> &tasks);

    /** Run @p n traffic-weighted background tuning rounds. */
    RoundsResponse runRounds(int n);

    StatsResponse stats() const;

    /** Per-task tuning progress ({"op":"tasks"}; deterministic). */
    TasksResponse tasks() const;

    /** Flight-recorder contents ({"op":"dump"}; wall-clock). */
    DumpResponse dump() const;

    /** Persist improved cache entries to the records log. */
    size_t persist();

    /**
     * Write the tuner-state checkpoint (tmp + fsync + rename, so a
     * crash mid-write leaves the previous checkpoint intact). False
     * when no --checkpoint is configured or the write failed.
     */
    bool writeCheckpoint();

    /**
     * Append the end-of-session {"type":"tasks"} summary line to
     * the serve log (felix-trace-summary --serve reads it). Called
     * once at shutdown; safe to call with no log configured.
     */
    void finalizeLogs();

    /**
     * Pump requests from @p in to @p out until EOF or a shutdown
     * request, then persist. Returns a process exit code.
     */
    int runStdio(std::istream &in, std::ostream &out);

    const tuner::GraphTuner &graphTuner() const { return *tuner_; }
    const std::string &serveLogPath() const
    {
        return options_.serveLogPath;
    }
    const CountMinSketch &traffic() const { return traffic_; }
    const HeavyHitters &heavyHitters() const { return heavy_; }
    const ScheduleCache &cache() const { return cache_; }

    /** Tuning rounds spent on the task with @p hash (tests). */
    int roundsOnTask(uint64_t hash) const;

  private:
    std::string dispatch(const Request &request);
    void logRequest(const Request &request,
                    const std::string &response, double wall_us);

    ServeOptions options_;
    sim::DeviceKind deviceKind_;
    std::unique_ptr<tuner::GraphTuner> tuner_;
    ScheduleCache cache_;
    CountMinSketch traffic_;
    HeavyHitters heavy_;
    std::ofstream serveLog_;
    bool shutdown_ = false;
    uint64_t requests_ = 0;
    uint64_t cacheHits_ = 0;
    uint64_t cacheMisses_ = 0;
    int roundsRun_ = 0;
    uint64_t checkpointWrites_ = 0;
    /** Windowed hit rate over recent lookups (deterministic). */
    obs::SlidingWindowRate hitWindow_;
    /** Virtual (cost-model) latency of every served task answer,
     *  in microseconds — deterministic, unlike wall time. */
    obs::Histogram answerLatencyUs_;
    /** Requests/sec over the trailing second (wall-clock; feeds
     *  the serve.request_rate_per_sec gauge only). */
    obs::EventRateWindow requestRate_;
};

} // namespace serve
} // namespace felix

#endif // FELIX_SERVE_SERVER_H_
