#include "serve/traffic.h"

#include <algorithm>
#include <limits>

#include "support/logging.h"

namespace felix {
namespace serve {

namespace {

/** splitmix64 finalizer: the mixing step behind the row hashes. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

int
roundUpPow2(int v)
{
    int w = 1;
    while (w < v)
        w <<= 1;
    return w;
}

} // namespace

CountMinSketch::CountMinSketch(int depth, int width, uint64_t seed)
    : depth_(depth), width_(roundUpPow2(std::max(1, width)))
{
    FELIX_CHECK(depth >= 1, "count-min sketch needs depth >= 1");
    mask_ = static_cast<uint64_t>(width_) - 1;
    rowSeeds_.reserve(depth_);
    uint64_t s = seed;
    for (int row = 0; row < depth_; ++row) {
        s = mix64(s);
        rowSeeds_.push_back(s);
    }
    counters_.assign(static_cast<size_t>(depth_) * width_, 0);
}

uint64_t
CountMinSketch::rowHash(int row, uint64_t key) const
{
    return mix64(key ^ rowSeeds_[row]) & mask_;
}

void
CountMinSketch::add(uint64_t key, uint64_t count)
{
    // Conservative update: only raise the rows that are at the
    // current minimum, which tightens the overestimate on skewed
    // streams without losing the no-underestimate guarantee.
    uint64_t est = estimate(key);
    uint64_t target = est + count;
    for (int row = 0; row < depth_; ++row) {
        uint64_t &cell =
            counters_[static_cast<size_t>(row) * width_ +
                      rowHash(row, key)];
        cell = std::max(cell, target);
    }
    total_ += count;
}

uint64_t
CountMinSketch::estimate(uint64_t key) const
{
    uint64_t best = std::numeric_limits<uint64_t>::max();
    for (int row = 0; row < depth_; ++row) {
        uint64_t cell =
            counters_[static_cast<size_t>(row) * width_ +
                      rowHash(row, key)];
        best = std::min(best, cell);
    }
    return best;
}

double
CountMinSketch::share(uint64_t key) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(estimate(key)) /
           static_cast<double>(total_);
}

HeavyHitters::HeavyHitters(size_t capacity) : capacity_(capacity)
{
    FELIX_CHECK(capacity >= 1, "heavy-hitter heap needs capacity");
    heap_.reserve(capacity);
}

bool
HeavyHitters::less(const Entry &a, const Entry &b)
{
    if (a.count != b.count)
        return a.count < b.count;
    return a.key < b.key;
}

void
HeavyHitters::siftUp(size_t slot)
{
    while (slot > 0) {
        size_t parent = (slot - 1) / 2;
        if (!less(heap_[slot], heap_[parent]))
            break;
        std::swap(heap_[slot], heap_[parent]);
        pos_[heap_[slot].key] = slot;
        pos_[heap_[parent].key] = parent;
        slot = parent;
    }
}

void
HeavyHitters::siftDown(size_t slot)
{
    for (;;) {
        size_t left = 2 * slot + 1, right = left + 1;
        size_t smallest = slot;
        if (left < heap_.size() &&
            less(heap_[left], heap_[smallest]))
            smallest = left;
        if (right < heap_.size() &&
            less(heap_[right], heap_[smallest]))
            smallest = right;
        if (smallest == slot)
            break;
        std::swap(heap_[slot], heap_[smallest]);
        pos_[heap_[slot].key] = slot;
        pos_[heap_[smallest].key] = smallest;
        slot = smallest;
    }
}

void
HeavyHitters::update(uint64_t key, uint64_t count)
{
    auto it = pos_.find(key);
    if (it != pos_.end()) {
        // Counts only grow, so a tracked key can only sink deeper
        // into the min-heap.
        heap_[it->second].count = count;
        siftDown(it->second);
        return;
    }
    if (heap_.size() < capacity_) {
        heap_.push_back({key, count});
        pos_[key] = heap_.size() - 1;
        siftUp(heap_.size() - 1);
        return;
    }
    if (count <= heap_[0].count)
        return;   // not heavier than the lightest tracked key
    pos_.erase(heap_[0].key);
    heap_[0] = {key, count};
    pos_[key] = 0;
    siftDown(0);
}

uint64_t
HeavyHitters::minCount() const
{
    if (heap_.size() < capacity_)
        return 0;
    return heap_[0].count;
}

std::vector<std::pair<uint64_t, uint64_t>>
HeavyHitters::items() const
{
    std::vector<std::pair<uint64_t, uint64_t>> out;
    out.reserve(heap_.size());
    for (const Entry &entry : heap_)
        out.push_back({entry.key, entry.count});
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    return out;
}

} // namespace serve
} // namespace felix
