/**
 * @file
 * The felix-serve wire protocol: newline-delimited JSON, one
 * request object in, one response object out, in order. The full
 * schema (and the determinism contract: responses carry no
 * wall-clock state) is documented in docs/serving.md.
 *
 * Requests:
 *   {"op":"tune","network":"dcgan","batch":1}
 *   {"op":"rounds","n":4}
 *   {"op":"stats"}
 *   {"op":"tasks"}
 *   {"op":"flush"}
 *   {"op":"shutdown"}
 *   {"op":"metrics"}       // wall-clock: metrics-registry snapshot
 *   {"op":"dump"}          // wall-clock: flight-recorder contents
 *
 * stats and tasks are *deterministic* admin ops: their responses
 * carry no wall-clock state, so they byte-reproduce across runs and
 * --jobs values (felix-top --once --no-wall relies on this). The
 * metrics and dump ops are the explicitly wall-clock escape hatch
 * and are excluded from byte-compare harnesses.
 *
 * Subgraph hashes are emitted as decimal *strings*: they are full
 * 64-bit values and JSON numbers are doubles (53-bit mantissa).
 */
#ifndef FELIX_SERVE_PROTOCOL_H_
#define FELIX_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight.h"

namespace felix {
namespace serve {

/** Request kinds understood by the daemon. */
enum class Op { Tune, Rounds, Stats, Tasks, Flush, Shutdown, Metrics,
                Dump };

const char *opName(Op op);

/** One parsed request line. */
struct Request
{
    Op op = Op::Stats;
    std::string network;   ///< tune: model name (models/models.h)
    int batch = 1;         ///< tune: input batch size
    std::string device;    ///< tune: optional device sanity check
    int rounds = 1;        ///< rounds: background rounds to run
};

/**
 * Parse one NDJSON request line. nullopt on malformed input, with a
 * human-readable reason in @p error when non-null.
 */
std::optional<Request> parseRequest(const std::string &line,
                                    std::string *error = nullptr);

/** The schedule served for one subgraph of a tune request. */
struct TaskAnswer
{
    std::string label;
    uint64_t hash = 0;
    int weight = 1;
    int sketchIndex = 0;
    std::vector<double> vars;
    double latencySec = 0.0;
    bool cached = false;   ///< answered from the schedule cache
};

/** Response to {"op":"tune"}. */
struct TuneResponse
{
    std::string network;
    double latencySec = 0.0;   ///< end-to-end with served schedules
    int cacheHits = 0;
    int cacheMisses = 0;
    std::vector<TaskAnswer> tasks;

    std::string toJson() const;
};

/** Response to {"op":"rounds"}. */
struct RoundsResponse
{
    int ran = 0;
    int measurements = 0;      ///< total daemon measurements so far
    double clockSec = 0.0;     ///< virtual tuning clock
    std::vector<std::string> tunedLabels;   ///< task per round

    std::string toJson() const;
};

/** One heavy hitter in a stats response. */
struct HeavyHitterInfo
{
    uint64_t hash = 0;
    uint64_t count = 0;
    double share = 0.0;
};

/**
 * Cache-hit rate over the last `size` subgraph lookups (the
 * count-based sliding window of obs/window.h, so deterministic
 * under replay).
 */
struct WindowInfo
{
    size_t size = 0;       ///< window capacity (events)
    size_t filled = 0;     ///< lookups currently in the window
    uint64_t hits = 0;     ///< hits among those
    double hitRate = 0.0;  ///< hits / filled; 0 while empty
};

/**
 * Quantile summary of the *virtual* (cost-model) latencies of every
 * served task answer, in microseconds. Virtual latencies are part
 * of the deterministic response stream, unlike wall-clock request
 * latencies, which stay in the metrics registry.
 */
struct LatencySummary
{
    uint64_t count = 0;
    double meanUs = 0.0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
};

/** Response to {"op":"stats"} (deterministic fields only). */
struct StatsResponse
{
    uint64_t requests = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    size_t cacheSize = 0;
    size_t tasks = 0;
    int roundsRun = 0;
    uint64_t trafficTotal = 0;
    std::vector<HeavyHitterInfo> heavyHitters;
    WindowInfo window;            ///< windowed cache-hit rate
    LatencySummary answerLatency; ///< served virtual latencies
    /** Shard identity and checkpoint status. Emitted only when the
     *  daemon runs with --shard-id / --checkpoint, so unsharded
     *  responses keep their exact byte format. Checkpoint writes
     *  happen on flush/shutdown requests (part of the request
     *  trace), so these stay deterministic under replay. */
    int shardId = -1;             ///< -1 when unsharded
    int shardCount = 0;
    bool checkpointConfigured = false;
    uint64_t checkpointWrites = 0;
    size_t pendingRestore = 0;    ///< restored tasks not re-seen yet

    std::string toJson() const;
};

/** Per-task tuning progress in a tasks response. */
struct TaskProgress
{
    std::string label;
    uint64_t hash = 0;
    double bestLatencySec = 0.0;
    int rounds = 0;
    int stagnantRounds = 0;
    uint64_t trafficCount = 0;   ///< sketch estimate for the hash
    double trafficShare = 0.0;   ///< trafficCount / traffic total
    uint64_t cacheHits = 0;      ///< hits served for this hash

    std::string toJson() const;
};

/** Response to {"op":"tasks"}: background-tuning progress. */
struct TasksResponse
{
    std::vector<TaskProgress> tasks;

    std::string toJson() const;
};

/** Response to {"op":"dump"}: the flight-recorder ring. */
struct DumpResponse
{
    uint64_t total = 0;      ///< events ever recorded
    uint64_t droppedCount = 0;
    size_t capacity = 0;
    std::vector<obs::FlightEvent> events;   ///< oldest first

    std::string toJson() const;
};

/** Response to {"op":"flush"}. */
struct FlushResponse
{
    size_t persisted = 0;
    /** 1/0: checkpoint written; -1 (field omitted from the JSON)
     *  when the daemon has no --checkpoint configured. */
    int checkpointed = -1;

    std::string toJson() const;
};

/** {"type":"error","error":...} response line. */
std::string errorResponse(const std::string &message);

/** {"type":"ok"} acknowledgement (shutdown). */
std::string okResponse(const std::string &what);

} // namespace serve
} // namespace felix

#endif // FELIX_SERVE_PROTOCOL_H_
