/**
 * @file
 * The felix-serve wire protocol: newline-delimited JSON, one
 * request object in, one response object out, in order. The full
 * schema (and the determinism contract: responses carry no
 * wall-clock state) is documented in docs/serving.md.
 *
 * Requests:
 *   {"op":"tune","network":"dcgan","batch":1}
 *   {"op":"rounds","n":4}
 *   {"op":"stats"}
 *   {"op":"flush"}
 *   {"op":"shutdown"}
 *
 * Subgraph hashes are emitted as decimal *strings*: they are full
 * 64-bit values and JSON numbers are doubles (53-bit mantissa).
 */
#ifndef FELIX_SERVE_PROTOCOL_H_
#define FELIX_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace felix {
namespace serve {

/** Request kinds understood by the daemon. */
enum class Op { Tune, Rounds, Stats, Flush, Shutdown };

const char *opName(Op op);

/** One parsed request line. */
struct Request
{
    Op op = Op::Stats;
    std::string network;   ///< tune: model name (models/models.h)
    int batch = 1;         ///< tune: input batch size
    std::string device;    ///< tune: optional device sanity check
    int rounds = 1;        ///< rounds: background rounds to run
};

/**
 * Parse one NDJSON request line. nullopt on malformed input, with a
 * human-readable reason in @p error when non-null.
 */
std::optional<Request> parseRequest(const std::string &line,
                                    std::string *error = nullptr);

/** The schedule served for one subgraph of a tune request. */
struct TaskAnswer
{
    std::string label;
    uint64_t hash = 0;
    int weight = 1;
    int sketchIndex = 0;
    std::vector<double> vars;
    double latencySec = 0.0;
    bool cached = false;   ///< answered from the schedule cache
};

/** Response to {"op":"tune"}. */
struct TuneResponse
{
    std::string network;
    double latencySec = 0.0;   ///< end-to-end with served schedules
    int cacheHits = 0;
    int cacheMisses = 0;
    std::vector<TaskAnswer> tasks;

    std::string toJson() const;
};

/** Response to {"op":"rounds"}. */
struct RoundsResponse
{
    int ran = 0;
    int measurements = 0;      ///< total daemon measurements so far
    double clockSec = 0.0;     ///< virtual tuning clock
    std::vector<std::string> tunedLabels;   ///< task per round

    std::string toJson() const;
};

/** One heavy hitter in a stats response. */
struct HeavyHitterInfo
{
    uint64_t hash = 0;
    uint64_t count = 0;
    double share = 0.0;
};

/** Response to {"op":"stats"} (deterministic fields only). */
struct StatsResponse
{
    uint64_t requests = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    size_t cacheSize = 0;
    size_t tasks = 0;
    int roundsRun = 0;
    uint64_t trafficTotal = 0;
    std::vector<HeavyHitterInfo> heavyHitters;

    std::string toJson() const;
};

/** Response to {"op":"flush"}. */
struct FlushResponse
{
    size_t persisted = 0;

    std::string toJson() const;
};

/** {"type":"error","error":...} response line. */
std::string errorResponse(const std::string &message);

/** {"type":"ok"} acknowledgement (shutdown). */
std::string okResponse(const std::string &what);

} // namespace serve
} // namespace felix

#endif // FELIX_SERVE_PROTOCOL_H_
