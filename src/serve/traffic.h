/**
 * @file
 * Datapath-grade traffic accounting for the serving daemon: a
 * count-min sketch estimating per-subgraph request volume in O(1)
 * memory, plus a fixed-capacity heavy-hitter min-heap tracking the
 * top-K subgraph hashes by estimated count.
 *
 * The sketch bounds overestimation: for a stream of N updates, a
 * depth-d width-w sketch guarantees
 *
 *   exact <= estimate <= exact + (e / w) * N
 *
 * with probability 1 - e^-d, and never underestimates. The
 * heavy-hitter heap is the classic top-K companion structure (one
 * hash map from key to heap slot, sift on update, evict the minimum
 * when full) so the scheduler can iterate the dominant subgraphs
 * without scanning every task.
 *
 * Everything here is deterministic: row seeds derive from one fixed
 * seed, ties break on the key value, and no wall-clock state is
 * kept — a replayed request trace reproduces the exact same
 * estimates and heap contents (docs/serving.md).
 */
#ifndef FELIX_SERVE_TRAFFIC_H_
#define FELIX_SERVE_TRAFFIC_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace felix {
namespace serve {

/** Conservative-update count-min sketch over 64-bit keys. */
class CountMinSketch
{
  public:
    /**
     * @param depth number of hash rows (error probability e^-depth)
     * @param width counters per row, rounded up to a power of two
     *        (additive error factor e/width of the stream total)
     */
    explicit CountMinSketch(int depth = 4, int width = 2048,
                            uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Add @p count occurrences of @p key. */
    void add(uint64_t key, uint64_t count = 1);

    /** Point estimate: never below the exact count. */
    uint64_t estimate(uint64_t key) const;

    /** Total updates observed (the stream length N). */
    uint64_t total() const { return total_; }

    /** Estimated share of the stream belonging to @p key, [0, 1]. */
    double share(uint64_t key) const;

    int depth() const { return depth_; }
    int width() const { return width_; }

  private:
    uint64_t rowHash(int row, uint64_t key) const;

    int depth_;
    int width_;        ///< power of two
    uint64_t mask_;
    uint64_t total_ = 0;
    std::vector<uint64_t> rowSeeds_;
    std::vector<uint64_t> counters_;   ///< depth_ * width_
};

/**
 * Fixed-capacity top-K tracker: a min-heap on estimated count with
 * a key -> slot index so updates are O(log K).
 */
class HeavyHitters
{
  public:
    explicit HeavyHitters(size_t capacity = 16);

    /**
     * Record that @p key now has estimated count @p count (counts
     * only grow). Inserts when there is room or when @p count
     * strictly beats the current minimum (which is evicted).
     */
    void update(uint64_t key, uint64_t count);

    bool contains(uint64_t key) const
    {
        return pos_.find(key) != pos_.end();
    }

    /** Smallest tracked count (0 when not yet full). */
    uint64_t minCount() const;

    size_t size() const { return heap_.size(); }
    size_t capacity() const { return capacity_; }

    /**
     * Tracked (key, count) pairs, highest count first; ties order
     * by ascending key so the listing is deterministic.
     */
    std::vector<std::pair<uint64_t, uint64_t>> items() const;

  private:
    struct Entry
    {
        uint64_t key = 0;
        uint64_t count = 0;
    };

    /** Min-heap order: count, then key (total, deterministic). */
    static bool less(const Entry &a, const Entry &b);
    void siftUp(size_t slot);
    void siftDown(size_t slot);

    size_t capacity_;
    std::vector<Entry> heap_;
    std::unordered_map<uint64_t, size_t> pos_;
};

} // namespace serve
} // namespace felix

#endif // FELIX_SERVE_TRAFFIC_H_
