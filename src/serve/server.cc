#include "serve/server.h"

#include <exception>
#include <istream>
#include <ostream>
#include <sstream>

#include "models/models.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/checkpoint.h"
#include "support/logging.h"

namespace felix {
namespace serve {

namespace {

/** CLI network names, matching felix-tune --network. */
std::optional<graph::Graph>
buildNetwork(const std::string &name, int batch)
{
    if (name == "resnet50")
        return models::resnet50(batch);
    if (name == "mobilenet_v2")
        return models::mobilenetV2(batch);
    if (name == "r3d_18")
        return models::r3d18(batch);
    if (name == "dcgan")
        return models::dcgan(batch);
    if (name == "vit_b32")
        return models::vitB32(batch);
    if (name == "llama")
        return models::llama(batch);
    return std::nullopt;
}

tuner::TuneRecord
recordOf(const tuner::TaskRecord &record, double clock_sec)
{
    tuner::TuneRecord out;
    out.taskHash = record.task.subgraph.structuralHash();
    out.taskLabel = record.task.exampleLabel;
    out.sketchIndex = record.bestCandidate.sketchIndex;
    out.scheduleVars = record.bestCandidate.x;
    out.latencySec = record.bestLatencySec;
    out.clockSec = clock_sec;
    return out;
}

} // namespace

ServeSession::ServeSession(ServeOptions options,
                           costmodel::CostModel model)
    : options_(std::move(options)),
      deviceKind_(sim::parseDevice(options_.device)),
      traffic_(options_.sketchDepth, options_.sketchWidth,
               options_.tuner.seed),
      heavy_(options_.heavyHitterK),
      hitWindow_(options_.hitWindow),
      answerLatencyUs_(obs::Histogram::logBounds(1.0, 1e7, 9)),
      requestRate_(1000000)
{
    options_.tuner.allowEmptyTasks = true;
    tuner_ = std::make_unique<tuner::GraphTuner>(
        std::vector<graph::Task>{}, std::move(model), deviceKind_,
        options_.tuner);
    if (!options_.recordsPath.empty()) {
        size_t loaded = cache_.warmStart(options_.recordsPath);
        if (loaded > 0)
            inform("felix-serve: warm-started ", loaded,
                   " cached schedules from ", options_.recordsPath);
    }
    if (!options_.checkpointPath.empty()) {
        if (auto payload =
                shard::readCheckpoint(options_.checkpointPath)) {
            std::istringstream is(*payload);
            if (tuner_->loadState(is)) {
                inform("felix-serve: restored tuner state from ",
                       options_.checkpointPath, " (",
                       tuner_->pendingRestoreCount(),
                       " tasks pending re-registration)");
            } else {
                warn("felix-serve: malformed tuner state in ",
                     options_.checkpointPath, "; starting fresh");
            }
        } else if (shard::fileSize(options_.checkpointPath) > 0) {
            warn("felix-serve: corrupt checkpoint ",
                 options_.checkpointPath, "; starting fresh");
        }
    }
    if (!options_.serveLogPath.empty()) {
        serveLog_.open(options_.serveLogPath);
        FELIX_CHECK(serveLog_.good(), "cannot open serve log " +
                                          options_.serveLogPath);
    }
}

std::string
ServeSession::handle(const std::string &line)
{
    const int64_t startUs = obs::Tracer::nowUs();
    auto &registry = obs::MetricsRegistry::instance();
    ++requests_;
    registry.counter("serve.requests").add(1.0);
    requestRate_.record(startUs);
    registry.gauge("serve.request_rate_per_sec")
        .set(requestRate_.ratePerSec(startUs));

    // Correlation: spans and flight events recorded while this
    // request is live carry its 1-based ordinal as the request id.
    obs::ScopedRequestId requestId(requests_);

    std::string error;
    auto request = parseRequest(line, &error);
    obs::FlightRecorder::instance().record(
        obs::FlightKind::Request, requests_,
        request ? static_cast<uint64_t>(request->op) : 0);
    std::string response;
    if (!request) {
        registry.counter("serve.requests.malformed").add(1.0);
        response = errorResponse(error);
    } else {
        try {
            response = dispatch(*request);
        } catch (const std::exception &e) {
            registry.counter("serve.requests.failed").add(1.0);
            response = errorResponse(e.what());
        }
    }

    const double wallUs =
        static_cast<double>(obs::Tracer::nowUs() - startUs);
    registry
        .histogram("serve.request_latency_us",
                   obs::MetricsRegistry::
                       defaultRequestLatencyBoundsUs())
        .observe(wallUs);
    if (request)
        logRequest(*request, response, wallUs);
    return response;
}

std::string
ServeSession::dispatch(const Request &request)
{
    switch (request.op) {
      case Op::Tune: {
          if (!request.device.empty() &&
              request.device != options_.device) {
              return errorResponse(
                  "this daemon tunes for " + options_.device +
                  ", not " + request.device);
          }
          auto network = buildNetwork(request.network, request.batch);
          if (!network)
              return errorResponse("unknown network \"" +
                                   request.network + "\"");
          return tune(request.network, graph::partition(*network))
              .toJson();
      }
      case Op::Rounds:
          return runRounds(request.rounds).toJson();
      case Op::Stats:
          return stats().toJson();
      case Op::Tasks:
          return tasks().toJson();
      case Op::Metrics:
          // Explicitly wall-clock: the registry snapshot carries
          // timing counters and rate gauges. Never byte-compared.
          return "{\"type\":\"metrics\",\"registry\":" +
                 obs::MetricsRegistry::instance().snapshot().toJson() +
                 "}";
      case Op::Dump:
          return dump().toJson();
      case Op::Flush: {
          FlushResponse response;
          response.persisted = persist();
          if (!options_.checkpointPath.empty())
              response.checkpointed = writeCheckpoint() ? 1 : 0;
          return response.toJson();
      }
      case Op::Shutdown:
          shutdown_ = true;
          obs::FlightRecorder::instance().record(
              obs::FlightKind::Shutdown, obs::currentRequestId());
          return okResponse("shutdown");
    }
    return errorResponse("unhandled op");
}

TuneResponse
ServeSession::tune(const std::string &network_name,
                   const std::vector<graph::Task> &tasks)
{
    FELIX_SPAN("serve.tune", "serve");
    auto &registry = obs::MetricsRegistry::instance();
    TuneResponse response;
    response.network = network_name;
    for (const graph::Task &task : tasks) {
        const uint64_t hash = task.subgraph.structuralHash();
        // Traffic accounting: each occurrence of the subgraph in
        // the requested network is one unit of fleet traffic.
        traffic_.add(hash, static_cast<uint64_t>(task.weight));
        heavy_.update(hash, traffic_.estimate(hash));

        TaskAnswer answer;
        answer.label = task.exampleLabel;
        answer.hash = hash;
        answer.weight = task.weight;
        if (const CacheEntry *entry = cache_.lookup(hash)) {
            cache_.recordHit(hash);
            ++cacheHits_;
            ++response.cacheHits;
            hitWindow_.observe(true);
            registry.counter("serve.cache.hit").add(1.0);
            obs::FlightRecorder::instance().record(
                obs::FlightKind::CacheHit, obs::currentRequestId(),
                hash);
            answer.sketchIndex = entry->best.sketchIndex;
            answer.vars = entry->best.scheduleVars;
            answer.latencySec = entry->best.latencySec;
            answer.cached = true;
            if (entry->taskIndex < 0 &&
                tuner_->hasPendingRestore(hash)) {
                // Restarted daemon, warm cache: the answer comes
                // from the cache, but the restored checkpoint has
                // background-tuning state for this subgraph, so
                // re-register it with the tuner to keep improving
                // it where the previous process left off.
                const int taskIndex = tuner_->addTask(task);
                cache_.bindTask(hash, taskIndex);
            }
        } else {
            // First sighting: register with the background tuner
            // (one initial all-ones measurement) and serve that
            // untuned schedule; background rounds improve it.
            ++cacheMisses_;
            ++response.cacheMisses;
            hitWindow_.observe(false);
            registry.counter("serve.cache.miss").add(1.0);
            obs::FlightRecorder::instance().record(
                obs::FlightKind::CacheMiss, obs::currentRequestId(),
                hash);
            const int taskIndex = tuner_->addTask(task);
            const tuner::TaskRecord &record =
                tuner_->taskRecords()[taskIndex];
            tuner::TuneRecord fresh =
                recordOf(record, tuner_->clockNow());
            cache_.put(fresh);
            cache_.bindTask(hash, taskIndex);
            answer.sketchIndex = fresh.sketchIndex;
            answer.vars = fresh.scheduleVars;
            answer.latencySec = fresh.latencySec;
        }
        answerLatencyUs_.observe(answer.latencySec * 1e6);
        response.latencySec += task.weight * answer.latencySec;
        response.tasks.push_back(std::move(answer));
    }
    response.latencySec += options_.tuner.graphExecOverheadSec;

    registry.gauge("serve.tasks").set(
        static_cast<double>(tuner_->taskRecords().size()));
    auto hitters = heavy_.items();
    if (!hitters.empty() && traffic_.total() > 0) {
        registry.gauge("serve.heavy_hitter_share")
            .set(static_cast<double>(hitters.front().second) /
                 static_cast<double>(traffic_.total()));
    }
    return response;
}

RoundsResponse
ServeSession::runRounds(int n)
{
    FELIX_SPAN("serve.rounds", "serve");
    auto &registry = obs::MetricsRegistry::instance();
    RoundsResponse response;
    for (int i = 0; i < n; ++i) {
        const auto &records = tuner_->taskRecords();
        if (records.empty())
            break;
        std::vector<TaskStats> stats;
        stats.reserve(records.size());
        for (const tuner::TaskRecord &record : records) {
            stats.push_back(
                {record.task.subgraph.structuralHash(),
                 record.bestLatencySec, record.rounds,
                 record.stagnantRounds});
        }
        const int taskIndex = pickNextTask(stats, traffic_);
        if (taskIndex < 0)
            break;
        obs::FlightRecorder::instance().record(
            obs::FlightKind::RoundPick, obs::currentRequestId(),
            stats[taskIndex].hash);
        tuner_->tuneTaskRound(taskIndex);
        ++roundsRun_;
        registry.counter("serve.rounds").add(1.0);
        const tuner::TaskRecord &record = records[taskIndex];
        cache_.put(recordOf(record, tuner_->clockNow()));
        response.tunedLabels.push_back(record.task.exampleLabel);
    }
    response.ran = static_cast<int>(response.tunedLabels.size());
    response.measurements = tuner_->totalMeasurements();
    response.clockSec = tuner_->clockNow();
    return response;
}

StatsResponse
ServeSession::stats() const
{
    StatsResponse response;
    response.requests = requests_;
    response.cacheHits = cacheHits_;
    response.cacheMisses = cacheMisses_;
    response.cacheSize = cache_.size();
    response.tasks = tuner_->taskRecords().size();
    response.roundsRun = roundsRun_;
    response.trafficTotal = traffic_.total();
    for (const auto &[hash, count] : heavy_.items()) {
        HeavyHitterInfo info;
        info.hash = hash;
        info.count = count;
        info.share = traffic_.total() == 0
                         ? 0.0
                         : static_cast<double>(count) /
                               static_cast<double>(traffic_.total());
        response.heavyHitters.push_back(info);
    }
    response.window.size = hitWindow_.window();
    response.window.filled = hitWindow_.occupied();
    response.window.hits = hitWindow_.successes();
    response.window.hitRate = hitWindow_.rate();
    response.answerLatency.count = answerLatencyUs_.count();
    response.answerLatency.meanUs = answerLatencyUs_.mean();
    response.answerLatency.p50Us = answerLatencyUs_.quantile(0.50);
    response.answerLatency.p95Us = answerLatencyUs_.quantile(0.95);
    response.answerLatency.p99Us = answerLatencyUs_.quantile(0.99);
    response.shardId = obs::shardId();
    response.shardCount = obs::shardCount();
    response.checkpointConfigured = !options_.checkpointPath.empty();
    response.checkpointWrites = checkpointWrites_;
    response.pendingRestore = tuner_->pendingRestoreCount();
    return response;
}

TasksResponse
ServeSession::tasks() const
{
    TasksResponse response;
    const uint64_t total = traffic_.total();
    for (const tuner::TaskRecord &record : tuner_->taskRecords()) {
        TaskProgress progress;
        progress.label = record.task.exampleLabel;
        progress.hash = record.task.subgraph.structuralHash();
        progress.bestLatencySec = record.bestLatencySec;
        progress.rounds = record.rounds;
        progress.stagnantRounds = record.stagnantRounds;
        progress.trafficCount = traffic_.estimate(progress.hash);
        progress.trafficShare =
            total == 0 ? 0.0
                       : static_cast<double>(progress.trafficCount) /
                             static_cast<double>(total);
        if (const CacheEntry *entry = cache_.lookup(progress.hash))
            progress.cacheHits = entry->hits;
        response.tasks.push_back(std::move(progress));
    }
    return response;
}

DumpResponse
ServeSession::dump() const
{
    const obs::FlightRecorder &recorder =
        obs::FlightRecorder::instance();
    DumpResponse response;
    response.total = recorder.totalRecorded();
    response.droppedCount = recorder.dropped();
    response.capacity = recorder.capacity();
    response.events = recorder.snapshot();
    return response;
}

bool
ServeSession::writeCheckpoint()
{
    if (options_.checkpointPath.empty())
        return false;
    std::ostringstream os;
    tuner_->saveState(os);
    if (!shard::writeCheckpoint(options_.checkpointPath, os.str()))
        return false;
    ++checkpointWrites_;
    obs::MetricsRegistry::instance()
        .counter("serve.checkpoint.writes")
        .add(1.0);
    obs::FlightRecorder::instance().record(
        obs::FlightKind::Persist, obs::currentRequestId(), 0,
        static_cast<int64_t>(checkpointWrites_));
    return true;
}

size_t
ServeSession::persist()
{
    if (options_.recordsPath.empty())
        return 0;
    size_t persisted = cache_.persist(options_.recordsPath);
    obs::FlightRecorder::instance().record(
        obs::FlightKind::Persist, obs::currentRequestId(), 0,
        static_cast<int64_t>(persisted));
    if (persisted > 0)
        inform("felix-serve: persisted ", persisted,
               " schedules to ", options_.recordsPath);
    return persisted;
}

void
ServeSession::finalizeLogs()
{
    if (!serveLog_.is_open())
        return;
    // One summary line per session: per-task tuning progress in the
    // same JSONL stream as the per-request lines, distinguished by
    // type. felix-trace-summary --serve aggregates it.
    TasksResponse progress = tasks();
    serveLog_ << "{\"type\":\"tasks\",\"count\":"
              << progress.tasks.size() << ",\"tasks\":[";
    for (size_t i = 0; i < progress.tasks.size(); ++i) {
        if (i)
            serveLog_ << ",";
        serveLog_ << progress.tasks[i].toJson();
    }
    serveLog_ << "]}\n";
    serveLog_.flush();
}

int
ServeSession::runStdio(std::istream &in, std::ostream &out)
{
    std::string line;
    while (!shutdown_ && std::getline(in, line)) {
        if (line.empty())
            continue;
        out << handle(line) << "\n";
        out.flush();
    }
    persist();
    writeCheckpoint();
    finalizeLogs();
    return 0;
}

int
ServeSession::roundsOnTask(uint64_t hash) const
{
    for (const tuner::TaskRecord &record : tuner_->taskRecords()) {
        if (record.task.subgraph.structuralHash() == hash)
            return record.rounds;
    }
    return 0;
}

void
ServeSession::logRequest(const Request &request,
                         const std::string &response, double wall_us)
{
    if (!serveLog_.is_open())
        return;
    // One JSONL line per request; the schema is aggregated by
    // felix-trace-summary. wall_us is the only nondeterministic
    // field and lives only here, never in responses.
    std::string type = "serve";
    serveLog_ << "{\"type\":" << obs::jsonEscape(type)
              << ",\"op\":" << obs::jsonEscape(opName(request.op));
    if (request.op == Op::Tune) {
        serveLog_ << ",\"network\":" << obs::jsonEscape(request.network)
                  << ",\"batch\":" << request.batch;
    }
    if (obs::shardId() >= 0)
        serveLog_ << ",\"shard\":" << obs::shardId();
    serveLog_ << ",\"req_id\":" << requests_
              << ",\"response_bytes\":" << response.size()
              << ",\"hits_total\":" << cacheHits_
              << ",\"misses_total\":" << cacheMisses_
              << ",\"window_hit_rate\":"
              << obs::jsonNumber(hitWindow_.rate())
              << ",\"rounds_total\":" << roundsRun_
              << ",\"tasks\":" << tuner_->taskRecords().size()
              << ",\"wall_us\":" << obs::jsonNumber(wall_us) << "}\n";
    serveLog_.flush();
}

} // namespace serve
} // namespace felix
