#include "serve/protocol.h"

#include <sstream>

#include "obs/json.h"

namespace felix {
namespace serve {

namespace {

/** 64-bit hash as a JSON decimal string. */
std::string
hashString(uint64_t hash)
{
    return obs::jsonEscape(std::to_string(hash));
}

} // namespace

const char *
opName(Op op)
{
    switch (op) {
      case Op::Tune: return "tune";
      case Op::Rounds: return "rounds";
      case Op::Stats: return "stats";
      case Op::Tasks: return "tasks";
      case Op::Flush: return "flush";
      case Op::Shutdown: return "shutdown";
      case Op::Metrics: return "metrics";
      case Op::Dump: return "dump";
    }
    return "?";
}

std::optional<Request>
parseRequest(const std::string &line, std::string *error)
{
    std::string parseError;
    auto doc = obs::parseJson(line, &parseError);
    if (!doc || !doc->isObject()) {
        if (error)
            *error = "malformed JSON: " + parseError;
        return std::nullopt;
    }
    std::string op = doc->stringOr("op", "");
    Request request;
    if (op == "tune") {
        request.op = Op::Tune;
        request.network = doc->stringOr("network", "");
        if (request.network.empty()) {
            if (error)
                *error = "tune request needs a \"network\"";
            return std::nullopt;
        }
        request.batch =
            static_cast<int>(doc->numberOr("batch", 1.0));
        if (request.batch < 1) {
            if (error)
                *error = "tune request needs batch >= 1";
            return std::nullopt;
        }
        request.device = doc->stringOr("device", "");
    } else if (op == "rounds") {
        request.op = Op::Rounds;
        request.rounds = static_cast<int>(doc->numberOr("n", 1.0));
        if (request.rounds < 1) {
            if (error)
                *error = "rounds request needs n >= 1";
            return std::nullopt;
        }
    } else if (op == "stats") {
        request.op = Op::Stats;
    } else if (op == "tasks") {
        request.op = Op::Tasks;
    } else if (op == "flush") {
        request.op = Op::Flush;
    } else if (op == "shutdown") {
        request.op = Op::Shutdown;
    } else if (op == "metrics") {
        request.op = Op::Metrics;
    } else if (op == "dump") {
        request.op = Op::Dump;
    } else {
        if (error)
            *error = op.empty() ? "missing \"op\""
                                : "unknown op \"" + op + "\"";
        return std::nullopt;
    }
    return request;
}

std::string
TuneResponse::toJson() const
{
    std::string out = "{\"type\":\"schedules\",\"network\":" +
                      obs::jsonEscape(network) +
                      ",\"latency_sec\":" + obs::jsonNumber(latencySec) +
                      ",\"cache_hits\":" +
                      obs::jsonNumber(cacheHits) +
                      ",\"cache_misses\":" +
                      obs::jsonNumber(cacheMisses) + ",\"tasks\":[";
    for (size_t i = 0; i < tasks.size(); ++i) {
        const TaskAnswer &task = tasks[i];
        if (i)
            out += ",";
        out += "{\"label\":" + obs::jsonEscape(task.label) +
               ",\"hash\":" + hashString(task.hash) +
               ",\"weight\":" + obs::jsonNumber(task.weight) +
               ",\"sketch\":" + obs::jsonNumber(task.sketchIndex) +
               ",\"vars\":[";
        for (size_t j = 0; j < task.vars.size(); ++j) {
            if (j)
                out += ",";
            out += obs::jsonNumber(task.vars[j]);
        }
        out += "],\"latency_sec\":" + obs::jsonNumber(task.latencySec) +
               ",\"cached\":" + (task.cached ? "true" : "false") + "}";
    }
    out += "]}";
    return out;
}

std::string
RoundsResponse::toJson() const
{
    std::string out =
        "{\"type\":\"rounds\",\"ran\":" + obs::jsonNumber(ran) +
        ",\"measurements\":" + obs::jsonNumber(measurements) +
        ",\"clock_sec\":" + obs::jsonNumber(clockSec) + ",\"tuned\":[";
    for (size_t i = 0; i < tunedLabels.size(); ++i) {
        if (i)
            out += ",";
        out += obs::jsonEscape(tunedLabels[i]);
    }
    out += "]}";
    return out;
}

std::string
StatsResponse::toJson() const
{
    std::string out =
        "{\"type\":\"stats\",\"requests\":" +
        obs::jsonNumber(static_cast<double>(requests)) +
        ",\"cache_hits\":" +
        obs::jsonNumber(static_cast<double>(cacheHits)) +
        ",\"cache_misses\":" +
        obs::jsonNumber(static_cast<double>(cacheMisses)) +
        ",\"cache_size\":" +
        obs::jsonNumber(static_cast<double>(cacheSize)) +
        ",\"tasks\":" + obs::jsonNumber(static_cast<double>(tasks)) +
        ",\"rounds\":" + obs::jsonNumber(roundsRun) +
        ",\"traffic_total\":" +
        obs::jsonNumber(static_cast<double>(trafficTotal)) +
        ",\"heavy_hitters\":[";
    for (size_t i = 0; i < heavyHitters.size(); ++i) {
        const HeavyHitterInfo &hitter = heavyHitters[i];
        if (i)
            out += ",";
        out += "{\"hash\":" + hashString(hitter.hash) +
               ",\"count\":" +
               obs::jsonNumber(static_cast<double>(hitter.count)) +
               ",\"share\":" + obs::jsonNumber(hitter.share) + "}";
    }
    out += "],\"window\":{\"size\":" +
           obs::jsonNumber(static_cast<double>(window.size)) +
           ",\"filled\":" +
           obs::jsonNumber(static_cast<double>(window.filled)) +
           ",\"hits\":" +
           obs::jsonNumber(static_cast<double>(window.hits)) +
           ",\"hit_rate\":" + obs::jsonNumber(window.hitRate) +
           "},\"answer_latency_us\":{\"count\":" +
           obs::jsonNumber(static_cast<double>(answerLatency.count)) +
           ",\"mean\":" + obs::jsonNumber(answerLatency.meanUs) +
           ",\"p50\":" + obs::jsonNumber(answerLatency.p50Us) +
           ",\"p95\":" + obs::jsonNumber(answerLatency.p95Us) +
           ",\"p99\":" + obs::jsonNumber(answerLatency.p99Us) + "}";
    if (shardId >= 0) {
        out += ",\"shard\":{\"id\":" + std::to_string(shardId) +
               ",\"count\":" + std::to_string(shardCount) + "}";
    }
    if (checkpointConfigured) {
        out += ",\"checkpoint\":{\"writes\":" +
               obs::jsonNumber(static_cast<double>(checkpointWrites)) +
               ",\"pending_restore\":" +
               obs::jsonNumber(static_cast<double>(pendingRestore)) +
               "}";
    }
    out += "}";
    return out;
}

std::string
TaskProgress::toJson() const
{
    return "{\"label\":" + obs::jsonEscape(label) +
           ",\"hash\":" + hashString(hash) +
           ",\"best_latency_sec\":" + obs::jsonNumber(bestLatencySec) +
           ",\"rounds\":" + obs::jsonNumber(rounds) +
           ",\"stagnant\":" + obs::jsonNumber(stagnantRounds) +
           ",\"traffic_count\":" +
           obs::jsonNumber(static_cast<double>(trafficCount)) +
           ",\"traffic_share\":" + obs::jsonNumber(trafficShare) +
           ",\"cache_hits\":" +
           obs::jsonNumber(static_cast<double>(cacheHits)) + "}";
}

std::string
TasksResponse::toJson() const
{
    std::string out = "{\"type\":\"tasks\",\"count\":" +
                      obs::jsonNumber(static_cast<double>(
                          tasks.size())) +
                      ",\"tasks\":[";
    for (size_t i = 0; i < tasks.size(); ++i) {
        if (i)
            out += ",";
        out += tasks[i].toJson();
    }
    out += "]}";
    return out;
}

std::string
DumpResponse::toJson() const
{
    std::string out =
        "{\"type\":\"dump\",\"total\":" +
        obs::jsonNumber(static_cast<double>(total)) +
        ",\"dropped\":" +
        obs::jsonNumber(static_cast<double>(droppedCount)) +
        ",\"capacity\":" +
        obs::jsonNumber(static_cast<double>(capacity)) +
        ",\"events\":[";
    for (size_t i = 0; i < events.size(); ++i) {
        const obs::FlightEvent &event = events[i];
        if (i)
            out += ",";
        out += "{\"seq\":" +
               obs::jsonNumber(static_cast<double>(event.seq)) +
               ",\"t_us\":" +
               obs::jsonNumber(static_cast<double>(event.wallUs)) +
               ",\"kind\":" +
               obs::jsonEscape(obs::flightKindName(event.kind)) +
               ",\"req\":" + hashString(event.requestId) +
               ",\"key\":" + hashString(event.key) +
               ",\"value\":" +
               obs::jsonNumber(static_cast<double>(event.value)) + "}";
    }
    out += "]}";
    return out;
}

std::string
FlushResponse::toJson() const
{
    std::string out = "{\"type\":\"flush\",\"persisted\":" +
                      obs::jsonNumber(static_cast<double>(persisted));
    if (checkpointed >= 0)
        out += std::string(",\"checkpoint\":") +
               (checkpointed ? "true" : "false");
    return out + "}";
}

std::string
errorResponse(const std::string &message)
{
    return "{\"type\":\"error\",\"error\":" + obs::jsonEscape(message) +
           "}";
}

std::string
okResponse(const std::string &what)
{
    return "{\"type\":\"ok\",\"what\":" + obs::jsonEscape(what) + "}";
}

} // namespace serve
} // namespace felix
