#include "serve/cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace felix {
namespace serve {

size_t
ScheduleCache::warmStart(const std::string &records_path)
{
    size_t loaded = 0;
    for (const tuner::TuneRecord &record :
         tuner::historyBest(tuner::loadRecords(records_path))) {
        if (put(record))
            ++loaded;
    }
    // Warm-started entries are already on disk; don't rewrite them.
    dirty_.clear();
    obs::MetricsRegistry::instance()
        .gauge("serve.cache.size")
        .set(static_cast<double>(entries_.size()));
    return loaded;
}

const CacheEntry *
ScheduleCache::lookup(uint64_t hash) const
{
    auto it = index_.find(hash);
    if (it == index_.end())
        return nullptr;
    return &entries_[it->second];
}

void
ScheduleCache::recordHit(uint64_t hash)
{
    auto it = index_.find(hash);
    if (it != index_.end())
        ++entries_[it->second].hits;
}

bool
ScheduleCache::put(const tuner::TuneRecord &record)
{
    auto it = index_.find(record.taskHash);
    if (it == index_.end()) {
        index_.emplace(record.taskHash, entries_.size());
        CacheEntry entry;
        entry.best = record;
        entries_.push_back(std::move(entry));
        dirty_.push_back(record.taskHash);
        obs::MetricsRegistry::instance()
            .gauge("serve.cache.size")
            .set(static_cast<double>(entries_.size()));
        return true;
    }
    CacheEntry &entry = entries_[it->second];
    if (record.latencySec < entry.best.latencySec) {
        int taskIndex = entry.taskIndex;
        entry.best = record;
        entry.taskIndex = taskIndex;
        if (std::find(dirty_.begin(), dirty_.end(),
                      record.taskHash) == dirty_.end())
            dirty_.push_back(record.taskHash);
        return true;
    }
    return false;
}

void
ScheduleCache::bindTask(uint64_t hash, int task_index)
{
    auto it = index_.find(hash);
    if (it != index_.end())
        entries_[it->second].taskIndex = task_index;
}

size_t
ScheduleCache::persist(const std::string &records_path)
{
    if (records_path.empty() || dirty_.empty()) {
        dirty_.clear();
        return 0;
    }
    std::vector<tuner::TuneRecord> batch;
    batch.reserve(dirty_.size());
    for (uint64_t hash : dirty_) {
        auto it = index_.find(hash);
        if (it != index_.end())
            batch.push_back(entries_[it->second].best);
    }
    tuner::appendRecords(records_path, batch);
    dirty_.clear();
    return batch.size();
}

std::vector<const CacheEntry *>
ScheduleCache::entriesInOrder() const
{
    std::vector<const CacheEntry *> out;
    out.reserve(entries_.size());
    for (const CacheEntry &entry : entries_)
        out.push_back(&entry);
    return out;
}

} // namespace serve
} // namespace felix
