/**
 * @file
 * Schedule cache for the serving daemon: the best known schedule
 * per subgraph, keyed on tir::SubgraphDef::structuralHash — the
 * same canonical key the graph partitioner uses to deduplicate
 * tasks, so two requests containing a structurally identical fused
 * subgraph (a ResNet bottleneck appearing in two different client
 * networks, say) share one cache entry.
 *
 * The on-disk format is exactly the tuning-record log of
 * src/tuner/records.h: warmStart() replays a log through
 * historyBest(), and persist() appends the current per-task bests,
 * so the daemon, `felix-tune --log/--save-records`, and
 * `--replay-records` all speak one format.
 */
#ifndef FELIX_SERVE_CACHE_H_
#define FELIX_SERVE_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tuner/records.h"

namespace felix {
namespace serve {

/** One cached schedule plus its serving bookkeeping. */
struct CacheEntry
{
    tuner::TuneRecord best;   ///< lowest-latency schedule known
    int taskIndex = -1;       ///< GraphTuner task index, -1 = none
    uint64_t hits = 0;        ///< times answered from this entry
};

/** In-memory schedule cache keyed on the subgraph structural hash. */
class ScheduleCache
{
  public:
    /**
     * Replay a tuning-record log into the cache (history-best per
     * hash). Missing file is fine (cold start). Returns the number
     * of entries loaded.
     */
    size_t warmStart(const std::string &records_path);

    /** Entry for @p hash, or nullptr. */
    const CacheEntry *lookup(uint64_t hash) const;

    /** Count a served hit on @p hash. */
    void recordHit(uint64_t hash);

    /**
     * Insert or improve the entry for @p record.taskHash. Keeps the
     * lower-latency schedule. Returns true when the cache changed.
     */
    bool put(const tuner::TuneRecord &record);

    /** Bind a cache entry to its tuner task index. */
    void bindTask(uint64_t hash, int task_index);

    /**
     * Append every entry improved since the last persist() to the
     * log (one atomic write). Returns the number written.
     */
    size_t persist(const std::string &records_path);

    size_t size() const { return entries_.size(); }

    /** All entries in insertion order (deterministic iteration). */
    std::vector<const CacheEntry *> entriesInOrder() const;

  private:
    std::unordered_map<uint64_t, size_t> index_;
    std::vector<CacheEntry> entries_;   ///< insertion-ordered
    std::vector<uint64_t> dirty_;       ///< hashes to persist
};

} // namespace serve
} // namespace felix

#endif // FELIX_SERVE_CACHE_H_
