/**
 * @file
 * Felix public API (paper §3.6, Fig. 5).
 *
 * The C++ analogue of the paper's Python interface:
 *
 *   auto device = felix::Device::cuda("xavier-nx");
 *   auto dnn = felix::models::resnet50();             // or your own
 *   auto graphs = felix::extractSubgraphs(dnn);
 *   auto cost_model = felix::pretrainedCostModel(device);
 *   felix::Optimizer opt(graphs, cost_model, device);
 *   opt.optimizeAll(100, 16, "resnet50.cfg");
 *   auto lib = opt.compileWithBestConfigs();
 *   double latency = lib.run();
 *   lib.save("resnet50_xavier_nx.cfg");
 */
#ifndef FELIX_CORE_FELIX_H_
#define FELIX_CORE_FELIX_H_

#include <optional>
#include <string>
#include <vector>

#include "costmodel/dataset.h"
#include "graph/graph.h"
#include "sim/device.h"
#include "tuner/records.h"
#include "tuner/tuner.h"

namespace felix {

/** A tuning target device. */
struct Device
{
    sim::DeviceKind kind = sim::DeviceKind::A5000;
    std::string name;

    /** Parse a CUDA device by name: "a10g", "a5000", "xavier-nx". */
    static Device cuda(const std::string &device_name);

    const sim::DeviceConfig &config() const;
};

/** Extract the weighted fused-subgraph tuning tasks of a network. */
std::vector<graph::Task> extractSubgraphs(const graph::Graph &dnn);

/** The per-device pretrained cost model (trained+cached on miss). */
costmodel::CostModel pretrainedCostModel(
    const Device &device, const std::string &cache_dir = "pretrained");

/** The schedule chosen for one task, with its measured latency. */
struct TaskConfig
{
    std::string taskLabel;
    int weight = 1;
    int sketchIndex = 0;
    std::vector<double> scheduleVars;
    double latencySec = 0.0;
};

/**
 * A "compiled module": the best schedule per task plus the
 * simulated end-to-end latency. Serializable.
 */
class CompiledModule
{
  public:
    /** Simulated end-to-end inference latency, seconds. */
    double run() const { return latencySec_; }

    const std::vector<TaskConfig> &configs() const { return configs_; }

    void save(const std::string &path) const;
    static std::optional<CompiledModule> load(const std::string &path);

    /**
     * Assemble a module from per-task configs and a precomputed
     * end-to-end latency. Used by the cross-shard merge step, which
     * reconstructs the module from shard manifests instead of a
     * live tuner (src/shard/merge.h).
     */
    static CompiledModule fromConfigs(std::vector<TaskConfig> configs,
                                      double latency_sec);

  private:
    friend class Optimizer;
    friend CompiledModule applyHistoryBest(
        const std::vector<graph::Task> &,
        const std::vector<tuner::TuneRecord> &, const Device &,
        std::vector<std::string> *);
    double latencySec_ = 0.0;
    std::vector<TaskConfig> configs_;
};

/** Optimizer options (forwarding to the graph tuner). */
struct OptimizerOptions
{
    tuner::TunerOptions tuner;
};

/**
 * Rebuild a compiled module from a tuning-record log without
 * re-searching (TVM's "apply history best"): picks the lowest-
 * latency record per task. Tasks with no record fall back to a
 * library-free naive estimate of 0 and are reported missing.
 *
 * @param missing when non-null, receives the labels of tasks that
 *        had no record in the log.
 */
CompiledModule applyHistoryBest(
    const std::vector<graph::Task> &tasks,
    const std::vector<tuner::TuneRecord> &records,
    const Device &device,
    std::vector<std::string> *missing = nullptr);

/**
 * Sets up the search space and objective for every subgraph and
 * drives the round-based tuning (the felix.Optimizer of Fig. 5).
 */
class Optimizer
{
  public:
    Optimizer(std::vector<graph::Task> graphs,
              costmodel::CostModel cost_model, Device device,
              OptimizerOptions options = {});

    /**
     * Run the search for a total number of rounds.
     * @param measure_per_round candidates measured per round
     *        (overrides the strategy default when > 0).
     * @param save_res when non-empty, best configs are written there.
     */
    void optimizeAll(int n_total_rounds, int measure_per_round = 0,
                     const std::string &save_res = "");

    /** Tuning-time-budgeted variant (virtual seconds). */
    void optimizeFor(double budget_sec);

    /** Best configuration found so far, as a runnable artifact. */
    CompiledModule compileWithBestConfigs() const;

    const tuner::GraphTuner &tuner() const { return *tuner_; }

  private:
    Device device_;
    std::unique_ptr<tuner::GraphTuner> tuner_;
};

} // namespace felix

#endif // FELIX_CORE_FELIX_H_
