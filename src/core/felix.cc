#include "core/felix.h"

#include <fstream>

#include "obs/trace.h"
#include "support/logging.h"

namespace felix {

Device
Device::cuda(const std::string &device_name)
{
    Device device;
    device.kind = sim::parseDevice(device_name);
    device.name = device_name;
    return device;
}

const sim::DeviceConfig &
Device::config() const
{
    return sim::deviceConfig(kind);
}

std::vector<graph::Task>
extractSubgraphs(const graph::Graph &dnn)
{
    return graph::partition(dnn);
}

costmodel::CostModel
pretrainedCostModel(const Device &device, const std::string &cache_dir)
{
    return costmodel::pretrainedCostModel(device.kind, cache_dir);
}

void
CompiledModule::save(const std::string &path) const
{
    std::ofstream os(path);
    FELIX_CHECK(os.good(), "cannot write module to " + path);
    os.precision(17);
    os << "felix-module v1\n";
    os << latencySec_ << " " << configs_.size() << "\n";
    for (const TaskConfig &config : configs_) {
        os << config.weight << " " << config.sketchIndex << " "
           << config.latencySec << " " << config.scheduleVars.size();
        for (double v : config.scheduleVars)
            os << " " << v;
        os << " " << config.taskLabel << "\n";
    }
}

std::optional<CompiledModule>
CompiledModule::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is.good())
        return std::nullopt;
    std::string word1, word2;
    is >> word1 >> word2;
    if (word1 != "felix-module" || word2 != "v1")
        return std::nullopt;
    CompiledModule module;
    size_t numConfigs = 0;
    is >> module.latencySec_ >> numConfigs;
    for (size_t i = 0; i < numConfigs && is; ++i) {
        TaskConfig config;
        size_t numVars = 0;
        is >> config.weight >> config.sketchIndex >>
            config.latencySec >> numVars;
        config.scheduleVars.resize(numVars);
        for (double &v : config.scheduleVars)
            is >> v;
        is >> config.taskLabel;
        module.configs_.push_back(std::move(config));
    }
    if (!is)
        return std::nullopt;
    return module;
}

CompiledModule
CompiledModule::fromConfigs(std::vector<TaskConfig> configs,
                            double latency_sec)
{
    CompiledModule module;
    module.latencySec_ = latency_sec;
    module.configs_ = std::move(configs);
    return module;
}

CompiledModule
applyHistoryBest(const std::vector<graph::Task> &tasks,
                 const std::vector<tuner::TuneRecord> &records,
                 const Device &device,
                 std::vector<std::string> *missing)
{
    auto best = tuner::historyBest(records);
    CompiledModule module;
    double total = 15e-6;   // compiled-graph runtime overhead
    for (const graph::Task &task : tasks) {
        const tuner::TuneRecord *hit = nullptr;
        uint64_t hash = task.subgraph.structuralHash();
        for (const tuner::TuneRecord &record : best) {
            if (record.taskHash == hash) {
                hit = &record;
                break;
            }
        }
        TaskConfig config;
        config.taskLabel = task.exampleLabel;
        config.weight = task.weight;
        if (hit) {
            config.sketchIndex = hit->sketchIndex;
            config.scheduleVars = hit->scheduleVars;
            config.latencySec = hit->latencySec;
            total += task.weight * hit->latencySec;
        } else if (missing) {
            missing->push_back(task.exampleLabel);
        }
        module.configs_.push_back(std::move(config));
    }
    (void)device;   // latencies are replayed from the log
    module.latencySec_ = total;
    return module;
}

Optimizer::Optimizer(std::vector<graph::Task> graphs,
                     costmodel::CostModel cost_model, Device device,
                     OptimizerOptions options)
    : device_(device)
{
    FELIX_SPAN("optimizer.setup", "core");
    tuner_ = std::make_unique<tuner::GraphTuner>(
        std::move(graphs), std::move(cost_model), device.kind,
        options.tuner);
}

void
Optimizer::optimizeAll(int n_total_rounds, int measure_per_round,
                       const std::string &save_res)
{
    (void)measure_per_round;   // strategy options carry the default
    FELIX_SPAN("optimizer.optimize_all", "core");
    tuner_->tuneRounds(n_total_rounds);
    if (!save_res.empty())
        compileWithBestConfigs().save(save_res);
}

void
Optimizer::optimizeFor(double budget_sec)
{
    FELIX_SPAN("optimizer.optimize_for", "core");
    tuner_->tuneUntil(budget_sec);
}

CompiledModule
Optimizer::compileWithBestConfigs() const
{
    CompiledModule module;
    module.latencySec_ = tuner_->networkLatency();
    for (const tuner::TaskRecord &record : tuner_->taskRecords()) {
        TaskConfig config;
        config.taskLabel = record.task.exampleLabel;
        config.weight = record.task.weight;
        config.sketchIndex = record.bestCandidate.sketchIndex;
        config.scheduleVars = record.bestCandidate.x;
        config.latencySec = record.bestLatencySec;
        module.configs_.push_back(std::move(config));
    }
    return module;
}

} // namespace felix
