/**
 * @file
 * The copy-and-patch tape JIT: a small fixed-shape AVX2 emitter.
 *
 * Layout contract (identical to the interpreter kernels): slot rows
 * of kBatchLanes doubles, so slot s lives at byte offset s * 128
 * inside the vals/adjs buffers; each row is processed as four
 * 256-bit chunks.
 *
 * Emitted forward function, SysV x86-64:
 *     void fwd(double *vals)            // rdi
 * rbx keeps vals (callee-saved, survives stencil calls). Per
 * instruction either an inline body (the exact instruction sequence
 * of the opk::fwd*V kernels — see the per-op emitters below) or a
 * call to a libm-backed stencil. ymm12..15 mirror the previous
 * instruction's result row across chunks, so consecutive
 * instructions in the tape's dependent chain forward through
 * registers instead of a store-to-load round trip — the same trick
 * the C == 1 interpreter plays (kernels_impl.h), here applied at all
 * four chunks because straight-line code has no per-instruction
 * dispatch to pay for the extra live registers. The mirror is
 * invalidated across stencil calls (all ymm are caller-saved).
 * Register copies never change bits, so forwarding is invisible to
 * the parity tests.
 *
 * Emitted backward function:
 *     void bwd(const double *vals, double *adjs)   // rdi, rsi
 * rbx=vals, rbp=adjs. Zero-derivative ops (compares, floor) emit
 * nothing; Add/Sub/Neg — whose adjoint contributions are adj itself
 * and need no masking (op_kernels.h) — are inlined; every other op
 * calls its backward stencil, which runs the interpreter's exact
 * per-instruction body including the all-zero chunk skip. Inline ops
 * process every chunk unconditionally: a chunk whose adjoints are
 * all +0.0 contributes exact +0.0 (or -0.0 via Sub/Neg) to
 * accumulator rows that can never hold -0.0, a bitwise no-op, so
 * skip granularity cannot change results (the same argument that
 * lets backends skip at different chunk widths).
 *
 * Both functions end in vzeroupper: callers are compiled without
 * AVX, and returning with dirty upper halves would stall their SSE
 * code. The stencils themselves are AVX-compiled (no transition),
 * and the compiler inserts vzeroupper around their libm calls.
 */
#include "jit/jit.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define FELIX_JIT_HAVE_MMAP 1
#endif

#include "jit/stencils.h"
#include "obs/metrics.h"
#include "support/batch.h"
#include "support/logging.h"

namespace felix {
namespace jit {

namespace {

std::atomic<int> g_enabled{-1}; // -1 unresolved, 0 off, 1 on
std::mutex g_mutex;

void
publishEnabled(bool on)
{
    obs::MetricsRegistry::instance().gauge("jit.enabled").set(
        on ? 1.0 : 0.0);
}

} // namespace

bool
supported()
{
#if defined(FELIX_JIT_X86_AVX2) && defined(__x86_64__)
    static const bool ok = __builtin_cpu_supports("avx2") != 0;
    return ok;
#else
    return false;
#endif
}

bool
enabled()
{
    int state = g_enabled.load(std::memory_order_acquire);
    if (state < 0) {
        std::lock_guard<std::mutex> lock(g_mutex);
        state = g_enabled.load(std::memory_order_relaxed);
        if (state < 0) {
            bool on = true;
            if (const char *env = std::getenv("FELIX_JIT")) {
                const std::string value(env);
                on = !(value == "off" || value == "0");
            }
            state = on ? 1 : 0;
            publishEnabled(on);
            if (supported()) {
                inform("jit: tape JIT ",
                       on ? "enabled" : "disabled by FELIX_JIT",
                       " (avx2 stencils)");
            }
            g_enabled.store(state, std::memory_order_release);
        }
    }
    return state == 1;
}

void
setEnabled(bool on)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_enabled.store(on ? 1 : 0, std::memory_order_release);
    publishEnabled(on);
}

#ifdef FELIX_JIT_X86_AVX2

namespace {

/** Broadcast constants the inline op bodies load via [rax + k*8]. */
alignas(64) const double kConsts[] = {
    -0.0,  // 0: sign mask (neg, abs)
    1.0,   // 1: compares, sigmoid
    0.5,   // 2: sigmoid
    1e18,  // 3: totalized division
    -1e18, // 4: totalized division
};

constexpr int kRowBytes =
    static_cast<int>(kBatchLanes) * static_cast<int>(sizeof(double));
constexpr int kChunks = static_cast<int>(kBatchLanes) / 4;

/** Minimal x86-64 assembler: only the encodings the two emitters
 *  need. All vector ops are VEX.256.66; ymm operands 0..15. */
class Asm
{
  public:
    explicit Asm(std::vector<uint8_t> &code) : c_(code) {}

    // --- raw bytes -------------------------------------------------
    void u8(uint8_t b) { c_.push_back(b); }
    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    // VEX.vvvv holds the bit-INVERTED src1 register; instructions
    // that don't take one require the encoded field to be 1111b,
    // i.e. logical register 0 through the inverting encoder.
    static constexpr int kNoVvvv = 0;

    // --- VEX-encoded ymm ops --------------------------------------
    // dst = s1 <op> s2 for the classic 0F arithmetic group.
    void
    arith(uint8_t opcode, int dst, int s1, int s2)
    {
        vex(dst, s2, s1, 1);
        u8(opcode);
        modRR(dst, s2);
    }
    void
    vmovupdLoad(int dst, int base, int32_t disp)
    {
        vex(dst, base, kNoVvvv, 1);
        u8(0x10);
        modMem(dst, base, disp);
    }
    void
    vmovupdStore(int base, int32_t disp, int src)
    {
        vex(src, base, kNoVvvv, 1);
        u8(0x11);
        modMem(src, base, disp);
    }
    void
    vmovapd(int dst, int src)
    {
        vex(dst, src, kNoVvvv, 1);
        u8(0x28);
        modRR(dst, src);
    }
    void
    vsqrtpd(int dst, int src)
    {
        vex(dst, src, kNoVvvv, 1);
        u8(0x51);
        modRR(dst, src);
    }
    void
    vcmppd(int dst, int s1, int s2, uint8_t pred)
    {
        arith(0xC2, dst, s1, s2);
        u8(pred);
    }
    /** dst = lanes of `floor` (vroundpd imm 0x09: toward -inf, no
     *  exceptions — the encoding _mm256_floor_pd resolves to). */
    void
    vfloor(int dst, int src)
    {
        vex(dst, src, kNoVvvv, 3);
        u8(0x09);
        modRR(dst, src);
        u8(0x09);
    }
    /** dst = mask-sign-selected blend: blendv(e, t, mask) — exactly
     *  _mm256_blendv_pd's operand order from simd.h select(). */
    void
    vblendvpd(int dst, int e, int t, int mask)
    {
        vex(dst, t, e, 3);
        u8(0x4B);
        modRR(dst, t);
        u8(static_cast<uint8_t>(mask << 4));
    }
    void
    vbroadcastsd(int dst, int base, int32_t disp)
    {
        vex(dst, base, kNoVvvv, 2);
        u8(0x19);
        modMem(dst, base, disp);
    }
    void vxorSelf(int dst) { arith(0x57, dst, dst, dst); }
    void
    vzeroupper()
    {
        u8(0xC5);
        u8(0xF8);
        u8(0x77);
    }

    // --- GPR ops ---------------------------------------------------
    void pushRbx() { u8(0x53); }
    void pushRbp() { u8(0x55); }
    void popRbx() { u8(0x5B); }
    void popRbp() { u8(0x5D); }
    void
    subRsp8()
    {
        u8(0x48);
        u8(0x83);
        u8(0xEC);
        u8(0x08);
    }
    void
    addRsp8()
    {
        u8(0x48);
        u8(0x83);
        u8(0xC4);
        u8(0x08);
    }
    void
    movRR64(int dst, int src) // both in rax..rdi
    {
        u8(0x48);
        u8(0x89);
        u8(static_cast<uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
    }
    void
    movRsiRbp() // r12-free variant kept simple: rbp holds adjs
    {
        movRR64(6, 5);
    }
    void
    movRaxImm64(uint64_t v)
    {
        u8(0x48);
        u8(0xB8);
        u64(v);
    }
    void
    callRax()
    {
        u8(0xFF);
        u8(0xD0);
    }
    void ret() { u8(0xC3); }
    /** lea gpr, [rbx + disp32]; gpr one of rdx/rsi/rdi. */
    void
    leaRbx(int gpr, int32_t disp)
    {
        u8(0x48);
        u8(0x8D);
        u8(static_cast<uint8_t>(0x80 | ((gpr & 7) << 3) | 3));
        u32(static_cast<uint32_t>(disp));
    }
    /** mov r32, imm32; gpr index may be >= 8 (r8d/r9d). */
    void
    movImm32(int gpr, uint32_t v)
    {
        if (gpr >= 8)
            u8(0x41);
        u8(static_cast<uint8_t>(0xB8 + (gpr & 7)));
        u32(v);
    }

  private:
    void
    vex(int reg, int rm, int vvvv, int mmmmm, int l = 1, int pp = 1)
    {
        u8(0xC4);
        u8(static_cast<uint8_t>(((~(reg >> 3) & 1) << 7) | (1 << 6) |
                                ((~(rm >> 3) & 1) << 5) | mmmmm));
        u8(static_cast<uint8_t>(((~vvvv & 0xF) << 3) | (l << 2) |
                                pp));
    }
    void
    modRR(int reg, int rm)
    {
        u8(static_cast<uint8_t>(0xC0 | ((reg & 7) << 3) | (rm & 7)));
    }
    /** [base + disp32]; bases used are rax(0)/rbx(3)/rbp(5) — none
     *  needs a SIB byte at mod=10. */
    void
    modMem(int reg, int base, int32_t disp)
    {
        u8(static_cast<uint8_t>(0x80 | ((reg & 7) << 3) |
                                (base & 7)));
        u32(static_cast<uint32_t>(disp));
    }

    std::vector<uint8_t> &c_;
};

// GPR indices used below.
constexpr int kRax = 0, kRcx = 1, kRdx = 2, kRbx = 3, kRbp = 5,
              kRsi = 6, kRdi = 7, kR8 = 8, kR9 = 9;

using FwdStencilFn = void (*)(const double *, const double *,
                              double *);
using BwdStencilFn = void (*)(const double *, double *, uint32_t,
                              uint32_t, int32_t, int32_t);

FwdStencilFn
fwdStencilFor(expr::OpCode op)
{
    switch (op) {
      case expr::OpCode::Pow: return &felix_jit_fwd_pow;
      case expr::OpCode::Log: return &felix_jit_fwd_log;
      case expr::OpCode::Exp: return &felix_jit_fwd_exp;
      case expr::OpCode::Atan: return &felix_jit_fwd_atan;
      default: return nullptr;
    }
}

BwdStencilFn
bwdStencilFor(expr::OpCode op)
{
    switch (op) {
      case expr::OpCode::Mul: return &felix_jit_bwd_mul;
      case expr::OpCode::Div: return &felix_jit_bwd_div;
      case expr::OpCode::Pow: return &felix_jit_bwd_pow;
      case expr::OpCode::Min: return &felix_jit_bwd_min;
      case expr::OpCode::Max: return &felix_jit_bwd_max;
      case expr::OpCode::Log: return &felix_jit_bwd_log;
      case expr::OpCode::Exp: return &felix_jit_bwd_exp;
      case expr::OpCode::Sqrt: return &felix_jit_bwd_sqrt;
      case expr::OpCode::Abs: return &felix_jit_bwd_abs;
      case expr::OpCode::Atan: return &felix_jit_bwd_atan;
      case expr::OpCode::Sigmoid: return &felix_jit_bwd_sigmoid;
      case expr::OpCode::Select: return &felix_jit_bwd_select;
      default: return nullptr;
    }
}

bool
zeroDerivative(expr::OpCode op)
{
    switch (op) {
      case expr::OpCode::Lt:
      case expr::OpCode::Le:
      case expr::OpCode::Gt:
      case expr::OpCode::Ge:
      case expr::OpCode::Eq:
      case expr::OpCode::Ne:
      case expr::OpCode::Floor:
        return true;
      default:
        return false;
    }
}

/** vcmppd predicates matching simd.h's _CMP_* choices. */
uint8_t
cmpPredicate(expr::OpCode op)
{
    switch (op) {
      case expr::OpCode::Lt: return 0x11; // LT_OQ
      case expr::OpCode::Le: return 0x12; // LE_OQ
      case expr::OpCode::Gt: return 0x1E; // GT_OQ
      case expr::OpCode::Ge: return 0x1D; // GE_OQ
      case expr::OpCode::Eq: return 0x00; // EQ_OQ
      default: return 0x04;               // NEQ_UQ (Ne)
    }
}

/** Forward emitter. Register plan per instruction: operands copied
 *  into ymm0/1/2, hoisted broadcast constants in ymm3..5, scratch
 *  ymm8..11, result written to ymm12+chunk (the forwarding mirror)
 *  and stored to the destination row. */
void
emitForward(Asm &a, const expr::TapeProgram &program)
{
    a.pushRbx(); // also realigns rsp for the stencil calls
    a.movRR64(kRbx, kRdi);

    bool lastValid = false;
    size_t slot = program.firstOpSlot();
    const uint64_t consts = reinterpret_cast<uint64_t>(&kConsts[0]);

    for (const expr::TapeInstr &instr : program.instrs) {
        const int prev = static_cast<int>(slot) - 1;
        const int32_t dispOut =
            static_cast<int32_t>(slot) * kRowBytes;
        const auto load = [&](int dst, int32_t src, int ch) {
            if (lastValid && src == prev)
                a.vmovapd(dst, 12 + ch);
            else
                a.vmovupdLoad(dst, kRbx, src * kRowBytes + ch * 32);
        };

        if (FwdStencilFn fn = fwdStencilFor(instr.op)) {
            a.leaRbx(kRdi, instr.a0 * kRowBytes);
            a.leaRbx(kRsi, (instr.a1 >= 0 ? instr.a1 : instr.a0) *
                               kRowBytes);
            a.leaRbx(kRdx, dispOut);
            a.movRaxImm64(reinterpret_cast<uint64_t>(fn));
            a.callRax();
            lastValid = false;
            ++slot;
            continue;
        }

        // Hoisted per-instruction constants (loop-invariant across
        // the four chunks).
        switch (instr.op) {
          case expr::OpCode::Neg:
          case expr::OpCode::Abs:
            a.movRaxImm64(consts);
            a.vbroadcastsd(3, kRax, 0 * 8); // -0.0
            break;
          case expr::OpCode::Sqrt:
          case expr::OpCode::Select:
            a.vxorSelf(3); // +0.0
            break;
          case expr::OpCode::Sigmoid:
            a.movRaxImm64(consts);
            a.vbroadcastsd(3, kRax, 1 * 8); // 1.0
            a.vbroadcastsd(4, kRax, 2 * 8); // 0.5
            break;
          case expr::OpCode::Div:
            a.vxorSelf(3);
            a.movRaxImm64(consts);
            a.vbroadcastsd(4, kRax, 3 * 8); // 1e18
            a.vbroadcastsd(5, kRax, 4 * 8); // -1e18
            break;
          case expr::OpCode::Lt:
          case expr::OpCode::Le:
          case expr::OpCode::Gt:
          case expr::OpCode::Ge:
          case expr::OpCode::Eq:
          case expr::OpCode::Ne:
            a.vxorSelf(3);
            a.movRaxImm64(consts);
            a.vbroadcastsd(4, kRax, 1 * 8); // 1.0
            break;
          default:
            break;
        }

        for (int ch = 0; ch < kChunks; ++ch) {
            const int R = 12 + ch;
            load(0, instr.a0, ch);
            switch (instr.op) {
              case expr::OpCode::Add:
                load(1, instr.a1, ch);
                a.arith(0x58, R, 0, 1);
                break;
              case expr::OpCode::Sub:
                load(1, instr.a1, ch);
                a.arith(0x5C, R, 0, 1);
                break;
              case expr::OpCode::Mul:
                load(1, instr.a1, ch);
                a.arith(0x59, R, 0, 1);
                break;
              case expr::OpCode::Min:
                // vmin(a,b) = minpd(b, a): the operand swap that
                // pins std::min semantics (simd.h).
                load(1, instr.a1, ch);
                a.arith(0x5D, R, 1, 0);
                break;
              case expr::OpCode::Max:
                load(1, instr.a1, ch);
                a.arith(0x5F, R, 1, 0);
                break;
              case expr::OpCode::Neg:
                a.arith(0x57, R, 0, 3); // a xor -0.0
                break;
              case expr::OpCode::Abs:
                a.arith(0x55, R, 3, 0); // andnot(-0.0, a)
                break;
              case expr::OpCode::Sqrt:
                a.arith(0x5F, 8, 3, 0); // vmax(a,0) = maxpd(0, a)
                a.vsqrtpd(R, 8);
                break;
              case expr::OpCode::Floor:
                a.vfloor(R, 0);
                break;
              case expr::OpCode::Sigmoid:
                // fwdSigmoidV: 0.5 * (1 + a / sqrt(1 + a*a)),
                // operand order preserved exactly.
                a.arith(0x59, 8, 0, 0); // t = a * a
                a.arith(0x58, 8, 3, 8); // 1 + t
                a.vsqrtpd(8, 8);
                a.arith(0x5E, 8, 0, 8); // a / sqrt
                a.arith(0x58, 8, 3, 8); // 1 + d
                a.arith(0x59, R, 4, 8); // 0.5 * e
                break;
              case expr::OpCode::Div:
                // Branchless fwdDivV: bit-identical to the
                // interpreter's any-lane fast path because an
                // all-false blendv returns the a/b lanes' exact
                // bits and the speculative `special` value is
                // discarded bitwise (FP exceptions are masked).
                load(1, instr.a1, ch);
                a.vcmppd(8, 1, 3, 0x00);  // bZero = ceq(b, 0)
                a.arith(0x5E, 9, 0, 1);   // q = a / b
                a.vcmppd(10, 0, 3, 0x1D); // cge(a, 0)
                a.vblendvpd(11, 5, 4, 10); // ±1e18
                a.arith(0x59, 11, 0, 11); // special = a * (±1e18)
                a.vblendvpd(R, 9, 11, 8); // bZero ? special : q
                break;
              case expr::OpCode::Lt:
              case expr::OpCode::Le:
              case expr::OpCode::Gt:
              case expr::OpCode::Ge:
              case expr::OpCode::Eq:
              case expr::OpCode::Ne:
                load(1, instr.a1, ch);
                a.vcmppd(8, 0, 1, cmpPredicate(instr.op));
                a.vblendvpd(R, 3, 4, 8); // mask ? 1.0 : 0.0
                break;
              case expr::OpCode::Select:
                load(1, instr.a1, ch);
                load(2, instr.a2, ch);
                a.vcmppd(8, 0, 3, 0x04); // cne(c, 0), NEQ_UQ
                a.vblendvpd(R, 2, 1, 8); // mask ? t : e
                break;
              default:
                panic("jit: unexpected opcode in forward emitter");
            }
            a.vmovupdStore(kRbx, dispOut + ch * 32, R);
        }
        lastValid = true;
        ++slot;
    }

    a.vzeroupper();
    a.popRbx();
    a.ret();
}

/** Backward emitter: reverse instruction order; inline Add/Sub/Neg
 *  accumulates, stencil calls for everything else. */
void
emitBackward(Asm &a, const expr::TapeProgram &program)
{
    a.pushRbx();
    a.pushRbp();
    a.subRsp8(); // realign rsp to 16 for the stencil calls
    a.movRR64(kRbx, kRdi); // vals
    a.movRR64(kRbp, kRsi); // adjs

    const uint64_t consts = reinterpret_cast<uint64_t>(&kConsts[0]);
    // accum(row, contribReg): (load(row) + contrib).store(row) —
    // load is the left addend, exactly opk::backpropOpV's accum.
    const auto accum = [&](int32_t slotIdx, int ch, int contrib) {
        const int32_t disp = slotIdx * kRowBytes + ch * 32;
        a.vmovupdLoad(1, kRbp, disp);
        a.arith(0x58, 1, 1, contrib);
        a.vmovupdStore(kRbp, disp, 1);
    };

    for (size_t i = program.instrs.size(); i-- > 0;) {
        const expr::TapeInstr &instr = program.instrs[i];
        if (zeroDerivative(instr.op))
            continue;
        const int32_t slot =
            static_cast<int32_t>(program.firstOpSlot() + i);

        switch (instr.op) {
          case expr::OpCode::Add:
            for (int ch = 0; ch < kChunks; ++ch) {
                a.vmovupdLoad(0, kRbp, slot * kRowBytes + ch * 32);
                accum(instr.a0, ch, 0);
                accum(instr.a1, ch, 0);
            }
            break;
          case expr::OpCode::Sub:
            a.movRaxImm64(consts);
            a.vbroadcastsd(3, kRax, 0 * 8); // -0.0
            for (int ch = 0; ch < kChunks; ++ch) {
                a.vmovupdLoad(0, kRbp, slot * kRowBytes + ch * 32);
                accum(instr.a0, ch, 0);
                a.arith(0x57, 2, 0, 3); // vneg(adj)
                accum(instr.a1, ch, 2);
            }
            break;
          case expr::OpCode::Neg:
            a.movRaxImm64(consts);
            a.vbroadcastsd(3, kRax, 0 * 8);
            for (int ch = 0; ch < kChunks; ++ch) {
                a.vmovupdLoad(0, kRbp, slot * kRowBytes + ch * 32);
                a.arith(0x57, 2, 0, 3);
                accum(instr.a0, ch, 2);
            }
            break;
          default: {
            BwdStencilFn fn = bwdStencilFor(instr.op);
            if (fn == nullptr)
                panic("jit: unexpected opcode in backward emitter");
            a.movRR64(kRdi, kRbx);
            a.movRsiRbp();
            a.movImm32(kRdx, static_cast<uint32_t>(slot));
            a.movImm32(kRcx, static_cast<uint32_t>(instr.a0));
            a.movImm32(kR8, static_cast<uint32_t>(instr.a1));
            a.movImm32(kR9, static_cast<uint32_t>(instr.a2));
            a.movRaxImm64(reinterpret_cast<uint64_t>(fn));
            a.callRax();
            break;
          }
        }
    }

    a.addRsp8();
    a.popRbp();
    a.popRbx();
    a.vzeroupper();
    a.ret();
}

} // namespace

#endif // FELIX_JIT_X86_AVX2

std::unique_ptr<JitTape>
JitTape::compile(const expr::TapeProgram &program)
{
#ifndef FELIX_JIT_X86_AVX2
    (void)program;
    return nullptr;
#else
    if (!supported() || program.instrs.empty())
        return nullptr;
#ifndef FELIX_JIT_HAVE_MMAP
    return nullptr;
#else
    std::vector<uint8_t> code;
    {
        Asm a(code);
        emitForward(a, program);
    }
    size_t bwdOffset = 0;
    if (!program.forwardOnly) {
        while (code.size() % 16 != 0)
            code.push_back(0xCC); // int3 padding between functions
        bwdOffset = code.size();
        Asm a(code);
        emitBackward(a, program);
    }

    // W^X lifecycle: map writable, copy, then flip to read+execute
    // for the tape's lifetime — the pages are never W and X at once.
    const long page = sysconf(_SC_PAGESIZE);
    const size_t pageSize = page > 0 ? static_cast<size_t>(page)
                                     : static_cast<size_t>(4096);
    const size_t mapSize =
        (code.size() + pageSize - 1) / pageSize * pageSize;
    void *mem = mmap(nullptr, mapSize, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
        warn("jit: mmap of ", mapSize,
             " bytes failed; falling back to the interpreter");
        return nullptr;
    }
    std::memcpy(mem, code.data(), code.size());
    if (mprotect(mem, mapSize, PROT_READ | PROT_EXEC) != 0) {
        warn("jit: mprotect(R|X) failed; falling back to the "
             "interpreter");
        munmap(mem, mapSize);
        return nullptr;
    }

    std::unique_ptr<JitTape> tape(new JitTape);
    tape->mem_ = mem;
    tape->mapSize_ = mapSize;
    tape->codeSize_ = code.size();
    tape->fwd_ = reinterpret_cast<FwdFn>(mem);
    if (!program.forwardOnly) {
        tape->bwd_ = reinterpret_cast<BwdFn>(
            static_cast<uint8_t *>(mem) + bwdOffset);
    }

    auto &registry = obs::MetricsRegistry::instance();
    registry.counter("jit.tapes_compiled").add(1.0);
    registry.counter("jit.code_bytes")
        .add(static_cast<double>(code.size()));
    return tape;
#endif // FELIX_JIT_HAVE_MMAP
#endif // FELIX_JIT_X86_AVX2
}

JitTape::~JitTape()
{
#if defined(FELIX_JIT_X86_AVX2) && defined(FELIX_JIT_HAVE_MMAP)
    if (mem_ != nullptr)
        munmap(mem_, mapSize_);
#endif
}

} // namespace jit
} // namespace felix
