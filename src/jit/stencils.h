/**
 * @file
 * Pre-compiled stencil bodies the tape JIT copy-and-patches calls to.
 *
 * The JIT (jit.h) emits the optimized tape as straight-line native
 * code. Cheap elementwise ops are emitted inline as the exact vector
 * instruction sequences of expr/op_kernels.h; everything that needs
 * libm (pow/log/exp/atan forward) or the data-dependent adjoint
 * logic (most backward ops) instead becomes a call to one of these
 * stencils — ordinary extern "C" functions compiled once from the
 * very same opk:: kernel templates the interpreter runs, in a
 * translation unit with the same flags as the AVX2 interpreter
 * backend. Bit-exactness therefore holds by construction: a stencil
 * *is* the interpreter body for one instruction.
 *
 * Stencils operate on one full kBatchLanes-wide SoA row per operand.
 * Only compiled on x86-64 when the compiler supports -mavx2 (the
 * FELIX_JIT_X86_AVX2 define); jit::supported() reports false
 * otherwise and the emitter is never reached.
 */
#ifndef FELIX_JIT_STENCILS_H_
#define FELIX_JIT_STENCILS_H_

#include <cstdint>

extern "C" {

/**
 * Forward stencils: out[l] = op(a[l], b[l]) over all kBatchLanes
 * lanes. Unary ops ignore @p b (the emitter passes @p a again).
 */
void felix_jit_fwd_pow(const double *a, const double *b, double *out);
void felix_jit_fwd_log(const double *a, const double *b, double *out);
void felix_jit_fwd_exp(const double *a, const double *b, double *out);
void felix_jit_fwd_atan(const double *a, const double *b, double *out);

/**
 * Backward stencils: one instruction's adjoint update, exactly the
 * per-instruction body of the interpreter's reverse sweep
 * (simd/kernels_impl.h tapeBackwardT): chunked all-zero skip, then
 * opk::backpropOpV per live chunk. @p vals / @p adjs are the full
 * SoA slot buffers; @p slot is the instruction's destination slot;
 * @p a0/@p a1/@p a2 are its operand slots (-1 = absent).
 */
#define FELIX_JIT_DECLARE_BWD(name)                                    \
    void felix_jit_bwd_##name(const double *vals, double *adjs,        \
                              uint32_t slot, uint32_t a0, int32_t a1,  \
                              int32_t a2)
FELIX_JIT_DECLARE_BWD(mul);
FELIX_JIT_DECLARE_BWD(div);
FELIX_JIT_DECLARE_BWD(pow);
FELIX_JIT_DECLARE_BWD(min);
FELIX_JIT_DECLARE_BWD(max);
FELIX_JIT_DECLARE_BWD(log);
FELIX_JIT_DECLARE_BWD(exp);
FELIX_JIT_DECLARE_BWD(sqrt);
FELIX_JIT_DECLARE_BWD(abs);
FELIX_JIT_DECLARE_BWD(atan);
FELIX_JIT_DECLARE_BWD(sigmoid);
FELIX_JIT_DECLARE_BWD(select);
#undef FELIX_JIT_DECLARE_BWD

} // extern "C"

#endif // FELIX_JIT_STENCILS_H_
