/**
 * @file
 * AVX2 stencil bodies for the tape JIT, instantiated from the SAME
 * opk:: kernel templates as the interpreter backends (compiled with
 * -mavx2, like simd/kernels_avx2.cc, so FELIX_SIMD_ARCH_NS resolves
 * to arch_avx2 and the instantiations are ODR-identical).
 *
 * Bit-exactness across backends needs no per-backend stencils: every
 * tape op is elementwise per lane and every lane executes the
 * identical scalar FP sequence at any vector width (support/simd.h
 * contract), so one AVX2-encoded body is bit-identical to the
 * scalar, SSE2 and AVX-512 interpreters alike. The backward chunk
 * skip runs at AVX2 granularity (4 lanes) where other backends skip
 * at theirs — also bit-irrelevant: a skipped chunk's adjoints are
 * all +0.0 and processing such a chunk through backpropOpV is a
 * bitwise no-op (accumulator rows never hold -0.0; see the kernel's
 * comment).
 */
#include "jit/stencils.h"

#include "expr/op_kernels.h"
#include "support/batch.h"
#include "support/simd.h"

#ifndef FELIX_JIT_X86_AVX2
#error "stencils_avx2.cc must be compiled with FELIX_JIT_X86_AVX2"
#endif

namespace {

using Vec = felix::simd::FELIX_SIMD_ARCH_NS::Vec;
static_assert(Vec::kWidth == 4,
              "JIT stencils must compile against the AVX2 backend");

constexpr std::size_t kL = felix::kBatchLanes;
namespace opk = felix::expr::opk;

/** The interpreter's per-instruction reverse-sweep body
 *  (simd/kernels_impl.h tapeBackwardT, loop body for one i). */
template <felix::expr::OpCode Op>
inline void
bwdStencil(const double *vals, double *adjs, uint32_t slot,
           uint32_t a0, int32_t a1, int32_t a2)
{
    const Vec zero = Vec::broadcast(0.0);
    const double *adjRow = adjs + static_cast<std::size_t>(slot) * kL;
    const double *valRow = vals + static_cast<std::size_t>(slot) * kL;
    const double *a0Row = vals + static_cast<std::size_t>(a0) * kL;
    double *adj0Row = adjs + static_cast<std::size_t>(a0) * kL;
    const double *a1Row =
        a1 >= 0 ? vals + static_cast<std::size_t>(a1) * kL : nullptr;
    double *adj1Row =
        a1 >= 0 ? adjs + static_cast<std::size_t>(a1) * kL : nullptr;
    double *adj2Row =
        a2 >= 0 ? adjs + static_cast<std::size_t>(a2) * kL : nullptr;
    for (std::size_t l = 0; l < kL; l += Vec::kWidth) {
        const Vec adj = Vec::load(adjRow + l);
        if (!anyLane(cne(adj, zero)))
            continue;
        opk::backpropOpV<Vec>(
            Op, adj, Vec::load(valRow + l), Vec::load(a0Row + l),
            a1Row ? Vec::load(a1Row + l) : zero, adj0Row + l,
            adj1Row ? adj1Row + l : nullptr,
            adj2Row ? adj2Row + l : nullptr);
    }
}

} // namespace

extern "C" {

void
felix_jit_fwd_pow(const double *a, const double *b, double *out)
{
    for (std::size_t l = 0; l < kL; l += Vec::kWidth)
        opk::fwdPowV<Vec>(Vec::load(a + l), Vec::load(b + l))
            .store(out + l);
}

void
felix_jit_fwd_log(const double *a, const double *b, double *out)
{
    (void)b;
    for (std::size_t l = 0; l < kL; l += Vec::kWidth)
        opk::fwdLogV<Vec>(Vec::load(a + l)).store(out + l);
}

void
felix_jit_fwd_exp(const double *a, const double *b, double *out)
{
    (void)b;
    for (std::size_t l = 0; l < kL; l += Vec::kWidth)
        opk::fwdExpV<Vec>(Vec::load(a + l)).store(out + l);
}

void
felix_jit_fwd_atan(const double *a, const double *b, double *out)
{
    (void)b;
    for (std::size_t l = 0; l < kL; l += Vec::kWidth)
        opk::fwdAtanV<Vec>(Vec::load(a + l)).store(out + l);
}

#define FELIX_JIT_DEFINE_BWD(name, Op)                                 \
    void felix_jit_bwd_##name(const double *vals, double *adjs,        \
                              uint32_t slot, uint32_t a0, int32_t a1,  \
                              int32_t a2)                              \
    {                                                                  \
        bwdStencil<felix::expr::OpCode::Op>(vals, adjs, slot, a0, a1,  \
                                            a2);                       \
    }
FELIX_JIT_DEFINE_BWD(mul, Mul)
FELIX_JIT_DEFINE_BWD(div, Div)
FELIX_JIT_DEFINE_BWD(pow, Pow)
FELIX_JIT_DEFINE_BWD(min, Min)
FELIX_JIT_DEFINE_BWD(max, Max)
FELIX_JIT_DEFINE_BWD(log, Log)
FELIX_JIT_DEFINE_BWD(exp, Exp)
FELIX_JIT_DEFINE_BWD(sqrt, Sqrt)
FELIX_JIT_DEFINE_BWD(abs, Abs)
FELIX_JIT_DEFINE_BWD(atan, Atan)
FELIX_JIT_DEFINE_BWD(sigmoid, Sigmoid)
FELIX_JIT_DEFINE_BWD(select, Select)
#undef FELIX_JIT_DEFINE_BWD

} // extern "C"
