/**
 * @file
 * Copy-and-patch JIT for the optimized expression tape.
 *
 * The batched interpreter (simd/kernels_impl.h) pays one indirect
 * dispatch, operand-pointer setup and loop control per instruction
 * per step — for tapes of a few hundred instructions that overhead
 * rivals the arithmetic. JitTape instead emits each tape once as
 * straight-line native code over the kBatchLanes-wide SoA rows:
 * cheap elementwise ops become the exact AVX2 instruction sequences
 * of the vector kernels in expr/op_kernels.h (patched with their
 * operand rows' displacements), and ops needing libm or
 * data-dependent adjoint logic become calls into pre-compiled
 * stencils that ARE the interpreter's per-instruction bodies
 * (jit/stencils.h). Bit-exactness with the scalar interpreter —
 * on every backend — holds by construction and is enforced by
 * tests/test_jit.cc.
 *
 * Availability: x86-64 with AVX2 (runtime-checked), compiled in only
 * when the toolchain has -mavx2. Everything else falls back to the
 * interpreter transparently. Escape hatches mirror the --simd knob:
 * the FELIX_JIT environment variable ("off" or "0" disables),
 * setEnabled() (felix-tune --no-jit plumbs into it). The resolved
 * state is published as the `jit.enabled` gauge.
 *
 * Generated code lives in a W^X mmap'd buffer: pages are writable
 * during emission, then flipped to read+execute (never both) for the
 * lifetime of the tape.
 */
#ifndef FELIX_JIT_JIT_H_
#define FELIX_JIT_JIT_H_

#include <cstddef>
#include <memory>

#include "expr/tape.h"

namespace felix {
namespace jit {

/** Can this build + CPU run JIT-compiled tapes? (x86-64, AVX2,
 *  stencils compiled in.) Constant per process. */
bool supported();

/** Is the JIT turned on? Resolved once from FELIX_JIT ("off"/"0"
 *  disables, default on), overridable via setEnabled(). Callers
 *  must also check supported(). */
bool enabled();

/** Force the JIT on or off (outranks the environment variable).
 *  Takes effect at the next forwardBatch/backwardBatch call — even
 *  for tapes already compiled — so benches can A/B at runtime. */
void setEnabled(bool on);

/**
 * One tape compiled to native code. Immutable after compile();
 * forward()/backward() are const and thread-safe (callers bring
 * their own SoA buffers, exactly like the interpreter kernels).
 */
class JitTape
{
  public:
    /**
     * Compile @p program. Returns nullptr when the JIT is
     * unsupported, the tape is empty, or executable memory is
     * unavailable — callers fall back to the interpreter.
     * The backward function is omitted for forward-only tapes.
     */
    static std::unique_ptr<JitTape>
    compile(const expr::TapeProgram &program);

    ~JitTape();
    JitTape(const JitTape &) = delete;
    JitTape &operator=(const JitTape &) = delete;

    /** Drop-in for KernelSet::tapeForward: the instruction sweep
     *  over the bound SoA slot buffer (leaf rows already filled). */
    void
    forward(double *vals) const
    {
        fwd_(vals);
    }

    bool hasBackward() const { return bwd_ != nullptr; }

    /** Drop-in for KernelSet::tapeBackward: the reverse sweep
     *  (adjoint seeding/extraction stay with the caller). */
    void
    backward(const double *vals, double *adjs) const
    {
        bwd_(vals, adjs);
    }

    /** Emitted machine-code size (metrics, tests). */
    size_t codeBytes() const { return codeSize_; }

    /** Start of the executable mapping (tests: W^X verification,
     *  disassembly). */
    const void *codePtr() const { return mem_; }

  private:
    JitTape() = default;

    using FwdFn = void (*)(double *vals);
    using BwdFn = void (*)(const double *vals, double *adjs);

    void *mem_ = nullptr;       ///< W^X mapping (RX after emission)
    size_t mapSize_ = 0;
    size_t codeSize_ = 0;
    FwdFn fwd_ = nullptr;
    BwdFn bwd_ = nullptr;
};

} // namespace jit
} // namespace felix

#endif // FELIX_JIT_JIT_H_
