/**
 * @file
 * Simulated off-the-shelf inference frameworks (paper §5 baselines:
 * PyTorch 2.2 / TorchInductor, TensorFlow 2.15 / XLA, TensorRT 8.6).
 *
 * Each framework is modelled as a vendor kernel library: for every
 * fused task it achieves a fraction of the device roofline that
 * depends on the operator family (3d convolutions are heavily
 * hand-optimized and run near peak — the one case where libraries
 * beat search, §6.3 — while transposed and depthwise convolutions
 * and small layers run far below it), plus a per-kernel dispatch
 * overhead and a per-network graph-executor overhead. The paper's
 * unsupported-configuration failures (TF cannot hold ViT on Xavier,
 * LLaMA runs nowhere on Xavier and only on PyTorch elsewhere) are
 * captured by frameworkSupports().
 */
#ifndef FELIX_FRAMEWORKS_FRAMEWORKS_H_
#define FELIX_FRAMEWORKS_FRAMEWORKS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/device.h"

namespace felix {
namespace frameworks {

enum class Framework { PyTorch, TensorFlow, TensorRT };

const char *frameworkName(Framework framework);

/** All three baseline frameworks. */
std::vector<Framework> allFrameworks();

/**
 * Can this framework run the given network in the given setting?
 * Mirrors the paper's reported failures (§6.1, §6.4).
 */
bool frameworkSupports(Framework framework,
                       const std::string &network_name,
                       sim::DeviceKind device, int batch);

/** Library latency of one fused task (seconds). */
double libraryTaskLatency(const graph::Task &task,
                          const sim::DeviceConfig &device,
                          Framework framework);

/** End-to-end network latency under a framework (seconds). */
double networkLatency(const std::vector<graph::Task> &tasks,
                      const sim::DeviceConfig &device,
                      Framework framework);

/** Best latency across the frameworks that support the network. */
double bestLibraryLatency(const std::vector<graph::Task> &tasks,
                          const std::string &network_name,
                          const sim::DeviceConfig &device, int batch);

} // namespace frameworks
} // namespace felix

#endif // FELIX_FRAMEWORKS_FRAMEWORKS_H_
