#include "frameworks/frameworks.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace felix {
namespace frameworks {

const char *
frameworkName(Framework framework)
{
    switch (framework) {
      case Framework::PyTorch: return "PyTorch";
      case Framework::TensorFlow: return "TensorFlow";
      case Framework::TensorRT: return "TensorRT";
    }
    return "?";
}

std::vector<Framework>
allFrameworks()
{
    return {Framework::PyTorch, Framework::TensorFlow,
            Framework::TensorRT};
}

bool
frameworkSupports(Framework framework, const std::string &network_name,
                  sim::DeviceKind device, int batch)
{
    const bool isLlama = network_name.find("LLaMA") != std::string::npos ||
                         network_name.find("llama") != std::string::npos;
    const bool isVit = network_name.find("ViT") != std::string::npos ||
                       network_name.find("vit") != std::string::npos;
    if (isLlama) {
        // LLaMA's parameters do not fit in Xavier NX memory at all;
        // TensorFlow lacks LLaMA support; TensorRT segfaults (§6.1).
        if (device == sim::DeviceKind::XavierNX)
            return false;
        if (framework == Framework::TensorFlow ||
            framework == Framework::TensorRT)
            return false;
        if (batch >= 16)
            return false;   // out of GPU memory at batch 16 (§6.4)
    }
    if (isVit && framework == Framework::TensorFlow &&
        device == sim::DeviceKind::XavierNX) {
        return false;       // high-footprint ViT OOMs under TF (§6.1)
    }
    return true;
}

namespace {

/** Operator-family classes with distinct library maturity. */
enum class OpClass {
    Conv2d,
    DepthwiseConv2d,
    Conv3d,
    TConv2d,
    Dense,
    BatchMatmul,
    MemoryBound,   ///< softmax / pooling / layernorm / elementwise
};

OpClass
classify(const graph::Task &task)
{
    switch (task.anchorType) {
      case graph::OpType::Conv2d: {
        // Depthwise convolutions reduce over the filter taps only.
        const tir::ComputeOp &dom = task.subgraph.dominantOp();
        if (dom.reduceExtent() <= 25 && dom.spatialExtent() > 1024)
            return OpClass::DepthwiseConv2d;
        return OpClass::Conv2d;
      }
      case graph::OpType::Conv3d:
        return OpClass::Conv3d;
      case graph::OpType::TConv2d:
        return OpClass::TConv2d;
      case graph::OpType::Dense:
        return OpClass::Dense;
      case graph::OpType::BatchMatmul:
        return OpClass::BatchMatmul;
      default:
        return OpClass::MemoryBound;
    }
}

/** Fraction of the device roofline a library kernel achieves. */
double
baseEfficiency(Framework framework, OpClass opClass)
{
    switch (opClass) {
      case OpClass::Conv2d:
        switch (framework) {
          case Framework::PyTorch: return 0.52;
          case Framework::TensorFlow: return 0.45;
          case Framework::TensorRT: return 0.62;
        }
        break;
      case OpClass::DepthwiseConv2d:
        switch (framework) {
          case Framework::PyTorch: return 0.20;
          case Framework::TensorFlow: return 0.16;
          case Framework::TensorRT: return 0.30;
        }
        break;
      case OpClass::Conv3d:
        // Heavily hand-optimized: the one family where vendor
        // libraries beat search-based compilers (§6.3).
        switch (framework) {
          case Framework::PyTorch: return 0.90;
          case Framework::TensorFlow: return 0.88;
          case Framework::TensorRT: return 0.92;
        }
        break;
      case OpClass::TConv2d:
        switch (framework) {
          case Framework::PyTorch: return 0.30;
          case Framework::TensorFlow: return 0.26;
          case Framework::TensorRT: return 0.38;
        }
        break;
      case OpClass::Dense:
        // Network-mix dense shapes are skinny (activation rows of
        // 50-600), well below cuBLAS's square-GEMM peak.
        switch (framework) {
          case Framework::PyTorch: return 0.50;
          case Framework::TensorFlow: return 0.46;
          case Framework::TensorRT: return 0.58;
        }
        break;
      case OpClass::BatchMatmul:
        switch (framework) {
          case Framework::PyTorch: return 0.58;
          case Framework::TensorFlow: return 0.52;
          case Framework::TensorRT: return 0.66;
        }
        break;
      case OpClass::MemoryBound:
        switch (framework) {
          case Framework::PyTorch: return 0.62;
          case Framework::TensorFlow: return 0.55;
          case Framework::TensorRT: return 0.72;
        }
        break;
    }
    panic("unreachable");
}

/** Per-kernel dispatch overhead on top of the raw launch. */
double
dispatchOverheadSec(Framework framework,
                    const sim::DeviceConfig &device)
{
    double base = 0.0;
    switch (framework) {
      case Framework::PyTorch: base = 7e-6; break;
      case Framework::TensorFlow: base = 11e-6; break;
      case Framework::TensorRT: base = 2.5e-6; break;
    }
    // Slower host on the edge board inflates dispatch costs.
    if (device.kind == sim::DeviceKind::XavierNX)
        base *= 2.5;
    return base + device.launchOverheadUs * 1e-6;
}

/** Per-network graph-executor overhead. */
double
graphOverheadSec(Framework framework, const sim::DeviceConfig &device)
{
    double base = 0.0;
    switch (framework) {
      case Framework::PyTorch: base = 30e-6; break;
      case Framework::TensorFlow: base = 50e-6; break;
      case Framework::TensorRT: base = 10e-6; break;
    }
    if (device.kind == sim::DeviceKind::XavierNX)
        base *= 2.0;
    return base;
}

/** Unique bytes moved by a task (activations + weights). */
double
taskBytes(const graph::Task &task)
{
    double bytes = 0.0;
    for (const tir::ComputeOp &op : task.subgraph.ops) {
        for (const tir::BufferAccess &access : op.inputs)
            bytes += static_cast<double>(access.bufferElems());
        bytes += static_cast<double>(op.spatialExtent());
    }
    return bytes * tir::kDtypeBytes;
}

} // namespace

double
libraryTaskLatency(const graph::Task &task,
                   const sim::DeviceConfig &device, Framework framework)
{
    const OpClass opClass = classify(task);
    const double flops = task.subgraph.totalFlops();
    const double bytes = taskBytes(task);

    const double computeSec = flops / device.peakFlops();
    const double memorySec = bytes / device.dramBytesPerSec();
    const double ideal = std::max(computeSec, memorySec);

    // Fixed-configuration library kernels under-fill small devices
    // and small layers; search-based compilers recover much of this
    // (the MobileNet/DCGAN effect, §6.1).
    const double parallelism =
        static_cast<double>(task.subgraph.dominantOp().spatialExtent());
    const double util = std::min(
        1.0, parallelism / (device.smCount * 2048.0));
    const double sizeFactor = 0.15 + 0.85 * std::pow(util, 0.7);

    const double eff = baseEfficiency(framework, opClass) * sizeFactor;
    return ideal / std::max(eff, 0.02) +
           dispatchOverheadSec(framework, device);
}

double
networkLatency(const std::vector<graph::Task> &tasks,
               const sim::DeviceConfig &device, Framework framework)
{
    double total = graphOverheadSec(framework, device);
    for (const graph::Task &task : tasks) {
        total += task.weight *
                 libraryTaskLatency(task, device, framework);
    }
    return total;
}

double
bestLibraryLatency(const std::vector<graph::Task> &tasks,
                   const std::string &network_name,
                   const sim::DeviceConfig &device, int batch)
{
    double best = -1.0;
    for (Framework framework : allFrameworks()) {
        if (!frameworkSupports(framework, network_name, device.kind,
                               batch))
            continue;
        double latency = networkLatency(tasks, device, framework);
        if (best < 0.0 || latency < best)
            best = latency;
    }
    return best;
}

} // namespace frameworks
} // namespace felix
