#include "tuner/records.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include <fcntl.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "support/logging.h"

namespace felix {
namespace tuner {

namespace {

void
formatRecord(std::ostringstream &os, const TuneRecord &record)
{
    os << record.taskHash << " " << record.sketchIndex << " "
       << record.latencySec << " " << record.clockSec << " "
       << record.scheduleVars.size();
    for (double v : record.scheduleVars)
        os << " " << v;
    os << " " << record.taskLabel << "\n";
}

/**
 * One O_APPEND write of pre-formatted lines. POSIX appends are
 * atomic with respect to the file offset, so a crash mid-call
 * leaves at most one truncated trailing line and concurrent
 * appenders (daemon + CLI sharing a log) never interleave bytes of
 * complete lines.
 */
void
appendText(const std::string &path, const std::string &text)
{
    int fd = ::open(path.c_str(),
                    O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    FELIX_CHECK(fd >= 0, "cannot append tuning record to " + path +
                             ": " + std::strerror(errno));
    size_t written = 0;
    while (written < text.size()) {
        ssize_t n = ::write(fd, text.data() + written,
                            text.size() - written);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            int err = errno;
            ::close(fd);
            panic("short write appending tuning record to " + path +
                  ": " + std::strerror(err));
        }
        written += static_cast<size_t>(n);
    }
    ::close(fd);
}

} // namespace

void
appendRawText(const std::string &path, const std::string &text)
{
    if (!text.empty())
        appendText(path, text);
}

void
appendRecord(const std::string &path, const TuneRecord &record)
{
    std::ostringstream os;
    os.precision(17);
    formatRecord(os, record);
    appendText(path, os.str());
}

void
appendRecords(const std::string &path,
              const std::vector<TuneRecord> &records)
{
    if (records.empty())
        return;
    std::ostringstream os;
    os.precision(17);
    for (const TuneRecord &record : records)
        formatRecord(os, record);
    appendText(path, os.str());
}

std::vector<TuneRecord>
loadRecords(const std::string &path)
{
    std::vector<TuneRecord> records;
    std::ifstream is(path);
    std::string line;
    int corrupt = 0;
    // Register the counter up front so the metrics snapshot (and
    // felix-top --once) always carries a records.corrupt_lines
    // entry — 0 is an affirmative "no corruption seen", which is
    // different from the metric being absent.
    auto &corruptCounter = obs::MetricsRegistry::instance().counter(
        "records.corrupt_lines");
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        TuneRecord record;
        size_t numVars = 0;
        if (!(ls >> record.taskHash >> record.sketchIndex >>
              record.latencySec >> record.clockSec >> numVars)) {
            ++corrupt;
            continue;
        }
        if (numVars > 4096) {
            ++corrupt;
            continue;
        }
        record.scheduleVars.resize(numVars);
        bool ok = true;
        for (double &v : record.scheduleVars)
            ok = ok && static_cast<bool>(ls >> v);
        if (!ok) {
            ++corrupt;
            continue;
        }
        ls >> record.taskLabel;
        records.push_back(std::move(record));
    }
    if (corrupt > 0) {
        corruptCounter.add(static_cast<double>(corrupt));
        // Per-file gauge keyed by path, so the snapshot JSON names
        // WHICH log is corrupt, not just that one is.
        obs::MetricsRegistry::instance()
            .gauge("records.corrupt_lines." + path)
            .set(static_cast<double>(corrupt));
        warn("skipped ", corrupt, " corrupt tuning-record line",
             corrupt == 1 ? "" : "s", " in ", path);
    }
    return records;
}

std::vector<TuneRecord>
historyBest(const std::vector<TuneRecord> &records)
{
    std::unordered_map<uint64_t, size_t> bestOf;
    std::vector<TuneRecord> best;
    for (const TuneRecord &record : records) {
        auto it = bestOf.find(record.taskHash);
        if (it == bestOf.end()) {
            bestOf.emplace(record.taskHash, best.size());
            best.push_back(record);
        } else if (record.latencySec < best[it->second].latencySec) {
            best[it->second] = record;
        }
    }
    return best;
}

} // namespace tuner
} // namespace felix
