#include "tuner/records.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "support/logging.h"

namespace felix {
namespace tuner {

void
appendRecord(const std::string &path, const TuneRecord &record)
{
    std::ofstream os(path, std::ios::app);
    FELIX_CHECK(os.good(), "cannot append tuning record to " + path);
    os.precision(17);
    os << record.taskHash << " " << record.sketchIndex << " "
       << record.latencySec << " " << record.clockSec << " "
       << record.scheduleVars.size();
    for (double v : record.scheduleVars)
        os << " " << v;
    os << " " << record.taskLabel << "\n";
}

std::vector<TuneRecord>
loadRecords(const std::string &path)
{
    std::vector<TuneRecord> records;
    std::ifstream is(path);
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        TuneRecord record;
        size_t numVars = 0;
        if (!(ls >> record.taskHash >> record.sketchIndex >>
              record.latencySec >> record.clockSec >> numVars)) {
            continue;   // corrupt line: skip
        }
        if (numVars > 4096)
            continue;
        record.scheduleVars.resize(numVars);
        bool ok = true;
        for (double &v : record.scheduleVars)
            ok = ok && static_cast<bool>(ls >> v);
        if (!ok)
            continue;
        ls >> record.taskLabel;
        records.push_back(std::move(record));
    }
    return records;
}

std::vector<TuneRecord>
historyBest(const std::vector<TuneRecord> &records)
{
    std::unordered_map<uint64_t, size_t> bestOf;
    std::vector<TuneRecord> best;
    for (const TuneRecord &record : records) {
        auto it = bestOf.find(record.taskHash);
        if (it == bestOf.end()) {
            bestOf.emplace(record.taskHash, best.size());
            best.push_back(record);
        } else if (record.latencySec < best[it->second].latencySec) {
            best[it->second] = record;
        }
    }
    return best;
}

} // namespace tuner
} // namespace felix
