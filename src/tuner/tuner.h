/**
 * @file
 * Full-graph tuning (paper Algorithm 2) with a virtual tuning clock.
 *
 * The tuner owns the weighted tasks of one network, a pretrained
 * cost model, and a search strategy per task (Felix gradient search
 * or the Ansor-TenSet evolutionary baseline). Each round it selects
 * one subgraph (Ansor's task scheduler: spend time where the most
 * network latency remains), runs one search round, measures the
 * proposed candidates on the simulated device, fine-tunes the cost
 * model with the fresh measurements, and records a timeline point.
 *
 * Tuning time is accounted by a *virtual clock* so the time-based
 * experiments (Fig. 7/10, Tables 1/2) are deterministic and
 * independent of the host machine: cost-model queries, gradient
 * steps, per-candidate hardware measurements (the paper's ~100 ms
 * runs plus compile/transfer overhead) and per-round overheads all
 * advance the clock. The defaults reproduce the paper's per-round
 * budget ratio: Felix predicts 8 x 200 = 1600 schedules and measures
 * 16; Ansor predicts 2048 x 4 = 8192 and measures 64.
 */
#ifndef FELIX_TUNER_TUNER_H_
#define FELIX_TUNER_TUNER_H_

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "costmodel/cost_model.h"
#include "evolutionary/evolutionary.h"
#include "graph/graph.h"
#include "obs/round_log.h"
#include "optim/search.h"
#include "sim/device.h"
#include "tuner/records.h"

namespace felix {
namespace tuner {

/** Virtual-clock cost accounting (seconds of simulated tuning). */
struct ClockConfig
{
    double secPerPrediction = 1.0e-3;  ///< one cost-model query
    double gradStepFactor = 2.5;       ///< fwd+bwd vs fwd-only cost
    double secPerMeasurement = 0.18;   ///< ~100 ms run + compile/RPC
    double roundOverheadSec = 1.0;     ///< sketch/lowering per round
};

/** Which search strategy drives the tuning. */
enum class StrategyKind { FelixGradient, AnsorTenSet };

const char *strategyName(StrategyKind kind);

/** Tuner options. */
struct TunerOptions
{
    StrategyKind strategy = StrategyKind::FelixGradient;
    optim::GradSearchOptions grad;
    evolutionary::EvoSearchOptions evo;
    ClockConfig clock;
    uint64_t seed = 1;
    /** Worker threads for every parallel phase (search, measurement,
     *  fine-tuning). 0 inherits the current global pool; > 0 resizes
     *  it. Results are bit-identical for any value
     *  (docs/parallelism.md); only wall-clock time changes. */
    int numThreads = 0;
    /** TVM-style compiled-graph runtime overhead per inference. */
    double graphExecOverheadSec = 15e-6;
    int finetuneSteps = 16;
    /** When non-empty, every measurement is appended here as a
     *  replayable tuning record (Ansor-style tuning log). */
    std::string recordLogPath;
    /** When non-empty, one structured telemetry record per tuning
     *  round is written here as JSONL (see docs/observability.md);
     *  the felix-tune --metrics-out flag plugs in here. */
    std::string roundLogPath;
    /** Allow constructing with zero tasks (the serving daemon adds
     *  tasks as requests arrive; see docs/serving.md). */
    bool allowEmptyTasks = false;
};

/** One point of the tuning-progress curve (Fig. 7/10). */
struct TimelinePoint
{
    double timeSec = 0.0;
    double networkLatencySec = 0.0;
};

/** Tuning state of one task. */
struct TaskRecord
{
    graph::Task task;
    std::unique_ptr<optim::SearchStrategy> strategy;
    double bestLatencySec = 0.0;
    optim::Candidate bestCandidate;
    int rounds = 0;
    int stagnantRounds = 0;
};

/**
 * Build the search strategy for one task. Shared by GraphTuner and
 * the sharded runner (src/shard/) so both construct byte-identical
 * strategies from the same options.
 */
std::unique_ptr<optim::SearchStrategy> makeStrategy(
    StrategyKind kind, const graph::Task &task,
    const optim::GradSearchOptions &grad,
    const evolutionary::EvoSearchOptions &evo);

/**
 * Start @p record at the trivial all-ones schedule of the primary
 * sketch (always legal, single-threaded), measured with
 * @p measure_seed. This is the "untuned" latency the curves start
 * at. Requires record.strategy to be set.
 */
void seedTrivialSchedule(TaskRecord &record,
                         const sim::DeviceConfig &device,
                         uint64_t measure_seed);

/**
 * Everything one tuning-round transition needs beyond the task
 * itself. The legacy in-process tuner and the sharded runner both
 * drive rounds through this environment, so a round computes the
 * same bytes no matter which process executes it; only the
 * callbacks (clock sinks, seed streams, record routing) differ.
 */
struct RoundEnv
{
    costmodel::CostModel *model = nullptr;              ///< required
    std::vector<costmodel::Sample> *history = nullptr;  ///< required
    Rng *rng = nullptr;                                 ///< required
    /** Virtual clock before the round; the advanced clock is
     *  returned in RoundOutcome::clockSec. */
    double clockSec = 0.0;
    ClockConfig clock;
    const sim::DeviceConfig *device = nullptr;          ///< required
    StrategyKind strategy = StrategyKind::FelixGradient;
    int finetuneSteps = 16;
    /** Stamped into RoundRecord::round. */
    int roundIndex = 0;
    /** Measurement seed for candidate i. Required. The legacy tuner
     *  passes a preassigned window of its global seed stream; the
     *  sharded runner passes position-independent hashed seeds so
     *  the value does not depend on which rounds this shard ran. */
    std::function<uint64_t(size_t)> measureSeed;
    /** Per-measurement hook with the clock after that measurement
     *  (the legacy tuner pushes timeline points here). Optional. */
    std::function<void(double)> onMeasured;
    /** End-to-end network latency for the round record. When null,
     *  the task-local weight * best is used (shard mode: a shard
     *  does not know the other shards' bests; the merge step never
     *  reads this field across shard counts). */
    std::function<double()> networkLatency;
    /** When non-empty, append every measurement here (legacy
     *  Ansor-style tuning log). */
    std::string recordLogPath;
    /** Collect the round's measurements into RoundOutcome::records
     *  (shard mode appends them as one atomic batch per round). */
    bool collectRecords = false;
    /** Emit the nondeterministic wall-clock into the round record.
     *  Shard mode turns this off so round logs merge byte-identically. */
    bool emitWall = true;
};

/** What one round produced. */
struct RoundOutcome
{
    int measured = 0;        ///< candidates measured this round
    double clockSec = 0.0;   ///< virtual clock after the round
    obs::RoundRecord record; ///< fully-populated telemetry record
    std::vector<TuneRecord> records; ///< when env.collectRecords
};

/**
 * The tuner's single round transition (one step of Algorithm 2's
 * inner loop): run one search round on @p record, measure the
 * proposed candidates, update the best schedule, fine-tune the cost
 * model, advance the virtual clock and stagnation bookkeeping.
 * Deterministic given (task state, model, history, rng, env seeds).
 */
RoundOutcome runTaskRound(TaskRecord &record, const RoundEnv &env);

/** Round-based full-graph tuner (Algorithm 2). */
class GraphTuner
{
  public:
    GraphTuner(std::vector<graph::Task> tasks,
               costmodel::CostModel model, sim::DeviceKind device,
               TunerOptions options = {});

    /** Run @p n_rounds rounds of subgraph tuning. */
    void tuneRounds(int n_rounds);

    /** Tune until the virtual clock passes @p budget_sec. */
    void tuneUntil(double budget_sec);

    /**
     * Register a new task after construction (reentrant serving
     * API). The task starts at the trivial all-ones schedule, whose
     * simulated measurement advances the deterministic measurement
     * seed stream exactly like a constructor-registered task.
     * Returns the task index.
     */
    int addTask(graph::Task task);

    /**
     * Run one tuning round on one specific task, letting an external
     * policy (e.g. the traffic-weighted serving scheduler) replace
     * the built-in Ansor-style task selection.
     */
    void tuneTaskRound(int task_index);

    /**
     * Warm-start a task's best schedule from a replayed tuning
     * record (no new measurement; the recorded latency is trusted —
     * it came from the same deterministic simulator). Returns false
     * when the record does not apply (bad sketch index, wrong
     * variable count) or does not improve on the current best.
     */
    bool seedBest(int task_index, int sketch_index,
                  const std::vector<double> &schedule_vars,
                  double latency_sec);

    /** Current end-to-end network latency with the best schedules. */
    double networkLatency() const;

    double clockNow() const { return clockSec_; }
    const std::vector<TimelinePoint> &timeline() const
    {
        return timeline_;
    }
    const std::vector<TaskRecord> &taskRecords() const
    {
        return tasks_;
    }
    const costmodel::CostModel &model() const { return model_; }
    int totalMeasurements() const { return totalMeasurements_; }
    int totalRounds() const { return roundIndex_; }

    /** The per-round telemetry sink (disabled when no path set). */
    obs::RoundLogger &roundLogger() { return roundLogger_; }

    /**
     * Serialize the full tuning state — rng, virtual clock,
     * measurement-seed stream position, replay history, fine-tuned
     * cost model, and per-task state (best schedule, stagnation,
     * strategy internals) — as versioned text. Together with
     * loadState() this makes a restarted process resume the exact
     * deterministic trajectory (docs/distributed.md).
     */
    void saveState(std::ostream &os) const;

    /**
     * Restore state written by saveState(). Global state (rng,
     * clock, history, model) applies immediately; per-task state is
     * stashed by task hash and overlaid when a task with that hash
     * is registered via addTask()/the constructor — the overlay
     * path skips the initial trivial-schedule measurement, since
     * the restored stream position already accounts for it. False
     * on malformed input (state is then unspecified; discard the
     * tuner).
     */
    bool loadState(std::istream &is);

    /** True when a restored per-task state awaits a task with this
     *  structural hash (serving: forces re-registration so
     *  background tuning resumes despite a warm schedule cache). */
    bool hasPendingRestore(uint64_t task_hash) const
    {
        return pendingRestore_.count(task_hash) != 0;
    }

    /** Restored per-task states not yet claimed by addTask(). */
    size_t pendingRestoreCount() const
    {
        return pendingRestore_.size();
    }

  private:
    /** Per-task state parked between loadState() and addTask(). */
    struct PendingTaskState
    {
        int rounds = 0;
        int stagnantRounds = 0;
        double bestLatencySec = 0.0;
        optim::Candidate bestCandidate;
        std::string strategyBlob;
    };

    int selectNextTask();
    void tuneOneRound();
    void initTask(graph::Task task);

    std::vector<TaskRecord> tasks_;
    /** Replay buffer of all measured samples (model fine-tuning). */
    std::vector<costmodel::Sample> history_;
    costmodel::CostModel model_;
    sim::DeviceConfig device_;
    TunerOptions options_;
    Rng rng_;
    double clockSec_ = 0.0;
    uint64_t measureSeed_ = 0;
    int totalMeasurements_ = 0;
    int roundIndex_ = 0;
    std::vector<TimelinePoint> timeline_;
    obs::RoundLogger roundLogger_;
    std::unordered_map<uint64_t, PendingTaskState> pendingRestore_;
};

} // namespace tuner
} // namespace felix

#endif // FELIX_TUNER_TUNER_H_
