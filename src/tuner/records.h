/**
 * @file
 * Tuning records: an append-only log of every hardware measurement,
 * replayable without re-tuning.
 *
 * This mirrors TVM/Ansor's tuning-log workflow that the paper's
 * programming interface exposes (Fig. 5: `save_res="resnet50.json"`):
 * each measured (task, schedule) pair is appended as one line; a
 * later session can "apply history best" — rebuild the best
 * schedule per task from the log — and skip the search entirely.
 */
#ifndef FELIX_TUNER_RECORDS_H_
#define FELIX_TUNER_RECORDS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace felix {
namespace tuner {

/** One measured schedule. */
struct TuneRecord
{
    uint64_t taskHash = 0;          ///< SubgraphDef::structuralHash
    std::string taskLabel;
    int sketchIndex = 0;
    std::vector<double> scheduleVars;
    double latencySec = 0.0;
    double clockSec = 0.0;          ///< virtual time of measurement
};

/**
 * Append one record to a log file (creates the file if needed).
 *
 * Crash-safe: the line is formatted in memory and handed to the
 * kernel as a single O_APPEND write, so a crashed or concurrent
 * writer can truncate its own last line but never interleave or
 * tear an earlier one — loadRecords() then drops at most that one
 * trailing line.
 */
void appendRecord(const std::string &path, const TuneRecord &record);

/** Append a batch of records as one atomic O_APPEND write. */
void appendRecords(const std::string &path,
                   const std::vector<TuneRecord> &records);

/**
 * Append pre-formatted text (complete lines) with the same
 * single-write O_APPEND crash-safety contract as appendRecord().
 * Used by the sharded runner for its per-round JSONL artifacts.
 */
void appendRawText(const std::string &path, const std::string &text);

/**
 * Load every well-formed record. Corrupt lines are skipped, counted
 * into the `records.corrupt_lines` metric, and reported with one
 * warning per file.
 */
std::vector<TuneRecord> loadRecords(const std::string &path);

/**
 * History-best selection: the lowest-latency record per task hash.
 */
std::vector<TuneRecord> historyBest(
    const std::vector<TuneRecord> &records);

} // namespace tuner
} // namespace felix

#endif // FELIX_TUNER_RECORDS_H_
