#include "tuner/tuner.h"

#include <algorithm>
#include <cmath>

#include "features/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/gpu_model.h"
#include "support/logging.h"
#include "support/parallel.h"
#include "tuner/records.h"

namespace felix {
namespace tuner {

const char *
strategyName(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::FelixGradient: return "Felix";
      case StrategyKind::AnsorTenSet: return "Ansor-TenSet";
    }
    return "?";
}

GraphTuner::GraphTuner(std::vector<graph::Task> tasks,
                       costmodel::CostModel model,
                       sim::DeviceKind device, TunerOptions options)
    : model_(std::move(model)), device_(sim::deviceConfig(device)),
      options_(std::move(options)), rng_(options_.seed),
      roundLogger_(options_.roundLogPath)
{
    FELIX_CHECK(!tasks.empty() || options_.allowEmptyTasks,
                "tuner needs at least one task");
    if (options_.numThreads > 0)
        setGlobalJobs(options_.numThreads);
    FELIX_SPAN("tuner.setup", "tuner");
    for (graph::Task &task : tasks)
        initTask(std::move(task));
    timeline_.push_back({0.0, networkLatency()});
}

void
GraphTuner::initTask(graph::Task task)
{
    TaskRecord record;
    record.task = std::move(task);
    if (options_.strategy == StrategyKind::FelixGradient) {
        record.strategy = std::make_unique<optim::GradientSearch>(
            record.task.subgraph, options_.grad);
    } else {
        record.strategy =
            std::make_unique<evolutionary::EvolutionarySearch>(
                record.task.subgraph, options_.evo);
    }
    // Initialize with the trivial all-ones schedule of the
    // primary sketch (always legal, single-threaded): this is
    // the "untuned" latency the curves start at.
    const auto &sched = record.strategy->sketches().front();
    std::vector<std::string> names;
    for (const auto &domain : sched.vars)
        names.push_back(domain.name);
    std::vector<double> ones(sched.vars.size(), 1.0);
    auto rawFeatures = features::concreteFeatures(sched.program,
                                                  names, ones);
    record.bestLatencySec = sim::measureKernel(
        rawFeatures, device_, measureSeed_++);
    record.bestCandidate.sketchIndex = 0;
    record.bestCandidate.x = ones;
    record.bestCandidate.rawFeatures = std::move(rawFeatures);
    tasks_.push_back(std::move(record));
}

int
GraphTuner::addTask(graph::Task task)
{
    FELIX_SPAN("tuner.add_task", "tuner");
    initTask(std::move(task));
    return static_cast<int>(tasks_.size()) - 1;
}

bool
GraphTuner::seedBest(int task_index, int sketch_index,
                     const std::vector<double> &schedule_vars,
                     double latency_sec)
{
    if (task_index < 0 ||
        task_index >= static_cast<int>(tasks_.size()))
        return false;
    TaskRecord &record = tasks_[task_index];
    const auto &sketches = record.strategy->sketches();
    if (sketch_index < 0 ||
        sketch_index >= static_cast<int>(sketches.size()))
        return false;
    const auto &sched = sketches[sketch_index];
    if (schedule_vars.size() != sched.vars.size())
        return false;
    if (!(latency_sec < record.bestLatencySec))
        return false;
    std::vector<std::string> names;
    for (const auto &domain : sched.vars)
        names.push_back(domain.name);
    auto rawFeatures = features::concreteFeatures(
        sched.program, names, schedule_vars);
    record.bestLatencySec = latency_sec;
    record.bestCandidate.sketchIndex = sketch_index;
    record.bestCandidate.x = schedule_vars;
    record.bestCandidate.rawFeatures = std::move(rawFeatures);
    record.bestCandidate.predictedScore = 0.0;
    return true;
}

double
GraphTuner::networkLatency() const
{
    double total = options_.graphExecOverheadSec;
    for (const TaskRecord &record : tasks_)
        total += record.task.weight * record.bestLatencySec;
    return total;
}

int
GraphTuner::selectNextTask()
{
    // First pass: visit every task once.
    for (size_t i = 0; i < tasks_.size(); ++i) {
        if (tasks_[i].rounds == 0)
            return static_cast<int>(i);
    }
    // Ansor's task scheduler: spend rounds where the most network
    // time remains, backing off tasks that stopped improving.
    int best = 0;
    double bestScore = -1.0;
    for (size_t i = 0; i < tasks_.size(); ++i) {
        const TaskRecord &record = tasks_[i];
        double share = record.task.weight * record.bestLatencySec;
        double backoff =
            std::pow(0.5, std::min(6, record.stagnantRounds));
        double score = share * backoff;
        if (score > bestScore) {
            bestScore = score;
            best = static_cast<int>(i);
        }
    }
    return best;
}

void
GraphTuner::tuneOneRound()
{
    tuneTaskRound(selectNextTask());
}

void
GraphTuner::tuneTaskRound(int task_index)
{
    FELIX_SPAN("tuner.round", "tuner");
    FELIX_CHECK(task_index >= 0 &&
                    task_index < static_cast<int>(tasks_.size()),
                "tuneTaskRound: bad task index");
    auto &registry = obs::MetricsRegistry::instance();
    const int64_t roundStartUs = obs::Tracer::nowUs();

    TaskRecord &record = tasks_[task_index];

    obs::RoundRecord roundRecord;
    roundRecord.round = roundIndex_;
    roundRecord.taskLabel = record.task.exampleLabel;
    roundRecord.taskHash = record.task.subgraph.structuralHash();
    roundRecord.strategy = strategyName(options_.strategy);

    optim::RoundResult result;
    {
        FELIX_SPAN("tuner.search", "tuner");
        obs::ScopedTimerMs timer(
            registry.counter("tuner.search_ms"));
        result = record.strategy->round(model_, rng_);
    }
    roundRecord.seedsLaunched = result.trace.seedsLaunched;
    roundRecord.numPredictions = result.trace.numPredictions;
    roundRecord.roundingAttempts = result.trace.roundingAttempts;
    roundRecord.roundingInvalid = result.trace.roundingInvalid;

    // Advance the virtual clock for the search phase.
    double predFactor =
        (options_.strategy == StrategyKind::FelixGradient)
            ? options_.clock.gradStepFactor
            : 1.0;
    clockSec_ += options_.clock.roundOverheadSec +
                 result.trace.numPredictions *
                     options_.clock.secPerPrediction * predFactor;

    // Measure the proposed candidates, update the best schedule and
    // fine-tune the cost model with the fresh measurements.
    std::vector<costmodel::Sample> fresh;
    double prevBest = record.bestLatencySec;
    {
        FELIX_SPAN("tuner.measure", "tuner");
        obs::ScopedTimerMs timer(
            registry.counter("tuner.measure_ms"));
        // Measurements are pure given (features, device, seed), so
        // preassign one seed per candidate and measure in parallel;
        // the bookkeeping below replays the results in candidate
        // order, keeping logs and model updates jobs-invariant.
        const size_t numCandidates = result.toMeasure.size();
        const uint64_t seedBase = measureSeed_;
        measureSeed_ += numCandidates;
        std::vector<double> latencies(numCandidates, 0.0);
        parallelFor("tuner.measure_candidate", numCandidates,
                    [&](size_t i) {
                        latencies[i] = sim::measureKernel(
                            result.toMeasure[i].rawFeatures, device_,
                            seedBase + i);
                    });
        totalMeasurements_ += static_cast<int>(numCandidates);
        registry.counter("tuner.measurements")
            .add(static_cast<double>(numCandidates));
        for (size_t i = 0; i < numCandidates; ++i) {
            const optim::Candidate &candidate = result.toMeasure[i];
            const double latency = latencies[i];
            clockSec_ += options_.clock.secPerMeasurement;
            record.strategy->observe(candidate, latency);
            roundRecord.candidates.push_back(
                {costmodel::CostModel::latencyOf(
                     candidate.predictedScore),
                 latency});
            if (!options_.recordLogPath.empty()) {
                TuneRecord logEntry;
                logEntry.taskHash =
                    record.task.subgraph.structuralHash();
                logEntry.taskLabel = record.task.exampleLabel;
                logEntry.sketchIndex = candidate.sketchIndex;
                logEntry.scheduleVars = candidate.x;
                logEntry.latencySec = latency;
                logEntry.clockSec = clockSec_;
                appendRecord(options_.recordLogPath, logEntry);
            }
            if (latency < record.bestLatencySec) {
                record.bestLatencySec = latency;
                record.bestCandidate = candidate;
            }
            costmodel::Sample sample;
            sample.rawFeatures = candidate.rawFeatures;
            sample.latencySec = latency;
            fresh.push_back(std::move(sample));
            timeline_.push_back({clockSec_, networkLatency()});
        }
    }
    // Fine-tune on the fresh measurements plus a replay batch from
    // earlier rounds, so the model adapts to this network's tasks
    // without forgetting the rest of the search space.
    for (const costmodel::Sample &sample : fresh)
        history_.push_back(sample);
    std::vector<costmodel::Sample> batch = fresh;
    for (int i = 0; i < 64 && !history_.empty(); ++i)
        batch.push_back(history_[rng_.index(history_.size())]);
    {
        FELIX_SPAN("tuner.finetune", "tuner");
        obs::ScopedTimerMs timer(
            registry.counter("tuner.finetune_ms"));
        roundRecord.finetuneLoss =
            model_.finetune(batch, options_.finetuneSteps);
    }
    if (history_.size() > 8192)
        history_.erase(history_.begin(),
                       history_.begin() + history_.size() / 2);

    ++record.rounds;
    if (record.bestLatencySec >= prevBest * 0.995)
        ++record.stagnantRounds;
    else
        record.stagnantRounds = 0;

    timeline_.push_back({clockSec_, networkLatency()});

    ++roundIndex_;
    const double networkLatencySec =
        timeline_.back().networkLatencySec;
    registry.counter("tuner.rounds").add(1.0);
    registry.gauge("tuner.network_latency_ms")
        .set(networkLatencySec * 1e3);
    registry.gauge("tuner.clock_sec").set(clockSec_);
    const double wallMs =
        static_cast<double>(obs::Tracer::nowUs() - roundStartUs) /
        1000.0;
    registry.histogram("tuner.round_latency_ms").observe(wallMs);

    if (roundLogger_.enabled()) {
        roundRecord.bestLatencySec = record.bestLatencySec;
        roundRecord.networkLatencySec = networkLatencySec;
        roundRecord.clockSec = clockSec_;
        roundRecord.wallMs = wallMs;
        roundLogger_.append(roundRecord);
    }
}

void
GraphTuner::tuneRounds(int n_rounds)
{
    for (int round = 0; round < n_rounds; ++round)
        tuneOneRound();
}

void
GraphTuner::tuneUntil(double budget_sec)
{
    while (clockSec_ < budget_sec)
        tuneOneRound();
}

} // namespace tuner
} // namespace felix
