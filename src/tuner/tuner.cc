#include "tuner/tuner.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "features/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/gpu_model.h"
#include "support/logging.h"
#include "support/parallel.h"

namespace felix {
namespace tuner {

const char *
strategyName(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::FelixGradient: return "Felix";
      case StrategyKind::AnsorTenSet: return "Ansor-TenSet";
    }
    return "?";
}

GraphTuner::GraphTuner(std::vector<graph::Task> tasks,
                       costmodel::CostModel model,
                       sim::DeviceKind device, TunerOptions options)
    : model_(std::move(model)), device_(sim::deviceConfig(device)),
      options_(std::move(options)), rng_(options_.seed),
      roundLogger_(options_.roundLogPath)
{
    FELIX_CHECK(!tasks.empty() || options_.allowEmptyTasks,
                "tuner needs at least one task");
    if (options_.numThreads > 0)
        setGlobalJobs(options_.numThreads);
    FELIX_SPAN("tuner.setup", "tuner");
    for (graph::Task &task : tasks)
        initTask(std::move(task));
    timeline_.push_back({0.0, networkLatency()});
}

std::unique_ptr<optim::SearchStrategy>
makeStrategy(StrategyKind kind, const graph::Task &task,
             const optim::GradSearchOptions &grad,
             const evolutionary::EvoSearchOptions &evo)
{
    if (kind == StrategyKind::FelixGradient)
        return std::make_unique<optim::GradientSearch>(task.subgraph,
                                                       grad);
    return std::make_unique<evolutionary::EvolutionarySearch>(
        task.subgraph, evo);
}

void
seedTrivialSchedule(TaskRecord &record,
                    const sim::DeviceConfig &device,
                    uint64_t measure_seed)
{
    const auto &sched = record.strategy->sketches().front();
    std::vector<std::string> names;
    for (const auto &domain : sched.vars)
        names.push_back(domain.name);
    std::vector<double> ones(sched.vars.size(), 1.0);
    auto rawFeatures = features::concreteFeatures(sched.program,
                                                  names, ones);
    record.bestLatencySec =
        sim::measureKernel(rawFeatures, device, measure_seed);
    record.bestCandidate.sketchIndex = 0;
    record.bestCandidate.x = ones;
    record.bestCandidate.rawFeatures = std::move(rawFeatures);
}

void
GraphTuner::initTask(graph::Task task)
{
    TaskRecord record;
    record.task = std::move(task);
    record.strategy = makeStrategy(options_.strategy, record.task,
                                   options_.grad, options_.evo);
    const uint64_t hash = record.task.subgraph.structuralHash();
    auto pending = pendingRestore_.find(hash);
    if (pending != pendingRestore_.end()) {
        // Checkpoint overlay: the restored state already includes
        // the initial trivial-schedule measurement, and the
        // restored measureSeed_ stream position sits past it, so
        // measuring again here would desynchronize the seed stream.
        PendingTaskState &state = pending->second;
        record.rounds = state.rounds;
        record.stagnantRounds = state.stagnantRounds;
        record.bestLatencySec = state.bestLatencySec;
        record.bestCandidate = std::move(state.bestCandidate);
        std::istringstream blob(state.strategyBlob);
        if (!record.strategy->loadState(blob))
            warn("tuner: malformed strategy state for task ",
                 record.task.exampleLabel, "; starting it fresh");
        pendingRestore_.erase(pending);
    } else {
        seedTrivialSchedule(record, device_, measureSeed_++);
    }
    tasks_.push_back(std::move(record));
}

int
GraphTuner::addTask(graph::Task task)
{
    FELIX_SPAN("tuner.add_task", "tuner");
    initTask(std::move(task));
    return static_cast<int>(tasks_.size()) - 1;
}

bool
GraphTuner::seedBest(int task_index, int sketch_index,
                     const std::vector<double> &schedule_vars,
                     double latency_sec)
{
    if (task_index < 0 ||
        task_index >= static_cast<int>(tasks_.size()))
        return false;
    TaskRecord &record = tasks_[task_index];
    const auto &sketches = record.strategy->sketches();
    if (sketch_index < 0 ||
        sketch_index >= static_cast<int>(sketches.size()))
        return false;
    const auto &sched = sketches[sketch_index];
    if (schedule_vars.size() != sched.vars.size())
        return false;
    if (!(latency_sec < record.bestLatencySec))
        return false;
    std::vector<std::string> names;
    for (const auto &domain : sched.vars)
        names.push_back(domain.name);
    auto rawFeatures = features::concreteFeatures(
        sched.program, names, schedule_vars);
    record.bestLatencySec = latency_sec;
    record.bestCandidate.sketchIndex = sketch_index;
    record.bestCandidate.x = schedule_vars;
    record.bestCandidate.rawFeatures = std::move(rawFeatures);
    record.bestCandidate.predictedScore = 0.0;
    return true;
}

double
GraphTuner::networkLatency() const
{
    double total = options_.graphExecOverheadSec;
    for (const TaskRecord &record : tasks_)
        total += record.task.weight * record.bestLatencySec;
    return total;
}

int
GraphTuner::selectNextTask()
{
    // First pass: visit every task once.
    for (size_t i = 0; i < tasks_.size(); ++i) {
        if (tasks_[i].rounds == 0)
            return static_cast<int>(i);
    }
    // Ansor's task scheduler: spend rounds where the most network
    // time remains, backing off tasks that stopped improving.
    int best = 0;
    double bestScore = -1.0;
    for (size_t i = 0; i < tasks_.size(); ++i) {
        const TaskRecord &record = tasks_[i];
        double share = record.task.weight * record.bestLatencySec;
        double backoff =
            std::pow(0.5, std::min(6, record.stagnantRounds));
        double score = share * backoff;
        if (score > bestScore) {
            bestScore = score;
            best = static_cast<int>(i);
        }
    }
    return best;
}

void
GraphTuner::tuneOneRound()
{
    tuneTaskRound(selectNextTask());
}

RoundOutcome
runTaskRound(TaskRecord &record, const RoundEnv &env)
{
    FELIX_SPAN("tuner.round", "tuner");
    FELIX_CHECK(env.model != nullptr && env.history != nullptr &&
                    env.rng != nullptr && env.device != nullptr &&
                    env.measureSeed,
                "runTaskRound: incomplete round environment");
    auto &registry = obs::MetricsRegistry::instance();
    const int64_t roundStartUs = obs::Tracer::nowUs();

    RoundOutcome outcome;
    double clockSec = env.clockSec;

    obs::RoundRecord &roundRecord = outcome.record;
    roundRecord.round = env.roundIndex;
    roundRecord.taskLabel = record.task.exampleLabel;
    roundRecord.taskHash = record.task.subgraph.structuralHash();
    roundRecord.strategy = strategyName(env.strategy);

    optim::RoundResult result;
    {
        FELIX_SPAN("tuner.search", "tuner");
        obs::ScopedTimerMs timer(
            registry.counter("tuner.search_ms"));
        result = record.strategy->round(*env.model, *env.rng);
    }
    roundRecord.seedsLaunched = result.trace.seedsLaunched;
    roundRecord.numPredictions = result.trace.numPredictions;
    roundRecord.roundingAttempts = result.trace.roundingAttempts;
    roundRecord.roundingInvalid = result.trace.roundingInvalid;

    // Advance the virtual clock for the search phase.
    double predFactor = (env.strategy == StrategyKind::FelixGradient)
                            ? env.clock.gradStepFactor
                            : 1.0;
    clockSec += env.clock.roundOverheadSec +
                result.trace.numPredictions *
                    env.clock.secPerPrediction * predFactor;

    // Measure the proposed candidates, update the best schedule and
    // fine-tune the cost model with the fresh measurements.
    std::vector<costmodel::Sample> fresh;
    double prevBest = record.bestLatencySec;
    {
        FELIX_SPAN("tuner.measure", "tuner");
        obs::ScopedTimerMs timer(
            registry.counter("tuner.measure_ms"));
        // Measurements are pure given (features, device, seed), so
        // preassign one seed per candidate and measure in parallel;
        // the bookkeeping below replays the results in candidate
        // order, keeping logs and model updates jobs-invariant.
        const size_t numCandidates = result.toMeasure.size();
        std::vector<double> latencies(numCandidates, 0.0);
        parallelFor("tuner.measure_candidate", numCandidates,
                    [&](size_t i) {
                        latencies[i] = sim::measureKernel(
                            result.toMeasure[i].rawFeatures,
                            *env.device, env.measureSeed(i));
                    });
        outcome.measured = static_cast<int>(numCandidates);
        registry.counter("tuner.measurements")
            .add(static_cast<double>(numCandidates));
        for (size_t i = 0; i < numCandidates; ++i) {
            const optim::Candidate &candidate = result.toMeasure[i];
            const double latency = latencies[i];
            clockSec += env.clock.secPerMeasurement;
            record.strategy->observe(candidate, latency);
            roundRecord.candidates.push_back(
                {costmodel::CostModel::latencyOf(
                     candidate.predictedScore),
                 latency});
            if (!env.recordLogPath.empty() || env.collectRecords) {
                TuneRecord logEntry;
                logEntry.taskHash =
                    record.task.subgraph.structuralHash();
                logEntry.taskLabel = record.task.exampleLabel;
                logEntry.sketchIndex = candidate.sketchIndex;
                logEntry.scheduleVars = candidate.x;
                logEntry.latencySec = latency;
                logEntry.clockSec = clockSec;
                if (!env.recordLogPath.empty())
                    appendRecord(env.recordLogPath, logEntry);
                if (env.collectRecords)
                    outcome.records.push_back(std::move(logEntry));
            }
            if (latency < record.bestLatencySec) {
                record.bestLatencySec = latency;
                record.bestCandidate = candidate;
            }
            costmodel::Sample sample;
            sample.rawFeatures = candidate.rawFeatures;
            sample.latencySec = latency;
            fresh.push_back(std::move(sample));
            if (env.onMeasured)
                env.onMeasured(clockSec);
        }
    }
    // Fine-tune on the fresh measurements plus a replay batch from
    // earlier rounds, so the model adapts to this network's tasks
    // without forgetting the rest of the search space.
    std::vector<costmodel::Sample> &history = *env.history;
    for (const costmodel::Sample &sample : fresh)
        history.push_back(sample);
    std::vector<costmodel::Sample> batch = fresh;
    for (int i = 0; i < 64 && !history.empty(); ++i)
        batch.push_back(history[env.rng->index(history.size())]);
    {
        FELIX_SPAN("tuner.finetune", "tuner");
        obs::ScopedTimerMs timer(
            registry.counter("tuner.finetune_ms"));
        roundRecord.finetuneLoss =
            env.model->finetune(batch, env.finetuneSteps);
    }
    if (history.size() > 8192)
        history.erase(history.begin(),
                      history.begin() + history.size() / 2);

    ++record.rounds;
    if (record.bestLatencySec >= prevBest * 0.995)
        ++record.stagnantRounds;
    else
        record.stagnantRounds = 0;

    const double networkLatencySec =
        env.networkLatency
            ? env.networkLatency()
            : record.task.weight * record.bestLatencySec;
    registry.counter("tuner.rounds").add(1.0);
    registry.gauge("tuner.network_latency_ms")
        .set(networkLatencySec * 1e3);
    registry.gauge("tuner.clock_sec").set(clockSec);
    const double wallMs =
        static_cast<double>(obs::Tracer::nowUs() - roundStartUs) /
        1000.0;
    registry.histogram("tuner.round_latency_ms").observe(wallMs);

    roundRecord.bestLatencySec = record.bestLatencySec;
    roundRecord.networkLatencySec = networkLatencySec;
    roundRecord.clockSec = clockSec;
    // wallMs is the one nondeterministic round-record field; shard
    // mode zeroes it so round logs merge byte-identically.
    roundRecord.wallMs = env.emitWall ? wallMs : 0.0;

    outcome.clockSec = clockSec;
    return outcome;
}

void
GraphTuner::tuneTaskRound(int task_index)
{
    FELIX_CHECK(task_index >= 0 &&
                    task_index < static_cast<int>(tasks_.size()),
                "tuneTaskRound: bad task index");
    TaskRecord &record = tasks_[task_index];

    RoundEnv env;
    env.model = &model_;
    env.history = &history_;
    env.rng = &rng_;
    env.clockSec = clockSec_;
    env.clock = options_.clock;
    env.device = &device_;
    env.strategy = options_.strategy;
    env.finetuneSteps = options_.finetuneSteps;
    env.roundIndex = roundIndex_;
    env.recordLogPath = options_.recordLogPath;
    // Preassign a window of the global measurement-seed stream; the
    // window is consumed below whether or not latencies improved.
    const uint64_t seedBase = measureSeed_;
    env.measureSeed = [seedBase](size_t i) { return seedBase + i; };
    env.onMeasured = [this](double clock) {
        timeline_.push_back({clock, networkLatency()});
    };
    env.networkLatency = [this] { return networkLatency(); };

    RoundOutcome outcome = runTaskRound(record, env);

    measureSeed_ += static_cast<uint64_t>(outcome.measured);
    totalMeasurements_ += outcome.measured;
    clockSec_ = outcome.clockSec;
    timeline_.push_back({clockSec_, networkLatency()});
    ++roundIndex_;
    if (roundLogger_.enabled())
        roundLogger_.append(outcome.record);
}

void
GraphTuner::saveState(std::ostream &os) const
{
    os.precision(17);
    os << "felix-tuner-state v1\n";
    rng_.saveState(os);
    os << clockSec_ << " " << measureSeed_ << " "
       << totalMeasurements_ << " " << roundIndex_ << "\n";
    os << "history " << history_.size() << "\n";
    for (const costmodel::Sample &sample : history_) {
        os << sample.latencySec << " " << sample.rawFeatures.size();
        for (double f : sample.rawFeatures)
            os << " " << f;
        os << "\n";
    }
    model_.saveState(os);
    os << "tasks " << tasks_.size() << "\n";
    for (const TaskRecord &record : tasks_) {
        os << record.task.subgraph.structuralHash() << " "
           << record.rounds << " " << record.stagnantRounds << " "
           << record.bestLatencySec << "\n";
        optim::writeCandidate(os, record.bestCandidate);
        // Strategy internals as a length-framed opaque blob, so the
        // loader can park it unparsed until the task re-registers.
        std::ostringstream blob;
        record.strategy->saveState(blob);
        const std::string text = blob.str();
        os << "strategy " << text.size() << "\n" << text;
    }
    os << "end-tuner\n";
}

bool
GraphTuner::loadState(std::istream &is)
{
    std::string tag, version;
    if (!(is >> tag >> version) || tag != "felix-tuner-state" ||
        version != "v1")
        return false;
    Rng rng(0);
    if (!rng.loadState(is))
        return false;
    double clockSec = 0.0;
    uint64_t measureSeed = 0;
    int totalMeasurements = 0;
    int roundIndex = 0;
    if (!(is >> clockSec >> measureSeed >> totalMeasurements >>
          roundIndex))
        return false;
    std::string word;
    size_t historySize = 0;
    if (!(is >> word >> historySize) || word != "history" ||
        historySize > (size_t{1} << 20))
        return false;
    std::vector<costmodel::Sample> history(historySize);
    for (costmodel::Sample &sample : history) {
        size_t numFeatures = 0;
        if (!(is >> sample.latencySec >> numFeatures) ||
            numFeatures > 65536)
            return false;
        sample.rawFeatures.resize(numFeatures);
        for (double &f : sample.rawFeatures) {
            if (!(is >> f))
                return false;
        }
    }
    auto model = costmodel::CostModel::loadState(is);
    if (!model)
        return false;
    size_t numTasks = 0;
    if (!(is >> word >> numTasks) || word != "tasks" ||
        numTasks > 65536)
        return false;
    std::unordered_map<uint64_t, PendingTaskState> pending;
    for (size_t t = 0; t < numTasks; ++t) {
        uint64_t hash = 0;
        PendingTaskState state;
        if (!(is >> hash >> state.rounds >> state.stagnantRounds >>
              state.bestLatencySec))
            return false;
        if (!optim::readCandidate(is, state.bestCandidate))
            return false;
        size_t blobSize = 0;
        if (!(is >> word >> blobSize) || word != "strategy" ||
            blobSize > (size_t{1} << 24))
            return false;
        is.get();   // the newline framing the raw blob
        state.strategyBlob.resize(blobSize);
        if (blobSize > 0 &&
            !is.read(&state.strategyBlob[0],
                     static_cast<std::streamsize>(blobSize)))
            return false;
        pending[hash] = std::move(state);
    }
    if (!(is >> word) || word != "end-tuner")
        return false;

    // All parsed: commit.
    rng_ = rng;
    clockSec_ = clockSec;
    measureSeed_ = measureSeed;
    totalMeasurements_ = totalMeasurements;
    roundIndex_ = roundIndex;
    history_ = std::move(history);
    model_ = std::move(*model);
    pendingRestore_ = std::move(pending);
    // Overlay tasks that were registered before loadState (the
    // serving daemon normally loads before any task registers, so
    // this loop is usually empty).
    for (TaskRecord &record : tasks_) {
        const uint64_t hash = record.task.subgraph.structuralHash();
        auto it = pendingRestore_.find(hash);
        if (it == pendingRestore_.end())
            continue;
        PendingTaskState &state = it->second;
        record.rounds = state.rounds;
        record.stagnantRounds = state.stagnantRounds;
        record.bestLatencySec = state.bestLatencySec;
        record.bestCandidate = std::move(state.bestCandidate);
        std::istringstream blob(state.strategyBlob);
        if (!record.strategy->loadState(blob))
            warn("tuner: malformed strategy state for task ",
                 record.task.exampleLabel);
        pendingRestore_.erase(it);
    }
    return true;
}

void
GraphTuner::tuneRounds(int n_rounds)
{
    for (int round = 0; round < n_rounds; ++round)
        tuneOneRound();
}

void
GraphTuner::tuneUntil(double budget_sec)
{
    while (clockSec_ < budget_sec)
        tuneOneRound();
}

} // namespace tuner
} // namespace felix
