#include "obs/trace.h"

#include <chrono>
#include <fstream>
#include <thread>
#include <unordered_map>

#include "obs/json.h"
#include "support/logging.h"

namespace felix {
namespace obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {

/** Dense per-thread ids so the trace viewer shows small numbers. */
int
denseThreadId()
{
    static std::atomic<int> next{1};
    thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

} // namespace

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

int64_t
Tracer::nowUs()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - processEpoch())
        .count();
}

void
Tracer::start(const std::string &path)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        path_ = path;
        events_.clear();
    }
    processEpoch();   // pin the clock epoch before the first span
    enabled_.store(true, std::memory_order_relaxed);
}

namespace {

thread_local uint64_t t_requestId = 0;

// Process-wide shard identity; atomics because signal-time flight
// dumps and pool workers read them concurrently with startup.
std::atomic<int> g_shardId{-1};
std::atomic<int> g_shardCount{0};

} // namespace

uint64_t
currentRequestId()
{
    return t_requestId;
}

void
setShardIdentity(int shard_id, int shard_count)
{
    g_shardId.store(shard_id, std::memory_order_relaxed);
    g_shardCount.store(shard_count, std::memory_order_relaxed);
}

int
shardId()
{
    return g_shardId.load(std::memory_order_relaxed);
}

int
shardCount()
{
    return g_shardCount.load(std::memory_order_relaxed);
}

ScopedRequestId::ScopedRequestId(uint64_t id)
    : previous_(t_requestId)
{
    t_requestId = id;
}

ScopedRequestId::~ScopedRequestId()
{
    t_requestId = previous_;
}

void
Tracer::record(const char *name, const char *cat, int64_t start_us,
               int64_t dur_us, uint64_t req_id)
{
    const int tid = denseThreadId();
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back({name, cat, start_us, dur_us, tid, req_id});
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

std::string
Tracer::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const SpanEvent &event : events_) {
        if (!first)
            out += ",";
        first = false;
        out += "\n{\"name\":";
        out += jsonEscape(event.name);
        out += ",\"cat\":";
        out += jsonEscape(event.cat);
        out += ",\"ph\":\"X\",\"pid\":1,\"tid\":";
        out += std::to_string(event.tid);
        out += ",\"ts\":";
        out += std::to_string(event.startUs);
        out += ",\"dur\":";
        out += std::to_string(event.durUs);
        const int shard = shardId();
        if (event.reqId != 0 || shard >= 0) {
            out += ",\"args\":{";
            bool firstArg = true;
            if (event.reqId != 0) {
                // Correlation id as a string: full 64-bit values do
                // not survive JSON's double numbers.
                out += "\"req\":\"";
                out += std::to_string(event.reqId);
                out += "\"";
                firstArg = false;
            }
            if (shard >= 0) {
                if (!firstArg)
                    out += ",";
                out += "\"shard\":\"";
                out += std::to_string(shard);
                out += "\"";
            }
            out += "}";
        }
        out += "}";
    }
    out += "\n]}\n";
    return out;
}

bool
Tracer::stop()
{
    enabled_.store(false, std::memory_order_relaxed);
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        path = path_;
    }
    if (path.empty())
        return true;
    std::ofstream os(path);
    if (!os.good()) {
        warn("tracer: cannot write trace to ", path);
        return false;
    }
    os << toJson();
    inform("tracer: wrote ", eventCount(), " spans to ", path);
    return os.good();
}

} // namespace obs
} // namespace felix
