#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/logging.h"

namespace felix {
namespace obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out = "\"";
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += "\"";
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

bool
JsonValue::asBool() const
{
    FELIX_CHECK(kind_ == Kind::Bool, "json: not a bool");
    return boolValue_;
}

double
JsonValue::asNumber() const
{
    FELIX_CHECK(kind_ == Kind::Number, "json: not a number");
    return numberValue_;
}

const std::string &
JsonValue::asString() const
{
    FELIX_CHECK(kind_ == Kind::String, "json: not a string");
    return stringValue_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    FELIX_CHECK(kind_ == Kind::Array, "json: not an array");
    return arrayValue_;
}

const std::map<std::string, JsonValue> &
JsonValue::asObject() const
{
    FELIX_CHECK(kind_ == Kind::Object, "json: not an object");
    return objectValue_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = objectValue_.find(key);
    return it == objectValue_.end() ? nullptr : &it->second;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return (v && v->isNumber()) ? v->asNumber() : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return (v && v->isString()) ? v->asString() : fallback;
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.boolValue_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.numberValue_ = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.stringValue_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.arrayValue_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> m)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.objectValue_ = std::move(m);
    return v;
}

namespace {

/** Recursive-descent parser over a string view with an offset. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<JsonValue>
    parseDocument()
    {
        auto value = parseValue();
        if (!value)
            return std::nullopt;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing content");
        return value;
    }

  private:
    std::optional<JsonValue>
    fail(const std::string &what)
    {
        if (error_ && error_->empty()) {
            *error_ = what + " at offset " + std::to_string(pos_);
        }
        return std::nullopt;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    std::optional<JsonValue>
    parseValue()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            auto s = parseString();
            if (!s)
                return std::nullopt;
            return JsonValue::makeString(std::move(*s));
        }
        if (literal("true"))
            return JsonValue::makeBool(true);
        if (literal("false"))
            return JsonValue::makeBool(false);
        if (literal("null"))
            return JsonValue::makeNull();
        return parseNumber();
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"')) {
            fail("expected string");
            return std::nullopt;
        }
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("bad \\u escape");
                        return std::nullopt;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code += h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code += 10 + h - 'a';
                        else if (h >= 'A' && h <= 'F')
                            code += 10 + h - 'A';
                        else {
                            fail("bad \\u escape");
                            return std::nullopt;
                        }
                    }
                    // Encode as UTF-8 (no surrogate-pair support;
                    // telemetry strings are ASCII in practice).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail("bad escape");
                    return std::nullopt;
                }
            } else {
                out += c;
            }
        }
        fail("unterminated string");
        return std::nullopt;
    }

    std::optional<JsonValue>
    parseNumber()
    {
        size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                digits = true;
            }
        };
        eatDigits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            eatDigits();
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '-' || text_[pos_] == '+'))
                ++pos_;
            eatDigits();
        }
        if (!digits)
            return fail("expected value");
        return JsonValue::makeNumber(
            std::strtod(text_.substr(start, pos_ - start).c_str(),
                        nullptr));
    }

    std::optional<JsonValue>
    parseArray()
    {
        consume('[');
        std::vector<JsonValue> items;
        skipSpace();
        if (consume(']'))
            return JsonValue::makeArray(std::move(items));
        while (true) {
            auto item = parseValue();
            if (!item)
                return std::nullopt;
            items.push_back(std::move(*item));
            if (consume(']'))
                return JsonValue::makeArray(std::move(items));
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    std::optional<JsonValue>
    parseObject()
    {
        consume('{');
        std::map<std::string, JsonValue> members;
        skipSpace();
        if (consume('}'))
            return JsonValue::makeObject(std::move(members));
        while (true) {
            skipSpace();
            auto key = parseString();
            if (!key)
                return std::nullopt;
            if (!consume(':'))
                return fail("expected ':'");
            auto value = parseValue();
            if (!value)
                return std::nullopt;
            members.emplace(std::move(*key), std::move(*value));
            if (consume('}'))
                return JsonValue::makeObject(std::move(members));
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    return Parser(text, error).parseDocument();
}

} // namespace obs
} // namespace felix
