#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace felix {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    FELIX_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be sorted");
    buckets_ = std::make_unique<std::atomic<uint64_t>[]>(
        bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double value)
{
    // First bound >= value: bucket i counts (bounds[i-1], bounds[i]];
    // values above every bound land in the trailing overflow bucket.
    size_t bucket = std::lower_bound(bounds_.begin(), bounds_.end(),
                                     value) -
                    bounds_.begin();
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    detail::atomicAdd(sum_, value);
}

std::vector<uint64_t>
Histogram::counts() const
{
    std::vector<uint64_t> out(bounds_.size() + 1);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

double
Histogram::mean() const
{
    uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void
Histogram::reset()
{
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

std::vector<double>
MetricsRegistry::defaultLatencyBoundsMs()
{
    return {0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500,
            1000, 2000, 5000, 10000, 30000, 100000};
}

std::vector<double>
MetricsRegistry::defaultRequestLatencyBoundsUs()
{
    return {1,    2,    5,     10,    20,    50,     100,    200,
            500,  1000, 2000,  5000,  10000, 20000,  50000,  100000,
            200000, 500000, 1000000, 10000000};
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot) {
        if (bounds.empty())
            bounds = defaultLatencyBoundsMs();
        slot = std::make_unique<Histogram>(std::move(bounds));
    }
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &[name, counter] : counters_)
        snap.counters[name] = counter->value();
    for (const auto &[name, gauge] : gauges_)
        snap.gauges[name] = gauge->value();
    for (const auto &[name, histogram] : histograms_) {
        MetricsSnapshot::HistogramData data;
        data.bounds = histogram->bounds();
        data.counts = histogram->counts();
        data.count = histogram->count();
        data.sum = histogram->sum();
        snap.histograms[name] = std::move(data);
    }
    return snap;
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, histogram] : histograms_)
        histogram->reset();
}

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters) {
        if (!first)
            out += ",";
        first = false;
        out += jsonEscape(name) + ":" + jsonNumber(value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gauges) {
        if (!first)
            out += ",";
        first = false;
        out += jsonEscape(name) + ":" + jsonNumber(value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, data] : histograms) {
        if (!first)
            out += ",";
        first = false;
        out += jsonEscape(name) + ":{\"bounds\":[";
        for (size_t i = 0; i < data.bounds.size(); ++i) {
            if (i)
                out += ",";
            out += jsonNumber(data.bounds[i]);
        }
        out += "],\"counts\":[";
        for (size_t i = 0; i < data.counts.size(); ++i) {
            if (i)
                out += ",";
            out += std::to_string(data.counts[i]);
        }
        out += "],\"count\":" + std::to_string(data.count);
        out += ",\"sum\":" + jsonNumber(data.sum) + "}";
    }
    out += "}}";
    return out;
}

ScopedTimerMs::ScopedTimerMs(Counter &target)
    : target_(target), startUs_(Tracer::nowUs())
{
}

ScopedTimerMs::~ScopedTimerMs()
{
    target_.add(static_cast<double>(Tracer::nowUs() - startUs_) /
                1000.0);
}

} // namespace obs
} // namespace felix
