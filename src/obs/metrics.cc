#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "obs/json.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace felix {
namespace obs {

double
bucketQuantile(const std::vector<double> &bounds,
               const std::vector<uint64_t> &counts, double q)
{
    uint64_t total = 0;
    for (uint64_t c : counts)
        total += c;
    if (total == 0 || bounds.empty())
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const double target = q * static_cast<double>(total);
    double cumulative = 0.0;
    for (size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        const double next = cumulative +
                            static_cast<double>(counts[i]);
        if (next >= target) {
            if (i >= bounds.size())   // overflow bucket: clamp
                return bounds.back();
            const double lo =
                i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
            const double hi = bounds[i];
            const double fraction =
                (target - cumulative) / static_cast<double>(counts[i]);
            return lo + fraction * (hi - lo);
        }
        cumulative = next;
    }
    return bounds.back();
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    FELIX_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be sorted");
    buckets_ = std::make_unique<std::atomic<uint64_t>[]>(
        bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double value)
{
    // First bound >= value: bucket i counts (bounds[i-1], bounds[i]];
    // values above every bound land in the trailing overflow bucket.
    size_t bucket = std::lower_bound(bounds_.begin(), bounds_.end(),
                                     value) -
                    bounds_.begin();
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    detail::atomicAdd(sum_, value);
}

std::vector<double>
Histogram::logBounds(double lo, double hi, int per_decade)
{
    FELIX_CHECK(lo > 0.0 && hi > lo && per_decade > 0,
                "logBounds needs 0 < lo < hi and per_decade > 0");
    std::vector<double> bounds;
    // bounds[i] = lo * 10^(i / per_decade), computed from the
    // exponent each time so the ratio never drifts.
    for (int i = 0;; ++i) {
        double bound =
            lo * std::pow(10.0, static_cast<double>(i) /
                                    static_cast<double>(per_decade));
        bounds.push_back(bound);
        if (bound >= hi)
            break;
    }
    return bounds;
}

std::vector<uint64_t>
Histogram::counts() const
{
    std::vector<uint64_t> out(bounds_.size() + 1);
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

double
Histogram::quantile(double q) const
{
    return bucketQuantile(bounds_, counts(), q);
}

bool
Histogram::setContents(const std::vector<uint64_t> &counts,
                       uint64_t count, double sum)
{
    if (counts.size() != bounds_.size() + 1)
        return false;
    for (size_t i = 0; i < counts.size(); ++i)
        buckets_[i].store(counts[i], std::memory_order_relaxed);
    count_.store(count, std::memory_order_relaxed);
    sum_.store(sum, std::memory_order_relaxed);
    return true;
}

bool
Histogram::mergeFrom(const Histogram &other)
{
    if (bounds_ != other.bounds_)
        return false;
    // Bucket by bucket; concurrent observers may land between the
    // adds, which is the same relaxed guarantee observe() gives.
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].fetch_add(
            other.buckets_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    detail::atomicAdd(sum_, other.sum());
    return true;
}

double
Histogram::mean() const
{
    uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void
Histogram::reset()
{
    for (size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

std::vector<double>
MetricsRegistry::defaultLatencyBoundsMs()
{
    // 9 buckets per decade: adjacent-bound ratio 10^(1/9) ~ 1.29,
    // so every in-range quantile estimate is within ~29%.
    return Histogram::logBounds(0.1, 1e5, 9);
}

std::vector<double>
MetricsRegistry::defaultRequestLatencyBoundsUs()
{
    return Histogram::logBounds(1.0, 1e7, 9);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot) {
        if (bounds.empty())
            bounds = defaultLatencyBoundsMs();
        slot = std::make_unique<Histogram>(std::move(bounds));
    }
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &[name, counter] : counters_)
        snap.counters[name] = counter->value();
    for (const auto &[name, gauge] : gauges_)
        snap.gauges[name] = gauge->value();
    for (const auto &[name, histogram] : histograms_) {
        MetricsSnapshot::HistogramData data;
        data.bounds = histogram->bounds();
        data.counts = histogram->counts();
        data.count = histogram->count();
        data.sum = histogram->sum();
        snap.histograms[name] = std::move(data);
    }
    return snap;
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, histogram] : histograms_)
        histogram->reset();
}

void
MetricsRegistry::restore(const MetricsSnapshot &snapshot)
{
    resetAll();
    for (const auto &[name, value] : snapshot.counters)
        counter(name).add(value);
    for (const auto &[name, value] : snapshot.gauges)
        gauge(name).set(value);
    for (const auto &[name, data] : snapshot.histograms) {
        Histogram &h = histogram(name, data.bounds);
        if (!h.setContents(data.counts, data.count, data.sum))
            warn("metrics restore: bucket layout of ", name,
                 " changed; histogram dropped");
    }
}

double
MetricsSnapshot::HistogramData::quantile(double q) const
{
    return bucketQuantile(bounds, counts, q);
}

double
MetricsSnapshot::HistogramData::mean() const
{
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

bool
MetricsSnapshot::HistogramData::merge(const HistogramData &other)
{
    if (bounds != other.bounds || counts.size() != other.counts.size())
        return false;
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    count += other.count;
    sum += other.sum;
    return true;
}

bool
isWallClockMetricName(const std::string &name)
{
    auto endsWith = [&](const char *suffix) {
        const size_t n = std::strlen(suffix);
        return name.size() >= n &&
               name.compare(name.size() - n, n, suffix) == 0;
    };
    // Wall-clock timers and rates, plus host-configuration metrics
    // that legitimately differ between the processes of one sharded
    // run (pool size, SIMD width, tape-JIT availability and its
    // per-process compile counters) without affecting any result
    // byte — the JIT is bit-identical to the interpreter, but how
    // many tapes each process compiles depends on restart/shard
    // topology.
    return endsWith("_ms") || endsWith("_us") ||
           name.find("per_sec") != std::string::npos ||
           name == "threads.pool_size" ||
           name.compare(0, 5, "simd.") == 0 ||
           name.compare(0, 4, "jit.") == 0;
}

MetricsSnapshot
MetricsSnapshot::deterministic() const
{
    MetricsSnapshot out;
    for (const auto &[name, value] : counters) {
        if (!isWallClockMetricName(name))
            out.counters[name] = value;
    }
    for (const auto &[name, value] : gauges) {
        if (!isWallClockMetricName(name))
            out.gauges[name] = value;
    }
    for (const auto &[name, data] : histograms) {
        if (!isWallClockMetricName(name))
            out.histograms[name] = data;
    }
    return out;
}

void
MetricsSnapshot::mergeFrom(const MetricsSnapshot &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
    for (const auto &[name, value] : other.gauges)
        gauges[name] = value;
    for (const auto &[name, data] : other.histograms) {
        auto it = histograms.find(name);
        if (it == histograms.end())
            histograms[name] = data;
        else
            it->second.merge(data);
    }
}

void
MetricsSnapshot::writeText(std::ostream &os) const
{
    os.precision(17);
    os << "metrics v1\n";
    os << "counters " << counters.size() << "\n";
    for (const auto &[name, value] : counters)
        os << name << " " << value << "\n";
    os << "gauges " << gauges.size() << "\n";
    for (const auto &[name, value] : gauges)
        os << name << " " << value << "\n";
    os << "histograms " << histograms.size() << "\n";
    for (const auto &[name, data] : histograms) {
        os << name << " " << data.bounds.size() << " "
           << data.counts.size();
        for (double bound : data.bounds)
            os << " " << bound;
        for (uint64_t c : data.counts)
            os << " " << c;
        os << " " << data.count << " " << data.sum << "\n";
    }
}

bool
MetricsSnapshot::readText(std::istream &is, MetricsSnapshot *out)
{
    std::string tag, version;
    if (!(is >> tag >> version) || tag != "metrics" ||
        version != "v1")
        return false;
    MetricsSnapshot snap;
    size_t n = 0;
    std::string name;
    double value = 0.0;
    if (!(is >> tag >> n) || tag != "counters" || n > 100000)
        return false;
    for (size_t i = 0; i < n; ++i) {
        if (!(is >> name >> value))
            return false;
        snap.counters[name] = value;
    }
    if (!(is >> tag >> n) || tag != "gauges" || n > 100000)
        return false;
    for (size_t i = 0; i < n; ++i) {
        if (!(is >> name >> value))
            return false;
        snap.gauges[name] = value;
    }
    if (!(is >> tag >> n) || tag != "histograms" || n > 100000)
        return false;
    for (size_t i = 0; i < n; ++i) {
        HistogramData data;
        size_t numBounds = 0, numCounts = 0;
        if (!(is >> name >> numBounds >> numCounts) ||
            numBounds > 100000 || numCounts != numBounds + 1)
            return false;
        data.bounds.resize(numBounds);
        for (double &bound : data.bounds) {
            if (!(is >> bound))
                return false;
        }
        data.counts.resize(numCounts);
        for (uint64_t &c : data.counts) {
            if (!(is >> c))
                return false;
        }
        if (!(is >> data.count >> data.sum))
            return false;
        snap.histograms[name] = std::move(data);
    }
    *out = std::move(snap);
    return true;
}

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters) {
        if (!first)
            out += ",";
        first = false;
        out += jsonEscape(name) + ":" + jsonNumber(value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gauges) {
        if (!first)
            out += ",";
        first = false;
        out += jsonEscape(name) + ":" + jsonNumber(value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, data] : histograms) {
        if (!first)
            out += ",";
        first = false;
        out += jsonEscape(name) + ":{\"bounds\":[";
        for (size_t i = 0; i < data.bounds.size(); ++i) {
            if (i)
                out += ",";
            out += jsonNumber(data.bounds[i]);
        }
        out += "],\"counts\":[";
        for (size_t i = 0; i < data.counts.size(); ++i) {
            if (i)
                out += ",";
            out += std::to_string(data.counts[i]);
        }
        out += "],\"count\":" + std::to_string(data.count);
        out += ",\"sum\":" + jsonNumber(data.sum);
        // Quantile summaries so consumers (felix-tune
        // --metrics-out, felix-top, the serve log) never have to
        // re-derive them from the raw buckets.
        out += ",\"mean\":" + jsonNumber(data.mean());
        out += ",\"p50\":" + jsonNumber(data.quantile(0.50));
        out += ",\"p95\":" + jsonNumber(data.quantile(0.95));
        out += ",\"p99\":" + jsonNumber(data.quantile(0.99)) + "}";
    }
    out += "}}";
    return out;
}

ScopedTimerMs::ScopedTimerMs(Counter &target)
    : target_(target), startUs_(Tracer::nowUs())
{
}

ScopedTimerMs::~ScopedTimerMs()
{
    target_.add(static_cast<double>(Tracer::nowUs() - startUs_) /
                1000.0);
}

} // namespace obs
} // namespace felix
