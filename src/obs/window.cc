#include "obs/window.h"

#include <algorithm>

#include "support/logging.h"

namespace felix {
namespace obs {

SlidingWindowRate::SlidingWindowRate(size_t window)
    : slots_(std::max<size_t>(1, window), 0)
{
}

void
SlidingWindowRate::observe(bool success)
{
    if (occupied_ == slots_.size())
        successes_ -= slots_[head_];
    else
        ++occupied_;
    slots_[head_] = success ? 1 : 0;
    successes_ += slots_[head_];
    head_ = (head_ + 1) % slots_.size();
}

double
SlidingWindowRate::rate() const
{
    return occupied_ == 0 ? 0.0
                          : static_cast<double>(successes_) /
                                static_cast<double>(occupied_);
}

void
SlidingWindowRate::reset()
{
    std::fill(slots_.begin(), slots_.end(), 0);
    head_ = 0;
    occupied_ = 0;
    successes_ = 0;
}

EventRateWindow::EventRateWindow(int64_t window_us, int buckets)
    : windowUs_(std::max<int64_t>(1, window_us)),
      bucketUs_(std::max<int64_t>(
          1, windowUs_ / std::max(1, buckets))),
      buckets_(static_cast<size_t>(std::max(1, buckets)))
{
}

void
EventRateWindow::record(int64_t now_us)
{
    const int64_t index = now_us / bucketUs_;
    Bucket &bucket =
        buckets_[static_cast<size_t>(index) % buckets_.size()];
    if (bucket.index != index) {   // clock moved on: recycle slot
        bucket.index = index;
        bucket.count = 0;
    }
    ++bucket.count;
}

double
EventRateWindow::ratePerSec(int64_t now_us) const
{
    const int64_t head = now_us / bucketUs_;
    const int64_t oldest =
        head - static_cast<int64_t>(buckets_.size()) + 1;
    uint64_t events = 0;
    for (const Bucket &bucket : buckets_) {
        if (bucket.index >= oldest && bucket.index <= head)
            events += bucket.count;
    }
    const double windowSec =
        static_cast<double>(bucketUs_) *
        static_cast<double>(buckets_.size()) / 1e6;
    return static_cast<double>(events) / windowSec;
}

} // namespace obs
} // namespace felix
