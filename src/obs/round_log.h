/**
 * @file
 * Structured per-round tuning records (JSONL).
 *
 * Every round of core::Optimizer::optimizeAll (one
 * tuner::GraphTuner::tuneOneRound) appends one JSON object line
 * capturing what the search did and how well the cost model tracked
 * reality: seeds launched, constraint-violation rate after rounding,
 * predicted vs measured latency for every measured candidate, and
 * the cost-model fine-tune loss. A final {"type":"metrics"} line
 * snapshots the whole metrics registry when the run ends.
 *
 * The schema is documented in docs/observability.md;
 * felix-trace-summary aggregates these files (together with a
 * Chrome trace) into a human-readable breakdown.
 */
#ifndef FELIX_OBS_ROUND_LOG_H_
#define FELIX_OBS_ROUND_LOG_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace felix {
namespace obs {

/** Predicted-vs-measured latency of one measured candidate. */
struct CandidateOutcome
{
    double predictedSec = 0.0;   ///< cost-model predicted latency
    double measuredSec = 0.0;    ///< simulated hardware measurement
};

/** One tuning round of one task ({"type":"round"} JSONL line). */
struct RoundRecord
{
    int round = 0;                  ///< global round index (0-based)
    std::string taskLabel;
    uint64_t taskHash = 0;
    std::string strategy;           ///< "Felix" | "Ansor-TenSet"
    int seedsLaunched = 0;          ///< seeds / population size
    int numPredictions = 0;         ///< cost-model queries this round
    int roundingAttempts = 0;       ///< points rounded to integers
    int roundingInvalid = 0;        ///< rounded points violating g_ir
    std::vector<CandidateOutcome> candidates;
    double finetuneLoss = -1.0;     ///< mean MSE; < 0 when skipped
    double bestLatencySec = 0.0;    ///< task best after this round
    double networkLatencySec = 0.0; ///< whole-network latency after
    double clockSec = 0.0;          ///< virtual tuning clock
    double wallMs = 0.0;            ///< real time spent in the round

    /** Violation rate after rounding, in [0, 1]. */
    double violationRate() const;

    /** Serialize as one JSON object (no trailing newline). */
    std::string toJson() const;
};

/**
 * Append-only JSONL sink. Thread-safe; writes line-buffered so a
 * crashed run still leaves complete records behind.
 */
class RoundLogger
{
  public:
    /** Opens (truncates) @p path; empty path disables the logger. */
    explicit RoundLogger(const std::string &path);

    bool enabled() const { return os_.is_open(); }

    void append(const RoundRecord &record);

  private:
    std::mutex mutex_;
    std::ofstream os_;
};

/**
 * Append one {"type":"metrics"} line with a registry snapshot to a
 * JSONL file (typically the same file a RoundLogger wrote round
 * records to, once the run is over). False when the file could not
 * be written.
 */
bool appendMetricsSnapshot(const std::string &path,
                           const MetricsSnapshot &snapshot);

} // namespace obs
} // namespace felix

#endif // FELIX_OBS_ROUND_LOG_H_
