#include "obs/flight.h"

#include <algorithm>
#include <cstring>

#include <unistd.h>

#include "obs/trace.h"
#include "support/logging.h"

namespace felix {
namespace obs {

namespace {

/** Decimal-format @p value into @p out; returns chars written. */
size_t
formatU64(uint64_t value, char *out)
{
    char tmp[24];
    size_t n = 0;
    do {
        tmp[n++] = static_cast<char>('0' + value % 10);
        value /= 10;
    } while (value != 0);
    for (size_t i = 0; i < n; ++i)
        out[i] = tmp[n - 1 - i];
    return n;
}

size_t
formatI64(int64_t value, char *out)
{
    if (value < 0) {
        out[0] = '-';
        return 1 + formatU64(static_cast<uint64_t>(-value), out + 1);
    }
    return formatU64(static_cast<uint64_t>(value), out);
}

size_t
append(char *out, size_t at, const char *text)
{
    const size_t n = std::strlen(text);
    std::memcpy(out + at, text, n);
    return at + n;
}

} // namespace

const char *
flightKindName(FlightKind kind)
{
    switch (kind) {
      case FlightKind::Request: return "request";
      case FlightKind::CacheHit: return "cache_hit";
      case FlightKind::CacheMiss: return "cache_miss";
      case FlightKind::RoundPick: return "round_pick";
      case FlightKind::Persist: return "persist";
      case FlightKind::Signal: return "signal";
      case FlightKind::Shutdown: return "shutdown";
    }
    return "?";
}

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

FlightRecorder::FlightRecorder(size_t capacity)
    : ring_(std::max<size_t>(1, capacity))
{
}

void
FlightRecorder::record(FlightKind kind, uint64_t request_id,
                       uint64_t key, int64_t value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    FlightEvent &slot = ring_[next_ % ring_.size()];
    slot.seq = next_++;
    slot.wallUs = Tracer::nowUs();
    slot.kind = kind;
    slot.requestId = request_id;
    slot.key = key;
    slot.value = value;
}

std::vector<FlightEvent>
FlightRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<FlightEvent> out;
    const uint64_t retained =
        std::min<uint64_t>(next_, ring_.size());
    out.reserve(retained);
    for (uint64_t seq = next_ - retained; seq < next_; ++seq)
        out.push_back(ring_[seq % ring_.size()]);
    return out;
}

uint64_t
FlightRecorder::totalRecorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return next_;
}

uint64_t
FlightRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return next_ > ring_.size() ? next_ - ring_.size() : 0;
}

void
FlightRecorder::reset(size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.assign(std::max<size_t>(1, capacity), FlightEvent{});
    next_ = 0;
}

size_t
FlightRecorder::dumpTo(int fd) const
{
    // Deliberately lock-free: this runs from fatal-signal handlers
    // where taking mutex_ could deadlock. Reads of next_ and the
    // ring slots may tear against an in-flight record(); a crash
    // dump tolerates one garbled line.
    const int shard = shardId();
    if (shard >= 0) {
        // One header line so fleet-aggregated crash dumps stay
        // attributable to their shard (async-signal-safe, like the
        // event lines below).
        char line[64];
        size_t at = append(line, 0, "flight shard=");
        at += formatI64(shard, line + at);
        at = append(line, at, " of=");
        at += formatI64(shardCount(), line + at);
        line[at++] = '\n';
        if (::write(fd, line, at) != static_cast<ssize_t>(at))
            return 0;
    }
    const uint64_t total = next_;
    const uint64_t retained =
        std::min<uint64_t>(total, ring_.size());
    size_t written = 0;
    for (uint64_t seq = total - retained; seq < total; ++seq) {
        const FlightEvent &event = ring_[seq % ring_.size()];
        char line[192];
        size_t at = append(line, 0, "flight seq=");
        at += formatU64(event.seq, line + at);
        at = append(line, at, " t_us=");
        at += formatI64(event.wallUs, line + at);
        at = append(line, at, " kind=");
        at = append(line, at, flightKindName(event.kind));
        at = append(line, at, " req=");
        at += formatU64(event.requestId, line + at);
        at = append(line, at, " key=");
        at += formatU64(event.key, line + at);
        at = append(line, at, " value=");
        at += formatI64(event.value, line + at);
        line[at++] = '\n';
        if (::write(fd, line, at) != static_cast<ssize_t>(at))
            break;
        ++written;
    }
    return written;
}

} // namespace obs
} // namespace felix
