/**
 * @file
 * Sliding-window rates for live introspection.
 *
 * Two flavors, both O(1) per event:
 *
 *  - SlidingWindowRate: success rate over the last W *events*
 *    (e.g. the serving daemon's windowed cache hit rate). Driven
 *    purely by event order, so a replayed request trace reproduces
 *    the exact same window contents — the windowed hit rate is part
 *    of the deterministic admin `stats` response (docs/serving.md).
 *
 *  - EventRateWindow: events per second over a trailing wall-clock
 *    window, bucketed so old events age out without a queue. Takes
 *    explicit timestamps (testable with a fake clock); inherently
 *    wall-clock state, so it feeds gauges/the `metrics` admin op
 *    only, never deterministic responses.
 */
#ifndef FELIX_OBS_WINDOW_H_
#define FELIX_OBS_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace felix {
namespace obs {

/** Success rate over the last `window()` events (count-based). */
class SlidingWindowRate
{
  public:
    explicit SlidingWindowRate(size_t window);

    /** Record one event; evicts the oldest once the window fills. */
    void observe(bool success);

    size_t window() const { return slots_.size(); }
    /** Events currently in the window (== window() once full). */
    size_t occupied() const { return occupied_; }
    /** Successes currently in the window. */
    uint64_t successes() const { return successes_; }
    /** successes() / occupied(); 0 while empty. */
    double rate() const;

    void reset();

  private:
    std::vector<uint8_t> slots_;   ///< ring of 0/1 outcomes
    size_t head_ = 0;              ///< next slot to overwrite
    size_t occupied_ = 0;
    uint64_t successes_ = 0;
};

/**
 * Events/second over the trailing @p window_us microseconds,
 * approximated with @p buckets equal time slices: a bucket is
 * zeroed the first time the clock enters it, so stale counts age
 * out bucket-by-bucket and the reported rate is exact to within
 * one bucket width.
 */
class EventRateWindow
{
  public:
    explicit EventRateWindow(int64_t window_us, int buckets = 16);

    /** Count one event at time @p now_us (monotonic). */
    void record(int64_t now_us);

    /** Events/sec over the window ending at @p now_us. */
    double ratePerSec(int64_t now_us) const;

  private:
    struct Bucket
    {
        int64_t index = -1;   ///< absolute time-bucket index
        uint64_t count = 0;
    };

    int64_t windowUs_;
    int64_t bucketUs_;
    std::vector<Bucket> buckets_;   ///< ring keyed by index % size
};

} // namespace obs
} // namespace felix

#endif // FELIX_OBS_WINDOW_H_
