#include "obs/round_log.h"

#include "obs/json.h"
#include "support/logging.h"

namespace felix {
namespace obs {

double
RoundRecord::violationRate() const
{
    if (roundingAttempts <= 0)
        return 0.0;
    return static_cast<double>(roundingInvalid) /
           static_cast<double>(roundingAttempts);
}

std::string
RoundRecord::toJson() const
{
    std::string out = "{\"type\":\"round\"";
    out += ",\"round\":" + std::to_string(round);
    out += ",\"task\":" + jsonEscape(taskLabel);
    out += ",\"task_hash\":\"" + std::to_string(taskHash) + "\"";
    out += ",\"strategy\":" + jsonEscape(strategy);
    out += ",\"seeds\":" + std::to_string(seedsLaunched);
    out += ",\"predictions\":" + std::to_string(numPredictions);
    out += ",\"rounding_attempts\":" + std::to_string(roundingAttempts);
    out += ",\"rounding_invalid\":" + std::to_string(roundingInvalid);
    out += ",\"violation_rate\":" + jsonNumber(violationRate());
    out += ",\"candidates\":[";
    for (size_t i = 0; i < candidates.size(); ++i) {
        if (i)
            out += ",";
        out += "{\"predicted_sec\":" +
               jsonNumber(candidates[i].predictedSec) +
               ",\"measured_sec\":" +
               jsonNumber(candidates[i].measuredSec) + "}";
    }
    out += "]";
    out += ",\"finetune_loss\":" + jsonNumber(finetuneLoss);
    out += ",\"best_latency_sec\":" + jsonNumber(bestLatencySec);
    out += ",\"network_latency_sec\":" + jsonNumber(networkLatencySec);
    out += ",\"clock_sec\":" + jsonNumber(clockSec);
    out += ",\"wall_ms\":" + jsonNumber(wallMs);
    out += "}";
    return out;
}

RoundLogger::RoundLogger(const std::string &path)
{
    if (path.empty())
        return;
    os_.open(path, std::ios::trunc);
    if (!os_.good())
        warn("round log: cannot open ", path, " for writing");
}

void
RoundLogger::append(const RoundRecord &record)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    os_ << record.toJson() << "\n";
    os_.flush();
}

bool
appendMetricsSnapshot(const std::string &path,
                      const MetricsSnapshot &snapshot)
{
    if (path.empty())
        return true;
    std::ofstream os(path, std::ios::app);
    if (!os.good()) {
        warn("metrics snapshot: cannot append to ", path);
        return false;
    }
    // Tag the registry dump so JSONL consumers can tell the two
    // record shapes apart.
    os << "{\"type\":\"metrics\",\"registry\":" << snapshot.toJson()
       << "}\n";
    return os.good();
}

} // namespace obs
} // namespace felix
