/**
 * @file
 * Minimal JSON support for the telemetry subsystem: string escaping
 * for the writers (trace/metrics/round records) and a small
 * recursive-descent parser used by felix-trace-summary and the
 * telemetry tests to validate emitted files.
 *
 * This is intentionally tiny — objects, arrays, strings, doubles,
 * booleans and null, UTF-8 passed through untouched — not a general
 * JSON library.
 */
#ifndef FELIX_OBS_JSON_H_
#define FELIX_OBS_JSON_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace felix {
namespace obs {

/** Quote and escape @p s as a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Format a double as JSON (finite; non-finite mapped to null). */
std::string jsonNumber(double value);

/** A parsed JSON value. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors; checked, panic on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::map<std::string, JsonValue> &asObject() const;

    /** Object member lookup; null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Member as number/string with a default. */
    double numberOr(const std::string &key, double fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(std::map<std::string, JsonValue> m);

  private:
    Kind kind_ = Kind::Null;
    bool boolValue_ = false;
    double numberValue_ = 0.0;
    std::string stringValue_;
    std::vector<JsonValue> arrayValue_;
    std::map<std::string, JsonValue> objectValue_;
};

/**
 * Parse one JSON document. Returns nullopt on malformed input (and
 * reports the offending offset via @p error when non-null).
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

} // namespace obs
} // namespace felix

#endif // FELIX_OBS_JSON_H_
