/**
 * @file
 * Always-on flight recorder: a fixed-size ring of recent structured
 * events (request arrivals, cache hits/misses, background-round
 * picks, persists, signals) kept in memory at all times so a
 * wedged or crashing daemon can explain its last moments.
 *
 * Recording is one mutex-protected struct copy — no allocation, no
 * formatting — cheap enough to stay on for every request. The ring
 * is dumpable three ways: the admin `{"op":"dump"}` request
 * (docs/serving.md), snapshot() for in-process consumers, and
 * dumpTo(fd), a best-effort async-signal-safe text dump wired to
 * the fatal-signal handlers in felix-serve (lock-free reads of
 * plain fields; a torn in-flight event is acceptable in a crash
 * dump, and preferable to a handler that deadlocks on the mutex).
 */
#ifndef FELIX_OBS_FLIGHT_H_
#define FELIX_OBS_FLIGHT_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace felix {
namespace obs {

/** What happened; keep small and append-only (wire names below). */
enum class FlightKind : uint8_t {
    Request,     ///< request line arrived   (key = op ordinal)
    CacheHit,    ///< subgraph answered from cache (key = hash)
    CacheMiss,   ///< cold subgraph registered     (key = hash)
    RoundPick,   ///< background round picked task (key = hash)
    Persist,     ///< dirty cache entries persisted (value = count)
    Signal,      ///< termination signal observed  (value = signo)
    Shutdown,    ///< clean shutdown requested
};

const char *flightKindName(FlightKind kind);

/** One recorded event; all fields are plain for lock-free dumps. */
struct FlightEvent
{
    uint64_t seq = 0;        ///< global sequence number (0-based)
    int64_t wallUs = 0;      ///< Tracer::nowUs() at record time
    FlightKind kind = FlightKind::Request;
    uint64_t requestId = 0;  ///< correlation id; 0 = no request
    uint64_t key = 0;        ///< subgraph hash / op ordinal
    int64_t value = 0;       ///< kind-specific detail (count, us)
};

/** Fixed-capacity ring of the most recent FlightEvents. */
class FlightRecorder
{
  public:
    static constexpr size_t kDefaultCapacity = 1024;

    /** The process-wide recorder (the one felix-serve dumps). */
    static FlightRecorder &instance();

    explicit FlightRecorder(size_t capacity = kDefaultCapacity);

    void record(FlightKind kind, uint64_t request_id,
                uint64_t key = 0, int64_t value = 0);

    /** Buffered events, oldest first. */
    std::vector<FlightEvent> snapshot() const;

    /** Events ever recorded; min(total, capacity) are retained. */
    uint64_t totalRecorded() const;
    /** Events that fell off the ring: total - retained. */
    uint64_t dropped() const;
    size_t capacity() const { return ring_.size(); }

    /** Drop everything and restart seq at 0, resizing the ring. */
    void reset(size_t capacity);
    void reset() { reset(ring_.size()); }

    /**
     * Best-effort dump to a raw fd for fatal-signal handlers: plain
     * write(2) of hand-formatted lines, no locks, no allocation.
     * Returns the number of events written.
     */
    size_t dumpTo(int fd) const;

  private:
    mutable std::mutex mutex_;
    std::vector<FlightEvent> ring_;
    uint64_t next_ = 0;   ///< seq of the next event
};

} // namespace obs
} // namespace felix

#endif // FELIX_OBS_FLIGHT_H_
