/**
 * @file
 * Scoped-span tracer with Chrome trace_event JSON export.
 *
 * Spans are recorded as "complete" events ({"ph":"X"} with a start
 * timestamp and duration) into a thread-safe in-memory buffer and
 * written out as one JSON document loadable by chrome://tracing and
 * Perfetto. Collection is off by default: FELIX_SPAN costs a single
 * relaxed atomic load when the tracer is disabled, so instrumented
 * hot paths stay honest in benchmarks.
 *
 * Usage:
 *   obs::Tracer::instance().start("trace.json");
 *   { FELIX_SPAN("tuner.round", "tuner"); ... }
 *   obs::Tracer::instance().stop();     // writes the file
 *
 * Span naming convention (see docs/observability.md): dotted
 * "module.operation" names, lowercase, shared between the Felix and
 * Ansor search strategies so traces are directly comparable.
 */
#ifndef FELIX_OBS_TRACE_H_
#define FELIX_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace felix {
namespace obs {

/** One completed span ("X" event in the Chrome trace format). */
struct SpanEvent
{
    const char *name;   ///< static string: "tuner.round", ...
    const char *cat;    ///< static category: "tuner", "search", ...
    int64_t startUs;    ///< microseconds since tracer start
    int64_t durUs;      ///< span duration, microseconds
    int tid;            ///< small dense thread id
    uint64_t reqId;     ///< request-correlation id; 0 = none
};

/**
 * Request-correlation id of the request the current thread is
 * serving (0 when none). Spans opened while an id is active carry
 * it in their trace args, so `felix-trace-summary --req N` can
 * isolate one request's spans (docs/observability.md).
 */
uint64_t currentRequestId();

/**
 * Process-wide shard identity for fleet telemetry. Set once at
 * startup by `felix-tune --shard-id` / `felix-serve --shard-id`;
 * trace spans, flight-recorder dumps, and the serve log carry it so
 * aggregated multi-process telemetry stays attributable. The id is
 * deliberately kept OUT of the round log and tuning records — those
 * must merge byte-identically across shard counts
 * (docs/distributed.md).
 */
void setShardIdentity(int shard_id, int shard_count);
/** Configured shard id, or -1 when the process is unsharded. */
int shardId();
/** Configured shard count, or 0 when the process is unsharded. */
int shardCount();

/** RAII: set the thread's request id, restoring the old on exit. */
class ScopedRequestId
{
  public:
    explicit ScopedRequestId(uint64_t id);
    ~ScopedRequestId();

    ScopedRequestId(const ScopedRequestId &) = delete;
    ScopedRequestId &operator=(const ScopedRequestId &) = delete;

  private:
    uint64_t previous_;
};

/**
 * Process-wide span collector. All methods are thread-safe; the
 * enabled check is a relaxed atomic load so disabled tracing adds
 * near-zero overhead.
 */
class Tracer
{
  public:
    static Tracer &instance();

    /** Begin collecting; spans will be written to @p path on stop. */
    void start(const std::string &path);

    /**
     * Stop collecting and write the Chrome trace JSON file. False
     * when the sink path could not be written.
     */
    bool stop();

    /** Fast global check used by FELIX_SPAN. */
    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Record one completed span (called by ScopedSpan). */
    void record(const char *name, const char *cat, int64_t start_us,
                int64_t dur_us, uint64_t req_id = 0);

    /** Microseconds on the tracer clock (monotonic, from start()). */
    static int64_t nowUs();

    /** Serialize the current buffer as a Chrome trace JSON string. */
    std::string toJson() const;

    /** Drop all buffered events (tests). */
    void clear();

    /** Number of buffered span events. */
    size_t eventCount() const;

  private:
    Tracer() = default;

    static std::atomic<bool> enabled_;

    mutable std::mutex mutex_;
    std::vector<SpanEvent> events_;
    std::string path_;
};

/**
 * RAII span: records [construction, destruction) into the tracer
 * when tracing is enabled at construction time.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name, const char *cat = "felix")
        : name_(name), cat_(cat), active_(Tracer::enabled())
    {
        if (active_)
            startUs_ = Tracer::nowUs();
    }

    ~ScopedSpan()
    {
        if (active_) {
            int64_t end = Tracer::nowUs();
            Tracer::instance().record(name_, cat_, startUs_,
                                      end - startUs_,
                                      currentRequestId());
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_;
    const char *cat_;
    int64_t startUs_ = 0;
    bool active_;
};

#define FELIX_OBS_CONCAT2(a, b) a##b
#define FELIX_OBS_CONCAT(a, b) FELIX_OBS_CONCAT2(a, b)

/** Trace the enclosing scope as one span. */
#define FELIX_SPAN(...)                                               \
    ::felix::obs::ScopedSpan FELIX_OBS_CONCAT(felix_span_,           \
                                              __LINE__)(__VA_ARGS__)

} // namespace obs
} // namespace felix

#endif // FELIX_OBS_TRACE_H_
