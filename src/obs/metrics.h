/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket histograms.
 *
 * Metrics are always compiled in and always collected — an increment
 * is one atomic add, cheap enough for every layer of the tuning
 * pipeline — while *export* is opt-in (snapshot() / toJson()).
 * Handles returned by the registry are valid for the process
 * lifetime, so hot loops should look a metric up once and keep the
 * reference:
 *
 *   static obs::Counter &steps =
 *       obs::MetricsRegistry::instance().counter("search.adam_steps");
 *   steps.add(nSteps);
 *
 * The metric catalog and naming convention ("module.metric",
 * timing counters suffixed "_ms") are documented in
 * docs/observability.md.
 */
#ifndef FELIX_OBS_METRICS_H_
#define FELIX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace felix {
namespace obs {

namespace detail {

/** Lock-free add for pre-C++20-library atomics on double. */
inline void
atomicAdd(std::atomic<double> &target, double delta)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed))
        ;
}

} // namespace detail

/** Monotonically increasing value (counts, accumulated ms). */
class Counter
{
  public:
    void add(double delta = 1.0) { detail::atomicAdd(value_, delta); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Last-written value (losses, current latency). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Estimate the @p q quantile (q in [0, 1]) of a bucketed
 * distribution: bucket i covers (bounds[i-1], bounds[i]], the
 * trailing counts entry is the overflow bucket. The target rank is
 * located by cumulative count and linearly interpolated inside its
 * bucket, so for log-spaced bounds with adjacent ratio r the
 * estimate of any in-range quantile is within a factor r of the
 * true value (docs/observability.md "Quantile semantics").
 * Conventions: an empty distribution reports 0, the first bucket
 * interpolates down to min(0, bounds[0]), and ranks landing in the
 * overflow bucket clamp to bounds.back().
 */
double bucketQuantile(const std::vector<double> &bounds,
                      const std::vector<uint64_t> &counts, double q);

/**
 * Log-bucketed histogram with quantile estimation. Bucket i counts
 * observations with value <= bounds[i]; one extra overflow bucket
 * counts the rest. Bounds are fixed at creation (first histogram()
 * call wins). Two histograms with identical bounds are mergeable —
 * merging is associative and commutative, the property cross-shard
 * aggregation relies on.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    /**
     * Log-spaced bounds covering [lo, hi] with @p per_decade
     * buckets per factor of 10 (adjacent ratio 10^(1/per_decade)).
     * The quantile error bound is that ratio: per_decade 9 keeps
     * every in-range quantile estimate within ~29%.
     */
    static std::vector<double> logBounds(double lo, double hi,
                                         int per_decade);

    void observe(double value);

    /** Estimated @p q quantile of everything observed so far. */
    double quantile(double q) const;

    /**
     * Fold @p other into this histogram. Returns false (and leaves
     * this histogram untouched) when the bounds differ.
     */
    bool mergeFrom(const Histogram &other);

    const std::vector<double> &bounds() const { return bounds_; }
    /** Per-bucket counts; size() == bounds().size() + 1. */
    std::vector<uint64_t> counts() const;

    /**
     * Overwrite the bucket contents (checkpoint restore). False
     * when @p counts does not match the bucket layout.
     */
    bool setContents(const std::vector<uint64_t> &counts,
                     uint64_t count, double sum);
    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }
    double mean() const;
    void reset();

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** A point-in-time copy of every registered metric. */
struct MetricsSnapshot
{
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    struct HistogramData
    {
        std::vector<double> bounds;
        std::vector<uint64_t> counts;
        uint64_t count = 0;
        double sum = 0.0;

        double quantile(double q) const;
        double mean() const;

        /**
         * Fold @p other into this snapshot (same-bounds merge;
         * associative). False when the bounds differ.
         */
        bool merge(const HistogramData &other);
    };
    std::map<std::string, HistogramData> histograms;

    /** One JSON object {"counters":{...},...}. */
    std::string toJson() const;

    /**
     * The deterministic subset: every metric whose value is a pure
     * function of (inputs, seed) — wall-clock timers ("_ms"/"_us"
     * suffixes), rate gauges ("per_sec"), and host-configuration
     * gauges (thread-pool size, SIMD width) are dropped. This is
     * the byte-comparable slice the --shards merge and the
     * checkpoint/resume identity tests operate on
     * (docs/distributed.md "Metrics semantics").
     */
    MetricsSnapshot deterministic() const;

    /**
     * Fold @p other into this snapshot: counters add, histograms
     * merge bucket-wise (mismatched bounds are skipped), gauges are
     * overwritten by @p other (last-writer-wins, so callers fold
     * shards in round order).
     */
    void mergeFrom(const MetricsSnapshot &other);

    /** Exact text round trip (precision-17; checkpoint payloads). */
    void writeText(std::ostream &os) const;
    static bool readText(std::istream &is, MetricsSnapshot *out);
};

/**
 * True for metric names excluded from the deterministic subset:
 * wall-clock timers, rates, and host-configuration values.
 */
bool isWallClockMetricName(const std::string &name);

/** The process-wide registry. */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Get or create; names are independent per metric kind. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /**
     * Get or create a histogram. @p bounds is used only on creation;
     * when empty a default latency-ish scale (ms) is used.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds = {});

    MetricsSnapshot snapshot() const;

    /** Zero every metric (tests and per-run bench deltas). */
    void resetAll();

    /**
     * Reset the registry, then re-create every metric of
     * @p snapshot with its recorded value (checkpoint resume: the
     * registry continues exactly as the interrupted run left it).
     */
    void restore(const MetricsSnapshot &snapshot);

    /** Default bounds: 0.1ms .. 100s, 9 log buckets per decade. */
    static std::vector<double> defaultLatencyBoundsMs();

    /**
     * Microsecond-scale bounds (1us .. 10s) for request-latency
     * histograms on the serving path (serve.request_latency_us),
     * where cache hits answer far below the 0.1ms floor of the
     * tuning-scale default.
     */
    static std::vector<double> defaultRequestLatencyBoundsUs();

  private:
    MetricsRegistry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * RAII wall-clock timer adding elapsed milliseconds to a counter
 * (always on: keeps per-phase timing available without tracing).
 */
class ScopedTimerMs
{
  public:
    explicit ScopedTimerMs(Counter &target);
    ~ScopedTimerMs();

    ScopedTimerMs(const ScopedTimerMs &) = delete;
    ScopedTimerMs &operator=(const ScopedTimerMs &) = delete;

  private:
    Counter &target_;
    int64_t startUs_;
};

} // namespace obs
} // namespace felix

#endif // FELIX_OBS_METRICS_H_
