/**
 * @file
 * Crash-safe checkpoint files for the sharded tuner.
 *
 * A checkpoint is a single file: one ASCII header line
 *
 *   FELIXCKPT v1 <payload-bytes> <fnv1a-64-hex>\n
 *
 * followed by exactly <payload-bytes> of opaque payload. The header
 * makes every failure mode the torture tests exercise detectable:
 * a truncated file fails the length check, a flipped byte fails the
 * checksum, a flipped version byte fails the tag parse. Writes go
 * through a temp file + fsync + rename, so a crash mid-write leaves
 * either the old checkpoint or the new one, never a torn file
 * (docs/distributed.md "Checkpoint format").
 */
#ifndef FELIX_SHARD_CHECKPOINT_H_
#define FELIX_SHARD_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace felix {
namespace shard {

/** FNV-1a 64-bit hash of @p data. */
uint64_t fnv1a(const std::string &data);

/**
 * Atomically write header + @p payload to @p path (temp file in the
 * same directory, fsync, rename). False on any I/O failure.
 */
bool writeCheckpoint(const std::string &path,
                     const std::string &payload);

/**
 * Read and validate a checkpoint. nullopt when the file is missing,
 * the header is malformed, the payload is shorter than the header
 * promises, or the checksum does not match.
 */
std::optional<std::string> readCheckpoint(const std::string &path);

/**
 * The round numbers of every "<prefix><n>" file in @p dir, sorted
 * ascending. Validation is the caller's job (newest first, falling
 * back on corruption).
 */
std::vector<uint64_t> listCheckpoints(const std::string &dir,
                                      const std::string &prefix);

/** Best-effort mkdir -p (two levels are enough for shard dirs). */
bool ensureDir(const std::string &path);

/** Size of @p path in bytes; 0 when missing. */
uint64_t fileSize(const std::string &path);

/** Truncate @p path to @p size bytes, creating it when missing. */
bool truncateFile(const std::string &path, uint64_t size);

} // namespace shard
} // namespace felix

#endif // FELIX_SHARD_CHECKPOINT_H_
