#include "shard/merge.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "core/felix.h"
#include "obs/metrics.h"
#include "obs/round_log.h"
#include "shard/manifest.h"
#include "shard/shard.h"
#include "support/logging.h"
#include "tuner/records.h"

namespace felix {
namespace shard {

namespace {

std::vector<std::string>
readLines(const std::string &path)
{
    std::vector<std::string> lines;
    std::ifstream is(path);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(std::move(line));
    return lines;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os.good())
        return false;
    os << text;
    return os.good();
}

} // namespace

std::string
mergedRecordsPath(const std::string &dir)
{
    return dir + "/merged.records";
}

std::string
mergedRoundsPath(const std::string &dir)
{
    return dir + "/merged.rounds.jsonl";
}

std::string
mergedBestPath(const std::string &dir)
{
    return dir + "/merged.best";
}

std::string
mergedModulePath(const std::string &dir)
{
    return dir + "/merged.cfg";
}

std::string
mergedMetricsPath(const std::string &dir)
{
    return dir + "/merged.metrics";
}

std::optional<MergeResult>
mergeShards(const std::string &dir)
{
    // Load shard 0's manifest first: it names the shard count.
    auto first = loadManifest(shardManifestPath(dir, 0));
    if (!first) {
        warn("merge: cannot load ", shardManifestPath(dir, 0));
        return std::nullopt;
    }
    const int numShards = first->shards;
    std::vector<ShardManifest> manifests;
    manifests.push_back(std::move(*first));
    for (int i = 1; i < numShards; ++i) {
        auto manifest = loadManifest(shardManifestPath(dir, i));
        if (!manifest) {
            warn("merge: cannot load ",
                 shardManifestPath(dir, i));
            return std::nullopt;
        }
        if (manifest->shardId != i ||
            !manifestsCompatible(manifests.front(), *manifest)) {
            warn("merge: shard ", i,
                 " manifest does not match shard 0 (different "
                 "seed, schedule, or task table?)");
            return std::nullopt;
        }
        manifests.push_back(std::move(*manifest));
    }

    const ShardManifest &header = manifests.front();
    const long totalRounds =
        static_cast<long>(header.roundsPerTask) *
        static_cast<long>(header.tasks.size());

    struct RoundArtifacts
    {
        std::string records;   ///< raw record lines, "\n"-terminated
        std::string roundLine; ///< one round-log JSONL line
    };
    std::map<long, RoundArtifacts> byRound;
    std::map<int, ManifestBest> bestByTask;

    for (const ShardManifest &manifest : manifests) {
        if (!manifest.done) {
            warn("merge: shard ", manifest.shardId,
                 " is incomplete (no done line) — resume it first");
            return std::nullopt;
        }
        auto recordLines =
            readLines(shardRecordsPath(dir, manifest.shardId));
        auto roundLines =
            readLines(shardRoundsPath(dir, manifest.shardId));
        size_t recordAt = 0, roundAt = 0;
        long previousG = -1;
        for (const ManifestRound &round : manifest.rounds) {
            if (round.g <= previousG || round.g >= totalRounds ||
                round.roundsLines != 1 || round.recordsLines < 0) {
                warn("merge: shard ", manifest.shardId,
                     " manifest rounds are out of order");
                return std::nullopt;
            }
            previousG = round.g;
            if (recordAt + round.recordsLines >
                    recordLines.size() ||
                roundAt + 1 > roundLines.size()) {
                warn("merge: shard ", manifest.shardId,
                     " artifacts are shorter than its manifest "
                     "accounts for");
                return std::nullopt;
            }
            RoundArtifacts artifacts;
            for (int i = 0; i < round.recordsLines; ++i)
                artifacts.records +=
                    recordLines[recordAt++] + "\n";
            artifacts.roundLine = roundLines[roundAt++];
            if (!byRound.emplace(round.g, std::move(artifacts))
                     .second) {
                warn("merge: round ", round.g,
                     " appears in two shards — directories from "
                     "different runs?");
                return std::nullopt;
            }
        }
        if (recordAt != recordLines.size() ||
            roundAt != roundLines.size()) {
            warn("merge: shard ", manifest.shardId,
                 " artifacts have trailing lines beyond the "
                 "manifest accounting");
            return std::nullopt;
        }
        for (const ManifestBest &best : manifest.bests) {
            if (!bestByTask.emplace(best.index, best).second) {
                warn("merge: task ", best.index,
                     " claimed by two shards");
                return std::nullopt;
            }
        }
    }

    if (static_cast<long>(byRound.size()) != totalRounds) {
        warn("merge: covered ", byRound.size(), " of ",
             totalRounds, " rounds — a shard is missing rounds");
        return std::nullopt;
    }
    if (bestByTask.size() != header.tasks.size()) {
        warn("merge: covered ", bestByTask.size(), " of ",
             header.tasks.size(), " tasks");
        return std::nullopt;
    }

    // Fold metrics in ascending last-executed-round order so the
    // last-writer-wins gauges end on the same shard that executed
    // the run's final round (ties broken by shard id, which only
    // shards with no rounds at all can hit).
    std::vector<const ShardManifest *> byLastG;
    for (const ShardManifest &manifest : manifests)
        byLastG.push_back(&manifest);
    std::sort(byLastG.begin(), byLastG.end(),
              [](const ShardManifest *a, const ShardManifest *b) {
                  if (a->lastG != b->lastG)
                      return a->lastG < b->lastG;
                  return a->shardId < b->shardId;
              });
    obs::MetricsSnapshot merged;
    for (const ShardManifest *manifest : byLastG) {
        std::ifstream is(
            shardMetricsPath(dir, manifest->shardId));
        obs::MetricsSnapshot snapshot;
        if (!is.good() ||
            !obs::MetricsSnapshot::readText(is, &snapshot)) {
            warn("merge: cannot read ",
                 shardMetricsPath(dir, manifest->shardId));
            return std::nullopt;
        }
        merged.mergeFrom(snapshot);
    }

    // merged.records + merged.rounds.jsonl: global round order.
    std::string recordsText, roundsText;
    for (const auto &[g, artifacts] : byRound) {
        recordsText += artifacts.records;
        roundsText += artifacts.roundLine + "\n";
    }
    if (!writeFile(mergedRecordsPath(dir), recordsText) ||
        !writeFile(mergedRoundsPath(dir), roundsText)) {
        warn("merge: cannot write merged artifacts in ", dir);
        return std::nullopt;
    }
    if (!obs::appendMetricsSnapshot(mergedRoundsPath(dir), merged)) {
        warn("merge: cannot append the metrics line to ",
             mergedRoundsPath(dir));
        return std::nullopt;
    }
    {
        std::ofstream os(mergedMetricsPath(dir),
                         std::ios::binary | std::ios::trunc);
        if (!os.good()) {
            warn("merge: cannot write ", mergedMetricsPath(dir));
            return std::nullopt;
        }
        merged.writeText(os);
    }

    // merged.best + merged.cfg: per-task bests in task order.
    std::vector<tuner::TuneRecord> bestRecords;
    std::vector<TaskConfig> configs;
    double networkLatencySec = header.graphExecOverheadSec;
    for (const ManifestTask &task : header.tasks) {
        const ManifestBest &best = bestByTask.at(task.index);
        tuner::TuneRecord record;
        record.taskHash = task.hash;
        record.taskLabel = task.label;
        record.sketchIndex = best.sketchIndex;
        record.scheduleVars = best.vars;
        record.latencySec = best.latencySec;
        record.clockSec = best.clockSec;
        bestRecords.push_back(std::move(record));

        TaskConfig config;
        config.taskLabel = task.label;
        config.weight = task.weight;
        config.sketchIndex = best.sketchIndex;
        config.scheduleVars = best.vars;
        config.latencySec = best.latencySec;
        configs.push_back(std::move(config));
        networkLatencySec += task.weight * best.latencySec;
    }
    if (!writeFile(mergedBestPath(dir), ""))
        return std::nullopt;
    tuner::appendRecords(mergedBestPath(dir), bestRecords);
    CompiledModule::fromConfigs(std::move(configs),
                                networkLatencySec)
        .save(mergedModulePath(dir));

    MergeResult result;
    result.shards = numShards;
    result.rounds = totalRounds;
    result.tasks = header.tasks.size();
    result.networkLatencySec = networkLatencySec;
    return result;
}

} // namespace shard
} // namespace felix
