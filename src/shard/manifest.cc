#include "shard/manifest.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "support/logging.h"

namespace felix {
namespace shard {

namespace {

std::string
u64String(uint64_t value)
{
    return "\"" + std::to_string(value) + "\"";
}

uint64_t
parseU64(const obs::JsonValue &object, const std::string &key)
{
    const obs::JsonValue *value = object.find(key);
    if (value == nullptr || !value->isString())
        return 0;
    return std::strtoull(value->asString().c_str(), nullptr, 10);
}

} // namespace

std::string
manifestHeaderJson(const ShardManifest &manifest)
{
    std::string out = "{\"type\":\"header\",\"version\":1";
    out += ",\"seed\":" + u64String(manifest.seed);
    out += ",\"shards\":" + std::to_string(manifest.shards);
    out += ",\"shard_id\":" + std::to_string(manifest.shardId);
    out += ",\"rounds_per_task\":" +
           std::to_string(manifest.roundsPerTask);
    out += ",\"strategy\":" + obs::jsonEscape(manifest.strategy);
    out += ",\"device\":" + obs::jsonEscape(manifest.device);
    out += ",\"graph_exec_overhead_sec\":" +
           obs::jsonNumber(manifest.graphExecOverheadSec);
    out += ",\"tasks\":[";
    bool first = true;
    for (const ManifestTask &task : manifest.tasks) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"index\":" + std::to_string(task.index);
        out += ",\"hash\":" + u64String(task.hash);
        out += ",\"label\":" + obs::jsonEscape(task.label);
        out += ",\"weight\":" + std::to_string(task.weight) + "}";
    }
    out += "]}";
    return out;
}

std::string
manifestRoundJson(const ManifestRound &round)
{
    std::string out = "{\"type\":\"round\",\"g\":";
    out += std::to_string(round.g);
    out += ",\"task\":" + std::to_string(round.task);
    out += ",\"records_lines\":" + std::to_string(round.recordsLines);
    out += ",\"rounds_lines\":" + std::to_string(round.roundsLines);
    out += "}";
    return out;
}

std::string
manifestDoneJson(long last_g, const std::vector<ManifestBest> &bests)
{
    std::string out = "{\"type\":\"done\",\"last_g\":";
    out += std::to_string(last_g);
    out += ",\"bests\":[";
    bool first = true;
    for (const ManifestBest &best : bests) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"index\":" + std::to_string(best.index);
        out += ",\"sketch\":" + std::to_string(best.sketchIndex);
        out += ",\"latency_sec\":" + obs::jsonNumber(best.latencySec);
        out += ",\"clock_sec\":" + obs::jsonNumber(best.clockSec);
        out += ",\"vars\":[";
        bool firstVar = true;
        for (double v : best.vars) {
            if (!firstVar)
                out += ",";
            firstVar = false;
            out += obs::jsonNumber(v);
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

std::optional<ShardManifest>
loadManifest(const std::string &path)
{
    std::ifstream is(path);
    if (!is.good())
        return std::nullopt;
    ShardManifest manifest;
    bool sawHeader = false;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        auto parsed = obs::parseJson(line);
        if (!parsed || !parsed->isObject()) {
            warn("manifest ", path, ": malformed line");
            return std::nullopt;
        }
        const std::string type = parsed->stringOr("type", "");
        if (type == "header") {
            manifest.version = static_cast<int>(
                parsed->numberOr("version", 0));
            if (manifest.version != 1) {
                warn("manifest ", path, ": unsupported version ",
                     manifest.version);
                return std::nullopt;
            }
            manifest.seed = parseU64(*parsed, "seed");
            manifest.shards =
                static_cast<int>(parsed->numberOr("shards", 1));
            manifest.shardId =
                static_cast<int>(parsed->numberOr("shard_id", 0));
            manifest.roundsPerTask = static_cast<int>(
                parsed->numberOr("rounds_per_task", 0));
            manifest.strategy = parsed->stringOr("strategy", "");
            manifest.device = parsed->stringOr("device", "");
            manifest.graphExecOverheadSec =
                parsed->numberOr("graph_exec_overhead_sec", 0.0);
            if (const obs::JsonValue *tasks =
                    parsed->find("tasks")) {
                if (!tasks->isArray())
                    return std::nullopt;
                for (const obs::JsonValue &entry :
                     tasks->asArray()) {
                    ManifestTask task;
                    task.index = static_cast<int>(
                        entry.numberOr("index", 0));
                    task.hash = parseU64(entry, "hash");
                    task.label = entry.stringOr("label", "");
                    task.weight = static_cast<int>(
                        entry.numberOr("weight", 1));
                    manifest.tasks.push_back(std::move(task));
                }
            }
            sawHeader = true;
        } else if (type == "round") {
            ManifestRound round;
            round.g = static_cast<int>(parsed->numberOr("g", 0));
            round.task =
                static_cast<int>(parsed->numberOr("task", 0));
            round.recordsLines = static_cast<int>(
                parsed->numberOr("records_lines", 0));
            round.roundsLines = static_cast<int>(
                parsed->numberOr("rounds_lines", 0));
            manifest.rounds.push_back(round);
        } else if (type == "done") {
            manifest.done = true;
            manifest.lastG =
                static_cast<long>(parsed->numberOr("last_g", -1));
            if (const obs::JsonValue *bests =
                    parsed->find("bests")) {
                if (!bests->isArray())
                    return std::nullopt;
                for (const obs::JsonValue &entry :
                     bests->asArray()) {
                    ManifestBest best;
                    best.index = static_cast<int>(
                        entry.numberOr("index", 0));
                    best.sketchIndex = static_cast<int>(
                        entry.numberOr("sketch", 0));
                    best.latencySec =
                        entry.numberOr("latency_sec", 0.0);
                    best.clockSec =
                        entry.numberOr("clock_sec", 0.0);
                    if (const obs::JsonValue *vars =
                            entry.find("vars")) {
                        if (!vars->isArray())
                            return std::nullopt;
                        for (const obs::JsonValue &v :
                             vars->asArray())
                            best.vars.push_back(v.asNumber());
                    }
                    manifest.bests.push_back(std::move(best));
                }
            }
        } else {
            warn("manifest ", path, ": unknown line type '", type,
                 "'");
            return std::nullopt;
        }
    }
    if (!sawHeader)
        return std::nullopt;
    return manifest;
}

bool
manifestsCompatible(const ShardManifest &a, const ShardManifest &b)
{
    if (a.seed != b.seed || a.shards != b.shards ||
        a.roundsPerTask != b.roundsPerTask ||
        a.strategy != b.strategy ||
        a.graphExecOverheadSec != b.graphExecOverheadSec ||
        a.tasks.size() != b.tasks.size())
        return false;
    for (size_t i = 0; i < a.tasks.size(); ++i) {
        if (a.tasks[i].hash != b.tasks[i].hash ||
            a.tasks[i].weight != b.tasks[i].weight ||
            a.tasks[i].label != b.tasks[i].label)
            return false;
    }
    return true;
}

} // namespace shard
} // namespace felix
