#include "shard/shard.h"

#include <csignal>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include <unistd.h>

#include "obs/metrics.h"
#include "obs/round_log.h"
#include "shard/checkpoint.h"
#include "shard/manifest.h"
#include "support/logging.h"
#include "support/rng.h"
#include "tuner/records.h"

namespace felix {
namespace shard {

namespace {

// Domain-separation salts for the preassigned seed streams: the
// init measurement, per-candidate measurements, and the ownership
// mix must never collide for any (task, round, candidate).
constexpr uint64_t kInitSalt = 0x696e697400ull;
constexpr uint64_t kMeasureSalt = 0x6d65617300ull;
constexpr uint64_t kOwnerSalt = 0x73686172640aull;

uint64_t
initSeedAt(uint64_t seed, int task)
{
    return hashCombine(hashCombine(seed, kInitSalt),
                       static_cast<uint64_t>(task));
}

uint64_t
measureSeedAt(uint64_t seed, int task, int step, size_t candidate)
{
    return hashCombine(
        hashCombine(hashCombine(hashCombine(seed, kMeasureSalt),
                                static_cast<uint64_t>(task)),
                    static_cast<uint64_t>(step)),
        static_cast<uint64_t>(candidate));
}

/** Drop zero-valued entries: whether a never-incremented metric got
 *  registered at all depends on nondeterministic context (e.g.
 *  pretrained-cache hit vs miss before the run), so only metrics
 *  that actually moved belong in the byte-compared snapshot. */
void
pruneZeroMetrics(obs::MetricsSnapshot &snapshot)
{
    for (auto it = snapshot.counters.begin();
         it != snapshot.counters.end();) {
        if (it->second == 0.0)
            it = snapshot.counters.erase(it);
        else
            ++it;
    }
    for (auto it = snapshot.gauges.begin();
         it != snapshot.gauges.end();) {
        if (it->second == 0.0)
            it = snapshot.gauges.erase(it);
        else
            ++it;
    }
    for (auto it = snapshot.histograms.begin();
         it != snapshot.histograms.end();) {
        if (it->second.count == 0)
            it = snapshot.histograms.erase(it);
        else
            ++it;
    }
}

} // namespace

int
shardOf(uint64_t task_hash, int shards)
{
    if (shards <= 1)
        return 0;
    return static_cast<int>(hashCombine(task_hash, kOwnerSalt) %
                            static_cast<uint64_t>(shards));
}

std::string
shardRecordsPath(const std::string &dir, int shard_id)
{
    return dir + "/shard-" + std::to_string(shard_id) + ".records";
}

std::string
shardRoundsPath(const std::string &dir, int shard_id)
{
    return dir + "/shard-" + std::to_string(shard_id) +
           ".rounds.jsonl";
}

std::string
shardManifestPath(const std::string &dir, int shard_id)
{
    return dir + "/shard-" + std::to_string(shard_id) +
           ".manifest.jsonl";
}

std::string
shardMetricsPath(const std::string &dir, int shard_id)
{
    return dir + "/shard-" + std::to_string(shard_id) + ".metrics";
}

std::string
shardCheckpointDir(const std::string &dir)
{
    return dir + "/ckpt";
}

struct ShardRunner::Impl
{
    std::vector<graph::Task> tasks;
    costmodel::CostModel baseModel;
    Device device;
    ShardOptions options;

    /** One owned task's isolated tuning state. */
    struct Cell
    {
        int taskIndex = 0;
        tuner::TaskRecord record;
        costmodel::CostModel model;
        std::vector<costmodel::Sample> history;
        double clockSec = 0.0;
    };

    struct CellState
    {
        int taskIndex = 0;
        double clockSec = 0.0;
        int rounds = 0;
        int stagnantRounds = 0;
        double bestLatencySec = 0.0;
        optim::Candidate bestCandidate;
        std::vector<costmodel::Sample> history;
        costmodel::CostModel model;
        std::string strategyBlob;
    };

    struct CheckpointState
    {
        long nextG = 0;
        uint64_t recordsBytes = 0;
        uint64_t roundsBytes = 0;
        uint64_t manifestBytes = 0;
        obs::MetricsSnapshot metrics;
        std::vector<CellState> cells;
    };

    std::vector<Cell> cells;
    std::unordered_map<int, size_t> cellOfTask;
    std::string recordsPath, roundsPath, manifestPath, metricsPath;
    std::string ckptDir, ckptPrefix;

    Impl(std::vector<graph::Task> tasks_in,
         costmodel::CostModel model_in, Device device_in,
         ShardOptions options_in)
        : tasks(std::move(tasks_in)),
          baseModel(std::move(model_in)), device(device_in),
          options(std::move(options_in))
    {
    }

    std::string
    checkpointPath(long next_g) const
    {
        return ckptDir + "/" + ckptPrefix + std::to_string(next_g);
    }

    std::string
    buildCheckpointPayload(long next_g) const
    {
        std::ostringstream os;
        os.precision(17);
        os << "shard-ckpt v1\n";
        os << "config " << options.seed << " " << options.shards
           << " " << options.shardId << " " << options.roundsPerTask
           << " " << tasks.size() << " "
           << tuner::strategyName(options.strategy) << "\n";
        os << "next-g " << next_g << "\n";
        os << "offsets " << fileSize(recordsPath) << " "
           << fileSize(roundsPath) << " " << fileSize(manifestPath)
           << "\n";
        obs::MetricsRegistry::instance()
            .snapshot()
            .deterministic()
            .writeText(os);
        os << "cells " << cells.size() << "\n";
        for (const Cell &cell : cells) {
            os << "cell " << cell.taskIndex << " " << cell.clockSec
               << " " << cell.record.rounds << " "
               << cell.record.stagnantRounds << " "
               << cell.record.bestLatencySec << "\n";
            optim::writeCandidate(os, cell.record.bestCandidate);
            os << "history " << cell.history.size() << "\n";
            for (const costmodel::Sample &sample : cell.history) {
                os << sample.latencySec << " "
                   << sample.rawFeatures.size();
                for (double f : sample.rawFeatures)
                    os << " " << f;
                os << "\n";
            }
            cell.model.saveState(os);
            std::ostringstream blob;
            cell.record.strategy->saveState(blob);
            const std::string text = blob.str();
            os << "strategy " << text.size() << "\n" << text;
        }
        os << "end-shard-ckpt\n";
        return os.str();
    }

    std::optional<CheckpointState>
    parseCheckpointPayload(const std::string &payload) const
    {
        std::istringstream is(payload);
        std::string tag, version;
        if (!(is >> tag >> version) || tag != "shard-ckpt" ||
            version != "v1")
            return std::nullopt;
        uint64_t seed = 0;
        int shards = 0, shardId = 0, roundsPerTask = 0;
        size_t numTasks = 0;
        std::string strategy;
        if (!(is >> tag >> seed >> shards >> shardId >>
              roundsPerTask >> numTasks >> strategy) ||
            tag != "config")
            return std::nullopt;
        if (seed != options.seed || shards != options.shards ||
            shardId != options.shardId ||
            roundsPerTask != options.roundsPerTask ||
            numTasks != tasks.size() ||
            strategy != tuner::strategyName(options.strategy))
            return std::nullopt;   // checkpoint from a different run
        CheckpointState state;
        if (!(is >> tag >> state.nextG) || tag != "next-g")
            return std::nullopt;
        if (!(is >> tag >> state.recordsBytes >> state.roundsBytes >>
              state.manifestBytes) ||
            tag != "offsets")
            return std::nullopt;
        if (!obs::MetricsSnapshot::readText(is, &state.metrics))
            return std::nullopt;
        size_t numCells = 0;
        if (!(is >> tag >> numCells) || tag != "cells" ||
            numCells > tasks.size())
            return std::nullopt;
        for (size_t c = 0; c < numCells; ++c) {
            CellState cell;
            if (!(is >> tag >> cell.taskIndex >> cell.clockSec >>
                  cell.rounds >> cell.stagnantRounds >>
                  cell.bestLatencySec) ||
                tag != "cell")
                return std::nullopt;
            if (!optim::readCandidate(is, cell.bestCandidate))
                return std::nullopt;
            size_t historySize = 0;
            if (!(is >> tag >> historySize) || tag != "history" ||
                historySize > (size_t{1} << 20))
                return std::nullopt;
            cell.history.resize(historySize);
            for (costmodel::Sample &sample : cell.history) {
                size_t numFeatures = 0;
                if (!(is >> sample.latencySec >> numFeatures) ||
                    numFeatures > 65536)
                    return std::nullopt;
                sample.rawFeatures.resize(numFeatures);
                for (double &f : sample.rawFeatures) {
                    if (!(is >> f))
                        return std::nullopt;
                }
            }
            auto model = costmodel::CostModel::loadState(is);
            if (!model)
                return std::nullopt;
            cell.model = std::move(*model);
            size_t blobSize = 0;
            if (!(is >> tag >> blobSize) || tag != "strategy" ||
                blobSize > (size_t{1} << 24))
                return std::nullopt;
            is.get();   // newline framing the raw blob
            cell.strategyBlob.resize(blobSize);
            if (blobSize > 0 &&
                !is.read(&cell.strategyBlob[0],
                         static_cast<std::streamsize>(blobSize)))
                return std::nullopt;
            state.cells.push_back(std::move(cell));
        }
        if (!(is >> tag) || tag != "end-shard-ckpt")
            return std::nullopt;
        return state;
    }

    void
    writeRoundCheckpoint(long next_g)
    {
        if (!writeCheckpoint(checkpointPath(next_g),
                             buildCheckpointPayload(next_g)))
            warn("shard ", options.shardId,
                 ": checkpoint write failed at round ", next_g);
        // Keep the newest three: enough for the newest to be
        // corrupt AND the next one deleted, and resume still finds
        // a good round.
        auto rounds = listCheckpoints(ckptDir, ckptPrefix);
        if (rounds.size() > 3) {
            for (size_t i = 0; i < rounds.size() - 3; ++i)
                ::unlink(checkpointPath(
                             static_cast<long>(rounds[i]))
                             .c_str());
        }
    }

    /** Newest checkpoint that validates, scanning backwards. */
    std::optional<CheckpointState>
    findResumableCheckpoint() const
    {
        auto rounds = listCheckpoints(ckptDir, ckptPrefix);
        for (size_t i = rounds.size(); i-- > 0;) {
            const std::string path =
                checkpointPath(static_cast<long>(rounds[i]));
            auto payload = readCheckpoint(path);
            if (!payload) {
                warn("shard ", options.shardId, ": checkpoint ",
                     path, " failed validation; trying older");
                continue;
            }
            auto state = parseCheckpointPayload(*payload);
            if (!state) {
                warn("shard ", options.shardId, ": checkpoint ",
                     path,
                     " does not match this run; trying older");
                continue;
            }
            inform("shard ", options.shardId, ": resuming from ",
                   path, " (next round ", state->nextG, ")");
            return state;
        }
        return std::nullopt;
    }

    ShardManifest
    headerManifest() const
    {
        ShardManifest manifest;
        manifest.seed = options.seed;
        manifest.shards = options.shards;
        manifest.shardId = options.shardId;
        manifest.roundsPerTask = options.roundsPerTask;
        manifest.strategy = tuner::strategyName(options.strategy);
        manifest.device = device.name;
        manifest.graphExecOverheadSec =
            options.graphExecOverheadSec;
        for (size_t t = 0; t < tasks.size(); ++t) {
            ManifestTask task;
            task.index = static_cast<int>(t);
            task.hash = tasks[t].subgraph.structuralHash();
            task.label = tasks[t].exampleLabel;
            task.weight = tasks[t].weight;
            manifest.tasks.push_back(std::move(task));
        }
        return manifest;
    }

    int run();
};

int
ShardRunner::Impl::run()
{
    FELIX_CHECK(options.shards >= 1 && options.shardId >= 0 &&
                    options.shardId < options.shards,
                "shard: need 0 <= shard-id < shards");
    FELIX_CHECK(!options.dir.empty(), "shard: need a --shard-dir");
    FELIX_CHECK(options.roundsPerTask >= 1,
                "shard: need --rounds-per-task >= 1");
    FELIX_CHECK(!tasks.empty(), "shard: no tasks");

    ensureDir(options.dir);
    if (options.checkpoint)
        ensureDir(shardCheckpointDir(options.dir));
    recordsPath = shardRecordsPath(options.dir, options.shardId);
    roundsPath = shardRoundsPath(options.dir, options.shardId);
    manifestPath = shardManifestPath(options.dir, options.shardId);
    metricsPath = shardMetricsPath(options.dir, options.shardId);
    ckptDir = shardCheckpointDir(options.dir);
    ckptPrefix = "shard-" + std::to_string(options.shardId) + ".";

    // The metrics byte-compare starts from a clean registry: what a
    // cache miss's pretraining did before this point is host state,
    // not run output.
    auto &registry = obs::MetricsRegistry::instance();
    registry.resetAll();

    const int numTasks = static_cast<int>(tasks.size());
    const long totalRounds =
        static_cast<long>(options.roundsPerTask) * numTasks;

    std::vector<bool> owned(tasks.size(), false);
    for (size_t t = 0; t < tasks.size(); ++t)
        owned[t] = shardOf(tasks[t].subgraph.structuralHash(),
                           options.shards) == options.shardId;

    std::optional<CheckpointState> restored;
    if (options.resume && options.checkpoint)
        restored = findResumableCheckpoint();

    // Build the owned cells. Strategy construction re-registers the
    // sketch/search metrics; on resume the registry restore below
    // overwrites them with the checkpointed values, so a resumed
    // process reports exactly what the interrupted one would have.
    for (size_t t = 0; t < tasks.size(); ++t) {
        if (!owned[t])
            continue;
        Cell cell;
        cell.taskIndex = static_cast<int>(t);
        cell.record.task = tasks[t];
        cell.record.strategy = tuner::makeStrategy(
            options.strategy, cell.record.task, options.grad,
            options.evo);
        cell.model = baseModel;
        cellOfTask[cell.taskIndex] = cells.size();
        cells.push_back(std::move(cell));
    }

    long startG = 0;
    if (restored) {
        // Wind the artifacts back to the checkpointed offsets: any
        // bytes past them belong to rounds newer than the
        // checkpoint (e.g. the round a SIGKILL interrupted) and
        // will be re-executed deterministically.
        truncateFile(recordsPath, restored->recordsBytes);
        truncateFile(roundsPath, restored->roundsBytes);
        truncateFile(manifestPath, restored->manifestBytes);
        bool cellsOk = restored->cells.size() == cells.size();
        for (CellState &state : restored->cells) {
            auto slot = cellOfTask.find(state.taskIndex);
            if (slot == cellOfTask.end()) {
                cellsOk = false;
                break;
            }
            Cell &cell = cells[slot->second];
            cell.clockSec = state.clockSec;
            cell.history = std::move(state.history);
            cell.model = std::move(state.model);
            cell.record.rounds = state.rounds;
            cell.record.stagnantRounds = state.stagnantRounds;
            cell.record.bestLatencySec = state.bestLatencySec;
            cell.record.bestCandidate =
                std::move(state.bestCandidate);
            std::istringstream blob(state.strategyBlob);
            if (!cell.record.strategy->loadState(blob))
                cellsOk = false;
        }
        if (!cellsOk) {
            warn("shard ", options.shardId,
                 ": checkpoint cell table does not match the task "
                 "partition; restarting from round 0");
            restored.reset();
        } else {
            registry.restore(restored->metrics);
            startG = restored->nextG;
        }
    }
    if (!restored) {
        truncateFile(recordsPath, 0);
        truncateFile(roundsPath, 0);
        truncateFile(manifestPath, 0);
        tuner::appendRawText(
            manifestPath, manifestHeaderJson(headerManifest()) + "\n");
        for (Cell &cell : cells)
            tuner::seedTrivialSchedule(
                cell.record, device.config(),
                initSeedAt(options.seed, cell.taskIndex));
    }

    int executedHere = 0;
    for (long g = startG; g < totalRounds; ++g) {
        const int t = static_cast<int>(g % numTasks);
        if (!owned[t])
            continue;
        const int j = static_cast<int>(g / numTasks);
        Cell &cell = cells[cellOfTask[t]];

        // Every random input is preassigned from (seed, task,
        // round): no stream position survives between rounds, so
        // the round's bytes cannot depend on process history.
        Rng roundRng = Rng::streamAt(
            options.seed, static_cast<uint64_t>(t),
            static_cast<uint64_t>(j));

        tuner::RoundEnv env;
        env.model = &cell.model;
        env.history = &cell.history;
        env.rng = &roundRng;
        env.clockSec = cell.clockSec;
        env.clock = options.clock;
        env.device = &device.config();
        env.strategy = options.strategy;
        env.finetuneSteps = options.finetuneSteps;
        env.roundIndex = static_cast<int>(g);
        env.collectRecords = true;
        env.emitWall = false;
        const uint64_t seed = options.seed;
        env.measureSeed = [seed, t, j](size_t i) {
            return measureSeedAt(seed, t, j, i);
        };

        tuner::RoundOutcome outcome =
            tuner::runTaskRound(cell.record, env);
        cell.clockSec = outcome.clockSec;

        // Artifacts first (each one atomic O_APPEND write), then
        // the checkpoint that covers them; a crash in between is
        // rolled back by the resume-time truncation above.
        tuner::appendRecords(recordsPath, outcome.records);
        tuner::appendRawText(roundsPath,
                             outcome.record.toJson() + "\n");
        ManifestRound roundLine;
        roundLine.g = static_cast<int>(g);
        roundLine.task = t;
        roundLine.recordsLines =
            static_cast<int>(outcome.records.size());
        roundLine.roundsLines = 1;
        tuner::appendRawText(manifestPath,
                             manifestRoundJson(roundLine) + "\n");

        ++executedHere;
        if (options.killAfterRounds > 0 &&
            executedHere >= options.killAfterRounds) {
            // Torture hook: die at the worst instant — artifacts
            // appended, checkpoint not yet written.
            ::raise(SIGKILL);
        }
        if (options.checkpoint)
            writeRoundCheckpoint(g + 1);
    }

    // The shard's last owned round, computed from the schedule so a
    // resumed process reports the same value as an uninterrupted
    // one. The merge step folds gauges in ascending last_g order.
    long lastOwnedG = -1;
    for (long g = 0; g < totalRounds; ++g) {
        if (owned[g % numTasks])
            lastOwnedG = g;
    }

    std::vector<ManifestBest> bests;
    for (const Cell &cell : cells) {
        ManifestBest best;
        best.index = cell.taskIndex;
        best.sketchIndex = cell.record.bestCandidate.sketchIndex;
        best.latencySec = cell.record.bestLatencySec;
        best.clockSec = cell.clockSec;
        best.vars = cell.record.bestCandidate.x;
        bests.push_back(std::move(best));
    }
    tuner::appendRawText(
        manifestPath, manifestDoneJson(lastOwnedG, bests) + "\n");

    obs::MetricsSnapshot snapshot =
        registry.snapshot().deterministic();
    pruneZeroMetrics(snapshot);
    std::ofstream os(metricsPath,
                     std::ios::binary | std::ios::trunc);
    if (!os.good()) {
        warn("shard ", options.shardId, ": cannot write ",
             metricsPath);
        return 1;
    }
    snapshot.writeText(os);
    if (!os.good())
        return 1;

    inform("shard ", options.shardId, " of ", options.shards,
           ": executed ", executedHere, " round",
           executedHere == 1 ? "" : "s", " this process, ",
           cells.size(), " owned task",
           cells.size() == 1 ? "" : "s");
    return 0;
}

ShardRunner::ShardRunner(std::vector<graph::Task> tasks,
                         costmodel::CostModel base_model,
                         Device device, ShardOptions options)
    : impl_(std::make_unique<Impl>(std::move(tasks),
                                   std::move(base_model), device,
                                   std::move(options)))
{
}

ShardRunner::~ShardRunner() = default;

int
ShardRunner::run()
{
    return impl_->run();
}

} // namespace shard
} // namespace felix
