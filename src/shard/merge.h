/**
 * @file
 * Cross-shard merge: reassemble one run from K shard directories.
 *
 * Inputs are the per-shard artifacts a `felix-tune --shards K` run
 * leaves in one directory (shard-<i>.{records,rounds.jsonl,
 * manifest.jsonl,metrics}); outputs are
 *
 *   merged.records       all tuning records, global round order
 *   merged.rounds.jsonl  all round-log lines in global round order
 *                        plus one final {"type":"metrics"} line
 *   merged.best          history-best record per task, task order
 *   merged.cfg           the compiled module (best schedules +
 *                        end-to-end latency)
 *   merged.metrics       the folded deterministic metrics snapshot
 *                        (exact text round-trip format)
 *
 * Because every round's bytes are shard-count-invariant (shard.h),
 * the merged output is byte-identical whatever K produced it:
 * records and round lines interleave by ascending global round,
 * counters add (all deterministic counters are integer-valued, so
 * the sums are exact), histograms merge bucket-wise, and gauges
 * fold last-writer-wins in ascending last-executed-round order.
 */
#ifndef FELIX_SHARD_MERGE_H_
#define FELIX_SHARD_MERGE_H_

#include <optional>
#include <string>

namespace felix {
namespace shard {

/** What a successful merge covered. */
struct MergeResult
{
    int shards = 0;            ///< shard count of the run
    long rounds = 0;           ///< global rounds merged
    size_t tasks = 0;
    double networkLatencySec = 0.0;  ///< merged end-to-end latency
};

/** Merged artifact paths inside @p dir. */
std::string mergedRecordsPath(const std::string &dir);
std::string mergedRoundsPath(const std::string &dir);
std::string mergedBestPath(const std::string &dir);
std::string mergedModulePath(const std::string &dir);
std::string mergedMetricsPath(const std::string &dir);

/**
 * Merge every shard in @p dir. nullopt (with a warning naming the
 * problem) when a shard is missing, incomplete (no done line),
 * incompatible with the others, or its artifacts disagree with its
 * manifest's line accounting.
 */
std::optional<MergeResult> mergeShards(const std::string &dir);

} // namespace shard
} // namespace felix

#endif // FELIX_SHARD_MERGE_H_
