/**
 * @file
 * Self-describing per-shard result manifests (JSONL).
 *
 * Each shard of a `felix-tune --shards K` run appends to
 * `shard-<i>.manifest.jsonl`:
 *
 *   {"type":"header", ...}   run configuration + the task table
 *   {"type":"round",  ...}   one line per executed global round,
 *                            with the artifact line counts the
 *                            merge step uses to re-interleave the
 *                            records and round-log files
 *   {"type":"done",   ...}   final best schedule per owned task
 *
 * 64-bit hashes are serialized as decimal strings — they do not
 * survive JSON's double numbers. The merge step (merge.h) refuses
 * manifests whose configurations disagree, so a stale shard
 * directory cannot silently corrupt a merged run.
 */
#ifndef FELIX_SHARD_MANIFEST_H_
#define FELIX_SHARD_MANIFEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace felix {
namespace shard {

/** One task as the manifest header describes it. */
struct ManifestTask
{
    int index = 0;
    uint64_t hash = 0;
    std::string label;
    int weight = 1;
};

/** One executed global round. */
struct ManifestRound
{
    int g = 0;             ///< global round index
    int task = 0;          ///< task index (g % T)
    int recordsLines = 0;  ///< lines this round appended to .records
    int roundsLines = 0;   ///< lines appended to .rounds.jsonl
};

/** Final best schedule of one owned task. */
struct ManifestBest
{
    int index = 0;         ///< task index
    int sketchIndex = 0;
    double latencySec = 0.0;
    double clockSec = 0.0; ///< the task's final virtual clock
    std::vector<double> vars;
};

/** A fully parsed shard manifest. */
struct ShardManifest
{
    int version = 1;
    uint64_t seed = 0;
    int shards = 1;
    int shardId = 0;
    int roundsPerTask = 0;
    std::string strategy;
    std::string device;
    double graphExecOverheadSec = 0.0;
    std::vector<ManifestTask> tasks;
    std::vector<ManifestRound> rounds;
    bool done = false;
    long lastG = -1;       ///< largest executed g; -1 when none
    std::vector<ManifestBest> bests;
};

/** The header line (no trailing newline). */
std::string manifestHeaderJson(const ShardManifest &manifest);

/** One round line (no trailing newline). */
std::string manifestRoundJson(const ManifestRound &round);

/** The done line (no trailing newline). */
std::string manifestDoneJson(long last_g,
                             const std::vector<ManifestBest> &bests);

/**
 * Parse a manifest file. nullopt when the file is missing, the
 * header is absent/malformed, or any line fails to parse. A missing
 * done line is NOT an error (`done` stays false): the merge step
 * reports it as an incomplete shard.
 */
std::optional<ShardManifest> loadManifest(const std::string &path);

/**
 * True when two manifests describe compatible runs: same seed,
 * shard count, rounds per task, strategy, and task table.
 */
bool manifestsCompatible(const ShardManifest &a,
                         const ShardManifest &b);

} // namespace shard
} // namespace felix

#endif // FELIX_SHARD_MANIFEST_H_
