/**
 * @file
 * Deterministic sharded tuning (docs/distributed.md).
 *
 * A sharded run partitions the R×T global round schedule (R rounds
 * per task, tasks round-robin: round g tunes task g % T) across K
 * processes by stable task hash: shard i executes exactly the
 * rounds whose task it owns. Every random stream is preassigned
 * from (root seed, task, round) via Rng::streamAt and each owned
 * task tunes against its own cost-model copy, replay history, and
 * virtual clock, so the bytes a round produces depend only on the
 * root seed and the task — not on K, not on which process runs it,
 * and not on whether the process was killed and resumed. The merge
 * step (merge.h) therefore reassembles output byte-identical to a
 * `--shards 1` run.
 *
 * After every owned round the runner appends the round's artifacts
 * (records, round log, manifest line — each one atomic O_APPEND
 * write) and then writes a crash-safe checkpoint (checkpoint.h).
 * `--resume` replays from the newest valid checkpoint, truncating
 * the artifacts back to that checkpoint's recorded offsets, so a
 * SIGKILL at any instant loses at most the round in flight.
 */
#ifndef FELIX_SHARD_SHARD_H_
#define FELIX_SHARD_SHARD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/felix.h"
#include "graph/graph.h"
#include "tuner/tuner.h"

namespace felix {
namespace shard {

/** Options of one shard process. */
struct ShardOptions
{
    uint64_t seed = 1;
    int shards = 1;
    int shardId = 0;
    int roundsPerTask = 4;
    tuner::StrategyKind strategy =
        tuner::StrategyKind::FelixGradient;
    optim::GradSearchOptions grad;
    evolutionary::EvoSearchOptions evo;
    tuner::ClockConfig clock;
    int finetuneSteps = 16;
    double graphExecOverheadSec = 15e-6;
    /** Shard artifact directory (created when missing). */
    std::string dir;
    /** Write a checkpoint after every owned round. */
    bool checkpoint = true;
    /** Resume from the newest valid checkpoint instead of starting
     *  over (falls back to older checkpoints on corruption, and to
     *  a fresh run when none validates). */
    bool resume = false;
    /** Test hook: raise(SIGKILL) after this many rounds executed by
     *  THIS process — after the round's artifacts are appended but
     *  before its checkpoint is written, the worst-possible crash
     *  point. 0 disables. */
    int killAfterRounds = 0;
};

/** Owning shard of a task: stable mix of the structural hash. */
int shardOf(uint64_t task_hash, int shards);

/** Shard artifact paths inside @p dir. */
std::string shardRecordsPath(const std::string &dir, int shard_id);
std::string shardRoundsPath(const std::string &dir, int shard_id);
std::string shardManifestPath(const std::string &dir, int shard_id);
std::string shardMetricsPath(const std::string &dir, int shard_id);
std::string shardCheckpointDir(const std::string &dir);

/** Runs the rounds one shard owns. */
class ShardRunner
{
  public:
    ShardRunner(std::vector<graph::Task> tasks,
                costmodel::CostModel base_model, Device device,
                ShardOptions options);
    ~ShardRunner();

    /** Execute (or resume) this shard's schedule. 0 on success. */
    int run();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace shard
} // namespace felix

#endif // FELIX_SHARD_SHARD_H_
