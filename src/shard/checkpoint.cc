#include "shard/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/logging.h"

namespace felix {
namespace shard {

uint64_t
fnv1a(const std::string &data)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : data) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

bool
writeCheckpoint(const std::string &path, const std::string &payload)
{
    std::ostringstream header;
    header << "FELIXCKPT v1 " << payload.size() << " " << std::hex
           << fnv1a(payload) << "\n";
    const std::string text = header.str() + payload;

    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        warn("checkpoint: cannot open ", tmp, ": ",
             std::strerror(errno));
        return false;
    }
    size_t written = 0;
    while (written < text.size()) {
        ssize_t n = ::write(fd, text.data() + written,
                            text.size() - written);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            warn("checkpoint: short write to ", tmp);
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        written += static_cast<size_t>(n);
    }
    // fsync before rename: the rename must not become durable
    // before the bytes it points at.
    if (::fsync(fd) != 0) {
        warn("checkpoint: fsync failed for ", tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("checkpoint: rename to ", path, " failed: ",
             std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

std::optional<std::string>
readCheckpoint(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.good())
        return std::nullopt;
    std::string header;
    if (!std::getline(is, header))
        return std::nullopt;
    std::istringstream hs(header);
    std::string magic, version;
    uint64_t size = 0, hash = 0;
    if (!(hs >> magic >> version >> size >> std::hex >> hash) ||
        magic != "FELIXCKPT" || version != "v1" ||
        size > (uint64_t{1} << 32))
        return std::nullopt;
    std::string payload(size, '\0');
    if (size > 0 &&
        !is.read(&payload[0], static_cast<std::streamsize>(size)))
        return std::nullopt;   // truncated: shorter than promised
    if (fnv1a(payload) != hash)
        return std::nullopt;   // bit flip or mid-record truncation
    return payload;
}

std::vector<uint64_t>
listCheckpoints(const std::string &dir, const std::string &prefix)
{
    std::vector<uint64_t> rounds;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return rounds;
    while (struct dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name.size() <= prefix.size() ||
            name.compare(0, prefix.size(), prefix) != 0)
            continue;
        const std::string digits = name.substr(prefix.size());
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") !=
                std::string::npos)
            continue;
        rounds.push_back(
            std::strtoull(digits.c_str(), nullptr, 10));
    }
    ::closedir(d);
    std::sort(rounds.begin(), rounds.end());
    return rounds;
}

bool
ensureDir(const std::string &path)
{
    if (path.empty())
        return false;
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST)
        return true;
    if (errno == ENOENT) {
        const size_t slash = path.find_last_of('/');
        if (slash != std::string::npos && slash > 0 &&
            ensureDir(path.substr(0, slash)))
            return ::mkdir(path.c_str(), 0755) == 0 ||
                   errno == EEXIST;
    }
    return false;
}

uint64_t
fileSize(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return static_cast<uint64_t>(st.st_size);
}

bool
truncateFile(const std::string &path, uint64_t size)
{
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC,
                    0644);
    if (fd < 0)
        return false;
    const bool ok =
        ::ftruncate(fd, static_cast<off_t>(size)) == 0;
    ::close(fd);
    return ok;
}

} // namespace shard
} // namespace felix
