#include "models/models.h"

#include "support/logging.h"
#include "support/string_util.h"

namespace felix {
namespace models {

using graph::BmmParams;
using graph::DenseParams;
using graph::Graph;
using graph::OpType;
using graph::PoolParams;
using graph::RowsColsParams;
using tir::Conv2dConfig;
using tir::Conv3dConfig;
using tir::TConv2dConfig;

namespace {

/** conv + batch norm + optional ReLU, the CNN workhorse. */
int
convBnRelu(Graph &g, int input, int64_t batch, int64_t in_ch,
           int64_t out_ch, int64_t hw, int64_t kernel, int64_t stride,
           bool relu, const std::string &label, int64_t groups = 1)
{
    Conv2dConfig config;
    config.n = batch;
    config.c = in_ch;
    config.h = config.w = hw;
    config.k = out_ch;
    config.r = config.s = kernel;
    config.stride = stride;
    config.pad = kernel / 2;
    config.groups = groups;
    int conv = g.addConv2d(config, input, label);
    int bn = g.addEpilogue(OpType::BatchNorm, conv, label + ".bn");
    if (!relu)
        return bn;
    return g.addEpilogue(OpType::Relu, bn, label + ".relu");
}

/** ResNet-50 bottleneck block. Returns (output node, output hw). */
int
bottleneck(Graph &g, int input, int64_t batch, int64_t in_ch,
           int64_t mid_ch, int64_t out_ch, int64_t hw, int64_t stride,
           const std::string &label)
{
    int branch = convBnRelu(g, input, batch, in_ch, mid_ch, hw, 1, 1,
                            true, label + ".conv1");
    branch = convBnRelu(g, branch, batch, mid_ch, mid_ch, hw, 3,
                        stride, true, label + ".conv2");
    int64_t outHw = hw / stride;
    branch = convBnRelu(g, branch, batch, mid_ch, out_ch, outHw, 1, 1,
                        false, label + ".conv3");
    int shortcut = input;
    if (in_ch != out_ch || stride != 1) {
        shortcut = convBnRelu(g, input, batch, in_ch, out_ch, hw, 1,
                              stride, false, label + ".downsample");
    }
    int sum = g.addAdd(branch, shortcut, label + ".add");
    return g.addEpilogue(OpType::Relu, sum, label + ".relu");
}

} // namespace

graph::Graph
resnet50(int batch)
{
    Graph g("resnet50");
    const int64_t n = batch;

    int x = convBnRelu(g, -1, n, 3, 64, 224, 7, 2, true, "conv1");
    PoolParams pool;
    pool.n = n;
    pool.c = 64;
    pool.h = pool.w = 112;
    pool.kernel = 2;
    pool.stride = 2;
    x = g.addMaxPool2d(pool, x, "maxpool");

    struct Stage { int blocks; int64_t mid, out, stride; };
    const Stage stages[] = {
        {3, 64, 256, 1}, {4, 128, 512, 2},
        {6, 256, 1024, 2}, {3, 512, 2048, 2},
    };
    int64_t hw = 56;
    int64_t inCh = 64;
    for (int s = 0; s < 4; ++s) {
        for (int b = 0; b < stages[s].blocks; ++b) {
            int64_t stride = (b == 0) ? stages[s].stride : 1;
            x = bottleneck(g, x, n, inCh, stages[s].mid,
                           stages[s].out, hw, stride,
                           strformat("layer%d.%d", s + 1, b));
            if (stride == 2)
                hw /= 2;
            inCh = stages[s].out;
        }
    }
    x = g.addGlobalAvgPool(n, 2048, hw, hw, x, "avgpool");
    DenseParams fc;
    fc.n = n;
    fc.m = 1000;
    fc.k = 2048;
    g.addDense(fc, x, "fc");
    return g;
}

graph::Graph
mobilenetV2(int batch)
{
    Graph g("mobilenet_v2");
    const int64_t n = batch;

    int x = convBnRelu(g, -1, n, 3, 32, 224, 3, 2, true, "stem");

    // Inverted residual settings (t, c, n, s) from the paper.
    struct Block { int64_t expand, out, repeat, stride; };
    const Block blocks[] = {
        {1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},
        {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
        {6, 320, 1, 1},
    };
    int64_t hw = 112;
    int64_t inCh = 32;
    int blockIdx = 0;
    for (const Block &spec : blocks) {
        for (int r = 0; r < spec.repeat; ++r) {
            int64_t stride = (r == 0) ? spec.stride : 1;
            std::string label = strformat("block%d", blockIdx++);
            int64_t expanded = inCh * spec.expand;
            int y = x;
            if (spec.expand != 1) {
                y = convBnRelu(g, y, n, inCh, expanded, hw, 1, 1,
                               true, label + ".expand");
            }
            y = convBnRelu(g, y, n, expanded, expanded, hw, 3, stride,
                           true, label + ".depthwise", expanded);
            int64_t outHw = hw / stride;
            y = convBnRelu(g, y, n, expanded, spec.out, outHw, 1, 1,
                           false, label + ".project");
            if (stride == 1 && inCh == spec.out)
                y = g.addAdd(y, x, label + ".add");
            x = y;
            hw = outHw;
            inCh = spec.out;
        }
    }
    x = convBnRelu(g, x, n, inCh, 1280, hw, 1, 1, true, "head_conv");
    x = g.addGlobalAvgPool(n, 1280, hw, hw, x, "avgpool");
    DenseParams fc;
    fc.n = n;
    fc.m = 1000;
    fc.k = 1280;
    g.addDense(fc, x, "classifier");
    return g;
}

namespace {

int
conv3dBnRelu(Graph &g, int input, int64_t batch, int64_t in_ch,
             int64_t out_ch, int64_t d, int64_t hw, int64_t stride,
             bool relu, const std::string &label)
{
    Conv3dConfig config;
    config.n = batch;
    config.c = in_ch;
    config.d = d;
    config.h = config.w = hw;
    config.k = out_ch;
    config.kd = config.r = config.s = 3;
    config.stride = stride;
    config.pad = 1;
    int conv = g.addConv3d(config, input, label);
    int bn = g.addEpilogue(OpType::BatchNorm, conv, label + ".bn");
    if (!relu)
        return bn;
    return g.addEpilogue(OpType::Relu, bn, label + ".relu");
}

int
basicBlock3d(Graph &g, int input, int64_t batch, int64_t in_ch,
             int64_t out_ch, int64_t d, int64_t hw, int64_t stride,
             const std::string &label)
{
    int branch = conv3dBnRelu(g, input, batch, in_ch, out_ch, d, hw,
                              stride, true, label + ".conv1");
    int64_t outD = d / stride, outHw = hw / stride;
    branch = conv3dBnRelu(g, branch, batch, out_ch, out_ch, outD,
                          outHw, 1, false, label + ".conv2");
    int shortcut = input;
    if (in_ch != out_ch || stride != 1) {
        // 1x1x1 downsample projection.
        Conv3dConfig config;
        config.n = batch;
        config.c = in_ch;
        config.d = d;
        config.h = config.w = hw;
        config.k = out_ch;
        config.kd = config.r = config.s = 1;
        config.stride = stride;
        config.pad = 0;
        shortcut = g.addConv3d(config, input, label + ".downsample");
        shortcut = g.addEpilogue(OpType::BatchNorm, shortcut,
                                 label + ".downsample.bn");
    }
    int sum = g.addAdd(branch, shortcut, label + ".add");
    return g.addEpilogue(OpType::Relu, sum, label + ".relu");
}

} // namespace

graph::Graph
r3d18(int batch)
{
    Graph g("r3d_18");
    const int64_t n = batch;

    // Stem: 3x3x3 conv over a 16-frame 112x112 clip.
    int x = conv3dBnRelu(g, -1, n, 3, 64, 16, 112, 1, true, "stem");

    struct Stage { int blocks; int64_t out, stride; };
    const Stage stages[] = {
        {2, 64, 1}, {2, 128, 2}, {2, 256, 2}, {2, 512, 2},
    };
    int64_t d = 16, hw = 112, inCh = 64;
    // The torchvision stem downsamples H,W by 2 via stride (1,2,2);
    // our isotropic-stride conv3d approximates it with a pooled stem.
    PoolParams pool;
    pool.n = n;
    pool.c = 64;
    pool.h = 16 * 112;   // folded (d*h, w) view of the 3d tensor
    pool.w = 112;
    pool.kernel = 2;
    pool.stride = 2;
    x = g.addMaxPool2d(pool, x, "stem.pool");
    d = 8;
    hw = 56;
    for (int s = 0; s < 4; ++s) {
        for (int b = 0; b < stages[s].blocks; ++b) {
            int64_t stride = (b == 0) ? stages[s].stride : 1;
            x = basicBlock3d(g, x, n, inCh, stages[s].out, d, hw,
                             stride,
                             strformat("layer%d.%d", s + 1, b));
            if (stride == 2) {
                d /= 2;
                hw /= 2;
            }
            inCh = stages[s].out;
        }
    }
    x = g.addGlobalAvgPool(n, 512, d * hw, hw, x, "avgpool");
    DenseParams fc;
    fc.n = n;
    fc.m = 400;   // Kinetics-400 head
    fc.k = 512;
    g.addDense(fc, x, "fc");
    return g;
}

graph::Graph
dcgan(int batch)
{
    Graph g("dcgan");
    const int64_t n = batch;

    auto tconvBn = [&](int input, int64_t in_ch, int64_t out_ch,
                       int64_t hw, int64_t stride, int64_t pad,
                       bool relu, const std::string &label) {
        TConv2dConfig config;
        config.n = n;
        config.c = in_ch;
        config.h = config.w = hw;
        config.k = out_ch;
        config.r = config.s = 4;
        config.stride = stride;
        config.pad = pad;
        int node = g.addTConv2d(config, input, label);
        node = g.addEpilogue(OpType::BatchNorm, node, label + ".bn");
        if (relu)
            node = g.addEpilogue(OpType::Relu, node, label + ".relu");
        return node;
    };

    // Generator: z(100) -> 4x4x512 -> 8x8x256 -> 16x16x128 ->
    // 32x32x64 -> 64x64x3.
    int x = tconvBn(-1, 100, 512, 1, 1, 0, true, "g1");
    x = tconvBn(x, 512, 256, 4, 2, 1, true, "g2");
    x = tconvBn(x, 256, 128, 8, 2, 1, true, "g3");
    x = tconvBn(x, 128, 64, 16, 2, 1, true, "g4");
    TConv2dConfig out;
    out.n = n;
    out.c = 64;
    out.h = out.w = 32;
    out.k = 3;
    out.r = out.s = 4;
    out.stride = 2;
    out.pad = 1;
    int img = g.addTConv2d(out, x, "g5");
    g.addEpilogue(OpType::Tanh, img, "g5.tanh");
    return g;
}

graph::Graph
vitB32(int batch)
{
    Graph g("vit_b32");
    const int64_t n = batch;
    const int64_t dim = 768, heads = 12, headDim = 64;
    const int64_t seq = 50;   // 224/32 = 7x7 patches + [CLS]

    // Patch embedding: 32x32 stride-32 convolution.
    Conv2dConfig patch;
    patch.n = n;
    patch.c = 3;
    patch.h = patch.w = 224;
    patch.k = dim;
    patch.r = patch.s = 32;
    patch.stride = 32;
    patch.pad = 0;
    patch.bias = true;
    int x = g.addConv2d(patch, -1, "patch_embed");

    const int64_t tokens = n * seq;
    for (int layer = 0; layer < 12; ++layer) {
        std::string label = strformat("encoder%d", layer);
        RowsColsParams ln;
        ln.rows = tokens;
        ln.cols = dim;
        int norm1 = g.addLayerNorm(ln, x, label + ".ln1");

        DenseParams qkv;
        qkv.n = tokens;
        qkv.m = 3 * dim;
        qkv.k = dim;
        int qkvNode = g.addDense(qkv, norm1, label + ".qkv");
        qkvNode = g.addEpilogue(OpType::BiasAdd, qkvNode,
                                label + ".qkv.bias");

        BmmParams scores;
        scores.b = n * heads;
        scores.n = seq;
        scores.m = seq;
        scores.k = headDim;
        int att = g.addBatchMatmul(scores, qkvNode, qkvNode,
                                   label + ".qk");
        RowsColsParams sm;
        sm.rows = n * heads * seq;
        sm.cols = seq;
        att = g.addSoftmax(sm, att, label + ".softmax");
        BmmParams mix;
        mix.b = n * heads;
        mix.n = seq;
        mix.m = headDim;
        mix.k = seq;
        att = g.addBatchMatmul(mix, att, qkvNode, label + ".av");

        DenseParams proj;
        proj.n = tokens;
        proj.m = dim;
        proj.k = dim;
        int projNode = g.addDense(proj, att, label + ".proj");
        projNode = g.addEpilogue(OpType::BiasAdd, projNode,
                                 label + ".proj.bias");
        int res1 = g.addAdd(projNode, x, label + ".add1");

        int norm2 = g.addLayerNorm(ln, res1, label + ".ln2");
        DenseParams fc1;
        fc1.n = tokens;
        fc1.m = 4 * dim;
        fc1.k = dim;
        int mlp = g.addDense(fc1, norm2, label + ".mlp.fc1");
        mlp = g.addEpilogue(OpType::BiasAdd, mlp,
                            label + ".mlp.fc1.bias");
        mlp = g.addEpilogue(OpType::Gelu, mlp, label + ".mlp.gelu");
        DenseParams fc2;
        fc2.n = tokens;
        fc2.m = dim;
        fc2.k = 4 * dim;
        mlp = g.addDense(fc2, mlp, label + ".mlp.fc2");
        mlp = g.addEpilogue(OpType::BiasAdd, mlp,
                            label + ".mlp.fc2.bias");
        x = g.addAdd(mlp, res1, label + ".add2");
    }
    RowsColsParams lnF;
    lnF.rows = tokens;
    lnF.cols = dim;
    x = g.addLayerNorm(lnF, x, "ln_final");
    DenseParams head;
    head.n = n;
    head.m = 1000;
    head.k = dim;
    g.addDense(head, x, "head");
    return g;
}

graph::Graph
llama(int batch, int seq_len)
{
    Graph g("llama");
    const int64_t n = batch;
    const int64_t dim = 4096, heads = 32, headDim = 128;
    const int64_t ffn = 11008;   // LLaMA-7B SwiGLU hidden size
    const int64_t layers = 32;
    const int64_t tokens = n * seq_len;

    // The token-embedding gather is folded into the first RMSNorm's
    // memory stream (both read/write the same tokens x dim tensor).
    int x = -1;
    for (int64_t layer = 0; layer < layers; ++layer) {
        std::string label = strformat("decoder%d", static_cast<int>(layer));
        RowsColsParams rms;
        rms.rows = tokens;
        rms.cols = dim;
        int norm1 = (x == -1)
                        ? g.addLayerNorm(rms, -1, label + ".rms1")
                        : g.addLayerNorm(rms, x, label + ".rms1");

        DenseParams proj;
        proj.n = tokens;
        proj.m = dim;
        proj.k = dim;
        int q = g.addDense(proj, norm1, label + ".q_proj");
        int k = g.addDense(proj, norm1, label + ".k_proj");
        g.addDense(proj, norm1, label + ".v_proj");

        BmmParams scores;
        scores.b = n * heads;
        scores.n = seq_len;
        scores.m = seq_len;
        scores.k = headDim;
        int att = g.addBatchMatmul(scores, q, k, label + ".qk");
        RowsColsParams sm;
        sm.rows = n * heads * seq_len;
        sm.cols = seq_len;
        att = g.addSoftmax(sm, att, label + ".softmax");
        BmmParams mix;
        mix.b = n * heads;
        mix.n = seq_len;
        mix.m = headDim;
        mix.k = seq_len;
        att = g.addBatchMatmul(mix, att, att, label + ".av");
        int o = g.addDense(proj, att, label + ".o_proj");
        int res1 = (x == -1) ? o : g.addAdd(o, x, label + ".add1");

        int norm2 = g.addLayerNorm(rms, res1, label + ".rms2");
        DenseParams up;
        up.n = tokens;
        up.m = ffn;
        up.k = dim;
        int gate = g.addDense(up, norm2, label + ".gate_proj");
        g.addDense(up, norm2, label + ".up_proj");
        int silu = g.addEpilogue(OpType::Sigmoid, gate,
                                 label + ".silu");
        DenseParams down;
        down.n = tokens;
        down.m = dim;
        down.k = ffn;
        int mlp = g.addDense(down, silu, label + ".down_proj");
        x = g.addAdd(mlp, res1, label + ".add2");
    }
    RowsColsParams rmsF;
    rmsF.rows = tokens;
    rmsF.cols = dim;
    x = g.addLayerNorm(rmsF, x, "rms_final");
    DenseParams head;
    head.n = tokens;
    head.m = 32000;
    head.k = dim;
    g.addDense(head, x, "lm_head");
    return g;
}

std::vector<NetworkSpec>
evaluationNetworks()
{
    std::vector<NetworkSpec> specs;
    specs.push_back({"ResNet-50",
                     [](int batch) { return resnet50(batch); }, true,
                     true});
    specs.push_back({"MobileNet-v2",
                     [](int batch) { return mobilenetV2(batch); },
                     true, true});
    specs.push_back({"R3d-18", [](int batch) { return r3d18(batch); },
                     true, true});
    specs.push_back({"DCGAN", [](int batch) { return dcgan(batch); },
                     true, true});
    specs.push_back({"ViT-B/32",
                     [](int batch) { return vitB32(batch); }, true,
                     true});
    // LLaMA does not fit in Xavier NX memory at all, nor on the
    // A5000 at batch 16 (paper §6.1, §6.4).
    specs.push_back({"LLaMA",
                     [](int batch) { return llama(batch, 100); },
                     false, false});
    return specs;
}

} // namespace models
} // namespace felix
