/**
 * @file
 * The six evaluated neural networks (paper §5), built as computation
 * graphs with their published layer configurations:
 *
 *  - ResNet-50 (He et al.) — image classification
 *  - MobileNet-v2 (Sandler et al.) — many small layers (§6.1)
 *  - R3D-18 (Hara et al.) — 3d convolutions dominate (>99% FLOPs)
 *  - DCGAN generator (Radford et al.) — transposed convolutions
 *  - ViT-B/32 (Dosovitskiy et al.) — transformer encoder
 *  - LLaMA-7B prefill (Touvron et al.) — 100-token input (§5)
 *
 * All builders are batch-size parametric (batch 16 drives Fig. 10 /
 * Table 2b).
 */
#ifndef FELIX_MODELS_MODELS_H_
#define FELIX_MODELS_MODELS_H_

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace felix {
namespace models {

graph::Graph resnet50(int batch = 1);
graph::Graph mobilenetV2(int batch = 1);
graph::Graph r3d18(int batch = 1);
graph::Graph dcgan(int batch = 1);
graph::Graph vitB32(int batch = 1);
graph::Graph llama(int batch = 1, int seq_len = 100);

/** A named network builder (for the experiment harnesses). */
struct NetworkSpec
{
    std::string name;
    std::function<graph::Graph(int)> build;
    /** Fits on the Xavier NX / in A5000 memory at batch 16? */
    bool runsOnXavier = true;
    bool runsAtBatch16 = true;
};

/** The paper's evaluation set, in its Figure 6 order. */
std::vector<NetworkSpec> evaluationNetworks();

} // namespace models
} // namespace felix

#endif // FELIX_MODELS_MODELS_H_
