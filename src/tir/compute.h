/**
 * @file
 * Compute definitions: the workload side of the tensor IR.
 *
 * A SubgraphDef is Felix's unit of tuning (one fused-operator
 * subgraph, §3.1). It is a small DAG of ComputeOps, each defining an
 * output tensor over an iteration domain of spatial and reduction
 * axes. The "body" of an op is captured at the granularity feature
 * extraction needs: arithmetic-operation counts per innermost point
 * and buffer-access descriptors with affine footprint information —
 * the same abstraction level as Ansor's program features.
 */
#ifndef FELIX_TIR_COMPUTE_H_
#define FELIX_TIR_COMPUTE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace felix {
namespace tir {

/** Bytes per element; Felix tunes float32 inference (paper §5). */
constexpr int64_t kDtypeBytes = 4;

/** An iteration axis of a compute definition. */
struct Axis
{
    std::string name;
    int64_t extent = 1;
    bool isReduce = false;
};

/**
 * Arithmetic operation counts per innermost iteration point,
 * bucketed the way the program features need them.
 */
struct ArithCounts
{
    double fma = 0;       ///< fused multiply-accumulate
    double add = 0;       ///< float add/sub
    double mul = 0;       ///< float mul
    double divOp = 0;     ///< float div
    double special = 0;   ///< exp / tanh / sqrt / erf ...
    double cmp = 0;       ///< float compare / min / max

    ArithCounts &operator+=(const ArithCounts &other);
    double total() const;
};

/**
 * One origin axis contributing to a buffer dimension, with its
 * stride: index = sum_i axis_i * stride_i (+ const).
 *
 * Example: conv input height h = oh*strideH + kh has contributions
 * {oh, strideH} and {kh, dilationH}.
 */
struct AxisRef
{
    std::string axis;
    int64_t stride = 1;
};

/** One dimension of a buffer access. */
struct BufferDim
{
    std::vector<AxisRef> contribs;
    int64_t dimSize = 1;
};

/**
 * Access of one stage to one buffer. The footprint of the access
 * within a loop scope is derived from which origin axes are iterated
 * inside that scope (see features/).
 */
struct BufferAccess
{
    std::string tensor;     ///< producing tensor / input name
    bool isWrite = false;
    std::vector<BufferDim> dims;

    /** Total element count of the accessed buffer. */
    int64_t bufferElems() const;
};

/**
 * One tensor operator in destination-passing form: the output
 * iteration domain plus per-point arithmetic and input accesses.
 */
struct ComputeOp
{
    std::string name;               ///< also the output tensor name
    std::vector<Axis> axes;         ///< spatial axes then reduce axes
    ArithCounts arith;              ///< per innermost point
    std::vector<BufferAccess> inputs;
    bool inlineable = false;        ///< pure elementwise epilogue

    std::vector<Axis> spatialAxes() const;
    std::vector<Axis> reduceAxes() const;
    int64_t spatialExtent() const;  ///< product of spatial extents
    int64_t reduceExtent() const;   ///< product of reduce extents
    int64_t totalPoints() const;
    double flops() const;           ///< total floating-point ops
};

/**
 * A fused-operator subgraph: Felix's tuning task granularity.
 *
 * Ops are stored in topological order; the *dominant* op (largest
 * flops, usually the one with a reduction) drives sketch generation,
 * while inlineable elementwise consumers are folded into it.
 */
struct SubgraphDef
{
    std::string name;
    std::vector<ComputeOp> ops;

    const ComputeOp &dominantOp() const;
    int dominantOpIndex() const;
    double totalFlops() const;

    /**
     * Structural fingerprint used to deduplicate identical tuning
     * tasks across a network (same op types and shapes => same task).
     */
    uint64_t structuralHash() const;
};

} // namespace tir
} // namespace felix

#endif // FELIX_TIR_COMPUTE_H_
