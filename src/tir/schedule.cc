#include "tir/schedule.h"

#include "support/logging.h"
#include "support/string_util.h"

namespace felix {
namespace tir {

const char *
annotationName(Annotation ann)
{
    switch (ann) {
      case Annotation::None: return "none";
      case Annotation::BlockX: return "blockIdx.x";
      case Annotation::ThreadX: return "threadIdx.x";
      case Annotation::VThread: return "vthread";
      case Annotation::Vectorize: return "vectorize";
      case Annotation::Unroll: return "unroll";
      case Annotation::Parallel: return "parallel";
    }
    return "?";
}

const char *
stepKindName(StepKind kind)
{
    switch (kind) {
      case StepKind::Split: return "Split";
      case StepKind::Fuse: return "Fuse";
      case StepKind::Reorder: return "Reorder";
      case StepKind::Annotate: return "Annotation";
      case StepKind::ComputeAt: return "ComputeAt";
      case StepKind::Inline: return "Inline";
      case StepKind::CacheRead: return "CacheRead";
      case StepKind::Pragma: return "Pragma";
    }
    return "?";
}

std::string
TransformStep::str() const
{
    std::vector<std::string> parts;
    parts.push_back(strformat("stage=%d", stageId));
    switch (kind) {
      case StepKind::Split: {
        parts.push_back(strformat("loop=%d", loopIndex));
        std::vector<std::string> fs;
        for (const expr::Expr &f : factors)
            fs.push_back(f.str());
        parts.push_back("into=[" + join(fs, ",") + "]");
        break;
      }
      case StepKind::Fuse:
        parts.push_back(strformat("loop=%d", loopIndex));
        parts.push_back(strformat("count=%d", count));
        break;
      case StepKind::Reorder: {
        std::vector<std::string> os;
        for (int idx : order)
            os.push_back(std::to_string(idx));
        parts.push_back("order=[" + join(os, ",") + "]");
        break;
      }
      case StepKind::Annotate:
        parts.push_back(strformat("loop=%d", loopIndex));
        parts.push_back(
            strformat("annotation=\"%s\"", annotationName(annotation)));
        break;
      case StepKind::ComputeAt:
        parts.push_back(strformat("target_stage_id=%d", targetStageId));
        parts.push_back(strformat("loop=%d", targetLoopIndex));
        break;
      case StepKind::Inline:
        break;
      case StepKind::CacheRead:
        parts.push_back(strformat("input=%d", inputIndex));
        parts.push_back(strformat("loop=%d", targetLoopIndex));
        break;
      case StepKind::Pragma:
        FELIX_CHECK(!factors.empty());
        parts.push_back("max_step=" + factors[0].str());
        break;
    }
    return std::string(stepKindName(kind)) + "(" + join(parts, ", ") + ")";
}

Schedule
Schedule::bind(const std::vector<double> &values) const
{
    FELIX_CHECK(values.size() == vars.size(),
                "bind: expected ", vars.size(), " values, got ",
                values.size());
    std::vector<std::pair<std::string, expr::Expr>> map;
    map.reserve(vars.size());
    for (size_t i = 0; i < vars.size(); ++i)
        map.emplace_back(vars[i], expr::Expr::constant(values[i]));

    Schedule bound;
    bound.steps = steps;
    for (TransformStep &step : bound.steps) {
        for (expr::Expr &factor : step.factors)
            factor = expr::substitute(factor, map);
    }
    return bound;
}

std::string
Schedule::str() const
{
    std::string out;
    for (const TransformStep &step : steps)
        out += step.str() + "\n";
    return out;
}

} // namespace tir
} // namespace felix
