#include "tir/compute.h"

#include "support/logging.h"
#include "support/rng.h"

namespace felix {
namespace tir {

ArithCounts &
ArithCounts::operator+=(const ArithCounts &other)
{
    fma += other.fma;
    add += other.add;
    mul += other.mul;
    divOp += other.divOp;
    special += other.special;
    cmp += other.cmp;
    return *this;
}

double
ArithCounts::total() const
{
    return 2 * fma + add + mul + divOp + special + cmp;
}

int64_t
BufferAccess::bufferElems() const
{
    int64_t elems = 1;
    for (const BufferDim &dim : dims)
        elems *= dim.dimSize;
    return elems;
}

std::vector<Axis>
ComputeOp::spatialAxes() const
{
    std::vector<Axis> out;
    for (const Axis &axis : axes) {
        if (!axis.isReduce)
            out.push_back(axis);
    }
    return out;
}

std::vector<Axis>
ComputeOp::reduceAxes() const
{
    std::vector<Axis> out;
    for (const Axis &axis : axes) {
        if (axis.isReduce)
            out.push_back(axis);
    }
    return out;
}

int64_t
ComputeOp::spatialExtent() const
{
    int64_t extent = 1;
    for (const Axis &axis : axes) {
        if (!axis.isReduce)
            extent *= axis.extent;
    }
    return extent;
}

int64_t
ComputeOp::reduceExtent() const
{
    int64_t extent = 1;
    for (const Axis &axis : axes) {
        if (axis.isReduce)
            extent *= axis.extent;
    }
    return extent;
}

int64_t
ComputeOp::totalPoints() const
{
    return spatialExtent() * reduceExtent();
}

double
ComputeOp::flops() const
{
    return static_cast<double>(totalPoints()) * arith.total();
}

const ComputeOp &
SubgraphDef::dominantOp() const
{
    return ops[dominantOpIndex()];
}

int
SubgraphDef::dominantOpIndex() const
{
    FELIX_CHECK(!ops.empty(), "empty subgraph ", name);
    int best = 0;
    double bestFlops = -1.0;
    for (size_t i = 0; i < ops.size(); ++i) {
        double f = ops[i].flops();
        // Prefer reduction ops on a tie: they own the tiling sketch.
        if (f > bestFlops ||
            (f == bestFlops && ops[i].reduceExtent() > 1 &&
             ops[best].reduceExtent() == 1)) {
            bestFlops = f;
            best = static_cast<int>(i);
        }
    }
    return best;
}

double
SubgraphDef::totalFlops() const
{
    double flops = 0.0;
    for (const ComputeOp &op : ops)
        flops += op.flops();
    return flops;
}

uint64_t
SubgraphDef::structuralHash() const
{
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const ComputeOp &op : ops) {
        for (const Axis &axis : op.axes) {
            h = hashCombine(h, static_cast<uint64_t>(axis.extent));
            h = hashCombine(h, axis.isReduce ? 1 : 0);
        }
        h = hashCombine(h, static_cast<uint64_t>(op.arith.total() * 16));
        h = hashCombine(h, op.inputs.size());
        for (const BufferAccess &acc : op.inputs) {
            h = hashCombine(h, acc.dims.size());
            for (const BufferDim &dim : acc.dims) {
                h = hashCombine(h, static_cast<uint64_t>(dim.dimSize));
                h = hashCombine(h, dim.contribs.size());
            }
        }
        h = hashCombine(h, op.inlineable ? 1 : 0);
    }
    return h;
}

} // namespace tir
} // namespace felix
