/**
 * @file
 * Operator builders: compute definitions for every tensor operator
 * used by the evaluated networks (paper §5: 2d/3d convolutions,
 * transposed convolutions, dense / batched matmul, softmax, pooling,
 * and the elementwise family).
 *
 * Each builder returns a SubgraphDef — the fused tuning task Felix
 * optimizes. Unary elementwise epilogues (ReLU, etc.) are pre-fused
 * into the dominant op's arithmetic (Ansor applies operator fusion
 * greedily, §4); epilogues that read an extra tensor (bias add,
 * residual add) become a separate stage scheduled with ComputeAt,
 * like the paper's Dense-Add example (Fig. 3).
 */
#ifndef FELIX_TIR_OPS_H_
#define FELIX_TIR_OPS_H_

#include "tir/compute.h"

namespace felix {
namespace tir {

/** Unary epilogue fused into the dominant op. */
enum class Epilogue : uint8_t { None, Relu, Sigmoid, Tanh, Gelu };

/** Conv2d configuration (NCHW input, KCRS weight). */
struct Conv2dConfig
{
    int64_t n = 1, c = 3, h = 224, w = 224;
    int64_t k = 64, r = 3, s = 3;
    int64_t stride = 1, pad = 1;
    int64_t groups = 1;        ///< groups == c: depthwise
    bool bias = false;
    Epilogue epilogue = Epilogue::None;

    int64_t outH() const { return (h + 2 * pad - r) / stride + 1; }
    int64_t outW() const { return (w + 2 * pad - s) / stride + 1; }
};

/** Conv3d configuration (NCDHW input). */
struct Conv3dConfig
{
    int64_t n = 1, c = 3, d = 16, h = 112, w = 112;
    int64_t k = 64, kd = 3, r = 3, s = 3;
    int64_t stride = 1, pad = 1;
    bool bias = false;
    Epilogue epilogue = Epilogue::None;

    int64_t outD() const { return (d + 2 * pad - kd) / stride + 1; }
    int64_t outH() const { return (h + 2 * pad - r) / stride + 1; }
    int64_t outW() const { return (w + 2 * pad - s) / stride + 1; }
};

/** Transposed Conv2d (DCGAN generator style). */
struct TConv2dConfig
{
    int64_t n = 1, c = 100, h = 1, w = 1;
    int64_t k = 512, r = 4, s = 4;
    int64_t stride = 1, pad = 0;
    bool bias = false;
    Epilogue epilogue = Epilogue::None;

    int64_t outH() const { return (h - 1) * stride - 2 * pad + r; }
    int64_t outW() const { return (w - 1) * stride - 2 * pad + s; }
};

SubgraphDef conv2d(const Conv2dConfig &config,
                   const std::string &name = "conv2d");
SubgraphDef conv3d(const Conv3dConfig &config,
                   const std::string &name = "conv3d");
SubgraphDef tconv2d(const TConv2dConfig &config,
                    const std::string &name = "tconv2d");

/** Dense (matmul) with optional bias-add epilogue stage. */
SubgraphDef dense(int64_t n, int64_t m, int64_t k, bool bias = true,
                  Epilogue epilogue = Epilogue::None,
                  const std::string &name = "dense");

/** Batched matmul: [b, n, k] x [b, k, m]. */
SubgraphDef batchMatmul(int64_t b, int64_t n, int64_t m, int64_t k,
                        const std::string &name = "batch_matmul");

/** Row softmax over [rows, cols] (3 stages: max, exp-sum, norm). */
SubgraphDef softmax(int64_t rows, int64_t cols,
                    const std::string &name = "softmax");

/** Max pooling, NCHW. */
SubgraphDef maxPool2d(int64_t n, int64_t c, int64_t h, int64_t w,
                      int64_t kernel, int64_t stride,
                      const std::string &name = "max_pool2d");

/** Global average pooling to 1x1, NCHW. */
SubgraphDef globalAvgPool2d(int64_t n, int64_t c, int64_t h, int64_t w,
                            const std::string &name = "global_avg_pool");

/**
 * Fused elementwise subgraph over a flat domain of @p elems
 * elements reading @p num_inputs tensors (residual add, batchnorm-
 * scale, activations, ...).
 */
SubgraphDef elementwise(int64_t elems, int num_inputs,
                        const ArithCounts &arith,
                        const std::string &name = "elementwise");

/** LayerNorm over [rows, cols] (transformers). */
SubgraphDef layerNorm(int64_t rows, int64_t cols,
                      const std::string &name = "layer_norm");

} // namespace tir
} // namespace felix

#endif // FELIX_TIR_OPS_H_
