/**
 * @file
 * Schedules: sequences of program transformations (paper §2, §3.2).
 *
 * A Schedule is a list of TransformSteps applied to the naive
 * program of a subgraph. Step parameters are expressions: a
 * *symbolic schedule* s* carries schedule variables (tile sizes,
 * unroll factors, ...) where a concrete schedule carries integer
 * constants. Binding variable values turns a symbolic schedule into
 * a concrete one — exactly Felix's relationship between the two.
 */
#ifndef FELIX_TIR_SCHEDULE_H_
#define FELIX_TIR_SCHEDULE_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "tir/compute.h"

namespace felix {
namespace tir {

/** Loop annotations (TVM/Ansor's GPU + CPU binding set). */
enum class Annotation : uint8_t {
    None,
    BlockX,     ///< bind to blockIdx.x
    ThreadX,    ///< bind to threadIdx.x
    VThread,    ///< virtual thread (striding thread block)
    Vectorize,
    Unroll,
    Parallel,   ///< CPU-style parallel-for (unused on GPU)
};

const char *annotationName(Annotation ann);

/** Kinds of transformation steps Felix tunes (paper §4). */
enum class StepKind : uint8_t {
    Split,       ///< tile one loop with symbolic factors
    Fuse,        ///< fuse a contiguous run of loops into one
    Reorder,     ///< permute the loop order
    Annotate,    ///< bind/annotate one loop
    ComputeAt,   ///< attach this stage under a loop of another stage
    Inline,      ///< inline an elementwise stage into its consumer
    CacheRead,   ///< stage an input buffer in shared memory
    Pragma,      ///< auto_unroll_max_step <= value
};

const char *stepKindName(StepKind kind);

/**
 * One transformation step. Fields are interpreted per kind:
 *  - Split: stageId, loopIndex, factors (inner tile sizes; the
 *    outer extent becomes extent / prod(factors))
 *  - Fuse: stageId, loopIndex (first), count = number of loops
 *  - Reorder: stageId, order = permutation of loop indices
 *  - Annotate: stageId, loopIndex, annotation
 *  - ComputeAt: stageId, targetStageId, targetLoopIndex
 *  - Inline: stageId
 *  - CacheRead: stageId (consumer), inputIndex (which access),
 *    targetLoopIndex (attach point in consumer)
 *  - Pragma: stageId, factors[0] = max unroll step
 */
struct TransformStep
{
    StepKind kind;
    int stageId = 0;
    int loopIndex = 0;
    int count = 0;
    int targetStageId = 0;
    int targetLoopIndex = 0;
    int inputIndex = 0;
    Annotation annotation = Annotation::None;
    std::vector<expr::Expr> factors;
    std::vector<int> order;

    std::string str() const;
};

/**
 * A schedule: transformation steps plus the schedule-variable names
 * they reference. For a concrete schedule `vars` is empty.
 */
struct Schedule
{
    std::vector<TransformStep> steps;
    std::vector<std::string> vars;

    /** Bind variable values (name order = vars) => concrete steps. */
    Schedule bind(const std::vector<double> &values) const;

    std::string str() const;
};

} // namespace tir
} // namespace felix

#endif // FELIX_TIR_SCHEDULE_H_
