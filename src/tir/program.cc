#include "tir/program.h"

#include <algorithm>

#include "support/logging.h"
#include "support/string_util.h"

namespace felix {
namespace tir {

using expr::Expr;

expr::Expr
StageInfo::serialWork() const
{
    Expr work = Expr::constant(1.0);
    for (const LoopInfo &loop : loops)
        work = work * loop.extent;
    return work;
}

expr::Expr
Program::annotatedExtent(Annotation ann) const
{
    Expr extent = Expr::constant(1.0);
    for (const LoopInfo &loop : stages[rootStage].loops) {
        if (loop.ann == ann)
            extent = extent * loop.extent;
    }
    return extent;
}

std::string
Program::str() const
{
    std::string out = "program " + subgraphName + ":\n";
    for (const StageInfo &stage : stages) {
        out += "  stage " + stage.name;
        if (stage.isCacheRead)
            out += " [shared cache]";
        if (stage.attachStage >= 0) {
            out += strformat(" [compute_at stage=%d loop=%d]",
                             stage.attachStage, stage.attachLoop);
        }
        out += "\n";
        int indent = 2;
        for (const LoopInfo &loop : stage.loops) {
            out += std::string(2 * indent, ' ') + "for " + loop.name +
                   " in (0, " + loop.extent.str() + ")";
            if (loop.ann != Annotation::None)
                out += std::string(" // ") + annotationName(loop.ann);
            out += "\n";
            ++indent;
        }
    }
    if (unrollMaxStep.defined() && !unrollMaxStep.isConst(1.0))
        out += "  auto_unroll_max_step = " + unrollMaxStep.str() + "\n";
    return out;
}

Program
naiveProgram(const SubgraphDef &subgraph)
{
    Program program;
    program.subgraphName = subgraph.name;
    program.unrollMaxStep = Expr::constant(1.0);
    program.rootStage = subgraph.dominantOpIndex();
    for (const ComputeOp &op : subgraph.ops) {
        StageInfo stage;
        stage.name = op.name;
        stage.op = op;
        for (const Axis &axis : op.axes) {
            LoopInfo loop;
            loop.name = axis.name;
            loop.extent = Expr::intConst(axis.extent);
            loop.cover = {{axis.name, loop.extent}};
            stage.loops.push_back(std::move(loop));
        }
        program.stages.push_back(std::move(stage));
    }
    return program;
}

namespace {

/**
 * Distribute the coverage of a loop over split parts, innermost
 * part first (row-major iteration order). Symbolic extents use
 * min/div expressions; smoothing later removes the kinks.
 */
std::vector<std::vector<AxisCover>>
splitCover(const std::vector<AxisCover> &cover,
           const std::vector<Expr> &partExtents)
{
    const size_t nParts = partExtents.size();
    std::vector<std::vector<AxisCover>> parts(nParts);

    // Remaining coverage per axis, consumed from the innermost axis
    // by the innermost parts first.
    std::vector<AxisCover> remaining = cover;

    for (size_t p = nParts; p-- > 1;) {       // all but the outermost
        Expr need = partExtents[p];
        std::vector<AxisCover> taken;
        for (size_t a = remaining.size(); a-- > 0;) {
            Expr take = expr::min(need, remaining[a].extent);
            taken.insert(taken.begin(), {remaining[a].axis, take});
            remaining[a].extent = remaining[a].extent / take;
            need = need / take;
        }
        parts[p] = std::move(taken);
    }
    parts[0] = std::move(remaining);
    // Drop trivially-1 covers to keep expressions small.
    for (auto &part : parts) {
        part.erase(std::remove_if(part.begin(), part.end(),
                                  [](const AxisCover &c) {
                                      return c.extent.isConst(1.0);
                                  }),
                   part.end());
    }
    return parts;
}

void
applySplit(Program &program, const TransformStep &step)
{
    StageInfo &stage = program.stages.at(step.stageId);
    FELIX_CHECK(step.loopIndex >= 0 &&
                step.loopIndex < static_cast<int>(stage.loops.size()),
                "split: loop index out of range");
    FELIX_CHECK(!step.factors.empty(), "split with no factors");

    LoopInfo original = stage.loops[step.loopIndex];
    Expr innerProduct = Expr::constant(1.0);
    for (const Expr &factor : step.factors)
        innerProduct = innerProduct * factor;

    std::vector<Expr> partExtents;
    partExtents.push_back(original.extent / innerProduct);
    for (const Expr &factor : step.factors)
        partExtents.push_back(factor);

    auto covers = splitCover(original.cover, partExtents);

    std::vector<LoopInfo> newLoops;
    for (size_t p = 0; p < partExtents.size(); ++p) {
        LoopInfo loop;
        loop.name = original.name + "." + std::to_string(p);
        loop.extent = partExtents[p];
        loop.cover = covers[p];
        newLoops.push_back(std::move(loop));
    }
    stage.loops.erase(stage.loops.begin() + step.loopIndex);
    stage.loops.insert(stage.loops.begin() + step.loopIndex,
                       newLoops.begin(), newLoops.end());
}

void
applyFuse(Program &program, const TransformStep &step)
{
    StageInfo &stage = program.stages.at(step.stageId);
    FELIX_CHECK(step.count >= 2, "fuse needs at least 2 loops");
    FELIX_CHECK(step.loopIndex >= 0 &&
                step.loopIndex + step.count <=
                    static_cast<int>(stage.loops.size()),
                "fuse: loop range out of bounds");

    LoopInfo fused;
    fused.extent = Expr::constant(1.0);
    std::vector<std::string> names;
    for (int i = 0; i < step.count; ++i) {
        const LoopInfo &loop = stage.loops[step.loopIndex + i];
        names.push_back(loop.name);
        fused.extent = fused.extent * loop.extent;
        fused.cover.insert(fused.cover.end(), loop.cover.begin(),
                           loop.cover.end());
    }
    fused.name = join(names, ".");
    stage.loops.erase(stage.loops.begin() + step.loopIndex,
                      stage.loops.begin() + step.loopIndex + step.count);
    stage.loops.insert(stage.loops.begin() + step.loopIndex,
                       std::move(fused));
}

void
applyReorder(Program &program, const TransformStep &step)
{
    StageInfo &stage = program.stages.at(step.stageId);
    FELIX_CHECK(step.order.size() == stage.loops.size(),
                "reorder: permutation size mismatch");
    std::vector<LoopInfo> reordered;
    std::vector<bool> used(stage.loops.size(), false);
    for (int idx : step.order) {
        FELIX_CHECK(idx >= 0 &&
                    idx < static_cast<int>(stage.loops.size()) &&
                    !used[idx],
                    "reorder: invalid permutation");
        used[idx] = true;
        reordered.push_back(stage.loops[idx]);
    }
    stage.loops = std::move(reordered);
}

void
applyAnnotate(Program &program, const TransformStep &step)
{
    StageInfo &stage = program.stages.at(step.stageId);
    FELIX_CHECK(step.loopIndex >= 0 &&
                step.loopIndex < static_cast<int>(stage.loops.size()),
                "annotate: loop index out of range");
    stage.loops[step.loopIndex].ann = step.annotation;
}

void
applyComputeAt(Program &program, const TransformStep &step)
{
    StageInfo &stage = program.stages.at(step.stageId);
    const StageInfo &target = program.stages.at(step.targetStageId);
    FELIX_CHECK(step.targetLoopIndex >= 0 &&
                step.targetLoopIndex <
                    static_cast<int>(target.loops.size()),
                "compute_at: target loop out of range");

    stage.attachStage = step.targetStageId;
    stage.attachLoop = step.targetLoopIndex;

    // Executions of the attached stage = product of target loop
    // extents up to and including the attach point; the per-execution
    // work is the remaining fraction of the stage's own domain.
    Expr executions = Expr::constant(1.0);
    for (int i = 0; i <= step.targetLoopIndex; ++i)
        executions = executions * target.loops[i].extent;

    Expr total = Expr::intConst(stage.op.spatialExtent()) *
                 Expr::intConst(stage.op.reduceExtent());
    Expr perExec = total / executions;

    LoopInfo aggregate;
    aggregate.name = stage.name + ".tile";
    aggregate.extent = perExec;
    aggregate.cover = {{"_" + stage.name + "_all", perExec}};
    stage.loops = {std::move(aggregate)};
    stage.aggregateLoops = true;
}

void
applyCacheRead(Program &program, const TransformStep &step)
{
    StageInfo &consumer = program.stages.at(step.stageId);
    FELIX_CHECK(step.inputIndex >= 0 &&
                step.inputIndex <
                    static_cast<int>(consumer.op.inputs.size()),
                "cache_read: input index out of range");
    FELIX_CHECK(step.targetLoopIndex >= 0 &&
                step.targetLoopIndex <
                    static_cast<int>(consumer.loops.size()),
                "cache_read: attach loop out of range");

    const BufferAccess &access = consumer.op.inputs[step.inputIndex];

    StageInfo cache;
    cache.name = access.tensor + ".shared";
    cache.isCacheRead = true;
    cache.cacheConsumerStage = step.stageId;
    cache.cacheInputIndex = step.inputIndex;
    cache.attachStage = step.stageId;
    cache.attachLoop = step.targetLoopIndex;
    cache.outputScope = MemScope::Shared;
    // The cache stage's op: pure copy of the staged buffer region.
    cache.op.name = cache.name;
    cache.op.inputs = {access};
    // Loops of the cache stage are derived from the consumer's
    // footprint at feature-extraction time (they depend on the
    // consumer's final loop structure).
    program.stages.push_back(std::move(cache));
}

void
applyPragma(Program &program, const TransformStep &step)
{
    FELIX_CHECK(!step.factors.empty(), "pragma without value");
    program.unrollMaxStep = step.factors[0];
}

} // namespace

void
applyStep(Program &program, const TransformStep &step)
{
    switch (step.kind) {
      case StepKind::Split:
        applySplit(program, step);
        break;
      case StepKind::Fuse:
        applyFuse(program, step);
        break;
      case StepKind::Reorder:
        applyReorder(program, step);
        break;
      case StepKind::Annotate:
        applyAnnotate(program, step);
        break;
      case StepKind::ComputeAt:
        applyComputeAt(program, step);
        break;
      case StepKind::Inline:
        program.stages.at(step.stageId).outputScope = MemScope::Local;
        break;
      case StepKind::CacheRead:
        applyCacheRead(program, step);
        break;
      case StepKind::Pragma:
        applyPragma(program, step);
        break;
    }
}

Program
applySchedule(const SubgraphDef &subgraph, const Schedule &schedule)
{
    Program program = naiveProgram(subgraph);
    for (const TransformStep &step : schedule.steps)
        applyStep(program, step);
    return program;
}

} // namespace tir
} // namespace felix
