/**
 * @file
 * Loop-nest program IR and the schedule interpreter T(p0, s).
 *
 * A Program is the result of applying a (symbolic or concrete)
 * Schedule to the naive program of a SubgraphDef. Loop extents are
 * expressions: with a symbolic schedule they contain the schedule
 * variables (a *symbolic program*, paper §3.2); with a concrete
 * schedule they fold to constants.
 *
 * Each loop tracks which origin iteration axes it covers and by how
 * much (`axisCover`), which is what feature extraction needs to
 * compute buffer footprints at any loop depth. Splitting a fused
 * loop distributes coverage to the constituent axes innermost-first
 * (row-major order), using min/div expressions — these are exactly
 * the discontinuities the smoothing rewriter later removes.
 */
#ifndef FELIX_TIR_PROGRAM_H_
#define FELIX_TIR_PROGRAM_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "tir/compute.h"
#include "tir/schedule.h"

namespace felix {
namespace tir {

/** Per-origin-axis coverage of one loop: axis name -> extent expr. */
struct AxisCover
{
    std::string axis;
    expr::Expr extent;
};

/** One loop of a scheduled stage. */
struct LoopInfo
{
    std::string name;
    expr::Expr extent;
    Annotation ann = Annotation::None;
    std::vector<AxisCover> cover;
};

/** Where a stage's buffers live. */
enum class MemScope : uint8_t { Global, Shared, Local };

/** One scheduled stage of a Program. */
struct StageInfo
{
    std::string name;
    ComputeOp op;                   ///< copy: self-contained program
    std::vector<LoopInfo> loops;

    /** ComputeAt attachment (-1 = root). */
    int attachStage = -1;
    int attachLoop = -1;

    bool isCacheRead = false;
    int cacheConsumerStage = -1;    ///< consumer stage index
    int cacheInputIndex = -1;       ///< which consumer access is staged

    /**
     * True when ComputeAt replaced the original loops with an
     * aggregate per-execution nest; footprints then use proportional
     * scaling instead of per-dimension coverage.
     */
    bool aggregateLoops = false;

    MemScope outputScope = MemScope::Global;

    /** Product of all loop extents (per execution of the stage). */
    expr::Expr serialWork() const;
};

/** A scheduled (possibly symbolic) program. */
struct Program
{
    std::string subgraphName;
    std::vector<StageInfo> stages;
    expr::Expr unrollMaxStep;       ///< auto_unroll pragma (>= 1)

    /** Index of the stage that owns the kernel launch dimensions. */
    int rootStage = 0;

    /** Extent product of loops with the given annotation (root). */
    expr::Expr annotatedExtent(Annotation ann) const;

    std::string str() const;
};

/**
 * Build the naive (unscheduled) program of a subgraph: one stage per
 * op, one loop per axis, no annotations — the p0 of the paper.
 */
Program naiveProgram(const SubgraphDef &subgraph);

/**
 * Apply a schedule to the naive program of @p subgraph: T(p0, s).
 * Steps referencing invalid loops/stages are an internal error (the
 * sketch generator emits consistent steps).
 */
Program applySchedule(const SubgraphDef &subgraph,
                      const Schedule &schedule);

/**
 * Apply one transformation step in place. Used by the sketch
 * builder, which interleaves step construction with application so
 * loop indices always refer to the current program state.
 */
void applyStep(Program &program, const TransformStep &step);

} // namespace tir
} // namespace felix

#endif // FELIX_TIR_PROGRAM_H_
