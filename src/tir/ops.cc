#include "tir/ops.h"

#include "support/logging.h"
#include "support/string_util.h"

namespace felix {
namespace tir {

namespace {

/** Arithmetic cost of a unary epilogue, merged into the main op. */
ArithCounts
epilogueArith(Epilogue epilogue)
{
    ArithCounts arith;
    switch (epilogue) {
      case Epilogue::None:
        break;
      case Epilogue::Relu:
        arith.cmp = 1;
        break;
      case Epilogue::Sigmoid:
        arith.special = 1;
        arith.add = 1;
        arith.divOp = 1;
        break;
      case Epilogue::Tanh:
        arith.special = 1;
        break;
      case Epilogue::Gelu:
        arith.special = 1;
        arith.mul = 2;
        arith.add = 1;
        break;
    }
    return arith;
}

BufferDim
dim1(const std::string &axis, int64_t size)
{
    return BufferDim{{{axis, 1}}, size};
}

/**
 * Fold a unary epilogue into a reduction op's per-point arithmetic.
 * The epilogue runs once per *output* point, while ArithCounts are
 * multiplied by the full iteration domain (including reductions), so
 * the contribution must be scaled by 1/reduceExtent.
 */
ArithCounts
scaledEpilogue(Epilogue epilogue, int64_t reduce_extent)
{
    ArithCounts arith = epilogueArith(epilogue);
    const double scale = 1.0 / static_cast<double>(
                                   std::max<int64_t>(1, reduce_extent));
    arith.fma *= scale;
    arith.add *= scale;
    arith.mul *= scale;
    arith.divOp *= scale;
    arith.special *= scale;
    arith.cmp *= scale;
    return arith;
}

/** Bias-add epilogue stage: out[spatial] = in[spatial] + bias[ch]. */
ComputeOp
biasAddStage(const std::string &producer, const std::string &bias_name,
             const std::vector<Axis> &spatial, int channel_axis,
             Epilogue epilogue)
{
    ComputeOp op;
    op.name = producer + "_add";
    op.axes = spatial;
    op.arith.add = 1;
    op.arith += epilogueArith(epilogue);
    op.inlineable = false;

    BufferAccess producerAccess;
    producerAccess.tensor = producer;
    for (const Axis &axis : spatial)
        producerAccess.dims.push_back(dim1(axis.name, axis.extent));
    op.inputs.push_back(std::move(producerAccess));

    BufferAccess biasAccess;
    biasAccess.tensor = bias_name;
    biasAccess.dims.push_back(dim1(spatial[channel_axis].name,
                                   spatial[channel_axis].extent));
    op.inputs.push_back(std::move(biasAccess));
    return op;
}

} // namespace

SubgraphDef
conv2d(const Conv2dConfig &config, const std::string &name)
{
    FELIX_CHECK(config.c % config.groups == 0 &&
                config.k % config.groups == 0,
                "conv2d: channels not divisible by groups");
    const int64_t oh = config.outH(), ow = config.outW();
    const int64_t cPerGroup = config.c / config.groups;
    FELIX_CHECK(oh > 0 && ow > 0, "conv2d: empty output");

    ComputeOp op;
    op.name = name;
    op.axes = {
        {"n", config.n, false}, {"k", config.k, false},
        {"oh", oh, false},      {"ow", ow, false},
        {"c", cPerGroup, true}, {"r", config.r, true},
        {"s", config.s, true},
    };
    op.arith.fma = 1;
    if (config.epilogue != Epilogue::None && !config.bias) {
        op.arith += scaledEpilogue(config.epilogue,
                                   cPerGroup * config.r * config.s);
    }

    BufferAccess data;
    data.tensor = "data";
    data.dims = {
        dim1("n", config.n),
        // The channel dim is driven by the reduce axis c (and, for
        // grouped convs, by a slice of k; the footprint model folds
        // that into c's contribution).
        dim1("c", config.c),
        BufferDim{{{"oh", config.stride}, {"r", 1}}, config.h},
        BufferDim{{{"ow", config.stride}, {"s", 1}}, config.w},
    };
    op.inputs.push_back(std::move(data));

    BufferAccess weight;
    weight.tensor = "weight";
    weight.dims = {dim1("k", config.k), dim1("c", cPerGroup),
                   dim1("r", config.r), dim1("s", config.s)};
    op.inputs.push_back(std::move(weight));

    SubgraphDef subgraph;
    subgraph.name = name;
    subgraph.ops.push_back(std::move(op));
    if (config.bias) {
        subgraph.ops.push_back(biasAddStage(
            name, "bias",
            {{"n", config.n, false},
             {"k", config.k, false},
             {"oh", oh, false},
             {"ow", ow, false}},
            1, config.epilogue));
    }
    return subgraph;
}

SubgraphDef
conv3d(const Conv3dConfig &config, const std::string &name)
{
    const int64_t od = config.outD(), oh = config.outH(),
                  ow = config.outW();
    FELIX_CHECK(od > 0 && oh > 0 && ow > 0, "conv3d: empty output");

    ComputeOp op;
    op.name = name;
    op.axes = {
        {"n", config.n, false},  {"k", config.k, false},
        {"od", od, false},       {"oh", oh, false},
        {"ow", ow, false},       {"c", config.c, true},
        {"kd", config.kd, true}, {"r", config.r, true},
        {"s", config.s, true},
    };
    op.arith.fma = 1;
    if (config.epilogue != Epilogue::None && !config.bias) {
        op.arith += scaledEpilogue(config.epilogue,
                                   config.c * config.kd * config.r *
                                       config.s);
    }

    BufferAccess data;
    data.tensor = "data";
    data.dims = {
        dim1("n", config.n),
        dim1("c", config.c),
        BufferDim{{{"od", config.stride}, {"kd", 1}}, config.d},
        BufferDim{{{"oh", config.stride}, {"r", 1}}, config.h},
        BufferDim{{{"ow", config.stride}, {"s", 1}}, config.w},
    };
    op.inputs.push_back(std::move(data));

    BufferAccess weight;
    weight.tensor = "weight";
    weight.dims = {dim1("k", config.k), dim1("c", config.c),
                   dim1("kd", config.kd), dim1("r", config.r),
                   dim1("s", config.s)};
    op.inputs.push_back(std::move(weight));

    SubgraphDef subgraph;
    subgraph.name = name;
    subgraph.ops.push_back(std::move(op));
    if (config.bias) {
        subgraph.ops.push_back(biasAddStage(
            name, "bias",
            {{"n", config.n, false},
             {"k", config.k, false},
             {"od", od, false},
             {"oh", oh, false},
             {"ow", ow, false}},
            1, config.epilogue));
    }
    return subgraph;
}

SubgraphDef
tconv2d(const TConv2dConfig &config, const std::string &name)
{
    const int64_t oh = config.outH(), ow = config.outW();
    FELIX_CHECK(oh > 0 && ow > 0, "tconv2d: empty output");

    // Transposed convolution computed output-stationary: each output
    // pixel reduces over (c, r, s) reading a strided input window.
    ComputeOp op;
    op.name = name;
    op.axes = {
        {"n", config.n, false}, {"k", config.k, false},
        {"oh", oh, false},      {"ow", ow, false},
        {"c", config.c, true},  {"r", config.r, true},
        {"s", config.s, true},
    };
    op.arith.fma = 1;
    // Zero-insertion guard: only 1/stride^2 of taps hit real inputs.
    op.arith.cmp = 2;
    if (config.epilogue != Epilogue::None && !config.bias) {
        op.arith += scaledEpilogue(config.epilogue,
                                   config.c * config.r * config.s);
    }

    BufferAccess data;
    data.tensor = "data";
    data.dims = {
        dim1("n", config.n),
        dim1("c", config.c),
        // Input rows touched by an output tile of height t is about
        // t/stride + r/stride: stride-1 contributions approximate
        // the fractional stride of the transposed conv.
        BufferDim{{{"oh", 1}, {"r", 1}}, config.h},
        BufferDim{{{"ow", 1}, {"s", 1}}, config.w},
    };
    op.inputs.push_back(std::move(data));

    BufferAccess weight;
    weight.tensor = "weight";
    weight.dims = {dim1("c", config.c), dim1("k", config.k),
                   dim1("r", config.r), dim1("s", config.s)};
    op.inputs.push_back(std::move(weight));

    SubgraphDef subgraph;
    subgraph.name = name;
    subgraph.ops.push_back(std::move(op));
    if (config.bias) {
        subgraph.ops.push_back(biasAddStage(
            name, "bias",
            {{"n", config.n, false},
             {"k", config.k, false},
             {"oh", oh, false},
             {"ow", ow, false}},
            1, config.epilogue));
    }
    return subgraph;
}

SubgraphDef
dense(int64_t n, int64_t m, int64_t k, bool bias, Epilogue epilogue,
      const std::string &name)
{
    ComputeOp op;
    op.name = name;
    op.axes = {{"i", n, false}, {"j", m, false}, {"kk", k, true}};
    op.arith.fma = 1;
    if (!bias && epilogue != Epilogue::None)
        op.arith += scaledEpilogue(epilogue, k);

    BufferAccess a;
    a.tensor = "A";
    a.dims = {dim1("i", n), dim1("kk", k)};
    op.inputs.push_back(std::move(a));

    BufferAccess b;
    b.tensor = "B";
    b.dims = {dim1("kk", k), dim1("j", m)};
    op.inputs.push_back(std::move(b));

    SubgraphDef subgraph;
    subgraph.name = name;
    subgraph.ops.push_back(std::move(op));
    if (bias) {
        subgraph.ops.push_back(biasAddStage(
            name, "C", {{"i", n, false}, {"j", m, false}}, 1,
            epilogue));
    }
    return subgraph;
}

SubgraphDef
batchMatmul(int64_t b, int64_t n, int64_t m, int64_t k,
            const std::string &name)
{
    ComputeOp op;
    op.name = name;
    op.axes = {{"b", b, false}, {"i", n, false}, {"j", m, false},
               {"kk", k, true}};
    op.arith.fma = 1;

    BufferAccess lhs;
    lhs.tensor = "A";
    lhs.dims = {dim1("b", b), dim1("i", n), dim1("kk", k)};
    op.inputs.push_back(std::move(lhs));

    BufferAccess rhs;
    rhs.tensor = "B";
    rhs.dims = {dim1("b", b), dim1("kk", k), dim1("j", m)};
    op.inputs.push_back(std::move(rhs));

    SubgraphDef subgraph;
    subgraph.name = name;
    subgraph.ops.push_back(std::move(op));
    return subgraph;
}

SubgraphDef
softmax(int64_t rows, int64_t cols, const std::string &name)
{
    SubgraphDef subgraph;
    subgraph.name = name;

    ComputeOp maxOp;
    maxOp.name = name + "_max";
    maxOp.axes = {{"i", rows, false}, {"j", cols, true}};
    maxOp.arith.cmp = 1;
    BufferAccess x1;
    x1.tensor = "X";
    x1.dims = {dim1("i", rows), dim1("j", cols)};
    maxOp.inputs.push_back(x1);
    subgraph.ops.push_back(std::move(maxOp));

    ComputeOp sumOp;
    sumOp.name = name + "_expsum";
    sumOp.axes = {{"i", rows, false}, {"j", cols, true}};
    sumOp.arith.special = 1;   // exp
    sumOp.arith.add = 2;       // subtract max, accumulate
    sumOp.inputs.push_back(x1);
    BufferAccess mx;
    mx.tensor = name + "_max";
    mx.dims = {dim1("i", rows)};
    sumOp.inputs.push_back(mx);
    subgraph.ops.push_back(std::move(sumOp));

    ComputeOp normOp;
    normOp.name = name;
    normOp.axes = {{"i", rows, false}, {"j", cols, false}};
    normOp.arith.special = 1;  // exp
    normOp.arith.add = 1;
    normOp.arith.divOp = 1;
    normOp.inputs.push_back(x1);
    normOp.inputs.push_back(mx);
    BufferAccess sm;
    sm.tensor = name + "_expsum";
    sm.dims = {dim1("i", rows)};
    normOp.inputs.push_back(sm);
    subgraph.ops.push_back(std::move(normOp));
    return subgraph;
}

SubgraphDef
maxPool2d(int64_t n, int64_t c, int64_t h, int64_t w, int64_t kernel,
          int64_t stride, const std::string &name)
{
    const int64_t oh = (h - kernel) / stride + 1;
    const int64_t ow = (w - kernel) / stride + 1;
    FELIX_CHECK(oh > 0 && ow > 0, "max_pool2d: empty output");

    ComputeOp op;
    op.name = name;
    op.axes = {
        {"n", n, false},      {"c", c, false}, {"oh", oh, false},
        {"ow", ow, false},    {"r", kernel, true},
        {"s", kernel, true},
    };
    op.arith.cmp = 1;

    BufferAccess data;
    data.tensor = "data";
    data.dims = {
        dim1("n", n),
        dim1("c", c),
        BufferDim{{{"oh", stride}, {"r", 1}}, h},
        BufferDim{{{"ow", stride}, {"s", 1}}, w},
    };
    op.inputs.push_back(std::move(data));

    SubgraphDef subgraph;
    subgraph.name = name;
    subgraph.ops.push_back(std::move(op));
    return subgraph;
}

SubgraphDef
globalAvgPool2d(int64_t n, int64_t c, int64_t h, int64_t w,
                const std::string &name)
{
    ComputeOp op;
    op.name = name;
    op.axes = {{"n", n, false}, {"c", c, false}, {"r", h, true},
               {"s", w, true}};
    op.arith.add = 1;

    BufferAccess data;
    data.tensor = "data";
    data.dims = {dim1("n", n), dim1("c", c), dim1("r", h),
                 dim1("s", w)};
    op.inputs.push_back(std::move(data));

    SubgraphDef subgraph;
    subgraph.name = name;
    subgraph.ops.push_back(std::move(op));
    return subgraph;
}

SubgraphDef
elementwise(int64_t elems, int num_inputs, const ArithCounts &arith,
            const std::string &name)
{
    FELIX_CHECK(elems > 0 && num_inputs >= 1);
    ComputeOp op;
    op.name = name;
    op.axes = {{"i", elems, false}};
    op.arith = arith;
    for (int i = 0; i < num_inputs; ++i) {
        BufferAccess in;
        in.tensor = strformat("in%d", i);
        in.dims = {dim1("i", elems)};
        op.inputs.push_back(std::move(in));
    }
    SubgraphDef subgraph;
    subgraph.name = name;
    subgraph.ops.push_back(std::move(op));
    return subgraph;
}

SubgraphDef
layerNorm(int64_t rows, int64_t cols, const std::string &name)
{
    SubgraphDef subgraph;
    subgraph.name = name;

    BufferAccess x;
    x.tensor = "X";
    x.dims = {dim1("i", rows), dim1("j", cols)};

    ComputeOp meanOp;
    meanOp.name = name + "_moments";
    meanOp.axes = {{"i", rows, false}, {"j", cols, true}};
    meanOp.arith.add = 2;      // sum and sum-of-squares
    meanOp.arith.mul = 1;
    meanOp.inputs.push_back(x);
    subgraph.ops.push_back(std::move(meanOp));

    ComputeOp normOp;
    normOp.name = name;
    normOp.axes = {{"i", rows, false}, {"j", cols, false}};
    normOp.arith.add = 2;      // subtract mean, add beta
    normOp.arith.mul = 2;      // scale by rstd and gamma
    normOp.arith.special = 1;  // rsqrt
    normOp.inputs.push_back(x);
    BufferAccess moments;
    moments.tensor = name + "_moments";
    moments.dims = {dim1("i", rows)};
    normOp.inputs.push_back(moments);
    BufferAccess gamma;
    gamma.tensor = "gamma";
    gamma.dims = {dim1("j", cols)};
    normOp.inputs.push_back(gamma);
    subgraph.ops.push_back(std::move(normOp));
    return subgraph;
}

} // namespace tir
} // namespace felix
