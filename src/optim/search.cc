#include "optim/search.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "features/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/smoothing.h"
#include "rewrite/transforms.h"
#include "support/logging.h"
#include "support/parallel.h"

namespace felix {
namespace optim {

using expr::Expr;

std::vector<double>
SearchStrategy::featuresOf(const Candidate &candidate)
{
    return candidate.rawFeatures;
}

void
GradientSearch::observe(const Candidate &candidate,
                        double measured_latency_sec)
{
    if (bestMeasuredLatency_ < 0.0 ||
        measured_latency_sec < bestMeasuredLatency_) {
        bestMeasuredLatency_ = measured_latency_sec;
        bestMeasured_ = candidate;
    }
}

namespace {

/** Times sketch + tape construction into the shared phase metrics. */
std::vector<sketch::SymbolicSchedule>
generateSketchesTimed(const tir::SubgraphDef &subgraph,
                      const sketch::GenOptions &options)
{
    auto &registry = obs::MetricsRegistry::instance();
    obs::ScopedTimerMs timer(registry.counter("sketch.generate_ms"));
    FELIX_SPAN("sketch.generate", "sketch");
    auto sketches = sketch::generateSketches(subgraph, options);
    registry.counter("sketch.generated")
        .add(static_cast<double>(sketches.size()));
    return sketches;
}

} // namespace

GradientSearch::GradientSearch(const tir::SubgraphDef &subgraph,
                               GradSearchOptions options)
    : options_(std::move(options)),
      sketches_(generateSketchesTimed(subgraph,
                                      options_.sketchOptions))
{
    obs::ScopedTimerMs timer(obs::MetricsRegistry::instance().counter(
        "search.compile_tapes_ms"));
    FELIX_SPAN("search.compile_tapes", "search");
    // Sketches compile independently; interning the rewritten
    // formulas is thread-safe (sharded intern table).
    contexts_.resize(sketches_.size());
    parallelFor("search.compile_tape", sketches_.size(), [&](size_t
                                                                 si) {
        const sketch::SymbolicSchedule &sched = sketches_[si];
        SketchContext context;
        context.sched = &sched;
        for (const auto &domain : sched.vars)
            context.varNames.push_back(domain.name);

        // Exact x-space feature formulas (candidate evaluation and
        // hardware measurement path).
        auto raw = features::extractFeatures(sched.program);
        context.rawFeatures = std::make_unique<expr::CompiledExprs>(
            raw, context.varNames);

        // Differentiable objective tape: smoothed model inputs
        // log(max(f,1)) composed with the e^y substitution, plus the
        // smoothed legality constraints g_ir(e^y). The ablation
        // knobs can disable either rewrite stage.
        std::vector<Expr> outputs;
        outputs.reserve(raw.size() + sched.constraints.size());
        for (const Expr &f : raw) {
            Expr base = options_.applySmoothing
                            ? rewrite::makeSmooth(f, options_.kernel)
                            : f;
            Expr logged = rewrite::logExpand(base);
            if (options_.applyLogExp) {
                logged = rewrite::expSubstituteVars(
                    logged, context.varNames);
            }
            outputs.push_back(options_.applySmoothing
                                  ? rewrite::smoothMax0(
                                        logged, options_.kernel)
                                  : expr::max(logged,
                                              Expr::constant(0.0)));
        }
        for (const Expr &g : sched.constraints) {
            Expr smooth = options_.applySmoothing
                              ? rewrite::makeSmooth(g, options_.kernel)
                              : g;
            if (options_.applyLogExp) {
                smooth = rewrite::expSubstituteVars(
                    smooth, context.varNames);
            }
            outputs.push_back(smooth);
        }
        context.numPenalties = sched.constraints.size();
        context.objective = std::make_unique<expr::CompiledExprs>(
            outputs, context.varNames);
        context.checker =
            std::make_unique<sketch::ConstraintChecker>(sched);
        contexts_[si] = std::move(context);
    });
}

namespace {

/** Everything one seed's descent produces, merged in seed order. */
struct SeedOutcome
{
    std::vector<double> visitedScores;
    /** Valid rounded points in visit order (x0 last). */
    std::vector<std::vector<double>> validPoints;
    int roundingAttempts = 0;
    int roundingInvalid = 0;
};

} // namespace

RoundResult
GradientSearch::round(const costmodel::CostModel &model, Rng &rng)
{
    FELIX_SPAN("search.round", "search");
    auto &registry = obs::MetricsRegistry::instance();

    RoundResult result;
    result.trace.seedsLaunched = options_.nSeeds;
    const int numFeatures = features::kNumFeatures;

    // Each seed descends independently: forked rng, private Adam
    // state and eval scratch, results merged below in seed order so
    // --jobs N matches --jobs 1 bit for bit.
    std::vector<Rng> seedRngs = rng.forkStreams(options_.nSeeds);
    std::vector<SeedOutcome> outcomes(options_.nSeeds);

    parallelFor("search.seed_descent", options_.nSeeds, [&](size_t
                                                                seed) {
        const int sketchIdx =
            static_cast<int>(seed % contexts_.size());
        const SketchContext &context = contexts_[sketchIdx];
        const size_t numVars = context.varNames.size();
        Rng &seedRng = seedRngs[seed];
        SeedOutcome &outcome = outcomes[seed];

        // RandomInitSchedVars: rejection-sample a valid start; with
        // the e^y substitution the iterate lives in log space. One
        // seed warm-starts from the best measured schedule so late
        // rounds refine around the incumbent (Ansor keeps elites the
        // same way).
        std::vector<double> x0;
        if (seed == 0 && bestMeasuredLatency_ > 0.0 &&
            bestMeasured_.sketchIndex == sketchIdx) {
            x0 = bestMeasured_.x;
        } else {
            x0 = sketch::sampleValid(*context.sched, seedRng);
        }
        std::vector<double> y(numVars);
        for (size_t i = 0; i < numVars; ++i) {
            y[i] = options_.applyLogExp
                       ? std::log(std::max(1.0, x0[i]))
                       : x0[i];
        }

        Adam adam(numVars, options_.adam);
        expr::EvalState evalState;
        std::vector<double> outputs, outputGrads, inputGrads;
        std::vector<double> modelInputs(numFeatures);
        std::vector<double> modelGrad;

        for (int step = 0; step < options_.nSteps; ++step) {
            context.objective->forward(y, outputs, evalState);
            for (int k = 0; k < numFeatures; ++k)
                modelInputs[k] = outputs[k];
            const double score = model.predictTransformedWithGrad(
                modelInputs, modelGrad);
            outcome.visitedScores.push_back(score);

            // d(O)/d(outputs): -dC/dz for the features, and
            // lambda * 2 * max(g, 0) for each penalty term.
            outputGrads.assign(outputs.size(), 0.0);
            for (int k = 0; k < numFeatures; ++k)
                outputGrads[k] = -modelGrad[k];
            for (size_t p = 0; p < context.numPenalties; ++p) {
                const double g = outputs[numFeatures + p];
                if (g > 0.0) {
                    outputGrads[numFeatures + p] =
                        options_.lambda * 2.0 * g;
                }
            }
            context.objective->backward(outputGrads, inputGrads,
                                        evalState);
            adam.step(y, inputGrads);

            // Round the newly visited point to a valid schedule and
            // remember it (GetValidSchedules over the whole history).
            std::vector<double> logPoint = y;
            if (!options_.applyLogExp) {
                for (double &v : logPoint)
                    v = std::log(std::max(1e-9, v));
            }
            auto rounded = sketch::roundToValid(
                *context.sched, logPoint, *context.checker);
            ++outcome.roundingAttempts;
            if (rounded) {
                outcome.validPoints.push_back(std::move(*rounded));
            } else {
                ++outcome.roundingInvalid;
            }
        }
        // The starting point is a valid schedule too.
        outcome.validPoints.push_back(std::move(x0));
    });

    // Deduplicated valid candidates across all seeds and steps. The
    // map is keyed by value, so insertion order cannot change it.
    std::map<std::pair<int, std::vector<double>>, Candidate> seen;
    for (int seed = 0; seed < options_.nSeeds; ++seed) {
        const int sketchIdx =
            static_cast<int>(seed % contexts_.size());
        SeedOutcome &outcome = outcomes[seed];
        result.trace.visitedScores.insert(
            result.trace.visitedScores.end(),
            outcome.visitedScores.begin(),
            outcome.visitedScores.end());
        result.trace.numPredictions +=
            static_cast<int>(outcome.visitedScores.size());
        result.trace.roundingAttempts += outcome.roundingAttempts;
        result.trace.roundingInvalid += outcome.roundingInvalid;
        for (std::vector<double> &x : outcome.validPoints) {
            seen.emplace(std::make_pair(sketchIdx, x),
                         Candidate{sketchIdx, x, {}, 0.0});
        }
    }
    registry.counter("search.seeds").add(options_.nSeeds);
    registry.counter("search.adam_steps")
        .add(static_cast<double>(options_.nSeeds) * options_.nSteps);
    registry.counter("search.rounding_attempts")
        .add(result.trace.roundingAttempts);
    registry.counter("search.rounding_invalid")
        .add(result.trace.roundingInvalid);

    // Rank all valid rounded schedules by predicted performance
    // (exact features, not the smoothed surrogate) and keep the top
    // nMeasure. Each candidate scores into its own slot.
    FELIX_SPAN("search.rank_candidates", "search");
    std::vector<Candidate> candidates;
    candidates.reserve(seen.size());
    for (auto &entry : seen)
        candidates.push_back(std::move(entry.second));
    parallelFor("search.rank_candidate", candidates.size(),
                [&](size_t i) {
                    Candidate &candidate = candidates[i];
                    const SketchContext &context =
                        contexts_[candidate.sketchIndex];
                    expr::EvalState evalState;
                    candidate.rawFeatures = context.rawFeatures->eval(
                        candidate.x, evalState);
                    candidate.predictedScore =
                        model.predict(candidate.rawFeatures);
                });
    result.trace.numPredictions +=
        static_cast<int>(candidates.size());
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.predictedScore > b.predictedScore;
              });

    // Stratified measurement selection: mostly the global top
    // predictions, but guarantee every sketch a couple of slots so
    // a cost model that misranks one schedule family still receives
    // corrective measurements for it (the fine-tuning loop of
    // Algorithm 1 line 24 then fixes the ranking).
    const int perSketchFloor = 2;
    std::vector<Candidate> selected;
    std::vector<bool> taken(candidates.size(), false);
    for (size_t sk = 0; sk < contexts_.size(); ++sk) {
        int got = 0;
        for (size_t i = 0;
             i < candidates.size() && got < perSketchFloor; ++i) {
            if (!taken[i] &&
                candidates[i].sketchIndex == static_cast<int>(sk)) {
                taken[i] = true;
                selected.push_back(candidates[i]);
                ++got;
            }
        }
    }
    for (size_t i = 0; i < candidates.size() &&
                       static_cast<int>(selected.size()) <
                           options_.nMeasure;
         ++i) {
        if (!taken[i])
            selected.push_back(candidates[i]);
    }
    if (static_cast<int>(selected.size()) > options_.nMeasure)
        selected.resize(options_.nMeasure);
    result.toMeasure = std::move(selected);
    registry.counter("search.predictions")
        .add(result.trace.numPredictions);
    return result;
}

} // namespace optim
} // namespace felix
