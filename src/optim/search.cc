#include "optim/search.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_set>

#include "costmodel/fused.h"
#include "features/features.h"
#include "optim/dedup.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/smoothing.h"
#include "rewrite/transforms.h"
#include "support/logging.h"
#include "support/parallel.h"

namespace felix {
namespace optim {

using expr::Expr;

std::vector<double>
SearchStrategy::featuresOf(const Candidate &candidate)
{
    return candidate.rawFeatures;
}

void
writeCandidate(std::ostream &os, const Candidate &candidate)
{
    os.precision(17);
    os << candidate.sketchIndex << " " << candidate.x.size();
    for (double v : candidate.x)
        os << " " << v;
    os << " " << candidate.rawFeatures.size();
    for (double f : candidate.rawFeatures)
        os << " " << f;
    os << " " << candidate.predictedScore << "\n";
}

bool
readCandidate(std::istream &is, Candidate &out)
{
    Candidate candidate;
    size_t numVars = 0;
    if (!(is >> candidate.sketchIndex >> numVars) || numVars > 4096)
        return false;
    candidate.x.resize(numVars);
    for (double &v : candidate.x) {
        if (!(is >> v))
            return false;
    }
    size_t numFeatures = 0;
    if (!(is >> numFeatures) || numFeatures > 65536)
        return false;
    candidate.rawFeatures.resize(numFeatures);
    for (double &f : candidate.rawFeatures) {
        if (!(is >> f))
            return false;
    }
    if (!(is >> candidate.predictedScore))
        return false;
    out = std::move(candidate);
    return true;
}

void
GradientSearch::observe(const Candidate &candidate,
                        double measured_latency_sec)
{
    if (bestMeasuredLatency_ < 0.0 ||
        measured_latency_sec < bestMeasuredLatency_) {
        bestMeasuredLatency_ = measured_latency_sec;
        bestMeasured_ = candidate;
    }
}

void
GradientSearch::saveState(std::ostream &os) const
{
    os.precision(17);
    os << "grad-search v1 " << bestMeasuredLatency_ << "\n";
    writeCandidate(os, bestMeasured_);
}

bool
GradientSearch::loadState(std::istream &is)
{
    std::string tag, version;
    double bestLatency = 0.0;
    if (!(is >> tag >> version >> bestLatency) ||
        tag != "grad-search" || version != "v1")
        return false;
    Candidate best;
    if (!readCandidate(is, best))
        return false;
    bestMeasuredLatency_ = bestLatency;
    bestMeasured_ = std::move(best);
    return true;
}

namespace {

/** Times sketch + tape construction into the shared phase metrics. */
std::vector<sketch::SymbolicSchedule>
generateSketchesTimed(const tir::SubgraphDef &subgraph,
                      const sketch::GenOptions &options)
{
    auto &registry = obs::MetricsRegistry::instance();
    obs::ScopedTimerMs timer(registry.counter("sketch.generate_ms"));
    FELIX_SPAN("sketch.generate", "sketch");
    auto sketches = sketch::generateSketches(subgraph, options);
    registry.counter("sketch.generated")
        .add(static_cast<double>(sketches.size()));
    return sketches;
}

} // namespace

GradientSearch::GradientSearch(const tir::SubgraphDef &subgraph,
                               GradSearchOptions options)
    : options_(std::move(options)),
      sketches_(generateSketchesTimed(subgraph,
                                      options_.sketchOptions))
{
    obs::ScopedTimerMs timer(obs::MetricsRegistry::instance().counter(
        "search.compile_tapes_ms"));
    FELIX_SPAN("search.compile_tapes", "search");
    // Sketches compile independently; interning the rewritten
    // formulas is thread-safe (sharded intern table).
    contexts_.resize(sketches_.size());
    parallelFor("search.compile_tape", sketches_.size(), [&](size_t
                                                                 si) {
        const sketch::SymbolicSchedule &sched = sketches_[si];
        SketchContext context;
        context.sched = &sched;
        for (const auto &domain : sched.vars)
            context.varNames.push_back(domain.name);

        // Exact x-space feature formulas (candidate evaluation and
        // hardware measurement path). Ranking never differentiates
        // them, so the tape opts into the forward-only optimizer
        // passes.
        auto raw = features::extractFeatures(sched.program);
        context.rawFeatures = std::make_unique<expr::CompiledExprs>(
            raw, context.varNames, /*forward_only=*/true);

        // Differentiable objective tape: smoothed model inputs
        // log(max(f,1)) composed with the e^y substitution, plus the
        // smoothed legality constraints g_ir(e^y). The ablation
        // knobs can disable either rewrite stage.
        std::vector<Expr> outputs;
        outputs.reserve(raw.size() + sched.constraints.size());
        for (const Expr &f : raw) {
            Expr base = options_.applySmoothing
                            ? rewrite::makeSmooth(f, options_.kernel)
                            : f;
            Expr logged = rewrite::logExpand(base);
            if (options_.applyLogExp) {
                logged = rewrite::expSubstituteVars(
                    logged, context.varNames);
            }
            outputs.push_back(options_.applySmoothing
                                  ? rewrite::smoothMax0(
                                        logged, options_.kernel)
                                  : expr::max(logged,
                                              Expr::constant(0.0)));
        }
        for (const Expr &g : sched.constraints) {
            Expr smooth = options_.applySmoothing
                              ? rewrite::makeSmooth(g, options_.kernel)
                              : g;
            if (options_.applyLogExp) {
                smooth = rewrite::expSubstituteVars(
                    smooth, context.varNames);
            }
            outputs.push_back(smooth);
        }
        context.numPenalties = sched.constraints.size();
        context.objective = std::make_unique<expr::CompiledExprs>(
            outputs, context.varNames);
        context.checker =
            std::make_unique<sketch::ConstraintChecker>(sched);
        contexts_[si] = std::move(context);
    });
}

namespace {

/** Everything one seed's descent produces, merged in seed order. */
struct SeedOutcome
{
    std::vector<double> visitedScores;
    /** Valid rounded points in visit order (x0 last). */
    std::vector<std::vector<double>> validPoints;
    int roundingAttempts = 0;
    int roundingInvalid = 0;
};

/**
 * Per-worker scratch for the batched descent and ranking paths:
 * tape + model buffers plus the SoA staging rows, allocated once per
 * worker thread and reused across batches and rounds.
 */
struct WorkerBatchScratch
{
    expr::BatchEvalState tape;
    costmodel::PredictScratch predict;
    std::vector<double> inputs, outputs, outputGrads, inputGrads;
    std::vector<double> modelGrads, laneGrad, logPoint;
};

WorkerBatchScratch &
workerScratch()
{
    static thread_local WorkerBatchScratch scratch;
    return scratch;
}

} // namespace

RoundResult
GradientSearch::round(const costmodel::CostModel &model, Rng &rng)
{
    FELIX_SPAN("search.round", "search");
    auto &registry = obs::MetricsRegistry::instance();

    RoundResult result;
    result.trace.seedsLaunched = options_.nSeeds;
    const int numFeatures = features::kNumFeatures;

    // Each seed descends independently: forked rng, private Adam
    // state and eval scratch, results merged below in seed order so
    // --jobs N matches --jobs 1 bit for bit.
    std::vector<Rng> seedRngs = rng.forkStreams(options_.nSeeds);
    std::vector<SeedOutcome> outcomes(options_.nSeeds);

    if (options_.useBatch) {
        // Seeds sharing a sketch descend in lockstep batches of up
        // to kBatchLanes lanes through the batched tape and the
        // batched MLP. Batch composition depends only on seed
        // indices (never on --jobs), each lane carries exactly the
        // per-seed state the scalar path would (rng, Adam, iterate),
        // and every batched kernel is per-lane bit-identical to its
        // scalar counterpart — so the outcome per seed is
        // bit-identical to the scalar branch below.
        struct SeedBatch
        {
            int sketchIdx = 0;
            std::vector<int> seeds;
        };
        std::vector<SeedBatch> batches;
        for (size_t sk = 0; sk < contexts_.size(); ++sk) {
            SeedBatch cur{static_cast<int>(sk), {}};
            for (int seed = 0; seed < options_.nSeeds; ++seed) {
                if (seed % static_cast<int>(contexts_.size()) !=
                    static_cast<int>(sk))
                    continue;
                cur.seeds.push_back(seed);
                if (cur.seeds.size() == kBatchLanes) {
                    batches.push_back(std::move(cur));
                    cur = SeedBatch{static_cast<int>(sk), {}};
                }
            }
            if (!cur.seeds.empty())
                batches.push_back(std::move(cur));
        }
        registry.counter("search.seed_batches")
            .add(static_cast<double>(batches.size()));

        // One fused stepper per sketch, shared by all workers (it is
        // immutable; per-worker state lives in WorkerBatchScratch).
        // The unfused sequence below it is the bit-exactness
        // reference (tests) and the A/B baseline (bench).
        std::vector<costmodel::FusedGradStep> fusedSteps;
        if (options_.useFused) {
            fusedSteps.reserve(contexts_.size());
            for (const SketchContext &context : contexts_)
                fusedSteps.emplace_back(
                    *context.objective, model,
                    static_cast<size_t>(numFeatures),
                    context.numPenalties, options_.lambda);
        }

        parallelFor("search.seed_batch", batches.size(), [&](size_t
                                                                bi) {
            const SeedBatch &batch = batches[bi];
            const SketchContext &context = contexts_[batch.sketchIdx];
            const size_t numVars = context.varNames.size();
            const size_t width = batch.seeds.size();
            const size_t numOutputs = context.objective->numOutputs();
            constexpr size_t L = kBatchLanes;

            std::vector<std::vector<double>> x0(width), y(width);
            std::vector<Adam> adams;
            adams.reserve(width);
            for (size_t l = 0; l < width; ++l) {
                const int seed = batch.seeds[l];
                Rng &seedRng = seedRngs[seed];
                if (seed == 0 && bestMeasuredLatency_ > 0.0 &&
                    bestMeasured_.sketchIndex == batch.sketchIdx) {
                    x0[l] = bestMeasured_.x;
                } else {
                    x0[l] =
                        sketch::sampleValid(*context.sched, seedRng);
                }
                y[l].resize(numVars);
                for (size_t i = 0; i < numVars; ++i) {
                    y[l][i] = options_.applyLogExp
                                  ? std::log(std::max(1.0, x0[l][i]))
                                  : x0[l][i];
                }
                adams.emplace_back(numVars, options_.adam);
            }

            WorkerBatchScratch &ws = workerScratch();
            ws.inputs.resize(numVars * L);
            ws.outputs.resize(numOutputs * L);
            ws.outputGrads.resize(numOutputs * L);
            ws.inputGrads.resize(numVars * L);
            ws.modelGrads.resize(
                static_cast<size_t>(numFeatures) * L);
            ws.laneGrad.resize(numVars);
            double scores[kBatchLanes];

            for (int step = 0; step < options_.nSteps; ++step) {
                for (size_t l = 0; l < width; ++l)
                    for (size_t v = 0; v < numVars; ++v)
                        ws.inputs[v * L + l] = y[l][v];
                if (options_.useFused) {
                    // Fused: the same four stages with the feature
                    // rows kept inside the engines' SoA buffers
                    // (costmodel/fused.h; bit-identical to the
                    // sequence below).
                    fusedSteps[batch.sketchIdx].run(
                        ws.inputs.data(), width, scores,
                        ws.inputGrads.data(), ws.tape, ws.predict);
                } else {
                context.objective->forwardBatch(
                    ws.inputs.data(), width, ws.outputs.data(),
                    ws.tape);
                // The first numFeatures output rows are the smoothed
                // model inputs, already in the SoA rows the batched
                // cost model consumes — no repacking.
                model.predictTransformedWithGradBatch(
                    ws.outputs.data(), scores, ws.modelGrads.data(),
                    ws.predict);

                std::fill(ws.outputGrads.begin(),
                          ws.outputGrads.end(), 0.0);
                for (int k = 0; k < numFeatures; ++k) {
                    const size_t row = static_cast<size_t>(k) * L;
                    for (size_t l = 0; l < width; ++l)
                        ws.outputGrads[row + l] =
                            -ws.modelGrads[row + l];
                }
                for (size_t p = 0; p < context.numPenalties; ++p) {
                    const size_t row = (numFeatures + p) * L;
                    for (size_t l = 0; l < width; ++l) {
                        const double g = ws.outputs[row + l];
                        if (g > 0.0)
                            ws.outputGrads[row + l] =
                                options_.lambda * 2.0 * g;
                    }
                }
                context.objective->backwardBatch(
                    ws.outputGrads.data(), ws.inputGrads.data(),
                    ws.tape);
                }
                for (size_t l = 0; l < width; ++l)
                    outcomes[batch.seeds[l]].visitedScores.push_back(
                        scores[l]);

                for (size_t l = 0; l < width; ++l) {
                    SeedOutcome &outcome = outcomes[batch.seeds[l]];
                    for (size_t v = 0; v < numVars; ++v)
                        ws.laneGrad[v] = ws.inputGrads[v * L + l];
                    adams[l].step(y[l], ws.laneGrad);

                    ws.logPoint = y[l];
                    if (!options_.applyLogExp) {
                        for (double &v : ws.logPoint)
                            v = std::log(std::max(1e-9, v));
                    }
                    auto rounded = sketch::roundToValid(
                        *context.sched, ws.logPoint,
                        *context.checker);
                    ++outcome.roundingAttempts;
                    if (rounded) {
                        outcome.validPoints.push_back(
                            std::move(*rounded));
                    } else {
                        ++outcome.roundingInvalid;
                    }
                }
            }
            for (size_t l = 0; l < width; ++l)
                outcomes[batch.seeds[l]].validPoints.push_back(
                    std::move(x0[l]));
        });
    } else {
    parallelFor("search.seed_descent", options_.nSeeds, [&](size_t
                                                                seed) {
        const int sketchIdx =
            static_cast<int>(seed % contexts_.size());
        const SketchContext &context = contexts_[sketchIdx];
        const size_t numVars = context.varNames.size();
        Rng &seedRng = seedRngs[seed];
        SeedOutcome &outcome = outcomes[seed];

        // RandomInitSchedVars: rejection-sample a valid start; with
        // the e^y substitution the iterate lives in log space. One
        // seed warm-starts from the best measured schedule so late
        // rounds refine around the incumbent (Ansor keeps elites the
        // same way).
        std::vector<double> x0;
        if (seed == 0 && bestMeasuredLatency_ > 0.0 &&
            bestMeasured_.sketchIndex == sketchIdx) {
            x0 = bestMeasured_.x;
        } else {
            x0 = sketch::sampleValid(*context.sched, seedRng);
        }
        std::vector<double> y(numVars);
        for (size_t i = 0; i < numVars; ++i) {
            y[i] = options_.applyLogExp
                       ? std::log(std::max(1.0, x0[i]))
                       : x0[i];
        }

        Adam adam(numVars, options_.adam);
        expr::EvalState evalState;
        std::vector<double> outputs, outputGrads, inputGrads;
        std::vector<double> modelInputs(numFeatures);
        std::vector<double> modelGrad;

        for (int step = 0; step < options_.nSteps; ++step) {
            context.objective->forward(y, outputs, evalState);
            for (int k = 0; k < numFeatures; ++k)
                modelInputs[k] = outputs[k];
            const double score = model.predictTransformedWithGrad(
                modelInputs, modelGrad);
            outcome.visitedScores.push_back(score);

            // d(O)/d(outputs): -dC/dz for the features, and
            // lambda * 2 * max(g, 0) for each penalty term.
            outputGrads.assign(outputs.size(), 0.0);
            for (int k = 0; k < numFeatures; ++k)
                outputGrads[k] = -modelGrad[k];
            for (size_t p = 0; p < context.numPenalties; ++p) {
                const double g = outputs[numFeatures + p];
                if (g > 0.0) {
                    outputGrads[numFeatures + p] =
                        options_.lambda * 2.0 * g;
                }
            }
            context.objective->backward(outputGrads, inputGrads,
                                        evalState);
            adam.step(y, inputGrads);

            // Round the newly visited point to a valid schedule and
            // remember it (GetValidSchedules over the whole history).
            std::vector<double> logPoint = y;
            if (!options_.applyLogExp) {
                for (double &v : logPoint)
                    v = std::log(std::max(1e-9, v));
            }
            auto rounded = sketch::roundToValid(
                *context.sched, logPoint, *context.checker);
            ++outcome.roundingAttempts;
            if (rounded) {
                outcome.validPoints.push_back(std::move(*rounded));
            } else {
                ++outcome.roundingInvalid;
            }
        }
        // The starting point is a valid schedule too.
        outcome.validPoints.push_back(std::move(x0));
    });
    }

    // Deduplicated valid candidates across all seeds and steps,
    // keyed by a cheap canonical hash of (sketch, x). The single
    // sort below restores the (sketch, lexicographic x) order the
    // ordered map historically provided, so the ranking input stays
    // deterministic and identical to the old container for any
    // insertion order.
    std::unordered_set<CandidateKey, CandidateKeyHash> seen;
    {
        size_t totalPoints = 0;
        for (const SeedOutcome &outcome : outcomes)
            totalPoints += outcome.validPoints.size();
        seen.reserve(totalPoints);
    }
    for (int seed = 0; seed < options_.nSeeds; ++seed) {
        const int sketchIdx =
            static_cast<int>(seed % contexts_.size());
        SeedOutcome &outcome = outcomes[seed];
        result.trace.visitedScores.insert(
            result.trace.visitedScores.end(),
            outcome.visitedScores.begin(),
            outcome.visitedScores.end());
        result.trace.numPredictions +=
            static_cast<int>(outcome.visitedScores.size());
        result.trace.roundingAttempts += outcome.roundingAttempts;
        result.trace.roundingInvalid += outcome.roundingInvalid;
        for (std::vector<double> &x : outcome.validPoints)
            seen.insert(CandidateKey{sketchIdx, std::move(x)});
    }
    registry.counter("search.seeds").add(options_.nSeeds);
    registry.counter("search.adam_steps")
        .add(static_cast<double>(options_.nSeeds) * options_.nSteps);
    registry.counter("search.rounding_attempts")
        .add(result.trace.roundingAttempts);
    registry.counter("search.rounding_invalid")
        .add(result.trace.roundingInvalid);

    // Rank all valid rounded schedules by predicted performance
    // (exact features, not the smoothed surrogate) and keep the top
    // nMeasure. Each candidate scores into its own slot.
    FELIX_SPAN("search.rank_candidates", "search");
    std::vector<Candidate> candidates;
    candidates.reserve(seen.size());
    for (const CandidateKey &key : seen)
        candidates.push_back(Candidate{key.sketchIdx, key.x, {}, 0.0});
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.sketchIndex != b.sketchIndex)
                      return a.sketchIndex < b.sketchIndex;
                  return a.x < b.x;
              });
    if (options_.useBatch) {
        // Same-sketch candidates are contiguous after the sort, so
        // each batch shares one feature tape; the tape's output rows
        // flow into the batched MLP without repacking.
        struct RankBatch
        {
            size_t begin = 0, end = 0;
        };
        std::vector<RankBatch> rankBatches;
        for (size_t i = 0; i < candidates.size();) {
            size_t runEnd = i;
            while (runEnd < candidates.size() &&
                   candidates[runEnd].sketchIndex ==
                       candidates[i].sketchIndex)
                ++runEnd;
            for (size_t b = i; b < runEnd; b += kBatchLanes)
                rankBatches.push_back(
                    RankBatch{b, std::min(runEnd, b + kBatchLanes)});
            i = runEnd;
        }
        parallelFor(
            "search.rank_batch", rankBatches.size(), [&](size_t bi) {
                const RankBatch rb = rankBatches[bi];
                const size_t width = rb.end - rb.begin;
                const SketchContext &context =
                    contexts_[candidates[rb.begin].sketchIndex];
                const size_t numVars = context.varNames.size();
                constexpr size_t L = kBatchLanes;
                WorkerBatchScratch &ws = workerScratch();
                ws.inputs.resize(numVars * L);
                ws.outputs.resize(
                    static_cast<size_t>(numFeatures) * L);
                for (size_t l = 0; l < width; ++l)
                    for (size_t v = 0; v < numVars; ++v)
                        ws.inputs[v * L + l] =
                            candidates[rb.begin + l].x[v];
                context.rawFeatures->forwardBatch(
                    ws.inputs.data(), width, ws.outputs.data(),
                    ws.tape);
                double scores[kBatchLanes];
                model.predictBatch(ws.outputs.data(), scores,
                                   ws.predict);
                for (size_t l = 0; l < width; ++l) {
                    Candidate &candidate = candidates[rb.begin + l];
                    candidate.rawFeatures.resize(numFeatures);
                    for (int k = 0; k < numFeatures; ++k)
                        candidate.rawFeatures[k] =
                            ws.outputs[static_cast<size_t>(k) * L +
                                       l];
                    candidate.predictedScore = scores[l];
                }
            });
    } else {
        parallelFor("search.rank_candidate", candidates.size(),
                    [&](size_t i) {
                        Candidate &candidate = candidates[i];
                        const SketchContext &context =
                            contexts_[candidate.sketchIndex];
                        // One eval state per worker, reused across
                        // candidates and rounds (it rebinds itself
                        // when the sketch tape changes).
                        static thread_local expr::EvalState evalState;
                        candidate.rawFeatures =
                            context.rawFeatures->eval(candidate.x,
                                                      evalState);
                        candidate.predictedScore =
                            model.predict(candidate.rawFeatures);
                    });
    }
    result.trace.numPredictions +=
        static_cast<int>(candidates.size());
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.predictedScore > b.predictedScore;
              });

    // Stratified measurement selection: mostly the global top
    // predictions, but guarantee every sketch a couple of slots so
    // a cost model that misranks one schedule family still receives
    // corrective measurements for it (the fine-tuning loop of
    // Algorithm 1 line 24 then fixes the ranking).
    const int perSketchFloor = 2;
    std::vector<Candidate> selected;
    std::vector<bool> taken(candidates.size(), false);
    for (size_t sk = 0; sk < contexts_.size(); ++sk) {
        int got = 0;
        for (size_t i = 0;
             i < candidates.size() && got < perSketchFloor; ++i) {
            if (!taken[i] &&
                candidates[i].sketchIndex == static_cast<int>(sk)) {
                taken[i] = true;
                selected.push_back(candidates[i]);
                ++got;
            }
        }
    }
    for (size_t i = 0; i < candidates.size() &&
                       static_cast<int>(selected.size()) <
                           options_.nMeasure;
         ++i) {
        if (!taken[i])
            selected.push_back(candidates[i]);
    }
    if (static_cast<int>(selected.size()) > options_.nMeasure)
        selected.resize(options_.nMeasure);
    result.toMeasure = std::move(selected);
    registry.counter("search.predictions")
        .add(result.trace.numPredictions);
    return result;
}

} // namespace optim
} // namespace felix
