/**
 * @file
 * Adam optimizer over a flat variable vector (Kingma & Ba), as used
 * by Algorithm 1 to minimize the subgraph objective.
 */
#ifndef FELIX_OPTIM_ADAM_H_
#define FELIX_OPTIM_ADAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace felix {
namespace optim {

/** Adam hyperparameters. */
struct AdamConfig
{
    double lr = 0.05;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
};

/** Stateful Adam for one variable vector. */
class Adam
{
  public:
    Adam(size_t size, AdamConfig config = {});

    /** One minimization step: x -= update(grad). */
    void step(std::vector<double> &x, const std::vector<double> &grad);

    void reset();

  private:
    AdamConfig config_;
    std::vector<double> m_, v_;
    int64_t t_ = 0;
};

} // namespace optim
} // namespace felix

#endif // FELIX_OPTIM_ADAM_H_
