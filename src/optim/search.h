/**
 * @file
 * Search-strategy interface and the gradient-descent schedule search
 * (paper Algorithm 1).
 *
 * A SearchStrategy proposes, per tuning round, a small set of
 * concrete candidate schedules to measure on hardware. Felix's
 * GradientSearch relaxes the schedule variables into log space,
 * minimizes the differentiable objective
 *
 *   O(y) = sum_i ( -C(Feat_i(e^y)) + lambda * sum_r max(g_ir, 0)^2 )
 *
 * with Adam from nSeeds random valid seeds for nSteps steps, rounds
 * every visited point back to a valid integer schedule, and returns
 * the top nMeasure by cost-model-predicted performance. The
 * evolutionary baseline (evolutionary/) implements the same
 * interface with Ansor's population search.
 */
#ifndef FELIX_OPTIM_SEARCH_H_
#define FELIX_OPTIM_SEARCH_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "costmodel/cost_model.h"
#include "expr/compiled.h"
#include "optim/adam.h"
#include "rewrite/smoothing.h"
#include "sketch/sampling.h"
#include "sketch/sketch.h"
#include "support/rng.h"
#include "tir/compute.h"

namespace felix {
namespace optim {

/** A concrete candidate schedule produced by a search round. */
struct Candidate
{
    int sketchIndex = 0;
    std::vector<double> x;             ///< valid integer assignment
    std::vector<double> rawFeatures;   ///< exact concrete features
    double predictedScore = 0.0;       ///< cost-model score (higher better)
};

/**
 * Candidate serialization for round-state checkpoints: precision-17
 * text, exact double round trip. readCandidate returns false on
 * malformed input without touching @p out.
 */
void writeCandidate(std::ostream &os, const Candidate &candidate);
bool readCandidate(std::istream &is, Candidate &out);

/** Per-round instrumentation (drives Fig. 8 and the round log). */
struct SearchTrace
{
    /** Predicted score of each schedule visited, in search order. */
    std::vector<double> visitedScores;
    int numPredictions = 0;   ///< cost-model invocations this round
    /** Seeds launched (gradient) / population size (evolutionary). */
    int seedsLaunched = 0;
    /** Points rounded back to integer schedules this round, and how
     *  many of them violated a legality constraint (the per-round
     *  constraint-violation rate is roundingInvalid/roundingAttempts;
     *  for the evolutionary baseline these count generated children
     *  and the ones rejected as infeasible). */
    int roundingAttempts = 0;
    int roundingInvalid = 0;
};

/** Result of one search round. */
struct RoundResult
{
    std::vector<Candidate> toMeasure;
    SearchTrace trace;
};

/** Common interface of Felix's and Ansor's candidate search. */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    /** One round of candidate search for this strategy's subgraph. */
    virtual RoundResult round(const costmodel::CostModel &model,
                              Rng &rng) = 0;

    /**
     * Feedback after hardware measurement of a proposed candidate.
     * Strategies may use it to warm-start later rounds.
     */
    virtual void
    observe(const Candidate &candidate, double measured_latency_sec)
    {
        (void)candidate;
        (void)measured_latency_sec;
    }

    /** The symbolic schedules spanning the search space. */
    virtual const std::vector<sketch::SymbolicSchedule> &
    sketches() const = 0;

    /** Concrete features of a candidate (for measurement). */
    std::vector<double> featuresOf(const Candidate &candidate);

    /**
     * Serialize the cross-round state (warm-start seeds, carried
     * population) for the round-state checkpoint. The search space
     * itself (sketches, tapes, constraint checkers) is rebuilt
     * deterministically from the subgraph at construction and is
     * never serialized. The base strategy is stateless.
     */
    virtual void
    saveState(std::ostream &os) const
    {
        (void)os;
    }

    /**
     * Restore a saveState() blob into a freshly constructed
     * strategy for the same subgraph. False on malformed input.
     */
    virtual bool
    loadState(std::istream &is)
    {
        (void)is;
        return true;
    }
};

/** Gradient-descent search options (paper §5 defaults). */
struct GradSearchOptions
{
    int nSeeds = 8;
    int nSteps = 200;
    int nMeasure = 16;
    double lambda = 10.0;       ///< constraint penalty coefficient
    AdamConfig adam;
    sketch::GenOptions sketchOptions;

    // Ablation knobs (bench/ablation_*): the production pipeline
    // smooths with the algebraic kernel and optimizes in log space.
    rewrite::Kernel kernel = rewrite::Kernel::Algebraic;
    /** false: keep the raw non-differentiable feature formulas
     *  (gradient descent sees subgradients / zero gradients). */
    bool applySmoothing = true;
    /** false: skip the log-feature + x = e^y rewrites and optimize
     *  the variables directly in x space. */
    bool applyLogExp = true;

    /** false: per-seed scalar descent and per-candidate scalar
     *  ranking instead of the lockstep SoA batches. Results are
     *  bit-identical either way (the parity tests enforce it); the
     *  scalar path exists as their reference and as the
     *  microbenchmark baseline. */
    bool useBatch = true;

    /** false: run the batched descent step through the unfused
     *  forwardBatch / predictTransformedWithGradBatch /
     *  backwardBatch sequence with its materialized feature
     *  round-trips instead of costmodel::FusedGradStep. Results are
     *  bit-identical either way (the parity tests enforce it); the
     *  unfused path exists as the reference and as the
     *  microbenchmark baseline. Only meaningful with useBatch. */
    bool useFused = true;
};

/** Felix's gradient-descent schedule search for one subgraph. */
class GradientSearch : public SearchStrategy
{
  public:
    GradientSearch(const tir::SubgraphDef &subgraph,
                   GradSearchOptions options = {});

    RoundResult round(const costmodel::CostModel &model,
                      Rng &rng) override;

    /** Remembers the best measured schedule to warm-start a seed. */
    void observe(const Candidate &candidate,
                 double measured_latency_sec) override;

    /** Cross-round state: the best measured warm-start seed. */
    void saveState(std::ostream &os) const override;
    bool loadState(std::istream &is) override;

    const std::vector<sketch::SymbolicSchedule> &
    sketches() const override
    {
        return sketches_;
    }

    const GradSearchOptions &options() const { return options_; }

  private:
    struct SketchContext
    {
        const sketch::SymbolicSchedule *sched = nullptr;
        std::vector<std::string> varNames;
        /** Tape: 82 smoothed model-input formulas + penalty g's. */
        std::unique_ptr<expr::CompiledExprs> objective;
        /** Tape: 82 exact x-space feature formulas. */
        std::unique_ptr<expr::CompiledExprs> rawFeatures;
        std::unique_ptr<sketch::ConstraintChecker> checker;
        size_t numPenalties = 0;
    };

    GradSearchOptions options_;
    std::vector<sketch::SymbolicSchedule> sketches_;
    std::vector<SketchContext> contexts_;
    /** Best measured schedule so far (warm-start seed). */
    Candidate bestMeasured_;
    double bestMeasuredLatency_ = -1.0;
};

} // namespace optim
} // namespace felix

#endif // FELIX_OPTIM_SEARCH_H_
