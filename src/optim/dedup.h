/**
 * @file
 * Hash key for deduplicating visited schedules (sketch index plus
 * concrete variable assignment), shared by the gradient search and
 * the evolutionary baseline.
 *
 * Both searches collect candidates into an unordered container
 * during the round and sort ONCE by (sketch, lexicographic x)
 * before ranking — reproducing the iteration order of the ordered
 * map this replaced, so downstream results are deterministic and
 * independent of insertion order (and of --jobs).
 */
#ifndef FELIX_OPTIM_DEDUP_H_
#define FELIX_OPTIM_DEDUP_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace felix {
namespace optim {

/** Identity of a visited schedule: (sketch, x). */
struct CandidateKey
{
    int sketchIdx = 0;
    std::vector<double> x;

    bool operator==(const CandidateKey &other) const
    {
        return sketchIdx == other.sketchIdx && x == other.x;
    }
};

/**
 * Cheap canonical hash: folds the bit patterns of x, with signed
 * zeros normalized so the hash is consistent with operator== (which
 * treats -0.0 and +0.0 as equal, like the ordered-map comparison it
 * replaced).
 */
struct CandidateKeyHash
{
    size_t operator()(const CandidateKey &key) const
    {
        uint64_t h = 0x9e3779b97f4a7c15ull ^
                     static_cast<uint64_t>(key.sketchIdx);
        for (double v : key.x) {
            const double canon = v == 0.0 ? 0.0 : v;
            uint64_t bits;
            std::memcpy(&bits, &canon, sizeof(bits));
            h ^= bits + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        }
        return static_cast<size_t>(h);
    }
};

} // namespace optim
} // namespace felix

#endif // FELIX_OPTIM_DEDUP_H_
