#include "optim/adam.h"

#include <cmath>

#include "support/logging.h"

namespace felix {
namespace optim {

Adam::Adam(size_t size, AdamConfig config)
    : config_(config), m_(size, 0.0), v_(size, 0.0)
{
}

void
Adam::step(std::vector<double> &x, const std::vector<double> &grad)
{
    FELIX_CHECK(x.size() == m_.size() && grad.size() == m_.size(),
                "Adam: size mismatch");
    ++t_;
    const double corr1 = 1.0 - std::pow(config_.beta1, t_);
    const double corr2 = 1.0 - std::pow(config_.beta2, t_);
    for (size_t i = 0; i < x.size(); ++i) {
        m_[i] = config_.beta1 * m_[i] + (1.0 - config_.beta1) * grad[i];
        v_[i] = config_.beta2 * v_[i] +
                (1.0 - config_.beta2) * grad[i] * grad[i];
        const double mHat = m_[i] / corr1;
        const double vHat = v_[i] / corr2;
        x[i] -= config_.lr * mHat / (std::sqrt(vHat) + config_.eps);
    }
}

void
Adam::reset()
{
    std::fill(m_.begin(), m_.end(), 0.0);
    std::fill(v_.begin(), v_.end(), 0.0);
    t_ = 0;
}

} // namespace optim
} // namespace felix
