#include "optim/adam.h"

#include <cmath>

#include "simd/kernels.h"
#include "support/logging.h"

namespace felix {
namespace optim {

Adam::Adam(size_t size, AdamConfig config)
    : config_(config), m_(size, 0.0), v_(size, 0.0)
{
}

void
Adam::step(std::vector<double> &x, const std::vector<double> &grad)
{
    FELIX_CHECK(x.size() == m_.size() && grad.size() == m_.size(),
                "Adam: size mismatch");
    ++t_;
    const double corr1 = 1.0 - std::pow(config_.beta1, t_);
    const double corr2 = 1.0 - std::pow(config_.beta2, t_);
    // Each element's update is independent and the kernel keeps the
    // exact scalar operation order, so every SIMD backend produces
    // bit-identical parameters (tests/test_simd.cc).
    simd::activeKernels().adamStep(x.data(), grad.data(), m_.data(),
                                   v_.data(), x.size(), config_.beta1,
                                   config_.beta2, corr1, corr2,
                                   config_.lr, config_.eps);
}

void
Adam::reset()
{
    std::fill(m_.begin(), m_.end(), 0.0);
    std::fill(v_.begin(), v_.end(), 0.0);
    t_ = 0;
}

} // namespace optim
} // namespace felix
