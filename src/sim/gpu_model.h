/**
 * @file
 * Analytical GPU kernel latency model.
 *
 * Computes the latency of one scheduled subgraph (== one CUDA kernel
 * in the TVM lowering Felix uses) from its 82 concrete program
 * features and a device configuration. The model combines:
 *  - a compute roofline with warp efficiency, occupancy-based
 *    latency hiding, wave quantization / SM under-utilization (the
 *    effect that makes small layers hard to schedule, §6.1), and an
 *    ILP boost from unrolling;
 *  - a memory roofline with L2-hit modelling of block-level
 *    refetches, coalescing penalties and bandwidth saturation;
 *  - shared-memory traffic and block synchronization costs;
 *  - kernel launch overhead.
 *
 * measureKernel() adds deterministic, hash-seeded multiplicative
 * noise to emulate empirical measurement (repeatable experiments).
 */
#ifndef FELIX_SIM_GPU_MODEL_H_
#define FELIX_SIM_GPU_MODEL_H_

#include <cstdint>
#include <vector>

#include "sim/device.h"

namespace felix {
namespace sim {

/** Per-component latency contributions, for inspection/tests. */
struct LatencyBreakdown
{
    double computeSec = 0.0;
    double memorySec = 0.0;
    double sharedSec = 0.0;
    double syncSec = 0.0;
    double launchSec = 0.0;
    double totalSec = 0.0;

    double occupancy = 0.0;      ///< resident warps / max warps
    double warpEfficiency = 0.0; ///< active lanes per warp
    double waveEfficiency = 0.0; ///< block slots actually used
};

/** Noise-free latency (seconds) of a kernel with these features. */
double kernelLatency(const std::vector<double> &features,
                     const DeviceConfig &device);

/** Latency with the full component breakdown. */
LatencyBreakdown kernelLatencyDetail(const std::vector<double> &features,
                                     const DeviceConfig &device);

/**
 * Emulated empirical measurement: latency with deterministic
 * multiplicative noise. @p noise_seed selects the measurement run
 * (same seed + same features => same result); the schedule-intrinsic
 * perturbation is derived from the features themselves.
 */
double measureKernel(const std::vector<double> &features,
                     const DeviceConfig &device, uint64_t noise_seed);

} // namespace sim
} // namespace felix

#endif // FELIX_SIM_GPU_MODEL_H_
