#include "sim/device.h"

#include <algorithm>

#include "support/logging.h"

namespace felix {
namespace sim {

const char *
deviceKindName(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::A10G: return "A10G";
      case DeviceKind::A5000: return "RTX A5000";
      case DeviceKind::XavierNX: return "Xavier NX";
    }
    return "?";
}

double
DeviceConfig::peakFlops() const
{
    // 2 FLOPs per FMA lane per cycle.
    return smCount * coresPerSm * 2.0 * clockGhz * 1e9;
}

double
DeviceConfig::dramBytesPerSec() const
{
    return dramGBps * 1e9;
}

const DeviceConfig &
deviceConfig(DeviceKind kind)
{
    // Published specifications of the three parts (see paper §5 and
    // the NVIDIA datasheets cited there).
    static const DeviceConfig a10g = [] {
        DeviceConfig config;
        config.name = "A10G";
        config.kind = DeviceKind::A10G;
        config.smCount = 80;            // GA102, 80 SM
        config.coresPerSm = 128;
        config.clockGhz = 1.71;
        config.dramGBps = 600.0;
        config.l2Bytes = 6.0 * 1024 * 1024;
        config.maxThreadsPerSm = 1536;  // Ampere
        config.sharedPerSmBytes = 100.0 * 1024;
        config.launchOverheadUs = 3.5;
        return config;
    }();
    static const DeviceConfig a5000 = [] {
        DeviceConfig config;
        config.name = "RTX A5000";
        config.kind = DeviceKind::A5000;
        config.smCount = 64;            // GA102, 64 SM (8192 cores)
        config.coresPerSm = 128;
        config.clockGhz = 1.695;
        config.dramGBps = 768.0;
        config.l2Bytes = 6.0 * 1024 * 1024;
        config.maxThreadsPerSm = 1536;
        config.sharedPerSmBytes = 100.0 * 1024;
        config.launchOverheadUs = 3.5;
        return config;
    }();
    static const DeviceConfig xavier = [] {
        DeviceConfig config;
        config.name = "Xavier NX";
        config.kind = DeviceKind::XavierNX;
        config.smCount = 6;             // 384-core Volta
        config.coresPerSm = 64;
        config.clockGhz = 1.1;
        config.dramGBps = 51.2;         // shared LPDDR4x
        config.sharedBwRatio = 30.0;    // small DRAM bw, Volta smem
        config.l2Bytes = 512.0 * 1024;
        config.maxThreadsPerSm = 2048;  // Volta
        config.maxBlocksPerSm = 32;
        config.sharedPerSmBytes = 96.0 * 1024;
        config.launchOverheadUs = 10.0; // slower host + RPC path
        return config;
    }();
    switch (kind) {
      case DeviceKind::A10G: return a10g;
      case DeviceKind::A5000: return a5000;
      case DeviceKind::XavierNX: return xavier;
    }
    panic("unknown device kind");
}

std::vector<DeviceKind>
allDevices()
{
    return {DeviceKind::A5000, DeviceKind::A10G, DeviceKind::XavierNX};
}

DeviceKind
parseDevice(const std::string &name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "a10g")
        return DeviceKind::A10G;
    if (lower == "a5000" || lower == "rtx-a5000" || lower == "rtx_a5000")
        return DeviceKind::A5000;
    if (lower == "xavier-nx" || lower == "xavier" || lower == "xaviernx")
        return DeviceKind::XavierNX;
    fatal("unknown device: " + name +
          " (expected a10g, a5000, or xavier-nx)");
}

} // namespace sim
} // namespace felix
