#include "sim/gpu_model.h"

#include <cmath>
#include <cstring>

#include "features/features.h"
#include "support/logging.h"
#include "support/rng.h"

namespace felix {
namespace sim {

namespace {

/** Cached feature indices (featureIndex does a linear scan). */
struct FeatureIdx
{
    int flopsTotal = features::featureIndex("flops_total");
    int floatSpecial = features::featureIndex("float_special");
    int floatDiv = features::featureIndex("float_div");
    int intAdd = features::featureIndex("int_add");
    int blockLen = features::featureIndex("block_len");
    int threadLen = features::featureIndex("thread_len");
    int vthreadLen = features::featureIndex("vthread_len");
    int unrollStep = features::featureIndex("unroll_max_step");
    int unrollApplied = features::featureIndex("unroll_applied");
    int vecLen = features::featureIndex("vec_len");
    int globalTraffic =
        features::featureIndex("global_load_traffic_bytes");
    int globalStores = features::featureIndex("global_store_bytes");
    int globalUnique = features::featureIndex("global_unique_bytes");
    int footprintBlock =
        features::featureIndex("footprint_per_block_bytes");
    int coalesce = features::featureIndex("coalesce_penalty");
    int sharedBytes = features::featureIndex("shared_bytes_total");
    int sharedTraffic = features::featureIndex("shared_traffic_bytes");
    int syncCount = features::featureIndex("sync_count");
    int serialWork = features::featureIndex("serial_work_per_thread");
    int spatialInner = features::featureIndex("spatial_inner");
    int regPressure = features::featureIndex("reg_pressure_proxy");
    int bUnique[3] = {features::featureIndex("b0_unique_bytes"),
                      features::featureIndex("b1_unique_bytes"),
                      features::featureIndex("b2_unique_bytes")};
    int bTraffic[3] = {features::featureIndex("b0_traffic_bytes"),
                       features::featureIndex("b1_traffic_bytes"),
                       features::featureIndex("b2_traffic_bytes")};
};

const FeatureIdx &
idx()
{
    static const FeatureIdx indices;
    return indices;
}

double
clamp01(double x)
{
    return std::min(1.0, std::max(0.0, x));
}

} // namespace

LatencyBreakdown
kernelLatencyDetail(const std::vector<double> &f,
                    const DeviceConfig &device)
{
    FELIX_CHECK(f.size() ==
                static_cast<size_t>(features::kNumFeatures),
                "latency model expects the 82-feature vector");
    const FeatureIdx &fi = idx();
    LatencyBreakdown out;

    const double blocks = std::max(1.0, f[fi.blockLen]);
    const double threads = std::max(1.0, f[fi.threadLen]);

    // ---- Occupancy & parallel efficiency ------------------------------
    const double warps = std::ceil(threads / 32.0);
    out.warpEfficiency = threads / (warps * 32.0);

    double blocksPerSm = std::floor(device.maxThreadsPerSm / threads);
    blocksPerSm = std::min(blocksPerSm, device.maxBlocksPerSm);
    const double shared = f[fi.sharedBytes];
    if (shared > 0.0) {
        blocksPerSm = std::min(
            blocksPerSm,
            std::floor(device.sharedPerSmBytes / shared));
    }
    // Register pressure limits residency: large per-thread tiles eat
    // the register file (proxy: ~2 registers per value in flight out
    // of a 64K-register file shared by resident threads).
    const double regsPerThread =
        16.0 + 2.0 * std::max(0.0, f[fi.regPressure]);
    blocksPerSm = std::min(
        blocksPerSm,
        std::floor(65536.0 / std::max(1.0, regsPerThread * threads)));
    blocksPerSm = std::max(1.0, blocksPerSm);

    const double residentPerSm =
        std::min(blocksPerSm,
                 std::max(1.0, std::ceil(blocks / device.smCount)));
    out.occupancy = clamp01(residentPerSm * threads /
                            device.maxThreadsPerSm);
    // Latency hiding saturates quickly with occupancy.
    const double latencyHiding =
        out.occupancy / (out.occupancy + 0.05);

    const double slotCap = device.smCount * residentPerSm;
    const double waves = std::ceil(blocks / slotCap);
    out.waveEfficiency = blocks / (waves * slotCap);

    // ---- Compute roofline ----------------------------------------------
    const double specialExtra =
        f[fi.floatSpecial] * (device.specialOpCost - 1.0) +
        f[fi.floatDiv] * 3.0;
    const double intWork = 0.35 * f[fi.intAdd];
    const double computeWork =
        f[fi.flopsTotal] + specialExtra + intWork;

    // ILP boost from unrolling (up to ~1.35x), with an instruction
    // cache penalty for extreme unroll factors.
    double ilp = 1.0;
    if (f[fi.unrollApplied] > 0.5) {
        double step = std::max(2.0, f[fi.unrollStep]);
        ilp += 0.35 * clamp01(std::log2(step) / 6.0);
        if (step > 256.0)
            ilp *= 0.92;
    }
    ilp += 0.05 * clamp01(f[fi.vecLen] - 1.0);
    // Virtual threads interleave independent instruction streams in
    // one physical thread (Ansor's vthread), improving ILP.
    if (f[fi.vthreadLen] > 1.0) {
        ilp += 0.15 * clamp01(std::log2(f[fi.vthreadLen]) / 3.0);
    }

    // The ILP boost can compensate other losses but never push a
    // kernel beyond the device's peak throughput.
    const double computeEff = std::min(
        1.0, std::max(1e-3, latencyHiding * out.warpEfficiency *
                                out.waveEfficiency * ilp));
    out.computeSec =
        computeWork / (device.peakFlops() * computeEff);

    // ---- Memory roofline -------------------------------------------------
    // Per-buffer L2 adjustment: refetches of a buffer that fits
    // comfortably in L2 (e.g. the small activation matrix of a
    // matmul) are mostly L2 hits, while refetches of a buffer much
    // larger than L2 (streamed weights) go to DRAM every time.
    double dramTraffic = f[fi.globalStores];
    double perBufferRaw = 0.0;
    for (int slot = 0; slot < 3; ++slot) {
        const double unique = f[fi.bUnique[slot]];
        const double traffic = f[fi.bTraffic[slot]];
        if (traffic <= 0.0)
            continue;
        perBufferRaw += traffic;
        if (traffic <= unique) {
            dramTraffic += traffic;
            continue;
        }
        // A buffer well under the L2 capacity stays resident and its
        // refetches are free; one far above it misses every time.
        const double ratio = unique / device.l2Bytes;
        const double missFrac =
            clamp01((ratio - 0.4) / (ratio + 0.6));
        dramTraffic += unique + (traffic - unique) * missFrac;
    }
    // Traffic not attributed to the three tracked buffers (epilogue
    // and auxiliary stages) is charged at face value.
    dramTraffic +=
        std::max(0.0, f[fi.globalTraffic] - perBufferRaw);

    const double transactions = std::max(1.0, f[fi.coalesce]);
    const double coalesceEff = 1.0 / (1.0 + 0.12 * (transactions - 1.0));
    // DRAM needs enough threads in flight to reach peak bandwidth.
    const double memParallel = clamp01(
        blocks * threads / (device.smCount * 384.0));
    const double memEff = std::max(
        0.02, coalesceEff * (0.15 + 0.85 * memParallel));
    out.memorySec = dramTraffic / (device.dramBytesPerSec() * memEff);

    // ---- Shared memory & synchronization ---------------------------------
    const double sharedBw =
        device.dramBytesPerSec() * device.sharedBwRatio;
    out.sharedSec =
        f[fi.sharedTraffic] /
        (sharedBw * std::max(0.3, latencyHiding));
    // Syncthreads serialize per resident block slot; total stall is
    // the per-slot sync count times the barrier latency.
    out.syncSec = f[fi.syncCount] * 25e-9 / std::max(1.0, slotCap);

    // ---- Combine -----------------------------------------------------------
    // Smooth roofline max: components overlap but the largest
    // dominates (p-norm with p = 3).
    const double p = 3.0;
    const double body =
        std::pow(std::pow(out.computeSec, p) +
                     std::pow(out.memorySec, p) +
                     std::pow(out.sharedSec, p),
                 1.0 / p);
    out.launchSec = device.launchOverheadUs * 1e-6;
    out.totalSec = body + out.syncSec + out.launchSec;
    return out;
}

double
kernelLatency(const std::vector<double> &features,
              const DeviceConfig &device)
{
    return kernelLatencyDetail(features, device).totalSec;
}

double
measureKernel(const std::vector<double> &features,
              const DeviceConfig &device, uint64_t noise_seed)
{
    const double base = kernelLatency(features, device);

    // Schedule-intrinsic perturbation: effects the analytical model
    // misses (bank conflicts, instruction scheduling luck, ...) that
    // are a fixed property of the generated code.
    uint64_t h = hashCombine(static_cast<uint64_t>(device.kind), 0x5bd1);
    for (double v : features) {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        h = hashCombine(h, bits);
    }
    Rng intrinsic(h);
    const double scheduleJitter = std::exp(intrinsic.normal(0.0, 0.04));

    // Run-to-run measurement noise.
    Rng run(hashCombine(h, noise_seed));
    const double runJitter = std::exp(run.normal(0.0, 0.015));

    return base * scheduleJitter * runJitter;
}

} // namespace sim
} // namespace felix
