/**
 * @file
 * Simulated GPU devices.
 *
 * The paper evaluates on three NVIDIA GPUs (A10G server, RTX A5000
 * desktop, Xavier NX edge). No GPU hardware is available to this
 * reproduction, so `sim/` provides an analytical latency model with
 * device configurations matching the published specifications of
 * those parts. The model consumes the same 82 concrete program
 * features the cost model sees, which makes the features a
 * sufficient statistic of performance — mirroring the real-world
 * property that program characteristics determine run time.
 * See DESIGN.md §2 for the substitution rationale.
 */
#ifndef FELIX_SIM_DEVICE_H_
#define FELIX_SIM_DEVICE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace felix {
namespace sim {

/** Identifiers for the three evaluated GPUs. */
enum class DeviceKind { A10G, A5000, XavierNX };

const char *deviceKindName(DeviceKind kind);

/** Analytical-model parameters of one GPU. */
struct DeviceConfig
{
    std::string name;
    DeviceKind kind = DeviceKind::A5000;

    double smCount = 64;           ///< streaming multiprocessors
    double coresPerSm = 128;       ///< FP32 lanes per SM
    double clockGhz = 1.7;
    double dramGBps = 600.0;       ///< DRAM bandwidth
    double l2Bytes = 6.0 * 1024 * 1024;
    double sharedBwRatio = 18.0;   ///< shared-mem BW vs DRAM
    double maxThreadsPerSm = 1536;
    double maxBlocksPerSm = 16;
    double sharedPerSmBytes = 100.0 * 1024;
    double launchOverheadUs = 4.0;
    double specialOpCost = 4.0;    ///< exp/tanh vs FMA cost ratio

    /** Peak FP32 throughput in FLOP/s. */
    double peakFlops() const;
    /** Peak DRAM bandwidth in bytes/s. */
    double dramBytesPerSec() const;
};

/** Configuration of one of the three evaluated GPUs. */
const DeviceConfig &deviceConfig(DeviceKind kind);

/** All three evaluated devices. */
std::vector<DeviceKind> allDevices();

/** Parse "a10g" / "a5000" / "xavier-nx" (case-insensitive). */
DeviceKind parseDevice(const std::string &name);

} // namespace sim
} // namespace felix

#endif // FELIX_SIM_DEVICE_H_
