/**
 * @file
 * Ansor-style evolutionary schedule search (the paper's baseline,
 * §5: population 2048, 4 generations, 64 measurements per round,
 * with a TenSet-pretrained cost model => "Ansor-TenSet").
 *
 * Implements the same SearchStrategy interface as Felix's gradient
 * search: each round evolves a population of concrete schedules
 * under cost-model fitness (softmax selection, group-preserving
 * crossover, factor-resampling mutation) and returns the best
 * nMeasure distinct individuals for hardware measurement.
 */
#ifndef FELIX_EVOLUTIONARY_EVOLUTIONARY_H_
#define FELIX_EVOLUTIONARY_EVOLUTIONARY_H_

#include <memory>
#include <vector>

#include "optim/search.h"

namespace felix {
namespace evolutionary {

/** Evolutionary search options (paper §5 recommended settings). */
struct EvoSearchOptions
{
    int population = 2048;
    int generations = 4;
    int nMeasure = 64;
    double crossoverProb = 0.30;
    double mutationProb = 0.85;
    /** Elites carried over between tuning rounds. */
    int eliteKeep = 64;
    sketch::GenOptions sketchOptions;
};

/** Ansor's evolutionary candidate search for one subgraph. */
class EvolutionarySearch : public optim::SearchStrategy
{
  public:
    EvolutionarySearch(const tir::SubgraphDef &subgraph,
                       EvoSearchOptions options = {});

    optim::RoundResult round(const costmodel::CostModel &model,
                             Rng &rng) override;

    /** Cross-round state: the carried elite population. */
    void saveState(std::ostream &os) const override;
    bool loadState(std::istream &is) override;

    const std::vector<sketch::SymbolicSchedule> &
    sketches() const override
    {
        return sketches_;
    }

    const EvoSearchOptions &options() const { return options_; }

  private:
    struct Individual
    {
        int sketchIndex = 0;
        std::vector<double> x;
        double score = 0.0;
    };

    struct SketchContext
    {
        const sketch::SymbolicSchedule *sched = nullptr;
        std::vector<std::string> varNames;
        std::unique_ptr<expr::CompiledExprs> rawFeatures;
        std::unique_ptr<sketch::ConstraintChecker> checker;
    };

    // All const: callable concurrently from pool workers (evaluation
    // scratch is per-call, randomness comes in via the Rng argument).
    Individual randomIndividual(Rng &rng) const;
    Individual mutate(const Individual &parent, Rng &rng) const;
    Individual crossover(const Individual &a, const Individual &b,
                         Rng &rng) const;
    bool valid(const Individual &individual) const;
    double evaluate(Individual &individual,
                    const costmodel::CostModel &model) const;

    EvoSearchOptions options_;
    std::vector<sketch::SymbolicSchedule> sketches_;
    std::vector<SketchContext> contexts_;
    std::vector<Individual> elites_;   ///< carried across rounds
};

} // namespace evolutionary
} // namespace felix

#endif // FELIX_EVOLUTIONARY_EVOLUTIONARY_H_
