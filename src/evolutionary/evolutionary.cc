#include "evolutionary/evolutionary.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "features/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace felix {
namespace evolutionary {

using optim::Candidate;
using optim::RoundResult;

namespace {

/** Same phase accounting as the gradient search (sketch gen). */
std::vector<sketch::SymbolicSchedule>
generateSketchesTimed(const tir::SubgraphDef &subgraph,
                      const sketch::GenOptions &options)
{
    auto &registry = obs::MetricsRegistry::instance();
    obs::ScopedTimerMs timer(registry.counter("sketch.generate_ms"));
    FELIX_SPAN("sketch.generate", "sketch");
    auto sketches = sketch::generateSketches(subgraph, options);
    registry.counter("sketch.generated")
        .add(static_cast<double>(sketches.size()));
    return sketches;
}

} // namespace

EvolutionarySearch::EvolutionarySearch(const tir::SubgraphDef &subgraph,
                                       EvoSearchOptions options)
    : options_(std::move(options)),
      sketches_(generateSketchesTimed(subgraph,
                                      options_.sketchOptions))
{
    obs::ScopedTimerMs timer(obs::MetricsRegistry::instance().counter(
        "sketch.generate_ms"));
    FELIX_SPAN("search.compile_tapes", "search");
    for (const sketch::SymbolicSchedule &sched : sketches_) {
        SketchContext context;
        context.sched = &sched;
        for (const auto &domain : sched.vars)
            context.varNames.push_back(domain.name);
        context.rawFeatures = std::make_unique<expr::CompiledExprs>(
            features::extractFeatures(sched.program),
            context.varNames);
        context.checker =
            std::make_unique<sketch::ConstraintChecker>(sched);
        contexts_.push_back(std::move(context));
    }
}

EvolutionarySearch::Individual
EvolutionarySearch::randomIndividual(Rng &rng)
{
    Individual individual;
    individual.sketchIndex =
        static_cast<int>(rng.index(contexts_.size()));
    individual.x = sketch::sampleValid(
        *contexts_[individual.sketchIndex].sched, rng);
    return individual;
}

EvolutionarySearch::Individual
EvolutionarySearch::mutate(const Individual &parent, Rng &rng)
{
    Individual child = parent;
    const sketch::SymbolicSchedule &sched =
        *contexts_[child.sketchIndex].sched;

    if (!sched.groups.empty() && rng.bernoulli(0.8)) {
        // Resample one split group: redistribute the tile factors of
        // one loop (Ansor's tile-size mutation).
        const sketch::SplitGroup &group =
            sched.groups[rng.index(sched.groups.size())];
        int64_t remaining = group.extent;
        for (int vi : group.varIndices) {
            const sketch::VarDomain &domain = sched.vars[vi];
            auto divisors = divisorsOf(remaining);
            std::vector<int64_t> valid;
            for (int64_t d : divisors) {
                if (d >= domain.lo && d <= std::min(remaining,
                                                    domain.hi))
                    valid.push_back(d);
            }
            if (valid.empty())
                valid.push_back(1);
            int64_t pick = valid[rng.index(valid.size())];
            child.x[vi] = static_cast<double>(pick);
            remaining /= pick;
        }
    } else {
        // Mutate a free variable (unroll step, ...): jump to a
        // neighbouring power of two.
        std::vector<int> freeVars;
        std::vector<bool> inGroup(sched.vars.size(), false);
        for (const auto &group : sched.groups) {
            for (int vi : group.varIndices)
                inGroup[vi] = true;
        }
        for (size_t vi = 0; vi < sched.vars.size(); ++vi) {
            if (!inGroup[vi])
                freeVars.push_back(static_cast<int>(vi));
        }
        if (!freeVars.empty()) {
            int vi = freeVars[rng.index(freeVars.size())];
            const sketch::VarDomain &domain = sched.vars[vi];
            double factor = rng.bernoulli(0.5) ? 2.0 : 0.5;
            double value = child.x[vi] * factor;
            value = std::max(static_cast<double>(domain.lo),
                             std::min(static_cast<double>(domain.hi),
                                      value));
            child.x[vi] = std::nearbyint(value);
        }
    }
    return child;
}

EvolutionarySearch::Individual
EvolutionarySearch::crossover(const Individual &a, const Individual &b,
                              Rng &rng)
{
    // Only individuals from the same sketch can recombine; mix whole
    // split groups so divisibility is preserved.
    if (a.sketchIndex != b.sketchIndex)
        return mutate(a, rng);
    Individual child = a;
    const sketch::SymbolicSchedule &sched =
        *contexts_[a.sketchIndex].sched;
    for (const auto &group : sched.groups) {
        if (rng.bernoulli(0.5)) {
            for (int vi : group.varIndices)
                child.x[vi] = b.x[vi];
        }
    }
    std::vector<bool> inGroup(sched.vars.size(), false);
    for (const auto &group : sched.groups) {
        for (int vi : group.varIndices)
            inGroup[vi] = true;
    }
    for (size_t vi = 0; vi < sched.vars.size(); ++vi) {
        if (!inGroup[vi] && rng.bernoulli(0.5))
            child.x[vi] = b.x[vi];
    }
    return child;
}

bool
EvolutionarySearch::valid(const Individual &individual)
{
    SketchContext &context = contexts_[individual.sketchIndex];
    return context.checker->feasible(individual.x);
}

double
EvolutionarySearch::evaluate(Individual &individual,
                             const costmodel::CostModel &model)
{
    SketchContext &context = contexts_[individual.sketchIndex];
    auto raw = context.rawFeatures->eval(individual.x);
    individual.score = model.predict(raw);
    return individual.score;
}

RoundResult
EvolutionarySearch::round(const costmodel::CostModel &model, Rng &rng)
{
    FELIX_SPAN("search.round", "search");
    auto &registry = obs::MetricsRegistry::instance();

    RoundResult result;
    result.trace.seedsLaunched = options_.population;

    // Initialize: elites from previous rounds + fresh random
    // schedules up to the population size.
    std::vector<Individual> population = elites_;
    while (static_cast<int>(population.size()) < options_.population)
        population.push_back(randomIndividual(rng));

    std::map<std::pair<int, std::vector<double>>, Individual> best;
    auto scoreAndRecord = [&](std::vector<Individual> &pop) {
        for (Individual &individual : pop) {
            evaluate(individual, model);
            ++result.trace.numPredictions;
            result.trace.visitedScores.push_back(individual.score);
            auto key = std::make_pair(individual.sketchIndex,
                                      individual.x);
            auto it = best.find(key);
            if (it == best.end())
                best.emplace(key, individual);
        }
    };
    scoreAndRecord(population);

    for (int gen = 1; gen < options_.generations; ++gen) {
        FELIX_SPAN("search.generation", "search");
        // Softmax selection weights over the current population.
        double maxScore = -1e300;
        for (const Individual &individual : population)
            maxScore = std::max(maxScore, individual.score);
        std::vector<double> weights;
        weights.reserve(population.size());
        for (const Individual &individual : population) {
            weights.push_back(
                std::exp(individual.score - maxScore));
        }

        std::vector<Individual> next;
        next.reserve(population.size());
        int guard = 0;
        while (static_cast<int>(next.size()) < options_.population &&
               guard < options_.population * 8) {
            ++guard;
            const Individual &parentA =
                population[rng.weightedIndex(weights)];
            Individual child;
            if (rng.bernoulli(options_.crossoverProb)) {
                const Individual &parentB =
                    population[rng.weightedIndex(weights)];
                child = crossover(parentA, parentB, rng);
            } else if (rng.bernoulli(options_.mutationProb)) {
                child = mutate(parentA, rng);
            } else {
                child = parentA;
            }
            // The evolutionary analogue of Felix's rounding step:
            // every generated child is checked against the legality
            // constraints and infeasible ones are discarded.
            ++result.trace.roundingAttempts;
            if (valid(child))
                next.push_back(std::move(child));
            else
                ++result.trace.roundingInvalid;
        }
        while (static_cast<int>(next.size()) < options_.population)
            next.push_back(randomIndividual(rng));
        population = std::move(next);
        scoreAndRecord(population);
    }

    // Keep the global best as next round's elites.
    std::vector<Individual> ranked;
    ranked.reserve(best.size());
    for (auto &entry : best)
        ranked.push_back(entry.second);
    std::sort(ranked.begin(), ranked.end(),
              [](const Individual &a, const Individual &b) {
                  return a.score > b.score;
              });
    elites_.assign(
        ranked.begin(),
        ranked.begin() + std::min<size_t>(ranked.size(),
                                          options_.eliteKeep));

    // Stratified selection mirroring Ansor's epsilon-greedy
    // measurement: top of the ranking plus a floor per sketch.
    const int perSketchFloor = 2;
    std::vector<const Individual *> picked;
    std::vector<bool> taken(ranked.size(), false);
    for (size_t sk = 0; sk < contexts_.size(); ++sk) {
        int got = 0;
        for (size_t i = 0; i < ranked.size() && got < perSketchFloor;
             ++i) {
            if (!taken[i] &&
                ranked[i].sketchIndex == static_cast<int>(sk)) {
                taken[i] = true;
                picked.push_back(&ranked[i]);
                ++got;
            }
        }
    }
    for (size_t i = 0; i < ranked.size() &&
                       static_cast<int>(picked.size()) <
                           options_.nMeasure;
         ++i) {
        if (!taken[i])
            picked.push_back(&ranked[i]);
    }
    if (static_cast<int>(picked.size()) > options_.nMeasure)
        picked.resize(options_.nMeasure);
    for (const Individual *individual : picked) {
        Candidate candidate;
        candidate.sketchIndex = individual->sketchIndex;
        candidate.x = individual->x;
        candidate.rawFeatures =
            contexts_[candidate.sketchIndex].rawFeatures->eval(
                candidate.x);
        candidate.predictedScore = individual->score;
        result.toMeasure.push_back(std::move(candidate));
    }
    registry.counter("search.seeds").add(options_.population);
    registry.counter("evo.generations").add(options_.generations);
    registry.counter("search.rounding_attempts")
        .add(result.trace.roundingAttempts);
    registry.counter("search.rounding_invalid")
        .add(result.trace.roundingInvalid);
    registry.counter("search.predictions")
        .add(result.trace.numPredictions);
    return result;
}

} // namespace evolutionary
} // namespace felix
