#include "evolutionary/evolutionary.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>

#include "features/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/dedup.h"
#include "support/batch.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/parallel.h"

namespace felix {
namespace evolutionary {

using optim::Candidate;
using optim::RoundResult;

namespace {

/** Same phase accounting as the gradient search (sketch gen). */
std::vector<sketch::SymbolicSchedule>
generateSketchesTimed(const tir::SubgraphDef &subgraph,
                      const sketch::GenOptions &options)
{
    auto &registry = obs::MetricsRegistry::instance();
    obs::ScopedTimerMs timer(registry.counter("sketch.generate_ms"));
    FELIX_SPAN("sketch.generate", "sketch");
    auto sketches = sketch::generateSketches(subgraph, options);
    registry.counter("sketch.generated")
        .add(static_cast<double>(sketches.size()));
    return sketches;
}

/**
 * Per-worker scratch for batched population scoring: tape + model
 * buffers plus the SoA staging rows, allocated once per worker
 * thread and reused across batches, generations and rounds.
 */
struct EvoBatchScratch
{
    expr::BatchEvalState tape;
    costmodel::PredictScratch predict;
    std::vector<double> inputs, outputs;
};

EvoBatchScratch &
workerScratch()
{
    static thread_local EvoBatchScratch scratch;
    return scratch;
}

} // namespace

EvolutionarySearch::EvolutionarySearch(const tir::SubgraphDef &subgraph,
                                       EvoSearchOptions options)
    : options_(std::move(options)),
      sketches_(generateSketchesTimed(subgraph,
                                      options_.sketchOptions))
{
    obs::ScopedTimerMs timer(obs::MetricsRegistry::instance().counter(
        "search.compile_tapes_ms"));
    FELIX_SPAN("search.compile_tapes", "search");
    contexts_.resize(sketches_.size());
    parallelFor("search.compile_tape", sketches_.size(),
                [&](size_t si) {
                    const sketch::SymbolicSchedule &sched =
                        sketches_[si];
                    SketchContext context;
                    context.sched = &sched;
                    for (const auto &domain : sched.vars)
                        context.varNames.push_back(domain.name);
                    // Population scoring never differentiates the
                    // features, so the tape opts into the
                    // forward-only optimizer passes.
                    context.rawFeatures =
                        std::make_unique<expr::CompiledExprs>(
                            features::extractFeatures(sched.program),
                            context.varNames,
                            /*forward_only=*/true);
                    context.checker = std::make_unique<
                        sketch::ConstraintChecker>(sched);
                    contexts_[si] = std::move(context);
                });
}

EvolutionarySearch::Individual
EvolutionarySearch::randomIndividual(Rng &rng) const
{
    Individual individual;
    individual.sketchIndex =
        static_cast<int>(rng.index(contexts_.size()));
    individual.x = sketch::sampleValid(
        *contexts_[individual.sketchIndex].sched, rng);
    return individual;
}

EvolutionarySearch::Individual
EvolutionarySearch::mutate(const Individual &parent, Rng &rng) const
{
    Individual child = parent;
    const sketch::SymbolicSchedule &sched =
        *contexts_[child.sketchIndex].sched;

    if (!sched.groups.empty() && rng.bernoulli(0.8)) {
        // Resample one split group: redistribute the tile factors of
        // one loop (Ansor's tile-size mutation).
        const sketch::SplitGroup &group =
            sched.groups[rng.index(sched.groups.size())];
        int64_t remaining = group.extent;
        for (int vi : group.varIndices) {
            const sketch::VarDomain &domain = sched.vars[vi];
            auto divisors = divisorsOf(remaining);
            std::vector<int64_t> valid;
            for (int64_t d : divisors) {
                if (d >= domain.lo && d <= std::min(remaining,
                                                    domain.hi))
                    valid.push_back(d);
            }
            if (valid.empty())
                valid.push_back(1);
            int64_t pick = valid[rng.index(valid.size())];
            child.x[vi] = static_cast<double>(pick);
            remaining /= pick;
        }
    } else {
        // Mutate a free variable (unroll step, ...): jump to a
        // neighbouring power of two.
        std::vector<int> freeVars;
        std::vector<bool> inGroup(sched.vars.size(), false);
        for (const auto &group : sched.groups) {
            for (int vi : group.varIndices)
                inGroup[vi] = true;
        }
        for (size_t vi = 0; vi < sched.vars.size(); ++vi) {
            if (!inGroup[vi])
                freeVars.push_back(static_cast<int>(vi));
        }
        if (!freeVars.empty()) {
            int vi = freeVars[rng.index(freeVars.size())];
            const sketch::VarDomain &domain = sched.vars[vi];
            double factor = rng.bernoulli(0.5) ? 2.0 : 0.5;
            double value = child.x[vi] * factor;
            value = std::max(static_cast<double>(domain.lo),
                             std::min(static_cast<double>(domain.hi),
                                      value));
            child.x[vi] = std::nearbyint(value);
        }
    }
    return child;
}

EvolutionarySearch::Individual
EvolutionarySearch::crossover(const Individual &a, const Individual &b,
                              Rng &rng) const
{
    // Only individuals from the same sketch can recombine; mix whole
    // split groups so divisibility is preserved.
    if (a.sketchIndex != b.sketchIndex)
        return mutate(a, rng);
    Individual child = a;
    const sketch::SymbolicSchedule &sched =
        *contexts_[a.sketchIndex].sched;
    for (const auto &group : sched.groups) {
        if (rng.bernoulli(0.5)) {
            for (int vi : group.varIndices)
                child.x[vi] = b.x[vi];
        }
    }
    std::vector<bool> inGroup(sched.vars.size(), false);
    for (const auto &group : sched.groups) {
        for (int vi : group.varIndices)
            inGroup[vi] = true;
    }
    for (size_t vi = 0; vi < sched.vars.size(); ++vi) {
        if (!inGroup[vi] && rng.bernoulli(0.5))
            child.x[vi] = b.x[vi];
    }
    return child;
}

bool
EvolutionarySearch::valid(const Individual &individual) const
{
    const SketchContext &context = contexts_[individual.sketchIndex];
    return context.checker->feasible(individual.x);
}

double
EvolutionarySearch::evaluate(Individual &individual,
                             const costmodel::CostModel &model) const
{
    const SketchContext &context = contexts_[individual.sketchIndex];
    // One eval state per worker, reused across individuals and
    // rounds (it rebinds itself when the sketch tape changes).
    static thread_local expr::EvalState state;
    auto raw = context.rawFeatures->eval(individual.x, state);
    individual.score = model.predict(raw);
    return individual.score;
}

RoundResult
EvolutionarySearch::round(const costmodel::CostModel &model, Rng &rng)
{
    FELIX_SPAN("search.round", "search");
    auto &registry = obs::MetricsRegistry::instance();

    RoundResult result;
    result.trace.seedsLaunched = options_.population;

    // Initialize: elites from previous rounds + fresh random
    // schedules up to the population size. Each fresh slot samples
    // from its own forked stream so the fill parallelizes without
    // perturbing the parent stream.
    std::vector<Individual> population = elites_;
    const size_t fillStart = population.size();
    if (static_cast<int>(fillStart) < options_.population) {
        const size_t fill = options_.population - fillStart;
        std::vector<Rng> fillRngs = rng.forkStreams(fill);
        population.resize(options_.population);
        parallelFor("evo.random_init", fill, [&](size_t i) {
            population[fillStart + i] = randomIndividual(fillRngs[i]);
        });
    }

    std::unordered_map<optim::CandidateKey, Individual,
                       optim::CandidateKeyHash>
        best;
    auto scoreAndRecord = [&](std::vector<Individual> &pop) {
        // Scoring is the hot part: individuals sharing a sketch are
        // grouped (in population-index order, so the grouping never
        // depends on --jobs) into lockstep batches of up to
        // kBatchLanes lanes through the shared feature tape and the
        // batched MLP; each lane writes only its own score slot.
        // Bookkeeping stays sequential, in index order, so trace and
        // dedup are --jobs invariant.
        struct EvalBatch
        {
            int sketchIdx = 0;
            std::vector<size_t> members;
        };
        std::vector<std::vector<size_t>> bySketch(contexts_.size());
        for (size_t i = 0; i < pop.size(); ++i)
            bySketch[pop[i].sketchIndex].push_back(i);
        std::vector<EvalBatch> batches;
        for (size_t sk = 0; sk < bySketch.size(); ++sk) {
            const std::vector<size_t> &members = bySketch[sk];
            for (size_t b = 0; b < members.size(); b += kBatchLanes) {
                EvalBatch batch;
                batch.sketchIdx = static_cast<int>(sk);
                batch.members.assign(
                    members.begin() + b,
                    members.begin() +
                        std::min(members.size(), b + kBatchLanes));
                batches.push_back(std::move(batch));
            }
        }
        parallelFor("evo.evaluate", batches.size(), [&](size_t bi) {
            const EvalBatch &batch = batches[bi];
            const SketchContext &context =
                contexts_[batch.sketchIdx];
            const size_t numVars = context.varNames.size();
            const size_t numOutputs =
                context.rawFeatures->numOutputs();
            const size_t width = batch.members.size();
            constexpr size_t L = kBatchLanes;
            EvoBatchScratch &ws = workerScratch();
            ws.inputs.resize(numVars * L);
            ws.outputs.resize(numOutputs * L);
            for (size_t l = 0; l < width; ++l)
                for (size_t v = 0; v < numVars; ++v)
                    ws.inputs[v * L + l] =
                        pop[batch.members[l]].x[v];
            context.rawFeatures->forwardBatch(
                ws.inputs.data(), width, ws.outputs.data(), ws.tape);
            double scores[kBatchLanes];
            model.predictBatch(ws.outputs.data(), scores,
                               ws.predict);
            for (size_t l = 0; l < width; ++l)
                pop[batch.members[l]].score = scores[l];
        });
        for (Individual &individual : pop) {
            ++result.trace.numPredictions;
            result.trace.visitedScores.push_back(individual.score);
            optim::CandidateKey key{individual.sketchIndex,
                                    individual.x};
            auto it = best.find(key);
            if (it == best.end())
                best.emplace(std::move(key), individual);
        }
    };
    scoreAndRecord(population);

    for (int gen = 1; gen < options_.generations; ++gen) {
        FELIX_SPAN("search.generation", "search");
        // Softmax selection weights over the current population.
        double maxScore = -1e300;
        for (const Individual &individual : population)
            maxScore = std::max(maxScore, individual.score);
        std::vector<double> weights;
        weights.reserve(population.size());
        for (const Individual &individual : population) {
            weights.push_back(
                std::exp(individual.score - maxScore));
        }

        // Generate children in waves of `population` attempts. Every
        // attempt owns a forked stream and a result slot, so a wave
        // is embarrassingly parallel; consumption then walks the
        // slots in attempt order, keeping exactly the prefix needed
        // to fill the next generation — the same child sequence for
        // any --jobs value. Caps at 8 waves like the sequential
        // guard (population * 8 attempts).
        std::vector<Individual> next;
        next.reserve(population.size());
        for (int wave = 0;
             wave < 8 &&
             static_cast<int>(next.size()) < options_.population;
             ++wave) {
            const size_t attempts = population.size();
            std::vector<Rng> childRngs = rng.forkStreams(attempts);
            std::vector<Individual> children(attempts);
            std::vector<char> childValid(attempts, 0);
            parallelFor("evo.generate", attempts, [&](size_t i) {
                Rng &childRng = childRngs[i];
                const Individual &parentA =
                    population[childRng.weightedIndex(weights)];
                Individual child;
                if (childRng.bernoulli(options_.crossoverProb)) {
                    const Individual &parentB =
                        population[childRng.weightedIndex(weights)];
                    child = crossover(parentA, parentB, childRng);
                } else if (childRng.bernoulli(
                               options_.mutationProb)) {
                    child = mutate(parentA, childRng);
                } else {
                    child = parentA;
                }
                // The evolutionary analogue of Felix's rounding
                // step: every generated child is checked against the
                // legality constraints; infeasible ones are
                // discarded at consumption.
                childValid[i] = valid(child) ? 1 : 0;
                children[i] = std::move(child);
            });
            for (size_t i = 0;
                 i < attempts &&
                 static_cast<int>(next.size()) < options_.population;
                 ++i) {
                ++result.trace.roundingAttempts;
                if (childValid[i])
                    next.push_back(std::move(children[i]));
                else
                    ++result.trace.roundingInvalid;
            }
        }
        if (static_cast<int>(next.size()) < options_.population) {
            const size_t start = next.size();
            const size_t fill = options_.population - start;
            std::vector<Rng> fillRngs = rng.forkStreams(fill);
            next.resize(options_.population);
            parallelFor("evo.random_fill", fill, [&](size_t i) {
                next[start + i] = randomIndividual(fillRngs[i]);
            });
        }
        population = std::move(next);
        scoreAndRecord(population);
    }

    // Keep the global best as next round's elites. The hash map has
    // no deterministic iteration order, so sort ONCE by key — the
    // iteration order of the ordered map this replaced — before the
    // (unstable) score sort, keeping the ranking byte-identical.
    std::vector<Individual> ranked;
    ranked.reserve(best.size());
    for (auto &entry : best)
        ranked.push_back(entry.second);
    std::sort(ranked.begin(), ranked.end(),
              [](const Individual &a, const Individual &b) {
                  if (a.sketchIndex != b.sketchIndex)
                      return a.sketchIndex < b.sketchIndex;
                  return a.x < b.x;
              });
    std::sort(ranked.begin(), ranked.end(),
              [](const Individual &a, const Individual &b) {
                  return a.score > b.score;
              });
    elites_.assign(
        ranked.begin(),
        ranked.begin() + std::min<size_t>(ranked.size(),
                                          options_.eliteKeep));

    // Stratified selection mirroring Ansor's epsilon-greedy
    // measurement: top of the ranking plus a floor per sketch.
    const int perSketchFloor = 2;
    std::vector<const Individual *> picked;
    std::vector<bool> taken(ranked.size(), false);
    for (size_t sk = 0; sk < contexts_.size(); ++sk) {
        int got = 0;
        for (size_t i = 0; i < ranked.size() && got < perSketchFloor;
             ++i) {
            if (!taken[i] &&
                ranked[i].sketchIndex == static_cast<int>(sk)) {
                taken[i] = true;
                picked.push_back(&ranked[i]);
                ++got;
            }
        }
    }
    for (size_t i = 0; i < ranked.size() &&
                       static_cast<int>(picked.size()) <
                           options_.nMeasure;
         ++i) {
        if (!taken[i])
            picked.push_back(&ranked[i]);
    }
    if (static_cast<int>(picked.size()) > options_.nMeasure)
        picked.resize(options_.nMeasure);
    result.toMeasure.resize(picked.size());
    parallelFor("evo.features", picked.size(), [&](size_t i) {
        const Individual *individual = picked[i];
        Candidate candidate;
        candidate.sketchIndex = individual->sketchIndex;
        candidate.x = individual->x;
        // One eval state per worker, reused across picks and rounds.
        static thread_local expr::EvalState state;
        candidate.rawFeatures =
            contexts_[candidate.sketchIndex].rawFeatures->eval(
                candidate.x, state);
        candidate.predictedScore = individual->score;
        result.toMeasure[i] = std::move(candidate);
    });
    registry.counter("search.seeds").add(options_.population);
    registry.counter("evo.generations").add(options_.generations);
    registry.counter("search.rounding_attempts")
        .add(result.trace.roundingAttempts);
    registry.counter("search.rounding_invalid")
        .add(result.trace.roundingInvalid);
    registry.counter("search.predictions")
        .add(result.trace.numPredictions);
    return result;
}

void
EvolutionarySearch::saveState(std::ostream &os) const
{
    os.precision(17);
    os << "evo-search v1 " << elites_.size() << "\n";
    for (const Individual &elite : elites_) {
        os << elite.sketchIndex << " " << elite.score << " "
           << elite.x.size();
        for (double v : elite.x)
            os << " " << v;
        os << "\n";
    }
}

bool
EvolutionarySearch::loadState(std::istream &is)
{
    std::string tag, version;
    size_t numElites = 0;
    if (!(is >> tag >> version >> numElites) ||
        tag != "evo-search" || version != "v1" || numElites > 65536)
        return false;
    std::vector<Individual> elites(numElites);
    for (Individual &elite : elites) {
        size_t numVars = 0;
        if (!(is >> elite.sketchIndex >> elite.score >> numVars) ||
            numVars > 4096)
            return false;
        elite.x.resize(numVars);
        for (double &v : elite.x) {
            if (!(is >> v))
                return false;
        }
    }
    elites_ = std::move(elites);
    return true;
}

} // namespace evolutionary
} // namespace felix
