/**
 * @file
 * Program feature extraction (paper §3.3).
 *
 * An analysis pass over a (symbolic) Program producing 82 feature
 * formulas — expressions of the schedule variables — covering the
 * computation and memory-access characteristics the cost model
 * needs: arithmetic op counts per category, kernel launch geometry,
 * global/shared memory footprints and reuse, coalescing proxies,
 * per-buffer detail for the three largest inputs, and structural
 * occupancy proxies.
 *
 * The formulas intentionally contain select/min/max discontinuities
 * (loop-triviality tests, footprint clamps) — these are exactly what
 * the smoothing rewriter (rewrite/) later removes. Evaluating the
 * raw formulas at integer variable values gives the *exact* concrete
 * features used for hardware measurement and cost-model training.
 */
#ifndef FELIX_FEATURES_FEATURES_H_
#define FELIX_FEATURES_FEATURES_H_

#include <array>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "tir/program.h"

namespace felix {
namespace features {

/** Number of distinct program features (paper §3.3: 82). */
constexpr int kNumFeatures = 82;

/** Stable feature names, index-aligned with extractFeatures(). */
const std::array<std::string, kNumFeatures> &featureNames();

/** Index of a named feature; panics when unknown. */
int featureIndex(const std::string &name);

/**
 * Extract the 82 feature formulas from a scheduled program.
 * The result expressions reference exactly the schedule variables
 * present in the program's loop extents (x-space, unsmoothed).
 */
std::vector<expr::Expr> extractFeatures(const tir::Program &program);

/**
 * Concrete feature vector: evaluate the raw formulas at integer
 * schedule-variable values (exact, no smoothing).
 */
std::vector<double> concreteFeatures(
    const tir::Program &program,
    const std::vector<std::string> &var_names,
    const std::vector<double> &var_values);

/**
 * Shared-memory bytes per block required by all cache-read stages —
 * used by the sketch generator's hardware-resource constraint.
 */
expr::Expr sharedBytesPerBlock(const tir::Program &program);

} // namespace features
} // namespace felix

#endif // FELIX_FEATURES_FEATURES_H_
