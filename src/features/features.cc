#include "features/features.h"

#include <algorithm>
#include <unordered_map>

#include "expr/compiled.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace felix {
namespace features {

using expr::Expr;
using tir::Annotation;
using tir::BufferAccess;
using tir::LoopInfo;
using tir::Program;
using tir::StageInfo;

namespace {

const Expr kOne = Expr::constant(1.0);
const Expr kZero = Expr::constant(0.0);

/** Loop classes used by footprint scoping. */
enum ClassMask : unsigned {
    kBlock = 1u << 0,
    kVThread = 1u << 1,
    kThread = 1u << 2,
    kSerial = 1u << 3,      ///< None / Vectorize / Unroll / Parallel
    kInsideBlock = kVThread | kThread | kSerial,
    kInsideThread = kSerial,
    kAll = kBlock | kInsideBlock,
};

unsigned
loopClass(const LoopInfo &loop)
{
    switch (loop.ann) {
      case Annotation::BlockX: return kBlock;
      case Annotation::VThread: return kVThread;
      case Annotation::ThreadX: return kThread;
      default: return kSerial;
    }
}

/** Product of extents of loops whose class is in @p mask. */
Expr
extentProduct(const StageInfo &stage, unsigned mask)
{
    Expr product = kOne;
    for (const LoopInfo &loop : stage.loops) {
        if (loopClass(loop) & mask)
            product = product * loop.extent;
    }
    return product;
}

/**
 * Covered extent of origin axis @p axis over loops whose class is
 * in @p mask (and, when @p from_index >= 0, only loops at positions
 * >= from_index).
 */
Expr
coveredExtent(const StageInfo &stage, const std::string &axis,
              unsigned mask, int from_index = -1)
{
    Expr covered = kOne;
    for (size_t i = 0; i < stage.loops.size(); ++i) {
        if (from_index >= 0 && static_cast<int>(i) < from_index)
            continue;
        const LoopInfo &loop = stage.loops[i];
        if (!(loopClass(loop) & mask))
            continue;
        for (const tir::AxisCover &cover : loop.cover) {
            if (cover.axis == axis)
                covered = covered * cover.extent;
        }
    }
    return covered;
}

/**
 * Distinct elements of @p access touched while iterating the loops
 * selected by (@p mask, @p from_index). Per dimension:
 *   distinct = min(dimSize, 1 + sum_c (covered(axis_c)-1)*stride_c)
 * and the footprint is the product over dimensions.
 */
Expr
footprint(const StageInfo &stage, const BufferAccess &access,
          unsigned mask, int from_index = -1)
{
    Expr result = kOne;
    for (const tir::BufferDim &dim : access.dims) {
        Expr distinct = kOne;
        for (const tir::AxisRef &contrib : dim.contribs) {
            Expr covered =
                coveredExtent(stage, contrib.axis, mask, from_index);
            distinct = distinct +
                       (covered - kOne) *
                           Expr::constant(
                               static_cast<double>(contrib.stride));
        }
        result = result *
                 expr::min(distinct,
                           Expr::intConst(dim.dimSize));
    }
    return result;
}

/**
 * Footprint for stages whose loops were replaced by an aggregate
 * nest (ComputeAt targets): proportional share of the buffer.
 */
Expr
aggregateFootprint(const BufferAccess &access, const Expr &share)
{
    Expr total = Expr::intConst(access.bufferElems());
    return expr::min(total, total * share);
}

/** How often a root-attached stage executes, in total. */
Expr
stageExecutions(const Program &program, const StageInfo &stage)
{
    if (stage.attachStage < 0)
        return kOne;
    const StageInfo &target = program.stages[stage.attachStage];
    Expr executions = kOne;
    for (int i = 0; i <= stage.attachLoop &&
                    i < static_cast<int>(target.loops.size());
         ++i) {
        executions = executions * target.loops[i].extent;
    }
    return executions;
}

/**
 * Register-tile reuse of an access: the product of the stage's
 * serial inner-loop extents that do NOT index the accessed buffer.
 * A value loaded (from shared or global) is reused that many times
 * from registers — e.g. in a matmul with an (i3 x j3) register tile,
 * each element of A[i,k] is loaded once and used j3 times.
 */
Expr
registerReuse(const StageInfo &stage, const BufferAccess &access)
{
    std::unordered_map<std::string, bool> touches;
    for (const tir::BufferDim &dim : access.dims) {
        for (const tir::AxisRef &contrib : dim.contribs)
            touches[contrib.axis] = true;
    }
    Expr reuse = kOne;
    for (const LoopInfo &loop : stage.loops) {
        // Serial inner loops and vthread loops both execute in one
        // physical thread; the compiler keeps invariant loads in
        // registers across their iterations. Fused loops contribute
        // per covered axis (only the untouched axes' extents count).
        if (!(loopClass(loop) & (kSerial | kVThread)))
            continue;
        for (const tir::AxisCover &cover : loop.cover) {
            if (!touches.count(cover.axis))
                reuse = reuse * cover.extent;
        }
    }
    return reuse;
}

/** Coalescing proxy: global-memory transactions per warp-load. */
Expr
transactionsPerWarp(const StageInfo &stage, const BufferAccess &access)
{
    if (access.dims.empty())
        return kOne;
    // How much of the innermost buffer dimension a warp's threads
    // cover: contiguous coverage => 1 transaction, strided => up
    // to 32.
    const tir::BufferDim &last = access.dims.back();
    Expr innerCover = kOne;
    for (const tir::AxisRef &contrib : last.contribs) {
        innerCover = innerCover *
                     coveredExtent(stage, contrib.axis,
                                   kThread | kSerial);
    }
    Expr capped = expr::min(innerCover, Expr::constant(32.0));
    return Expr::constant(32.0) / expr::max(capped, kOne);
}

struct StageTotals
{
    Expr points = kZero;       ///< iteration points over whole kernel
};

} // namespace

const std::array<std::string, kNumFeatures> &
featureNames()
{
    static const std::array<std::string, kNumFeatures> names = {
        // Arithmetic (0-7)
        "float_mad", "float_add", "float_mul", "float_div",
        "float_special", "float_cmp", "flops_total", "int_add",
        // Launch geometry (8-19)
        "block_len", "thread_len", "vthread_len", "vec_len",
        "total_threads", "warps_per_block", "serial_work_per_thread",
        "reduce_total", "reduce_inner", "spatial_inner",
        "unroll_max_step", "unroll_applied",
        // Work decomposition (20-25)
        "executions_total", "stages_count", "cache_stages_count",
        "epilogue_points", "points_total", "points_per_thread",
        // Global memory (26-37)
        "global_load_traffic_bytes", "global_store_bytes",
        "global_unique_bytes", "global_reuse",
        "footprint_per_block_bytes", "footprint_per_thread_bytes",
        "load_count_total", "store_count_total", "coalesce_penalty",
        "transactions_total", "arith_intensity", "traffic_per_thread",
        // Shared memory (38-45)
        "shared_bytes_total", "shared_load_count",
        "shared_store_count", "shared_traffic_bytes", "shared_reuse",
        "bank_conflict_proxy", "shared_per_thread", "uses_shared",
        // Per-buffer detail, 3 largest root inputs (46-69)
        "b0_unique_bytes", "b0_footprint_block", "b0_footprint_thread",
        "b0_reuse_block", "b0_traffic_bytes", "b0_contiguity",
        "b0_cached", "b0_lines_block",
        "b1_unique_bytes", "b1_footprint_block", "b1_footprint_thread",
        "b1_reuse_block", "b1_traffic_bytes", "b1_contiguity",
        "b1_cached", "b1_lines_block",
        "b2_unique_bytes", "b2_footprint_block", "b2_footprint_thread",
        "b2_reuse_block", "b2_traffic_bytes", "b2_contiguity",
        "b2_cached", "b2_lines_block",
        // Structure / occupancy proxies (70-81)
        "loop_depth_root", "spatial_total", "parallel_coverage",
        "threads_occupancy_proxy", "shared_occupancy_proxy",
        "reg_pressure_proxy", "tail_effect_proxy", "sync_count",
        "kernel_launch_const", "output_bytes", "input_bytes_const",
        "is_reduction",
    };
    return names;
}

int
featureIndex(const std::string &name)
{
    const auto &names = featureNames();
    for (int i = 0; i < kNumFeatures; ++i) {
        if (names[i] == name)
            return i;
    }
    panic("unknown feature: " + name);
}

std::vector<Expr>
extractFeatures(const Program &program)
{
    FELIX_SPAN("features.extract", "features");
    obs::MetricsRegistry::instance()
        .counter("features.extractions")
        .add(1.0);
    const double bytes = static_cast<double>(tir::kDtypeBytes);
    std::vector<Expr> f(kNumFeatures, kZero);

    const StageInfo &root = program.stages[program.rootStage];

    // --- Launch geometry -------------------------------------------------
    Expr blockLen = program.annotatedExtent(Annotation::BlockX);
    Expr threadLen = program.annotatedExtent(Annotation::ThreadX);
    Expr vthreadLen = program.annotatedExtent(Annotation::VThread);
    Expr vecLen = program.annotatedExtent(Annotation::Vectorize);
    Expr serialRoot = extentProduct(root, kSerial);

    f[8] = blockLen;
    f[9] = threadLen;
    f[10] = vthreadLen;
    f[11] = expr::max(vecLen, kOne);
    f[12] = blockLen * threadLen;
    f[13] = threadLen / 32.0;
    f[14] = serialRoot * vthreadLen;

    // Reduce/spatial split of the root's serial loops.
    Expr reduceInner = kOne, spatialInner = kOne;
    {
        std::unordered_map<std::string, bool> isReduceAxis;
        for (const tir::Axis &axis : root.op.axes)
            isReduceAxis[axis.name] = axis.isReduce;
        for (const LoopInfo &loop : root.loops) {
            if (!(loopClass(loop) & kSerial))
                continue;
            bool reduce = false;
            for (const tir::AxisCover &cover : loop.cover) {
                auto it = isReduceAxis.find(cover.axis);
                if (it != isReduceAxis.end() && it->second)
                    reduce = true;
            }
            if (reduce)
                reduceInner = reduceInner * loop.extent;
            else
                spatialInner = spatialInner * loop.extent;
        }
    }
    f[15] = Expr::intConst(root.op.reduceExtent());
    f[16] = reduceInner;
    f[17] = spatialInner;
    f[18] = expr::max(program.unrollMaxStep, kOne);
    f[19] = expr::select(expr::gt(program.unrollMaxStep, kOne), kOne,
                         kZero);

    // --- Per-stage totals -------------------------------------------------
    Expr pointsTotal = kZero;
    Expr epiloguePoints = kZero;
    Expr executionsTotal = kZero;
    Expr loadCount = kZero, storeCount = kZero;
    Expr globalTraffic = kZero, globalStores = kZero;
    Expr transactionsTotal = kZero;
    Expr coalescePenaltySum = kZero, coalescePenaltyWeight = kZero;
    Expr sharedBytes = kZero, sharedLoads = kZero, sharedStores = kZero;
    Expr syncCount = kZero;
    double uniqueBytes = 0.0;
    double inputBytesConst = 0.0;
    int cacheStageCount = 0;

    // Which root inputs are staged through shared memory?
    std::vector<int> cachedInput(root.op.inputs.size(), 0);
    for (const StageInfo &stage : program.stages) {
        if (stage.isCacheRead &&
            stage.cacheConsumerStage == program.rootStage) {
            cachedInput.at(stage.cacheInputIndex) = 1;
        }
    }

    std::unordered_map<std::string, bool> countedBuffer;
    for (size_t si = 0; si < program.stages.size(); ++si) {
        const StageInfo &stage = program.stages[si];
        if (stage.outputScope == tir::MemScope::Local)
            continue;   // inlined

        if (stage.isCacheRead) {
            ++cacheStageCount;
            const StageInfo &consumer =
                program.stages[stage.cacheConsumerStage];
            const BufferAccess &access =
                consumer.op.inputs[stage.cacheInputIndex];
            // Region staged per fill: consumer footprint inside the
            // attach point; fills happen once per serial iteration
            // at or above the attach point, per block.
            Expr region = footprint(consumer, access, kAll,
                                    stage.attachLoop + 1);
            Expr fillsPerBlock = kOne;
            for (int i = 0; i <= stage.attachLoop &&
                            i < static_cast<int>(consumer.loops.size());
                 ++i) {
                if (loopClass(consumer.loops[i]) & kSerial) {
                    fillsPerBlock =
                        fillsPerBlock * consumer.loops[i].extent;
                }
            }
            Expr fills = blockLen * fillsPerBlock;
            sharedBytes = sharedBytes + region * bytes;
            sharedStores = sharedStores + fills * region;
            globalTraffic = globalTraffic + fills * region * bytes;
            transactionsTotal =
                transactionsTotal + fills * region / 32.0;
            syncCount = syncCount + fills;
            loadCount = loadCount + fills * region;
            continue;
        }

        bool isRoot = (static_cast<int>(si) == program.rootStage);
        Expr executions = stageExecutions(program, stage);
        Expr work = extentProduct(stage, kAll);
        Expr points = executions * work;
        pointsTotal = pointsTotal + points;
        if (!isRoot) {
            epiloguePoints = epiloguePoints + points;
            executionsTotal = executionsTotal + executions;
        }

        // Arithmetic, weighted by total points of this stage.
        f[0] = f[0] + points * stage.op.arith.fma;
        f[1] = f[1] + points * stage.op.arith.add;
        f[2] = f[2] + points * stage.op.arith.mul;
        f[3] = f[3] + points * stage.op.arith.divOp;
        f[4] = f[4] + points * stage.op.arith.special;
        f[5] = f[5] + points * stage.op.arith.cmp;

        // Loads.
        for (size_t ai = 0; ai < stage.op.inputs.size(); ++ai) {
            const BufferAccess &access = stage.op.inputs[ai];
            loadCount = loadCount + points;
            if (!countedBuffer[access.tensor]) {
                countedBuffer[access.tensor] = true;
                uniqueBytes +=
                    static_cast<double>(access.bufferElems()) * bytes;
                inputBytesConst +=
                    static_cast<double>(access.bufferElems()) * bytes;
            }
            bool throughShared = isRoot && cachedInput[ai];
            if (throughShared) {
                // Register promotion across the inner tile amortizes
                // shared-memory reads.
                sharedLoads =
                    sharedLoads +
                    points / expr::max(registerReuse(stage, access),
                                       kOne);
                continue;
            }
            // Direct global loads: every block re-fetches its
            // footprint (the cache hierarchy model in sim/ applies
            // hit rates on top of this raw traffic).
            Expr perBlock;
            if (stage.aggregateLoops) {
                Expr share = work * executions /
                             expr::max(blockLen, kOne) /
                             Expr::constant(std::max(
                                 1.0, static_cast<double>(
                                          stage.op.totalPoints())));
                perBlock = aggregateFootprint(access, share);
                transactionsTotal =
                    transactionsTotal + points / 32.0;
            } else {
                perBlock = footprint(stage, access, kInsideBlock);
                Expr tpw = transactionsPerWarp(stage, access);
                transactionsTotal =
                    transactionsTotal + points / 32.0 * tpw;
                coalescePenaltySum =
                    coalescePenaltySum + points * tpw;
                coalescePenaltyWeight = coalescePenaltyWeight + points;
            }
            globalTraffic =
                globalTraffic + blockLen * perBlock * bytes;
        }

        // Stores: one per spatial point of the stage.
        Expr spatialPoints =
            points / Expr::constant(std::max(
                         1.0, static_cast<double>(
                                  stage.op.reduceExtent())));
        storeCount = storeCount + spatialPoints;
        globalStores = globalStores + spatialPoints * bytes;
        if (!countedBuffer[stage.op.name]) {
            countedBuffer[stage.op.name] = true;
            uniqueBytes +=
                static_cast<double>(stage.op.spatialExtent()) * bytes;
        }
    }

    f[6] = f[0] * 2.0 + f[1] + f[2] + f[3] + f[4] + f[5];
    // Index arithmetic: unrolling eliminates most of it (the paper's
    // int_add example: NMK * select(UNROLL > 1, 2, 5)).
    f[7] = pointsTotal *
           expr::select(expr::gt(program.unrollMaxStep, kOne),
                        Expr::constant(2.0), Expr::constant(5.0));

    f[20] = executionsTotal;
    f[21] = Expr::constant(static_cast<double>(program.stages.size()));
    f[22] = Expr::constant(static_cast<double>(cacheStageCount));
    f[23] = epiloguePoints;
    f[24] = pointsTotal;
    f[25] = pointsTotal / expr::max(blockLen * threadLen, kOne);

    // --- Global memory ----------------------------------------------------
    Expr footprintBlock = kZero, footprintThread = kZero;
    for (const BufferAccess &access : root.op.inputs) {
        footprintBlock =
            footprintBlock + footprint(root, access, kInsideBlock);
        footprintThread =
            footprintThread + footprint(root, access, kInsideThread);
    }
    f[26] = globalTraffic;
    f[27] = globalStores;
    f[28] = Expr::constant(uniqueBytes);
    f[29] = globalTraffic / expr::max(Expr::constant(uniqueBytes),
                                      kOne);
    f[30] = footprintBlock * bytes;
    f[31] = footprintThread * bytes;
    f[32] = loadCount;
    f[33] = storeCount;
    f[34] = coalescePenaltySum / expr::max(coalescePenaltyWeight, kOne);
    f[35] = transactionsTotal;
    f[36] = f[6] / expr::max(globalTraffic + globalStores, kOne);
    f[37] = (globalTraffic + globalStores) /
            expr::max(blockLen * threadLen, kOne);

    // --- Shared memory ----------------------------------------------------
    f[38] = sharedBytes;
    f[39] = sharedLoads;
    f[40] = sharedStores;
    f[41] = (sharedLoads + sharedStores) * bytes;
    f[42] = sharedLoads / expr::max(sharedStores, kOne);
    f[43] = kOne;   // bank conflicts: uniform proxy (see DESIGN.md)
    f[44] = sharedBytes / expr::max(threadLen, kOne);
    f[45] = cacheStageCount > 0 ? kOne : kZero;

    // --- Per-buffer detail (3 largest root inputs) ------------------------
    std::vector<int> order(root.op.inputs.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return root.op.inputs[a].bufferElems() >
               root.op.inputs[b].bufferElems();
    });
    Expr rootPointsPerBlock =
        extentProduct(root, kInsideBlock);
    for (int slot = 0; slot < 3; ++slot) {
        int base = 46 + slot * 8;
        if (slot >= static_cast<int>(order.size()))
            continue;   // padded with zeros
        const BufferAccess &access = root.op.inputs[order[slot]];
        Expr fpBlock = footprint(root, access, kInsideBlock);
        Expr fpThread = footprint(root, access, kInsideThread);
        f[base + 0] = Expr::constant(
            static_cast<double>(access.bufferElems()) * bytes);
        f[base + 1] = fpBlock * bytes;
        f[base + 2] = fpThread * bytes;
        f[base + 3] = rootPointsPerBlock / expr::max(fpBlock, kOne);
        f[base + 4] = blockLen * fpBlock * bytes;
        f[base + 5] = transactionsPerWarp(root, access);
        f[base + 6] = Expr::constant(
            static_cast<double>(cachedInput[order[slot]]));
        f[base + 7] = fpBlock / 32.0;
    }

    // --- Structure / occupancy proxies -------------------------------------
    f[70] = Expr::constant(static_cast<double>(root.loops.size()));
    f[71] = Expr::intConst(root.op.spatialExtent());
    f[72] = blockLen * threadLen /
            expr::max(Expr::intConst(root.op.spatialExtent()), kOne);
    f[73] = threadLen / 1024.0;
    f[74] = sharedBytes / 49152.0;
    // Live registers ~ the accumulator tile plus streamed operands;
    // values across *outer* serial iterations are re-used, not live.
    f[75] = spatialInner * 2.0 + reduceInner + 8.0;
    f[76] = pointsTotal /
            expr::max(blockLen * threadLen * vthreadLen * serialRoot,
                      kOne);
    f[77] = syncCount;
    f[78] = kOne;
    f[79] = Expr::constant(
        static_cast<double>(root.op.spatialExtent()) * bytes);
    f[80] = Expr::constant(inputBytesConst);
    f[81] = root.op.reduceExtent() > 1 ? kOne : kZero;

    return f;
}

std::vector<double>
concreteFeatures(const Program &program,
                 const std::vector<std::string> &var_names,
                 const std::vector<double> &var_values)
{
    std::vector<Expr> formulas = extractFeatures(program);
    expr::CompiledExprs compiled(formulas, var_names);
    return compiled.eval(var_values);
}

expr::Expr
sharedBytesPerBlock(const Program &program)
{
    const double bytes = static_cast<double>(tir::kDtypeBytes);
    Expr total = kZero;
    for (const StageInfo &stage : program.stages) {
        if (!stage.isCacheRead)
            continue;
        const StageInfo &consumer =
            program.stages[stage.cacheConsumerStage];
        const BufferAccess &access =
            consumer.op.inputs[stage.cacheInputIndex];
        total = total + footprint(consumer, access, kAll,
                                  stage.attachLoop + 1) *
                            bytes;
    }
    return total;
}

} // namespace features
} // namespace felix
