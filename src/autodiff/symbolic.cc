#include "autodiff/symbolic.h"

#include <unordered_map>

#include "support/logging.h"

namespace felix {
namespace autodiff {

using expr::Expr;
using expr::ExprNode;
using expr::OpCode;

namespace {

Expr
diffNode(const Expr &e, const std::string &var,
         std::unordered_map<const ExprNode *, Expr> &memo)
{
    auto it = memo.find(e.get());
    if (it != memo.end())
        return it->second;

    const Expr zero = Expr::constant(0.0);
    const Expr one = Expr::constant(1.0);
    Expr result;

    auto d = [&](const Expr &sub) { return diffNode(sub, var, memo); };
    const auto &args = e->args();

    switch (e->op()) {
      case OpCode::ConstOp:
        result = zero;
        break;
      case OpCode::VarOp:
        result = (e.varName() == var) ? one : zero;
        break;
      case OpCode::Add:
        result = d(args[0]) + d(args[1]);
        break;
      case OpCode::Sub:
        result = d(args[0]) - d(args[1]);
        break;
      case OpCode::Mul:
        result = d(args[0]) * args[1] + args[0] * d(args[1]);
        break;
      case OpCode::Div:
        result = d(args[0]) / args[1] -
                 args[0] * d(args[1]) / (args[1] * args[1]);
        break;
      case OpCode::Pow: {
        // d(a^b) = a^b * (b' ln a + b a'/a)
        const Expr &a = args[0];
        const Expr &b = args[1];
        result = expr::pow(a, b) *
                 (d(b) * expr::log(a) + b * d(a) / a);
        break;
      }
      case OpCode::Min:
        result = expr::select(expr::le(args[0], args[1]),
                              d(args[0]), d(args[1]));
        break;
      case OpCode::Max:
        result = expr::select(expr::ge(args[0], args[1]),
                              d(args[0]), d(args[1]));
        break;
      case OpCode::Neg:
        result = -d(args[0]);
        break;
      case OpCode::Log:
        result = d(args[0]) / args[0];
        break;
      case OpCode::Exp:
        result = e * d(args[0]);
        break;
      case OpCode::Sqrt:
        result = d(args[0]) / (Expr::constant(2.0) * e);
        break;
      case OpCode::Abs:
        result = expr::select(expr::ge(args[0], zero), one,
                              Expr::constant(-1.0)) *
                 d(args[0]);
        break;
      case OpCode::Floor:
        result = zero;
        break;
      case OpCode::Atan:
        result = d(args[0]) / (one + args[0] * args[0]);
        break;
      case OpCode::Sigmoid: {
        // S'(x) = 1 / (2 (1+x^2)^(3/2))
        Expr t = one + args[0] * args[0];
        result = d(args[0]) /
                 (Expr::constant(2.0) * t * expr::sqrt(t));
        break;
      }
      case OpCode::Lt:
      case OpCode::Le:
      case OpCode::Gt:
      case OpCode::Ge:
      case OpCode::Eq:
      case OpCode::Ne:
        result = zero;
        break;
      case OpCode::Select:
        result = expr::select(args[0], d(args[1]), d(args[2]));
        break;
    }
    FELIX_CHECK(result.defined());
    memo.emplace(e.get(), result);
    return result;
}

} // namespace

Expr
derivative(const Expr &root, const std::string &var)
{
    FELIX_CHECK(root.defined(), "derivative of undefined expression");
    std::unordered_map<const ExprNode *, Expr> memo;
    return diffNode(root, var, memo);
}

} // namespace autodiff
} // namespace felix
