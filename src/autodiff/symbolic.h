/**
 * @file
 * Symbolic differentiation of expression DAGs.
 *
 * The production gradient path in Felix is the reverse-mode tape in
 * expr::CompiledExprs (numeric adjoints, like PyTorch autograd).
 * This module provides *symbolic* derivatives — an Expr for
 * d(root)/d(var) — used to cross-check the tape in tests and to
 * inspect gradient structure in examples.
 */
#ifndef FELIX_AUTODIFF_SYMBOLIC_H_
#define FELIX_AUTODIFF_SYMBOLIC_H_

#include <string>

#include "expr/expr.h"

namespace felix {
namespace autodiff {

/**
 * Symbolic derivative of @p root with respect to variable @p var.
 *
 * Non-differentiable ops use the same subgradient conventions as the
 * reverse-mode tape: min/max/select differentiate through the active
 * branch (as a select expression), comparisons and floor have zero
 * derivative, abs differentiates to sign.
 */
expr::Expr derivative(const expr::Expr &root, const std::string &var);

} // namespace autodiff
} // namespace felix

#endif // FELIX_AUTODIFF_SYMBOLIC_H_
