#include "autodiff/gradcheck.h"

#include <cmath>

#include "expr/compiled.h"
#include "support/logging.h"

namespace felix {
namespace autodiff {

using expr::CompiledExprs;
using expr::Expr;

std::unordered_map<std::string, double>
numericGradient(const Expr &root,
                const std::unordered_map<std::string, double> &point,
                double step)
{
    CompiledExprs compiled({root});
    std::vector<double> x;
    for (const std::string &name : compiled.varNames()) {
        auto it = point.find(name);
        FELIX_CHECK(it != point.end(), "missing value for ", name);
        x.push_back(it->second);
    }
    std::unordered_map<std::string, double> grads;
    for (size_t i = 0; i < x.size(); ++i) {
        std::vector<double> hi = x, lo = x;
        hi[i] += step;
        lo[i] -= step;
        double fHi = compiled.eval(hi)[0];
        double fLo = compiled.eval(lo)[0];
        grads[compiled.varNames()[i]] = (fHi - fLo) / (2.0 * step);
    }
    return grads;
}

GradCheckResult
checkGradients(const Expr &root,
               const std::unordered_map<std::string, double> &point,
               double step, double tol)
{
    CompiledExprs compiled({root});
    std::vector<double> x;
    for (const std::string &name : compiled.varNames()) {
        auto it = point.find(name);
        FELIX_CHECK(it != point.end(), "missing value for ", name);
        x.push_back(it->second);
    }
    std::vector<double> out;
    compiled.forward(x, out);
    std::vector<double> analytic;
    compiled.backward({1.0}, analytic);

    auto numeric = numericGradient(root, point, step);

    GradCheckResult result;
    result.passed = true;
    for (size_t i = 0; i < compiled.numVars(); ++i) {
        const std::string &name = compiled.varNames()[i];
        double absErr = std::abs(analytic[i] - numeric.at(name));
        double scale = std::max(std::abs(analytic[i]), 1.0);
        double relErr = absErr / scale;
        if (absErr > result.maxAbsError)
            result.maxAbsError = absErr;
        if (relErr > result.maxRelError) {
            result.maxRelError = relErr;
            result.worstVar = name;
        }
    }
    result.passed = result.maxRelError <= tol;
    return result;
}

} // namespace autodiff
} // namespace felix
