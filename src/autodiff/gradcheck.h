/**
 * @file
 * Finite-difference gradient checking.
 *
 * Used by tests and by the ablation benches to validate that the
 * reverse-mode tape and the symbolic derivatives agree with central
 * differences on smooth expressions.
 */
#ifndef FELIX_AUTODIFF_GRADCHECK_H_
#define FELIX_AUTODIFF_GRADCHECK_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"

namespace felix {
namespace autodiff {

/** Result of a gradient comparison at one point. */
struct GradCheckResult
{
    bool passed = false;
    double maxAbsError = 0.0;   ///< max |analytic - numeric|
    double maxRelError = 0.0;   ///< relative to max(|analytic|,1)
    std::string worstVar;       ///< variable with the largest error
};

/**
 * Compare reverse-mode gradients of @p root against central
 * differences at @p point.
 *
 * @param step Central-difference step size.
 * @param tol  Pass threshold on the relative error.
 */
GradCheckResult checkGradients(
    const expr::Expr &root,
    const std::unordered_map<std::string, double> &point,
    double step = 1e-5, double tol = 1e-4);

/** Central-difference gradient of @p root at @p point. */
std::unordered_map<std::string, double> numericGradient(
    const expr::Expr &root,
    const std::unordered_map<std::string, double> &point,
    double step = 1e-5);

} // namespace autodiff
} // namespace felix

#endif // FELIX_AUTODIFF_GRADCHECK_H_
