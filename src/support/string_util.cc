#include "support/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace felix {

std::string
join(const std::vector<std::string> &items, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += sep;
        out += items[i];
    }
    return out;
}

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args2);
        return {};
    }
    std::string out(static_cast<size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    va_end(args2);
    return out;
}

std::string
padLeft(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
renderTable(const std::vector<std::vector<std::string>> &rows)
{
    if (rows.empty())
        return {};
    size_t cols = 0;
    for (const auto &row : rows)
        cols = std::max(cols, row.size());
    std::vector<size_t> widths(cols, 0);
    for (const auto &row : rows) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    std::string out;
    for (size_t r = 0; r < rows.size(); ++r) {
        for (size_t c = 0; c < rows[r].size(); ++c) {
            if (c > 0)
                out += "  ";
            out += padRight(rows[r][c], widths[c]);
        }
        out += '\n';
        if (r == 0) {
            for (size_t c = 0; c < cols; ++c) {
                if (c > 0)
                    out += "  ";
                out += std::string(widths[c], '-');
            }
            out += '\n';
        }
    }
    return out;
}

} // namespace felix
