/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in Felix draws from an explicitly seeded
 * Rng so that experiment harnesses are reproducible bit-for-bit.
 */
#ifndef FELIX_SUPPORT_RNG_H_
#define FELIX_SUPPORT_RNG_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

namespace felix {

/**
 * A small, fast, deterministic PRNG (xoshiro256**).
 *
 * Not cryptographic. Chosen over std::mt19937 for speed and for a
 * stable cross-platform stream (libstdc++ distributions are not
 * portable; we implement our own distributions below).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal variate (Box-Muller). */
    double normal();

    /** Normal variate with the given mean and stddev. */
    double normal(double mean, double stddev);

    /** True with probability @p p. */
    bool bernoulli(double p);

    /** Pick an index in [0, n) uniformly. */
    size_t index(size_t n);

    /** Pick an index with probability proportional to weights[i]. */
    size_t weightedIndex(const std::vector<double> &weights);

    /** Shuffle a vector in place (Fisher-Yates). */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            size_t j = index(i);
            std::swap(items[i - 1], items[j]);
        }
    }

    /** Derive an independent child stream (for parallel components). */
    Rng fork();

    /**
     * Derive an independent child stream keyed by @p key. Advances
     * this stream once; distinct keys (e.g. seed indices) give
     * decorrelated children from the same parent draw.
     */
    Rng fork(uint64_t key);

    /**
     * Derive @p n independent child streams with one draw from this
     * stream. Child i is seeded from (draw, i), so the parent
     * advances identically no matter how many children are taken —
     * the basis of --jobs-invariant parallel loops: fork the streams
     * sequentially before dispatch, then hand child i to item i.
     */
    std::vector<Rng> forkStreams(size_t n);

    /**
     * A stream preassigned from (root seed, stream key, step): the
     * basis of the --shards determinism contract. Unlike fork(),
     * the result does not depend on any parent stream position, so
     * any process — shard 0 of 1 or shard i of K, fresh or resumed
     * from a checkpoint — derives bit-identical randomness for the
     * same (seed, key, step) triple (docs/distributed.md).
     */
    static Rng streamAt(uint64_t root_seed, uint64_t key,
                        uint64_t step);

    /**
     * Serialize the exact generator state (xoshiro words plus the
     * buffered Box-Muller spare) as one text line; loadState()
     * restores it bit-for-bit. Used by the serve-layer checkpoint,
     * where a stream's *position* is part of the resumable state.
     */
    void saveState(std::ostream &os) const;
    /** Restore a saveState() line. False on malformed input. */
    bool loadState(std::istream &is);

  private:
    uint64_t state_[4];
    bool hasSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

/**
 * Deterministic 64-bit hash of a byte-span-like pair of integers.
 * Used for reproducible "measurement noise" in the simulator.
 */
uint64_t hashCombine(uint64_t a, uint64_t b);

} // namespace felix

#endif // FELIX_SUPPORT_RNG_H_
