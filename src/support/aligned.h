/**
 * @file
 * A 64-byte-aligned std::vector<double> for the SoA batch buffers.
 *
 * Every batched row is kBatchLanes doubles — with the default 8
 * lanes, exactly one cache line and one AVX-512 register. A plain
 * std::vector only guarantees 16-byte alignment, so each row may
 * straddle two cache lines: every vector load/store splits, and the
 * store-to-load forwarding between a tape instruction and its
 * consumers (which reload the row the previous instruction just
 * stored) fails, stalling the dependent chain the tape engine is
 * made of. Aligning the base to 64 bytes makes every row naturally
 * aligned for every backend width.
 *
 * Alignment is a performance contract only: the SIMD backends use
 * unaligned loads/stores throughout, so code handing plain
 * std::vector storage to the kernels stays correct.
 */
#ifndef FELIX_SUPPORT_ALIGNED_H_
#define FELIX_SUPPORT_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace felix {

template <class T, std::size_t Align>
struct AlignedAllocator
{
    static_assert((Align & (Align - 1)) == 0,
                  "alignment must be a power of two");
    static_assert(Align >= alignof(T),
                  "alignment below the type's natural alignment");

    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <class U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }
    template <class U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(Align)));
    }
    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Align));
    }
};

template <class T, class U, std::size_t Align>
bool
operator==(const AlignedAllocator<T, Align> &,
           const AlignedAllocator<U, Align> &) noexcept
{
    return true;
}
template <class T, class U, std::size_t Align>
bool
operator!=(const AlignedAllocator<T, Align> &,
           const AlignedAllocator<U, Align> &) noexcept
{
    return false;
}

/** SoA batch buffer: rows of kBatchLanes doubles, cache-line-aligned. */
using AlignedRows = std::vector<double, AlignedAllocator<double, 64>>;

} // namespace felix

#endif // FELIX_SUPPORT_ALIGNED_H_
