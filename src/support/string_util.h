/**
 * @file
 * String formatting helpers used by printers and experiment harnesses.
 */
#ifndef FELIX_SUPPORT_STRING_UTIL_H_
#define FELIX_SUPPORT_STRING_UTIL_H_

#include <string>
#include <vector>

namespace felix {

/** Join the items with a separator. */
std::string join(const std::vector<std::string> &items,
                 const std::string &sep);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Left-pad or right-pad @p s with spaces to @p width columns. */
std::string padLeft(const std::string &s, size_t width);
std::string padRight(const std::string &s, size_t width);

/**
 * Render an aligned text table: the first row is the header.
 * Used by the bench harnesses to print paper-style tables.
 */
std::string renderTable(const std::vector<std::vector<std::string>> &rows);

} // namespace felix

#endif // FELIX_SUPPORT_STRING_UTIL_H_
