#include "support/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace felix {

namespace {

/** FELIX_LOG_LEVEL environment override of the default level. */
LogLevel
initialLogLevel()
{
    const char *env = std::getenv("FELIX_LOG_LEVEL");
    if (!env)
        return LogLevel::Warn;
    if (auto parsed = parseLogLevel(env))
        return *parsed;
    std::fprintf(stderr,
                 "[felix WARN] ignoring unrecognized FELIX_LOG_LEVEL "
                 "'%s' (expected debug|info|warn|error)\n",
                 env);
    return LogLevel::Warn;
}

std::atomic<LogLevel> globalLevel{initialLogLevel()};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

} // namespace

std::optional<LogLevel>
parseLogLevel(const std::string &name)
{
    std::string lower;
    for (char c : name)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "debug" || lower == "0") return LogLevel::Debug;
    if (lower == "info" || lower == "1") return LogLevel::Info;
    if (lower == "warn" || lower == "warning" || lower == "2")
        return LogLevel::Warn;
    if (lower == "error" || lower == "3") return LogLevel::Error;
    return std::nullopt;
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    std::fprintf(stderr, "[felix %s] %s\n", levelName(level), msg.c_str());
}

void
fatal(const std::string &msg)
{
    logMessage(LogLevel::Error, "fatal: " + msg);
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    logMessage(LogLevel::Error, "panic: " + msg);
    throw InternalError(msg);
}

} // namespace felix
