#include "support/logging.h"

#include <atomic>
#include <cstdio>

namespace felix {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Warn};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    std::fprintf(stderr, "[felix %s] %s\n", levelName(level), msg.c_str());
}

void
fatal(const std::string &msg)
{
    logMessage(LogLevel::Error, "fatal: " + msg);
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    logMessage(LogLevel::Error, "panic: " + msg);
    throw InternalError(msg);
}

} // namespace felix
