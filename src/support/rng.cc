#include "support/rng.h"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "support/logging.h"

namespace felix {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    FELIX_CHECK(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0)
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(next() % span);
}

double
Rng::normal()
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return spareNormal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    double u2 = uniform();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * M_PI * u2;
    spareNormal_ = radius * std::sin(angle);
    hasSpareNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

size_t
Rng::index(size_t n)
{
    FELIX_CHECK(n > 0);
    return static_cast<size_t>(next() % n);
}

size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    FELIX_CHECK(!weights.empty());
    double total = 0.0;
    for (double w : weights)
        total += (w > 0.0 ? w : 0.0);
    if (total <= 0.0)
        return index(weights.size());
    double pick = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        double w = weights[i] > 0.0 ? weights[i] : 0.0;
        if (pick < w)
            return i;
        pick -= w;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

Rng
Rng::fork(uint64_t key)
{
    return Rng(hashCombine(next(), key));
}

std::vector<Rng>
Rng::forkStreams(size_t n)
{
    const uint64_t base = next();
    std::vector<Rng> children;
    children.reserve(n);
    for (size_t i = 0; i < n; ++i)
        children.emplace_back(hashCombine(base, i));
    return children;
}

Rng
Rng::streamAt(uint64_t root_seed, uint64_t key, uint64_t step)
{
    // Chained splitmix-style mixing: every input permutes the whole
    // 64-bit state, so (seed, key, step) triples that differ in any
    // component give decorrelated streams.
    return Rng(hashCombine(hashCombine(root_seed, key), step));
}

void
Rng::saveState(std::ostream &os) const
{
    // Doubles travel as bit patterns: the spare normal must restore
    // exactly, not to within a formatting round trip.
    uint64_t spareBits = 0;
    static_assert(sizeof(spareBits) == sizeof(spareNormal_));
    std::memcpy(&spareBits, &spareNormal_, sizeof(spareBits));
    os << state_[0] << " " << state_[1] << " " << state_[2] << " "
       << state_[3] << " " << (hasSpareNormal_ ? 1 : 0) << " "
       << spareBits << "\n";
}

bool
Rng::loadState(std::istream &is)
{
    uint64_t words[4];
    int hasSpare = 0;
    uint64_t spareBits = 0;
    if (!(is >> words[0] >> words[1] >> words[2] >> words[3] >>
          hasSpare >> spareBits))
        return false;
    for (int i = 0; i < 4; ++i)
        state_[i] = words[i];
    hasSpareNormal_ = hasSpare != 0;
    std::memcpy(&spareNormal_, &spareBits, sizeof(spareNormal_));
    return true;
}

uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    uint64_t x = a * 0x9e3779b97f4a7c15ull + b + 0x7f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace felix
