/**
 * @file
 * Small math helpers shared across Felix: integer factorization (for
 * rounding tile sizes to divisors), geometric means, clamping, and
 * statistics used by experiment harnesses.
 */
#ifndef FELIX_SUPPORT_MATH_UTIL_H_
#define FELIX_SUPPORT_MATH_UTIL_H_

#include <cstdint>
#include <vector>

namespace felix {

/** All positive divisors of @p n in increasing order. */
std::vector<int64_t> divisorsOf(int64_t n);

/**
 * The divisor of @p n closest to @p x in log space.
 *
 * This is the rounding rule the paper uses after gradient descent:
 * tile sizes must divide the loop extent, so a relaxed value is
 * snapped to the nearest factor (nearest in ln, matching the e^y
 * substitution).
 */
int64_t nearestDivisorLog(int64_t n, double x);

/** The integer in [lo, hi] closest to @p x. */
int64_t clampRound(double x, int64_t lo, int64_t hi);

/** Geometric mean of strictly positive values; 0 when empty. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 when empty. */
double mean(const std::vector<double> &values);

/** Population standard deviation; 0 when fewer than 2 items. */
double stddev(const std::vector<double> &values);

/** ceil(a / b) for positive integers. */
int64_t ceilDiv(int64_t a, int64_t b);

/** Round @p n up to a multiple of @p unit. */
int64_t roundUp(int64_t n, int64_t unit);

/** True when @p n is a power of two. */
bool isPowerOfTwo(int64_t n);

} // namespace felix

#endif // FELIX_SUPPORT_MATH_UTIL_H_
