/**
 * @file
 * The process-wide SIMD lane width for batched (structure-of-arrays)
 * evaluation: the tape engine (expr/compiled.h) and the MLP inference
 * path (costmodel/mlp.h) evaluate up to kBatchLanes points in
 * lockstep, with every per-point buffer laid out as rows of exactly
 * kBatchLanes doubles.
 *
 * The width is a compile-time constant so the inner lane loops have
 * a fixed trip count, and it is pinned to a multiple of 8 so every
 * row is a whole number of vector registers for every SIMD backend
 * in src/support/simd.h (scalar x1, SSE2/NEON x2, AVX2 x4,
 * AVX-512 x8) — the row loops in src/simd/kernels_impl.h therefore
 * never carry a ragged tail; ragged BATCHES (width < kBatchLanes)
 * are handled by the engines' lane-0 padding and masked seeding, and
 * arbitrary-length vectors (the Adam kernel) by a scalar remainder
 * loop. Partial batches still allocate full rows.
 *
 * kBatchLanes is deliberately a build-level constant
 * (-DFELIX_BATCH_LANES=N via the CMake cache variable) rather than
 * derived from each TU's target flags: TUs are compiled with
 * different -m flags (src/simd/), so a per-TU derivation would give
 * different row layouts per TU — an ODR disaster. Changing the value
 * changes which points share a batch, which is allowed to change
 * nothing (batch composition is schedule-independent, see
 * docs/tape_engine.md section 4).
 */
#ifndef FELIX_SUPPORT_BATCH_H_
#define FELIX_SUPPORT_BATCH_H_

#include <cstddef>

#ifndef FELIX_BATCH_LANES
#define FELIX_BATCH_LANES 16
#endif

namespace felix {

/** Lane count of every batched evaluation path (compile-time). */
inline constexpr std::size_t kBatchLanes = FELIX_BATCH_LANES;

static_assert(kBatchLanes >= 8 && kBatchLanes % 8 == 0,
              "kBatchLanes must be a positive multiple of 8 so SoA "
              "rows divide evenly into every SIMD backend width");

} // namespace felix

#endif // FELIX_SUPPORT_BATCH_H_
