/**
 * @file
 * The process-wide SIMD lane width for batched (structure-of-arrays)
 * evaluation: the tape engine (expr/compiled.h) and the MLP inference
 * path (costmodel/mlp.h) evaluate up to kBatchLanes points in
 * lockstep, with every per-point buffer laid out as rows of exactly
 * kBatchLanes doubles.
 *
 * The width is a compile-time constant so the inner lane loops have a
 * fixed trip count the compiler can fully unroll and vectorize (8
 * doubles = one AVX-512 register, two AVX2 registers, four SSE2
 * registers). Partial batches still allocate full rows; unused lanes
 * are padded (see the respective engines) so the hot loops never
 * carry a runtime trip count.
 */
#ifndef FELIX_SUPPORT_BATCH_H_
#define FELIX_SUPPORT_BATCH_H_

#include <cstddef>

namespace felix {

/** Lane count of every batched evaluation path (compile-time). */
inline constexpr std::size_t kBatchLanes = 8;

} // namespace felix

#endif // FELIX_SUPPORT_BATCH_H_
