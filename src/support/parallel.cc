#include "support/parallel.h"

#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"

namespace felix {

namespace {

/** Set while a thread is executing pool items; nested loops inline. */
thread_local bool tInParallelRegion = false;

obs::Counter &
tasksExecutedCounter()
{
    static obs::Counter &counter =
        obs::MetricsRegistry::instance().counter(
            "threads.tasks_executed");
    return counter;
}

} // namespace

ThreadPool::ThreadPool(int jobs) : jobs_(jobs < 1 ? 1 : jobs)
{
    workers_.reserve(jobs_ - 1);
    for (int w = 1; w < jobs_; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    cvStart_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    tInParallelRegion = true;
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cvStart_.wait(lock, [&] {
                return shutdown_ ||
                       (task_ != nullptr && generation_ != seen);
            });
            if (shutdown_)
                return;
            seen = generation_;
            // Registered under the same lock as the predicate: run()
            // cannot retire this generation (and reuse the job slots)
            // until every registered drainer has left drainItems().
            ++activeDrainers_;
        }
        drainItems();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--activeDrainers_ == 0)
                cvDone_.notify_all();
        }
    }
}

void
ThreadPool::drainItems()
{
    // Job state is stable for the whole generation: the dispatching
    // thread keeps it alive until every item completed.
    const std::function<void(size_t)> *task = task_;
    const char *span = spanName_;
    const size_t n = jobSize_;
    size_t executed = 0;
    for (;;) {
        const size_t i =
            nextIndex_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            break;
        if (!hasError_.load(std::memory_order_relaxed)) {
            obs::ScopedSpan itemSpan(span, "threads");
            try {
                (*task)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!firstError_)
                    firstError_ = std::current_exception();
                hasError_.store(true, std::memory_order_relaxed);
            }
        }
        ++executed;
        // The final acq_rel increment publishes every item's writes
        // to the dispatcher's acquire load in run().
        if (itemsCompleted_.fetch_add(1, std::memory_order_acq_rel) +
                1 ==
            n) {
            std::lock_guard<std::mutex> lock(mutex_);
            cvDone_.notify_all();
        }
    }
    if (executed > 0)
        tasksExecutedCounter().add(static_cast<double>(executed));
}

void
ThreadPool::run(size_t n, const std::function<void(size_t)> &task,
                const char *span_name)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1 || tInParallelRegion) {
        for (size_t i = 0; i < n; ++i) {
            obs::ScopedSpan itemSpan(span_name, "threads");
            task(i);
        }
        tasksExecutedCounter().add(static_cast<double>(n));
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        task_ = &task;
        spanName_ = span_name;
        jobSize_ = n;
        nextIndex_.store(0, std::memory_order_relaxed);
        itemsCompleted_.store(0, std::memory_order_relaxed);
        firstError_ = nullptr;
        hasError_.store(false, std::memory_order_relaxed);
        ++generation_;
    }
    cvStart_.notify_all();
    tInParallelRegion = true;
    drainItems();
    tInParallelRegion = false;
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        // Wait for completion of every item AND departure of every
        // worker that entered this generation's drain loop: a worker
        // still inside drainItems() could otherwise fetch from the
        // reset nextIndex_ of the *next* loop while holding this
        // loop's (dangling) task pointer.
        cvDone_.wait(lock, [&] {
            return itemsCompleted_.load(std::memory_order_acquire) >=
                       jobSize_ &&
                   activeDrainers_ == 0;
        });
        task_ = nullptr;
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

int
hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

std::mutex &
globalPoolMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::unique_ptr<ThreadPool> &
globalPoolSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lock(globalPoolMutex());
    auto &slot = globalPoolSlot();
    if (!slot)
        slot = std::make_unique<ThreadPool>(1);
    return *slot;
}

} // namespace

void
setGlobalJobs(int jobs)
{
    if (jobs <= 0)
        jobs = hardwareThreads();
    std::lock_guard<std::mutex> lock(globalPoolMutex());
    auto &slot = globalPoolSlot();
    if (slot && slot->jobs() == jobs)
        return;
    slot = std::make_unique<ThreadPool>(jobs);
    auto &registry = obs::MetricsRegistry::instance();
    registry.gauge("threads.pool_size")
        .set(static_cast<double>(jobs));
    registry.counter("threads.tasks_executed").add(0.0);
}

int
globalJobs()
{
    return globalPool().jobs();
}

void
parallelFor(const char *span_name, size_t n,
            const std::function<void(size_t)> &fn)
{
    globalPool().run(n, fn, span_name);
}

void
parallelForChunks(const char *span_name, size_t n, size_t chunk,
                  const std::function<void(size_t, size_t)> &fn)
{
    FELIX_CHECK(chunk > 0, "parallelForChunks: zero chunk size");
    const size_t numChunks = (n + chunk - 1) / chunk;
    parallelFor(span_name, numChunks, [&](size_t c) {
        const size_t begin = c * chunk;
        const size_t end = begin + chunk < n ? begin + chunk : n;
        fn(begin, end);
    });
}

} // namespace felix
