/**
 * @file
 * Deterministic parallel runtime: a fixed-size thread pool with an
 * index-space `parallelFor`.
 *
 * Every parallel phase in Felix follows the same contract so that a
 * run with `--jobs N` is bit-for-bit identical to `--jobs 1`:
 *
 *  - work is expressed as an index space [0, n) of *independent*
 *    items; item i writes only to slot i of pre-sized output arrays;
 *  - any randomness is drawn from a per-item Rng forked *before*
 *    dispatch on the calling thread (Rng::fork(key) /
 *    Rng::forkStreams), never from a shared stream inside a worker;
 *  - reductions happen on the calling thread after the loop, in
 *    index order, with chunk boundaries that do not depend on the
 *    number of threads.
 *
 * The pool is process-global and sized once per run (the
 * `felix-tune --jobs` flag, TunerOptions::numThreads, or
 * setGlobalJobs()). With jobs == 1 no worker threads exist and
 * parallelFor degenerates to a plain loop, so single-threaded runs
 * pay nothing. Worker execution is traced (one span per item under
 * the caller-supplied name) and counted in the metrics registry
 * (threads.pool_size gauge, threads.tasks_executed counter). See
 * docs/parallelism.md for the full determinism contract.
 */
#ifndef FELIX_SUPPORT_PARALLEL_H_
#define FELIX_SUPPORT_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace felix {

/**
 * Fixed-size worker pool executing index-space loops.
 *
 * `jobs` counts the total parallelism including the calling thread,
 * so a pool of size J owns J-1 worker threads and the caller
 * participates in every loop. Loops are dispatched one at a time
 * (run() is not reentrant from multiple external threads; nested
 * run() calls from inside a task execute inline).
 */
class ThreadPool
{
  public:
    explicit ThreadPool(int jobs);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int jobs() const { return jobs_; }

    /**
     * Execute task(i) for every i in [0, n), distributing items
     * dynamically over the pool; blocks until all items finished.
     * The first exception thrown by a task is rethrown here after
     * the loop drains. @p span_name must be a static string; when
     * tracing is enabled each item is recorded as one span under it,
     * so parallel phases show up as per-thread lanes in Perfetto.
     */
    void run(size_t n, const std::function<void(size_t)> &task,
             const char *span_name);

  private:
    void workerLoop();
    void drainItems();

    const int jobs_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    bool shutdown_ = false;
    uint64_t generation_ = 0;

    // State of the in-flight loop; stable from dispatch in run()
    // until every item completed.
    const std::function<void(size_t)> *task_ = nullptr;
    const char *spanName_ = nullptr;
    size_t jobSize_ = 0;
    size_t activeDrainers_ = 0;   ///< workers inside drainItems()
    std::atomic<size_t> nextIndex_{0};
    std::atomic<size_t> itemsCompleted_{0};
    std::atomic<bool> hasError_{false};
    std::exception_ptr firstError_;
};

/** Number of hardware threads (>= 1). */
int hardwareThreads();

/**
 * Resize the process-global pool. jobs <= 0 selects
 * hardwareThreads(); jobs == 1 (the default) runs everything inline
 * on the calling thread. Also publishes the threads.pool_size gauge.
 * Not thread-safe against concurrent parallelFor calls; size the
 * pool at startup / tuner construction.
 */
void setGlobalJobs(int jobs);

/** Current size of the process-global pool (>= 1). */
int globalJobs();

/**
 * Run fn(i) for i in [0, n) on the global pool. Blocking;
 * deterministic given the contract in the file comment. Safe to call
 * from inside another parallelFor (the nested loop runs inline).
 */
void parallelFor(const char *span_name, size_t n,
                 const std::function<void(size_t)> &fn);

/**
 * Chunked variant for fine-grained items: fn(begin, end) over
 * consecutive ranges of at most @p chunk items. Chunk boundaries
 * depend only on (n, chunk), never on the pool size, so per-chunk
 * partial reductions combined in chunk order are bit-identical for
 * any --jobs value.
 */
void parallelForChunks(const char *span_name, size_t n, size_t chunk,
                       const std::function<void(size_t, size_t)> &fn);

} // namespace felix

#endif // FELIX_SUPPORT_PARALLEL_H_
