/**
 * @file
 * Portable SIMD layer for the batched (structure-of-arrays) kernels:
 * a width-generic vector-of-doubles wrapper over SSE2, AVX2, AVX-512
 * and NEON, with an always-available scalar fallback.
 *
 * Each translation unit sees exactly ONE backend, chosen at compile
 * time from the instruction-set macros the compiler defines for that
 * TU (`-mavx2` => arch_avx2, `-mavx512f -mavx512dq` => arch_avx512,
 * baseline x86-64 => arch_sse2, aarch64 => arch_neon, anything else
 * or `FELIX_SIMD_FORCE_SCALAR` => arch_scalar). The backend lives in
 * the arch-specific inline namespace member `FELIX_SIMD_ARCH_NS`, so
 * the same templated kernel bodies (src/simd/kernels_impl.h) can be
 * compiled once per backend into differently-flagged TUs without ODR
 * violations; runtime CPU-feature dispatch between the compiled
 * backends lives in src/simd/dispatch.cc.
 *
 * Bit-exactness contract. Every operation here is either an IEEE-754
 * basic operation (+ - * / sqrt, correctly rounded and therefore
 * identical to its scalar spelling), a pure bit manipulation (neg,
 * abs, compares-to-mask, select), or an exact operation (min/max with
 * std::min/std::max semantics, floor). Transcendentals are NOT
 * provided as vector ops — kernels route them through perLane(),
 * which round-trips the lanes through memory and calls the exact
 * same libm function the scalar path calls. Consequently a templated
 * kernel written against this API computes, per lane, the identical
 * FP operation sequence at every width, which is what lets the
 * batched-vs-scalar parity tests (tests/test_simd.cc) demand
 * bit-equality on every backend.
 *
 * Semantics pinned by this API (and verified in test_simd.cc):
 *  - vmin(a,b) == std::min(a,b) and vmax(a,b) == std::max(a,b) per
 *    lane, including the NaN-propagation and signed-zero behavior of
 *    the std:: versions (x86 min/max return the SECOND operand on
 *    unordered/equal, so the implementations swap operands; NEON
 *    fmin/fmax have different NaN semantics and are not used).
 *  - comparisons return all-ones/all-zeros lane masks and match the
 *    scalar operators on NaN (only cne is true on unordered).
 *  - select(m, t, e) is a pure bitwise blend: NaN/inf in the
 *    not-taken lane never leaks.
 */
#ifndef FELIX_SUPPORT_SIMD_H_
#define FELIX_SUPPORT_SIMD_H_

#include <cmath>
#include <cstddef>

#if defined(FELIX_SIMD_FORCE_SCALAR)
#define FELIX_SIMD_ARCH_NS arch_scalar
#elif defined(__AVX512F__) && defined(__AVX512DQ__)
#include <immintrin.h>
#define FELIX_SIMD_ARCH_NS arch_avx512
#elif defined(__AVX__)
#include <immintrin.h>
#define FELIX_SIMD_ARCH_NS arch_avx2
#elif defined(__SSE2__) || defined(__x86_64__)
#include <emmintrin.h>
#define FELIX_SIMD_ARCH_NS arch_sse2
#elif defined(__aarch64__)
#include <arm_neon.h>
#define FELIX_SIMD_ARCH_NS arch_neon
#else
#define FELIX_SIMD_ARCH_NS arch_scalar
#endif

namespace felix {
namespace simd {

#if defined(FELIX_SIMD_FORCE_SCALAR) ||                                \
    (!defined(__SSE2__) && !defined(__x86_64__) &&                     \
     !defined(__aarch64__))

// ---------------------------------------------------------------
// Scalar fallback: one lane per "vector". Compiling the templated
// kernels against this backend reproduces the plain-loop batched
// code of PR 4 exactly (the chunk loop degenerates to the lane
// loop), so it doubles as the reference the vector backends are
// bit-compared against.
// ---------------------------------------------------------------
namespace arch_scalar {

struct Mask
{
    bool m;
};

struct Vec
{
    static constexpr std::size_t kWidth = 1;
    double v;

    static Vec load(const double *p) { return {*p}; }
    static Vec broadcast(double x) { return {x}; }
    void store(double *p) const { *p = v; }
};

inline Vec operator+(Vec a, Vec b) { return {a.v + b.v}; }
inline Vec operator-(Vec a, Vec b) { return {a.v - b.v}; }
inline Vec operator*(Vec a, Vec b) { return {a.v * b.v}; }
inline Vec operator/(Vec a, Vec b) { return {a.v / b.v}; }

inline Vec vneg(Vec a) { return {-a.v}; }
inline Vec vabs(Vec a) { return {std::abs(a.v)}; }
inline Vec vsqrt(Vec a) { return {std::sqrt(a.v)}; }
inline Vec vfloor(Vec a) { return {std::floor(a.v)}; }
inline Vec vmin(Vec a, Vec b) { return {std::min(a.v, b.v)}; }
inline Vec vmax(Vec a, Vec b) { return {std::max(a.v, b.v)}; }

inline Mask ceq(Vec a, Vec b) { return {a.v == b.v}; }
inline Mask cne(Vec a, Vec b) { return {a.v != b.v}; }
inline Mask clt(Vec a, Vec b) { return {a.v < b.v}; }
inline Mask cle(Vec a, Vec b) { return {a.v <= b.v}; }
inline Mask cgt(Vec a, Vec b) { return {a.v > b.v}; }
inline Mask cge(Vec a, Vec b) { return {a.v >= b.v}; }

inline Mask mand(Mask a, Mask b) { return {a.m && b.m}; }
inline Mask mandnot(Mask a, Mask b) { return {a.m && !b.m}; }
inline bool anyLane(Mask a) { return a.m; }
inline Vec select(Mask m, Vec t, Vec e) { return m.m ? t : e; }

} // namespace arch_scalar

#endif

#if !defined(FELIX_SIMD_FORCE_SCALAR)

#if defined(__AVX512F__) && defined(__AVX512DQ__)

// ---------------------------------------------------------------
// AVX-512: 8 doubles per vector, predicate masks in __mmask8.
// ---------------------------------------------------------------
namespace arch_avx512 {

struct Mask
{
    __mmask8 m;
};

struct Vec
{
    static constexpr std::size_t kWidth = 8;
    __m512d v;

    static Vec load(const double *p) { return {_mm512_loadu_pd(p)}; }
    static Vec broadcast(double x) { return {_mm512_set1_pd(x)}; }
    void store(double *p) const { _mm512_storeu_pd(p, v); }
};

inline Vec operator+(Vec a, Vec b)
{
    return {_mm512_add_pd(a.v, b.v)};
}
inline Vec operator-(Vec a, Vec b)
{
    return {_mm512_sub_pd(a.v, b.v)};
}
inline Vec operator*(Vec a, Vec b)
{
    return {_mm512_mul_pd(a.v, b.v)};
}
inline Vec operator/(Vec a, Vec b)
{
    return {_mm512_div_pd(a.v, b.v)};
}

inline Vec
vneg(Vec a)
{
    return {_mm512_xor_pd(a.v, _mm512_set1_pd(-0.0))};
}
inline Vec
vabs(Vec a)
{
    return {_mm512_andnot_pd(_mm512_set1_pd(-0.0), a.v)};
}
inline Vec vsqrt(Vec a) { return {_mm512_sqrt_pd(a.v)}; }
inline Vec
vfloor(Vec a)
{
    return {_mm512_roundscale_pd(
        a.v, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC)};
}
// x86 min/max return the second operand on unordered or equal
// inputs; swapping the operands reproduces std::min/std::max
// (a<b / b<a select semantics) bit for bit, NaN and +/-0 included.
inline Vec vmin(Vec a, Vec b) { return {_mm512_min_pd(b.v, a.v)}; }
inline Vec vmax(Vec a, Vec b) { return {_mm512_max_pd(b.v, a.v)}; }

inline Mask
ceq(Vec a, Vec b)
{
    return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_EQ_OQ)};
}
inline Mask
cne(Vec a, Vec b)
{
    return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_NEQ_UQ)};
}
inline Mask
clt(Vec a, Vec b)
{
    return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ)};
}
inline Mask
cle(Vec a, Vec b)
{
    return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_LE_OQ)};
}
inline Mask
cgt(Vec a, Vec b)
{
    return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_GT_OQ)};
}
inline Mask
cge(Vec a, Vec b)
{
    return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_GE_OQ)};
}

inline Mask
mand(Mask a, Mask b)
{
    return {static_cast<__mmask8>(a.m & b.m)};
}
inline Mask
mandnot(Mask a, Mask b)
{
    return {static_cast<__mmask8>(a.m & static_cast<__mmask8>(~b.m))};
}
inline bool anyLane(Mask a) { return a.m != 0; }
inline Vec
select(Mask m, Vec t, Vec e)
{
    return {_mm512_mask_blend_pd(m.m, e.v, t.v)};
}

} // namespace arch_avx512

#elif defined(__AVX__)

// ---------------------------------------------------------------
// AVX2: 4 doubles per vector, full-width lane masks.
// ---------------------------------------------------------------
namespace arch_avx2 {

struct Mask
{
    __m256d m;
};

struct Vec
{
    static constexpr std::size_t kWidth = 4;
    __m256d v;

    static Vec load(const double *p) { return {_mm256_loadu_pd(p)}; }
    static Vec broadcast(double x) { return {_mm256_set1_pd(x)}; }
    void store(double *p) const { _mm256_storeu_pd(p, v); }
};

inline Vec operator+(Vec a, Vec b)
{
    return {_mm256_add_pd(a.v, b.v)};
}
inline Vec operator-(Vec a, Vec b)
{
    return {_mm256_sub_pd(a.v, b.v)};
}
inline Vec operator*(Vec a, Vec b)
{
    return {_mm256_mul_pd(a.v, b.v)};
}
inline Vec operator/(Vec a, Vec b)
{
    return {_mm256_div_pd(a.v, b.v)};
}

inline Vec
vneg(Vec a)
{
    return {_mm256_xor_pd(a.v, _mm256_set1_pd(-0.0))};
}
inline Vec
vabs(Vec a)
{
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
}
inline Vec vsqrt(Vec a) { return {_mm256_sqrt_pd(a.v)}; }
inline Vec vfloor(Vec a) { return {_mm256_floor_pd(a.v)}; }
// Operand swap: see the AVX-512 comment.
inline Vec vmin(Vec a, Vec b) { return {_mm256_min_pd(b.v, a.v)}; }
inline Vec vmax(Vec a, Vec b) { return {_mm256_max_pd(b.v, a.v)}; }

inline Mask
ceq(Vec a, Vec b)
{
    return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
}
inline Mask
cne(Vec a, Vec b)
{
    return {_mm256_cmp_pd(a.v, b.v, _CMP_NEQ_UQ)};
}
inline Mask
clt(Vec a, Vec b)
{
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
}
inline Mask
cle(Vec a, Vec b)
{
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
}
inline Mask
cgt(Vec a, Vec b)
{
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
}
inline Mask
cge(Vec a, Vec b)
{
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
}

inline Mask
mand(Mask a, Mask b)
{
    return {_mm256_and_pd(a.m, b.m)};
}
inline Mask
mandnot(Mask a, Mask b)
{
    return {_mm256_andnot_pd(b.m, a.m)};
}
inline bool anyLane(Mask a) { return _mm256_movemask_pd(a.m) != 0; }
inline Vec
select(Mask m, Vec t, Vec e)
{
    return {_mm256_blendv_pd(e.v, t.v, m.m)};
}

} // namespace arch_avx2

#elif defined(__SSE2__) || defined(__x86_64__)

// ---------------------------------------------------------------
// SSE2 (baseline x86-64): 2 doubles per vector.
// ---------------------------------------------------------------
namespace arch_sse2 {

struct Mask
{
    __m128d m;
};

struct Vec
{
    static constexpr std::size_t kWidth = 2;
    __m128d v;

    static Vec load(const double *p) { return {_mm_loadu_pd(p)}; }
    static Vec broadcast(double x) { return {_mm_set1_pd(x)}; }
    void store(double *p) const { _mm_storeu_pd(p, v); }
};

inline Vec operator+(Vec a, Vec b) { return {_mm_add_pd(a.v, b.v)}; }
inline Vec operator-(Vec a, Vec b) { return {_mm_sub_pd(a.v, b.v)}; }
inline Vec operator*(Vec a, Vec b) { return {_mm_mul_pd(a.v, b.v)}; }
inline Vec operator/(Vec a, Vec b) { return {_mm_div_pd(a.v, b.v)}; }

inline Vec
vneg(Vec a)
{
    return {_mm_xor_pd(a.v, _mm_set1_pd(-0.0))};
}
inline Vec
vabs(Vec a)
{
    return {_mm_andnot_pd(_mm_set1_pd(-0.0), a.v)};
}
inline Vec vsqrt(Vec a) { return {_mm_sqrt_pd(a.v)}; }
inline Vec
vfloor(Vec a)
{
    // SSE2 has no round instruction; floor is exact in any
    // implementation, so per-lane libm keeps parity.
    double t[2];
    _mm_storeu_pd(t, a.v);
    t[0] = std::floor(t[0]);
    t[1] = std::floor(t[1]);
    return {_mm_loadu_pd(t)};
}
// Operand swap: see the AVX-512 comment.
inline Vec vmin(Vec a, Vec b) { return {_mm_min_pd(b.v, a.v)}; }
inline Vec vmax(Vec a, Vec b) { return {_mm_max_pd(b.v, a.v)}; }

inline Mask ceq(Vec a, Vec b) { return {_mm_cmpeq_pd(a.v, b.v)}; }
inline Mask cne(Vec a, Vec b) { return {_mm_cmpneq_pd(a.v, b.v)}; }
inline Mask clt(Vec a, Vec b) { return {_mm_cmplt_pd(a.v, b.v)}; }
inline Mask cle(Vec a, Vec b) { return {_mm_cmple_pd(a.v, b.v)}; }
inline Mask cgt(Vec a, Vec b) { return {_mm_cmpgt_pd(a.v, b.v)}; }
inline Mask cge(Vec a, Vec b) { return {_mm_cmpge_pd(a.v, b.v)}; }

inline Mask mand(Mask a, Mask b) { return {_mm_and_pd(a.m, b.m)}; }
inline Mask
mandnot(Mask a, Mask b)
{
    return {_mm_andnot_pd(b.m, a.m)};
}
inline bool anyLane(Mask a) { return _mm_movemask_pd(a.m) != 0; }
inline Vec
select(Mask m, Vec t, Vec e)
{
    // No blendv before SSE4.1; and/andnot/or is the exact bitwise
    // equivalent.
    return {_mm_or_pd(_mm_and_pd(m.m, t.v),
                      _mm_andnot_pd(m.m, e.v))};
}

} // namespace arch_sse2

#elif defined(__aarch64__)

// ---------------------------------------------------------------
// NEON (aarch64): 2 doubles per vector.
// ---------------------------------------------------------------
namespace arch_neon {

struct Mask
{
    uint64x2_t m;
};

struct Vec
{
    static constexpr std::size_t kWidth = 2;
    float64x2_t v;

    static Vec load(const double *p) { return {vld1q_f64(p)}; }
    static Vec broadcast(double x) { return {vdupq_n_f64(x)}; }
    void store(double *p) const { vst1q_f64(p, v); }
};

inline Vec operator+(Vec a, Vec b) { return {vaddq_f64(a.v, b.v)}; }
inline Vec operator-(Vec a, Vec b) { return {vsubq_f64(a.v, b.v)}; }
inline Vec operator*(Vec a, Vec b) { return {vmulq_f64(a.v, b.v)}; }
inline Vec operator/(Vec a, Vec b) { return {vdivq_f64(a.v, b.v)}; }

inline Vec vneg(Vec a) { return {vnegq_f64(a.v)}; }
inline Vec vabs(Vec a) { return {vabsq_f64(a.v)}; }
inline Vec vsqrt(Vec a) { return {vsqrtq_f64(a.v)}; }
inline Vec vfloor(Vec a) { return {vrndmq_f64(a.v)}; }

inline Mask ceq(Vec a, Vec b) { return {vceqq_f64(a.v, b.v)}; }
inline Mask clt(Vec a, Vec b) { return {vcltq_f64(a.v, b.v)}; }
inline Mask cle(Vec a, Vec b) { return {vcleq_f64(a.v, b.v)}; }
inline Mask cgt(Vec a, Vec b) { return {vcgtq_f64(a.v, b.v)}; }
inline Mask cge(Vec a, Vec b) { return {vcgeq_f64(a.v, b.v)}; }

inline Mask
mnot(Mask a)
{
    return {vreinterpretq_u64_u32(
        vmvnq_u32(vreinterpretq_u32_u64(a.m)))};
}
inline Mask cne(Vec a, Vec b) { return mnot(ceq(a, b)); }

inline Mask mand(Mask a, Mask b) { return {vandq_u64(a.m, b.m)}; }
inline Mask mandnot(Mask a, Mask b) { return {vbicq_u64(a.m, b.m)}; }
inline bool
anyLane(Mask a)
{
    return (vgetq_lane_u64(a.m, 0) | vgetq_lane_u64(a.m, 1)) != 0;
}
inline Vec
select(Mask m, Vec t, Vec e)
{
    return {vbslq_f64(m.m, t.v, e.v)};
}
// NEON fmin/fmax propagate NaN from either operand — NOT the
// std::min/std::max "return the first operand on unordered"
// semantics the kernels are specified against — so min/max are
// built from the compare+select primitives instead.
inline Vec vmin(Vec a, Vec b) { return select(clt(b, a), b, a); }
inline Vec vmax(Vec a, Vec b) { return select(clt(a, b), b, a); }

} // namespace arch_neon

#endif

#endif // !FELIX_SIMD_FORCE_SCALAR

/**
 * Apply a scalar function lane-wise through memory. The store/load
 * round trip is bitwise exact, so f sees exactly the double the
 * scalar path would pass and the result is bit-identical — this is
 * how the kernels keep libm calls (pow, log, exp, atan) on the
 * one true code path at every vector width.
 */
template <class V, class F>
inline V
perLane(V a, F f)
{
    double t[V::kWidth];
    a.store(t);
    for (std::size_t i = 0; i < V::kWidth; ++i)
        t[i] = f(t[i]);
    return V::load(t);
}

/** Two-operand variant of perLane. */
template <class V, class F>
inline V
perLane2(V a, V b, F f)
{
    double ta[V::kWidth], tb[V::kWidth];
    a.store(ta);
    b.store(tb);
    for (std::size_t i = 0; i < V::kWidth; ++i)
        ta[i] = f(ta[i], tb[i]);
    return V::load(ta);
}

} // namespace simd
} // namespace felix

#endif // FELIX_SUPPORT_SIMD_H_
