#include "support/math_util.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace felix {

std::vector<int64_t>
divisorsOf(int64_t n)
{
    FELIX_CHECK(n > 0, "divisorsOf requires n > 0, got ", n);
    std::vector<int64_t> small, large;
    for (int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            small.push_back(d);
            if (d != n / d)
                large.push_back(n / d);
        }
    }
    small.insert(small.end(), large.rbegin(), large.rend());
    return small;
}

int64_t
nearestDivisorLog(int64_t n, double x)
{
    FELIX_CHECK(n > 0);
    if (x <= 1.0)
        return 1;
    if (x >= static_cast<double>(n))
        return n;
    double lx = std::log(x);
    int64_t best = 1;
    double bestDist = std::abs(lx);
    for (int64_t d : divisorsOf(n)) {
        double dist = std::abs(std::log(static_cast<double>(d)) - lx);
        if (dist < bestDist) {
            bestDist = dist;
            best = d;
        }
    }
    return best;
}

int64_t
clampRound(double x, int64_t lo, int64_t hi)
{
    double r = std::nearbyint(x);
    if (r < static_cast<double>(lo))
        return lo;
    if (r > static_cast<double>(hi))
        return hi;
    return static_cast<int64_t>(r);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        FELIX_CHECK(v > 0.0, "geomean needs positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

int64_t
ceilDiv(int64_t a, int64_t b)
{
    FELIX_CHECK(b > 0);
    return (a + b - 1) / b;
}

int64_t
roundUp(int64_t n, int64_t unit)
{
    return ceilDiv(n, unit) * unit;
}

bool
isPowerOfTwo(int64_t n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

} // namespace felix
