/**
 * @file
 * Lightweight logging and error-reporting facilities.
 *
 * Follows the gem5 convention: fatal() for user errors that make
 * continuing impossible, panic() for internal invariant violations,
 * warn()/inform() for status messages that never stop execution.
 */
#ifndef FELIX_SUPPORT_LOGGING_H_
#define FELIX_SUPPORT_LOGGING_H_

#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace felix {

/** Severity levels understood by the logger. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/**
 * Parse a level name ("debug", "info", "warn"/"warning", "error",
 * case-insensitive, or a numeric 0-3). nullopt when unrecognized.
 */
std::optional<LogLevel> parseLogLevel(const std::string &name);

/**
 * Global minimum level below which messages are dropped. The initial
 * value honors the FELIX_LOG_LEVEL environment variable (default
 * Warn), so examples and benches can raise verbosity without code
 * changes.
 */
LogLevel logLevel();

/** Set the global minimum log level. */
void setLogLevel(LogLevel level);

/** Emit one formatted log line to stderr if @p level is enabled. */
void logMessage(LogLevel level, const std::string &msg);

/** Exception thrown by fatal(): a user-caused unrecoverable error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Exception thrown by panic(): an internal invariant violation. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &msg)
        : std::logic_error(msg) {}
};

/** Raise a FatalError (bad input, invalid configuration, ...). */
[[noreturn]] void fatal(const std::string &msg);

/** Raise an InternalError (a bug in Felix itself). */
[[noreturn]] void panic(const std::string &msg);

namespace detail {

inline void
streamInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    streamInto(os, rest...);
}

} // namespace detail

/** Build a string by streaming all arguments together. */
template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    detail::streamInto(os, args...);
    return os.str();
}

/** Log an informational message built from the arguments. */
template <typename... Args>
void
inform(const Args &...args)
{
    logMessage(LogLevel::Info, concat(args...));
}

/** Log a warning message built from the arguments. */
template <typename... Args>
void
warn(const Args &...args)
{
    logMessage(LogLevel::Warn, concat(args...));
}

/** Log a debug message built from the arguments. */
template <typename... Args>
void
debug(const Args &...args)
{
    logMessage(LogLevel::Debug, concat(args...));
}

/**
 * Check an internal invariant; panic with location info when violated.
 */
#define FELIX_CHECK(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::felix::panic(::felix::concat(                               \
                "check failed: " #cond " at ", __FILE__, ":", __LINE__,  \
                " ", ##__VA_ARGS__));                                     \
        }                                                                 \
    } while (0)

} // namespace felix

#endif // FELIX_SUPPORT_LOGGING_H_
