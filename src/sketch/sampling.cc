#include "sketch/sampling.h"

#include <algorithm>
#include <cmath>

#include "expr/compiled.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace felix {
namespace sketch {

ConstraintChecker::ConstraintChecker(const SymbolicSchedule &sched)
    : sched_(sched)
{
    std::vector<std::string> names;
    names.reserve(sched.vars.size());
    for (const VarDomain &domain : sched.vars)
        names.push_back(domain.name);
    compiled_ = std::make_unique<expr::CompiledExprs>(
        sched.constraints, names);
}

bool
ConstraintChecker::feasible(const std::vector<double> &x,
                            double tol) const
{
    return maxViolation(x) <= tol;
}

double
ConstraintChecker::maxViolation(const std::vector<double> &x) const
{
    if (sched_.constraints.empty())
        return 0.0;
    expr::EvalState state;
    std::vector<double> values = compiled_->eval(x, state);
    double worst = -1e300;
    for (double g : values)
        worst = std::max(worst, g);
    return worst;
}

namespace {

/** Snap a free (non-divisor) variable to its domain. */
double
roundFreeVar(const VarDomain &domain, double x)
{
    if (domain.powerOfTwo) {
        double lx = std::log2(std::max(x, 1.0));
        int64_t rounded = static_cast<int64_t>(1)
                          << static_cast<int>(std::nearbyint(
                                 std::max(0.0, lx)));
        return static_cast<double>(
            std::clamp(rounded, domain.lo, domain.hi));
    }
    return static_cast<double>(clampRound(x, domain.lo, domain.hi));
}

} // namespace

std::vector<double>
sampleValid(const SymbolicSchedule &sched, Rng &rng, int max_tries)
{
    ConstraintChecker checker(sched);
    const size_t numVars = sched.vars.size();

    // Which variables belong to a split group?
    std::vector<int> groupOf(numVars, -1);
    for (size_t g = 0; g < sched.groups.size(); ++g) {
        for (int vi : sched.groups[g].varIndices)
            groupOf[vi] = static_cast<int>(g);
    }

    for (int attempt = 0; attempt < max_tries; ++attempt) {
        std::vector<double> x(numVars, 1.0);
        // Tile factors: successive divisors of the remaining extent,
        // sampled uniformly in log space to cover the whole range.
        for (const SplitGroup &group : sched.groups) {
            int64_t remaining = group.extent;
            for (int vi : group.varIndices) {
                const VarDomain &domain = sched.vars[vi];
                int64_t cap = std::min(remaining, domain.hi);
                auto divisors = divisorsOf(remaining);
                // Restrict to divisors within the domain.
                std::vector<int64_t> valid;
                for (int64_t d : divisors) {
                    if (d >= domain.lo && d <= cap)
                        valid.push_back(d);
                }
                if (valid.empty())
                    valid.push_back(1);
                int64_t pick = valid[rng.index(valid.size())];
                x[vi] = static_cast<double>(pick);
                remaining /= pick;
            }
        }
        // Free variables (unroll steps, ...): log-uniform.
        for (size_t vi = 0; vi < numVars; ++vi) {
            if (groupOf[vi] >= 0)
                continue;
            const VarDomain &domain = sched.vars[vi];
            double lo = std::log(static_cast<double>(domain.lo));
            double hi = std::log(static_cast<double>(domain.hi));
            double value = std::exp(rng.uniform(lo, hi));
            x[vi] = roundFreeVar(domain, value);
        }
        if (checker.feasible(x))
            return x;
    }
    // The all-ones assignment is legal in every sketch (all factors
    // 1 => no-op transformations).
    return std::vector<double>(numVars, 1.0);
}

std::optional<std::vector<double>>
roundToValid(const SymbolicSchedule &sched, const std::vector<double> &y)
{
    ConstraintChecker checker(sched);
    return roundToValid(sched, y, checker);
}

std::optional<std::vector<double>>
roundToValid(const SymbolicSchedule &sched, const std::vector<double> &y,
             const ConstraintChecker &checker)
{
    FELIX_CHECK(y.size() == sched.vars.size(),
                "roundToValid: wrong variable count");
    const size_t numVars = sched.vars.size();
    std::vector<double> x(numVars, 1.0);
    std::vector<bool> assigned(numVars, false);

    // Tile factors: greedy sequential snapping to divisors of the
    // remaining extent, nearest in log space. By construction the
    // product of the group's factors divides the extent.
    for (const SplitGroup &group : sched.groups) {
        int64_t remaining = group.extent;
        for (int vi : group.varIndices) {
            const VarDomain &domain = sched.vars[vi];
            double target = std::exp(y[vi]);
            target = std::min(
                target, static_cast<double>(
                            std::min(remaining, domain.hi)));
            int64_t snapped = nearestDivisorLog(remaining, target);
            snapped = std::clamp(snapped, domain.lo,
                                 std::min(remaining, domain.hi));
            // The clamp can land off a divisor; re-snap within range.
            if (remaining % snapped != 0) {
                snapped = nearestDivisorLog(
                    remaining, static_cast<double>(snapped));
            }
            x[vi] = static_cast<double>(snapped);
            remaining /= snapped;
            assigned[vi] = true;
        }
    }
    for (size_t vi = 0; vi < numVars; ++vi) {
        if (!assigned[vi])
            x[vi] = roundFreeVar(sched.vars[vi], std::exp(y[vi]));
    }

    if (!checker.feasible(x))
        return std::nullopt;
    return x;
}

bool
isValidAssignment(const SymbolicSchedule &sched,
                  const std::vector<double> &x)
{
    if (x.size() != sched.vars.size())
        return false;
    for (size_t vi = 0; vi < x.size(); ++vi) {
        const VarDomain &domain = sched.vars[vi];
        double value = x[vi];
        if (value != std::floor(value))
            return false;
        if (value < static_cast<double>(domain.lo) ||
            value > static_cast<double>(domain.hi)) {
            return false;
        }
    }
    for (const SplitGroup &group : sched.groups) {
        int64_t product = 1;
        for (int vi : group.varIndices)
            product *= static_cast<int64_t>(x[vi]);
        if (product <= 0 || group.extent % product != 0)
            return false;
    }
    ConstraintChecker checker(sched);
    return checker.feasible(x);
}

} // namespace sketch
} // namespace felix
