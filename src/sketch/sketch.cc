#include "sketch/sketch.h"

#include <algorithm>

#include "features/features.h"
#include "support/logging.h"
#include "support/string_util.h"

namespace felix {
namespace sketch {

using expr::Expr;
using tir::Annotation;
using tir::ComputeOp;
using tir::StepKind;
using tir::SubgraphDef;
using tir::TransformStep;

int
SymbolicSchedule::varIndex(const std::string &name) const
{
    for (size_t i = 0; i < vars.size(); ++i) {
        if (vars[i].name == name)
            return static_cast<int>(i);
    }
    panic("unknown schedule variable: " + name);
}

namespace {

/**
 * Builds a symbolic schedule step by step, applying each step to a
 * live Program so loop indices always refer to the current state.
 */
class ScheduleBuilder
{
  public:
    explicit ScheduleBuilder(const SubgraphDef &subgraph)
        : subgraph_(subgraph),
          program_(tir::naiveProgram(subgraph))
    {
    }

    Expr
    newVar(const std::string &name, int64_t lo, int64_t hi,
           int64_t divisor_of, bool power_of_two = false)
    {
        VarDomain domain;
        domain.name = name;
        domain.lo = lo;
        domain.hi = std::max(lo, hi);
        domain.divisorOf = divisor_of;
        domain.powerOfTwo = power_of_two;
        vars_.push_back(domain);
        schedule_.vars.push_back(name);
        return Expr::var(name);
    }

    void
    addGroup(int64_t extent, const std::vector<std::string> &names)
    {
        SplitGroup group;
        group.extent = extent;
        for (const std::string &name : names)
            group.varIndices.push_back(indexOf(name));
        groups_.push_back(std::move(group));
    }

    void addConstraint(Expr g) { constraints_.push_back(g); }

    void
    split(int stage, int loop, std::vector<Expr> factors)
    {
        TransformStep step;
        step.kind = StepKind::Split;
        step.stageId = stage;
        step.loopIndex = loop;
        step.factors = std::move(factors);
        push(step);
    }

    void
    fuse(int stage, int loop, int count)
    {
        TransformStep step;
        step.kind = StepKind::Fuse;
        step.stageId = stage;
        step.loopIndex = loop;
        step.count = count;
        push(step);
    }

    void
    reorder(int stage, std::vector<int> order)
    {
        TransformStep step;
        step.kind = StepKind::Reorder;
        step.stageId = stage;
        step.order = std::move(order);
        push(step);
    }

    void
    annotate(int stage, int loop, Annotation ann)
    {
        TransformStep step;
        step.kind = StepKind::Annotate;
        step.stageId = stage;
        step.loopIndex = loop;
        step.annotation = ann;
        push(step);
    }

    void
    computeAt(int stage, int target, int target_loop)
    {
        TransformStep step;
        step.kind = StepKind::ComputeAt;
        step.stageId = stage;
        step.targetStageId = target;
        step.targetLoopIndex = target_loop;
        push(step);
    }

    void
    cacheRead(int consumer, int input_index, int attach_loop)
    {
        TransformStep step;
        step.kind = StepKind::CacheRead;
        step.stageId = consumer;
        step.inputIndex = input_index;
        step.targetLoopIndex = attach_loop;
        push(step);
    }

    void
    pragmaUnroll(Expr max_step)
    {
        TransformStep step;
        step.kind = StepKind::Pragma;
        step.factors = {max_step};
        push(step);
    }

    const tir::Program &program() const { return program_; }

    SymbolicSchedule
    finish(const std::string &desc)
    {
        SymbolicSchedule result;
        result.desc = desc;
        result.schedule = std::move(schedule_);
        result.vars = std::move(vars_);
        result.groups = std::move(groups_);
        result.constraints = std::move(constraints_);
        result.program = std::move(program_);
        return result;
    }

  private:
    int
    indexOf(const std::string &name) const
    {
        for (size_t i = 0; i < vars_.size(); ++i) {
            if (vars_[i].name == name)
                return static_cast<int>(i);
        }
        panic("group references unknown variable " + name);
    }

    void
    push(const TransformStep &step)
    {
        schedule_.steps.push_back(step);
        tir::applyStep(program_, step);
    }

    const SubgraphDef &subgraph_;
    tir::Schedule schedule_;
    tir::Program program_;
    std::vector<VarDomain> vars_;
    std::vector<SplitGroup> groups_;
    std::vector<Expr> constraints_;
};

/** Bound constraints 1 <= v <= hi for a fresh variable. */
void
boundVar(ScheduleBuilder &builder, const Expr &var, int64_t hi)
{
    builder.addConstraint(Expr::constant(1.0) - var);
    builder.addConstraint(var - Expr::constant(
                                    static_cast<double>(hi)));
}

/**
 * Is op an epilogue of the dominant op: elementwise (no reduction),
 * same spatial extent, and reading the dominant output?
 */
bool
isEpilogueOf(const ComputeOp &op, const ComputeOp &dominant)
{
    if (op.reduceExtent() != 1)
        return false;
    if (op.spatialExtent() != dominant.spatialExtent())
        return false;
    for (const tir::BufferAccess &access : op.inputs) {
        if (access.tensor == dominant.name)
            return true;
    }
    return false;
}

/**
 * Schedule an auxiliary stage (non-dominant, non-epilogue): fused
 * spatial -> [blockIdx, threadIdx(var)], reduce loops stay serial.
 */
void
scheduleAuxStage(ScheduleBuilder &builder, int stage_id,
                 const ComputeOp &op, const HardwareParams &hw)
{
    int numSpatial = static_cast<int>(op.spatialAxes().size());
    if (numSpatial >= 2)
        builder.fuse(stage_id, 0, numSpatial);
    int64_t extent = op.spatialExtent();
    std::string varName = strformat("s%d_th", stage_id);
    Expr th = builder.newVar(varName, 1,
                             std::min(extent, hw.maxThreadsPerBlock),
                             extent);
    builder.addGroup(extent, {varName});
    boundVar(builder, th,
             std::min(extent, hw.maxThreadsPerBlock));
    builder.split(stage_id, 0, {th});
    builder.annotate(stage_id, 0, Annotation::BlockX);
    builder.annotate(stage_id, 1, Annotation::ThreadX);
}

/** Schedule all auxiliary stages and attach the epilogue. */
void
finishOtherStages(ScheduleBuilder &builder, const SubgraphDef &subgraph,
                  int dominant, int epilogue_attach_loop,
                  const HardwareParams &hw)
{
    const ComputeOp &dom = subgraph.ops[dominant];
    for (size_t i = 0; i < subgraph.ops.size(); ++i) {
        if (static_cast<int>(i) == dominant)
            continue;
        const ComputeOp &op = subgraph.ops[i];
        if (isEpilogueOf(op, dom)) {
            builder.computeAt(static_cast<int>(i), dominant,
                              epilogue_attach_loop);
        } else {
            scheduleAuxStage(builder, static_cast<int>(i), op, hw);
        }
    }
}

/**
 * Full GPU multi-level tiling (the paper's s*_2 shape): per spatial
 * axis [vthread, threadIdx, inner] splits, per reduce axis an inner
 * split, fused bindings, shared-memory cache reads, epilogue
 * ComputeAt and auto-unroll.
 */
SymbolicSchedule
fullTilingSketch(const SubgraphDef &subgraph, const HardwareParams &hw)
{
    ScheduleBuilder builder(subgraph);
    const int d = subgraph.dominantOpIndex();
    const ComputeOp &dom = subgraph.ops[d];
    auto spatial = dom.spatialAxes();
    auto reduce = dom.reduceAxes();
    const int m = static_cast<int>(spatial.size());
    const int n = static_cast<int>(reduce.size());
    FELIX_CHECK(n >= 1, "full tiling requires a reduction");

    Expr vthreadProduct = Expr::constant(1.0);
    Expr threadProduct = Expr::constant(1.0);
    Expr innerProduct = Expr::constant(1.0);

    // Split reduce axes first (higher loop indices stay valid while
    // we then split the spatial axes in reverse order).
    for (int i = n - 1; i >= 0; --i) {
        const tir::Axis &axis = reduce[i];
        if (axis.extent <= 1)
            continue;
        std::string name = strformat("r%d_in", i);
        Expr v = builder.newVar(name, 1, axis.extent, axis.extent);
        builder.addGroup(axis.extent, {name});
        boundVar(builder, v, axis.extent);
        builder.split(d, m + i, {v});
    }
    for (int i = m - 1; i >= 0; --i) {
        const tir::Axis &axis = spatial[i];
        if (axis.extent <= 1)
            continue;
        std::string vtName = strformat("sp%d_vt", i);
        std::string thName = strformat("sp%d_th", i);
        std::string inName = strformat("sp%d_in", i);
        Expr vt = builder.newVar(vtName, 1,
                                 std::min(axis.extent, hw.maxVThread),
                                 axis.extent);
        Expr th = builder.newVar(
            thName, 1, std::min(axis.extent, hw.maxThreadsPerBlock),
            axis.extent);
        Expr in = builder.newVar(
            inName, 1, std::min(axis.extent, hw.maxInnerTile),
            axis.extent);
        builder.addGroup(axis.extent, {vtName, thName, inName});
        boundVar(builder, vt, std::min(axis.extent, hw.maxVThread));
        boundVar(builder, th,
                 std::min(axis.extent, hw.maxThreadsPerBlock));
        boundVar(builder, in,
                 std::min(axis.extent, hw.maxInnerTile));
        // Joint tiling legality: the split factors must fit in the
        // axis (the outer extent stays >= 1).
        builder.addConstraint(
            vt * th * in -
            Expr::constant(static_cast<double>(axis.extent)));
        vthreadProduct = vthreadProduct * vt;
        threadProduct = threadProduct * th;
        innerProduct = innerProduct * in;
        builder.split(d, i, {vt, th, in});
    }

    // Classify current loops of the dominant stage by name into the
    // SSSRRS order [block | vthread | thread | r.0 | r.1 | inner].
    const auto &loops = builder.program().stages[d].loops;
    std::vector<int> grpBlock, grpVt, grpTh, grpR0, grpR1, grpIn;
    auto suffixOf = [](const std::string &name) -> std::string {
        auto pos = name.rfind('.');
        return pos == std::string::npos ? "" : name.substr(pos);
    };
    auto isReduceName = [&](const std::string &base) {
        for (const tir::Axis &axis : reduce) {
            if (axis.name == base)
                return true;
        }
        return false;
    };
    for (size_t i = 0; i < loops.size(); ++i) {
        std::string name = loops[i].name;
        std::string suffix = suffixOf(name);
        std::string base =
            suffix.empty() ? name : name.substr(0, name.size() -
                                                        suffix.size());
        int idx = static_cast<int>(i);
        if (isReduceName(base)) {
            if (suffix == ".1")
                grpR1.push_back(idx);
            else
                grpR0.push_back(idx);
        } else {
            if (suffix == ".1")
                grpVt.push_back(idx);
            else if (suffix == ".2")
                grpTh.push_back(idx);
            else if (suffix == ".3")
                grpIn.push_back(idx);
            else
                grpBlock.push_back(idx);
        }
    }
    std::vector<int> order;
    for (auto *grp : {&grpBlock, &grpVt, &grpTh, &grpR0, &grpR1, &grpIn})
        order.insert(order.end(), grp->begin(), grp->end());
    builder.reorder(d, order);

    // Fuse + bind the three parallel groups.
    int pos = 0;
    auto fuseBind = [&](int count, Annotation ann) -> bool {
        if (count == 0)
            return false;
        if (count >= 2)
            builder.fuse(d, pos, count);
        builder.annotate(d, pos, ann);
        ++pos;
        return true;
    };
    fuseBind(static_cast<int>(grpBlock.size()), Annotation::BlockX);
    bool hasVt =
        fuseBind(static_cast<int>(grpVt.size()), Annotation::VThread);
    bool hasTh =
        fuseBind(static_cast<int>(grpTh.size()), Annotation::ThreadX);
    (void)hasVt;

    // Shared-memory cache reads, attached under the last outer
    // reduction loop (cooperative fetch per k.0 iteration).
    int r0Count = static_cast<int>(grpR0.size());
    if (r0Count > 0) {
        int attach = pos + r0Count - 1;
        for (size_t ai = 0; ai < dom.inputs.size(); ++ai)
            builder.cacheRead(d, static_cast<int>(ai), attach);
    }

    // Resource constraints.
    builder.addConstraint(
        threadProduct -
        Expr::constant(static_cast<double>(hw.maxThreadsPerBlock)));
    builder.addConstraint(
        vthreadProduct -
        Expr::constant(static_cast<double>(hw.maxVThread)));
    builder.addConstraint(
        innerProduct -
        Expr::constant(static_cast<double>(hw.maxInnerTile)));
    builder.addConstraint(
        features::sharedBytesPerBlock(builder.program()) -
        Expr::constant(static_cast<double>(hw.maxSharedBytes)));

    // Epilogue + auxiliary stages attach at the threadIdx loop.
    int attachLoop = hasTh ? pos - 1 : 0;
    finishOtherStages(builder, subgraph, d, attachLoop, hw);

    Expr unroll = builder.newVar("UNROLL", 1, hw.maxUnroll, 0, true);
    boundVar(builder, unroll, hw.maxUnroll);
    builder.pragmaUnroll(unroll);

    return builder.finish("gpu.multi_level_tiling");
}

/** Simple tiling (the paper's s*_1 shape). */
SymbolicSchedule
simpleTilingSketch(const SubgraphDef &subgraph, const HardwareParams &hw)
{
    ScheduleBuilder builder(subgraph);
    const int d = subgraph.dominantOpIndex();
    const ComputeOp &dom = subgraph.ops[d];
    const int m = static_cast<int>(dom.spatialAxes().size());
    const int n = static_cast<int>(dom.reduceAxes().size());
    const int64_t spatialExtent = dom.spatialExtent();
    const int64_t reduceExtent = dom.reduceExtent();

    if (m >= 2)
        builder.fuse(d, 0, m);
    if (n >= 2)
        builder.fuse(d, 1, n);

    Expr th = builder.newVar(
        "f_th", 1, std::min(spatialExtent, hw.maxThreadsPerBlock),
        spatialExtent);
    Expr in = builder.newVar(
        "f_in", 1, std::min(spatialExtent, hw.maxInnerTile),
        spatialExtent);
    builder.addGroup(spatialExtent, {"f_th", "f_in"});
    boundVar(builder, th,
             std::min(spatialExtent, hw.maxThreadsPerBlock));
    boundVar(builder, in, std::min(spatialExtent, hw.maxInnerTile));
    builder.addConstraint(
        th * in - Expr::constant(static_cast<double>(spatialExtent)));
    builder.split(d, 0, {th, in});
    // Loops now: [F.0, F.1, F.2, R?]
    if (reduceExtent > 1) {
        Expr rin = builder.newVar("r_in", 1, reduceExtent,
                                  reduceExtent);
        builder.addGroup(reduceExtent, {"r_in"});
        boundVar(builder, rin, reduceExtent);
        builder.split(d, 3, {rin});
        // [F.0, F.1, F.2, R.0, R.1] -> [F.0, F.1, R.0, R.1, F.2]
        builder.reorder(d, {0, 1, 3, 4, 2});
    }
    builder.annotate(d, 0, Annotation::BlockX);
    builder.annotate(d, 1, Annotation::ThreadX);

    finishOtherStages(builder, subgraph, d, 1, hw);

    Expr unroll = builder.newVar("UNROLL", 1, hw.maxUnroll, 0, true);
    boundVar(builder, unroll, hw.maxUnroll);
    builder.pragmaUnroll(unroll);

    return builder.finish("gpu.simple_tiling");
}

/**
 * Cross-thread reduction (Ansor's rule for small-spatial,
 * large-reduction subgraphs such as softmax row sums and global
 * pooling): the fused spatial domain binds to blockIdx and the
 * *reduction* is split with its outer part bound to threadIdx, so
 * the threads of a block cooperate on one reduction via shared
 * memory / warp shuffles.
 */
SymbolicSchedule
crossThreadReductionSketch(const SubgraphDef &subgraph,
                           const HardwareParams &hw)
{
    ScheduleBuilder builder(subgraph);
    const int d = subgraph.dominantOpIndex();
    const ComputeOp &dom = subgraph.ops[d];
    const int m = static_cast<int>(dom.spatialAxes().size());
    const int n = static_cast<int>(dom.reduceAxes().size());
    const int64_t reduceExtent = dom.reduceExtent();
    FELIX_CHECK(reduceExtent > 1,
                "cross-thread reduction requires a reduction");

    if (m >= 2)
        builder.fuse(d, 0, m);
    if (n >= 2)
        builder.fuse(d, 1, n);
    // Loops: [S, R]. Split R by a serial inner length ct_in; the
    // outer part R/ct_in binds to threadIdx (the cooperating
    // threads), so threadLen = R / ct_in.
    const int64_t minInner = std::max<int64_t>(
        1, reduceExtent / hw.maxThreadsPerBlock);
    Expr ctIn = builder.newVar("ct_in", minInner, reduceExtent,
                               reduceExtent);
    builder.addGroup(reduceExtent, {"ct_in"});
    boundVar(builder, ctIn, reduceExtent);
    // threadLen = R / ct_in <= maxThreadsPerBlock.
    builder.addConstraint(
        Expr::intConst(reduceExtent) / ctIn -
        Expr::constant(
            static_cast<double>(hw.maxThreadsPerBlock)));
    builder.split(d, 1, {ctIn});
    builder.annotate(d, 0, Annotation::BlockX);
    builder.annotate(d, 1, Annotation::ThreadX);

    // The threadIdx loop covers the *reduction*, so epilogues attach
    // at the block level (one output element per block).
    finishOtherStages(builder, subgraph, d, 0, hw);

    Expr unroll = builder.newVar("UNROLL", 1, hw.maxUnroll, 0, true);
    boundVar(builder, unroll, hw.maxUnroll);
    builder.pragmaUnroll(unroll);

    return builder.finish("gpu.cross_thread_reduction");
}

/** Elementwise sketch: fused [blockIdx, threadIdx, vectorize]. */
SymbolicSchedule
elementwiseSketch(const SubgraphDef &subgraph, const HardwareParams &hw)
{
    ScheduleBuilder builder(subgraph);
    const int d = subgraph.dominantOpIndex();
    const ComputeOp &dom = subgraph.ops[d];
    const int m = static_cast<int>(dom.spatialAxes().size());
    const int64_t extent = dom.spatialExtent();

    if (m >= 2)
        builder.fuse(d, 0, m);

    Expr th = builder.newVar(
        "e_th", 1, std::min(extent, hw.maxThreadsPerBlock), extent);
    Expr vec = builder.newVar(
        "e_vec", 1, std::min(extent, hw.maxVectorize), extent, true);
    builder.addGroup(extent, {"e_th", "e_vec"});
    boundVar(builder, th, std::min(extent, hw.maxThreadsPerBlock));
    boundVar(builder, vec, std::min(extent, hw.maxVectorize));
    builder.addConstraint(
        th * vec - Expr::constant(static_cast<double>(extent)));
    builder.split(d, 0, {th, vec});
    builder.annotate(d, 0, Annotation::BlockX);
    builder.annotate(d, 1, Annotation::ThreadX);
    builder.annotate(d, 2, Annotation::Vectorize);

    finishOtherStages(builder, subgraph, d, 1, hw);

    return builder.finish("gpu.elementwise");
}

} // namespace

std::vector<SymbolicSchedule>
generateSketches(const SubgraphDef &subgraph, const GenOptions &options)
{
    std::vector<SymbolicSchedule> sketches;
    const ComputeOp &dom = subgraph.dominantOp();
    const bool hasReduce = dom.reduceExtent() > 1;

    if (hasReduce) {
        if (dom.spatialExtent() >= options.fullTilingMinExtent)
            sketches.push_back(fullTilingSketch(subgraph,
                                                options.hardware));
        sketches.push_back(simpleTilingSketch(subgraph,
                                              options.hardware));
        if (dom.spatialExtent() <= options.crossThreadMaxSpatial &&
            dom.reduceExtent() >= options.crossThreadMinReduce) {
            sketches.push_back(crossThreadReductionSketch(
                subgraph, options.hardware));
        }
    } else {
        sketches.push_back(elementwiseSketch(subgraph,
                                             options.hardware));
    }
    FELIX_CHECK(!sketches.empty());
    return sketches;
}

} // namespace sketch
} // namespace felix
