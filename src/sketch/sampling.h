/**
 * @file
 * Sampling, rounding and validation of schedule-variable values.
 *
 * Three pieces of Algorithm 1 live here:
 *  - RandomInitSchedVars: rejection sampling of valid concrete
 *    assignments to seed gradient descent;
 *  - rounding of relaxed (log-space) values back to valid integers,
 *    snapping tile factors to divisors of the loop extent nearest in
 *    log space (paper §3.3, divisibility constraints);
 *  - GetValidSchedules' validity check: domains, divisibility, and
 *    every legality constraint g(x) <= 0.
 */
#ifndef FELIX_SKETCH_SAMPLING_H_
#define FELIX_SKETCH_SAMPLING_H_

#include <memory>
#include <optional>
#include <vector>

#include "expr/compiled.h"
#include "sketch/sketch.h"
#include "support/rng.h"

namespace felix {
namespace sketch {

/**
 * Evaluates a symbolic schedule's constraints at concrete values.
 * Compiles the constraint expressions once; reusable across calls
 * and safely shareable across pool workers (evaluation scratch is
 * per-call).
 */
class ConstraintChecker
{
  public:
    explicit ConstraintChecker(const SymbolicSchedule &sched);

    /** All g_i(x) <= tolerance? (x-space values, one per variable) */
    bool feasible(const std::vector<double> &x,
                  double tol = 1e-6) const;

    /** Largest constraint violation max_i g_i(x) (<= 0 = feasible). */
    double maxViolation(const std::vector<double> &x) const;

  private:
    const SymbolicSchedule &sched_;
    std::unique_ptr<expr::CompiledExprs> compiled_;
};

/**
 * Sample one valid x-space assignment by construction: tile factors
 * are drawn as successive divisors of the remaining extent, free
 * variables uniformly (log-scaled) from their domain; resource
 * constraints are enforced by rejection.
 *
 * Returns empty when @p max_tries rejections are exhausted (then the
 * all-ones assignment, which is always legal, is returned instead).
 */
std::vector<double> sampleValid(const SymbolicSchedule &sched, Rng &rng,
                                int max_tries = 64);

/**
 * Round relaxed log-space values y (the optimizer's iterate) to a
 * valid integer x-space assignment, or nullopt when the rounded
 * point violates a resource constraint.
 */
std::optional<std::vector<double>> roundToValid(
    const SymbolicSchedule &sched, const std::vector<double> &y);

/** As above, reusing a compiled ConstraintChecker (hot loops). */
std::optional<std::vector<double>> roundToValid(
    const SymbolicSchedule &sched, const std::vector<double> &y,
    const ConstraintChecker &checker);

/** Exact validity of an integer x-space assignment. */
bool isValidAssignment(const SymbolicSchedule &sched,
                       const std::vector<double> &x);

} // namespace sketch
} // namespace felix

#endif // FELIX_SKETCH_SAMPLING_H_
