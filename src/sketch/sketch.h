/**
 * @file
 * Symbolic schedule (sketch) generation (paper §3.2).
 *
 * Felix extends Ansor's sketch + annotation scheme: a sketch is a
 * list of transformation steps with unfilled tunable parameters;
 * where Ansor fills the parameters with concrete integers during
 * annotation, Felix fills them with *schedule variables* and tracks
 * legality constraints over those variables. Each subgraph yields
 * several symbolic schedules s*_1..s*_N; the subgraph's search space
 * is their union.
 *
 * GPU sketch rules implemented (matching Ansor's GPU rule set, §4):
 *  - full multi-level tiling (SSSRRS): per spatial axis the split
 *    [vthread, threadIdx, inner], per reduce axis [outer, inner],
 *    fused blockIdx/vthread/threadIdx bindings, shared-memory cache
 *    read of every input, epilogue ComputeAt, auto-unroll pragma;
 *  - simple tiling: fused spatial split [blockIdx, threadIdx,
 *    inner] with a split reduction (the paper's s*_1 in Fig. 3);
 *  - cross-thread reduction: for small-spatial / large-reduction
 *    subgraphs (softmax rows, global pooling) the reduction itself
 *    is bound to threadIdx (Ansor's rule for the same shape class);
 *  - elementwise: fused spatial [blockIdx, threadIdx, vectorize].
 * Auxiliary (non-dominant, non-epilogue) stages get a fused
 * [blockIdx, threadIdx] nest with their own variables.
 */
#ifndef FELIX_SKETCH_SKETCH_H_
#define FELIX_SKETCH_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "tir/program.h"
#include "tir/schedule.h"

namespace felix {
namespace sketch {

/** Domain of one schedule variable (x-space). */
struct VarDomain
{
    std::string name;
    int64_t lo = 1;
    int64_t hi = 1;
    /** When > 0 the value must divide this number (tile factors). */
    int64_t divisorOf = 0;
    /** Round to a power of two (unroll steps, vector widths). */
    bool powerOfTwo = false;
};

/**
 * Variables tiling one loop together: their product must divide the
 * loop extent (divisibility constraint, handled by factor rounding).
 */
struct SplitGroup
{
    int64_t extent = 1;
    std::vector<int> varIndices;
};

/** Hardware legality limits used when emitting constraints. */
struct HardwareParams
{
    int64_t maxThreadsPerBlock = 1024;
    int64_t maxSharedBytes = 48 * 1024;
    int64_t maxVThread = 16;
    int64_t maxInnerTile = 128;     ///< register-pressure proxy
    int64_t maxUnroll = 512;
    int64_t maxVectorize = 4;
};

/**
 * A symbolic schedule s*_i: steps with variable parameters, the
 * variable domains, the legality constraints (expressions g with
 * g(x) <= 0 required), and the symbolic program T(p0, s*_i).
 */
struct SymbolicSchedule
{
    std::string desc;               ///< sketch rule that produced it
    tir::Schedule schedule;
    std::vector<VarDomain> vars;    ///< order == schedule.vars
    std::vector<SplitGroup> groups;
    std::vector<expr::Expr> constraints;
    tir::Program program;

    int varIndex(const std::string &name) const;
};

/** Options for sketch generation. */
struct GenOptions
{
    HardwareParams hardware;
    /** Minimum spatial extent for the full multi-level tiling rule. */
    int64_t fullTilingMinExtent = 256;
    /** Maximum spatial extent for the cross-thread reduction rule. */
    int64_t crossThreadMaxSpatial = 65536;
    /** Minimum reduction extent for the cross-thread rule. */
    int64_t crossThreadMinReduce = 32;
};

/**
 * Generate the symbolic schedules of a subgraph. At least one
 * schedule is always produced.
 */
std::vector<SymbolicSchedule> generateSketches(
    const tir::SubgraphDef &subgraph, const GenOptions &options = {});

} // namespace sketch
} // namespace felix

#endif // FELIX_SKETCH_SKETCH_H_
