#include "graph/graph.h"

#include <map>
#include <unordered_map>

#include "support/logging.h"
#include "support/string_util.h"

namespace felix {
namespace graph {

const char *
opTypeName(OpType type)
{
    switch (type) {
      case OpType::Conv2d: return "conv2d";
      case OpType::Conv3d: return "conv3d";
      case OpType::TConv2d: return "tconv2d";
      case OpType::Dense: return "dense";
      case OpType::BatchMatmul: return "batch_matmul";
      case OpType::Softmax: return "softmax";
      case OpType::MaxPool2d: return "max_pool2d";
      case OpType::GlobalAvgPool: return "global_avg_pool";
      case OpType::LayerNorm: return "layer_norm";
      case OpType::BiasAdd: return "bias_add";
      case OpType::BatchNorm: return "batch_norm";
      case OpType::Relu: return "relu";
      case OpType::Sigmoid: return "sigmoid";
      case OpType::Tanh: return "tanh";
      case OpType::Gelu: return "gelu";
      case OpType::Add: return "add";
      case OpType::Elementwise: return "elementwise";
    }
    return "?";
}

bool
isFusableEpilogue(OpType type)
{
    switch (type) {
      case OpType::BiasAdd:
      case OpType::BatchNorm:
      case OpType::Relu:
      case OpType::Sigmoid:
      case OpType::Tanh:
      case OpType::Gelu:
        return true;
      default:
        return false;
    }
}

int
Graph::push(Node node)
{
    node.id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
}

int
Graph::addConv2d(const tir::Conv2dConfig &config, int input,
                 const std::string &label)
{
    Node node;
    node.type = OpType::Conv2d;
    node.params = config;
    node.inputs = {input};
    node.label = label;
    node.outputElems =
        config.n * config.k * config.outH() * config.outW();
    return push(std::move(node));
}

int
Graph::addConv3d(const tir::Conv3dConfig &config, int input,
                 const std::string &label)
{
    Node node;
    node.type = OpType::Conv3d;
    node.params = config;
    node.inputs = {input};
    node.label = label;
    node.outputElems = config.n * config.k * config.outD() *
                       config.outH() * config.outW();
    return push(std::move(node));
}

int
Graph::addTConv2d(const tir::TConv2dConfig &config, int input,
                  const std::string &label)
{
    Node node;
    node.type = OpType::TConv2d;
    node.params = config;
    node.inputs = {input};
    node.label = label;
    node.outputElems =
        config.n * config.k * config.outH() * config.outW();
    return push(std::move(node));
}

int
Graph::addDense(const DenseParams &params, int input,
                const std::string &label)
{
    Node node;
    node.type = OpType::Dense;
    node.params = params;
    node.inputs = {input};
    node.label = label;
    node.outputElems = params.n * params.m;
    return push(std::move(node));
}

int
Graph::addBatchMatmul(const BmmParams &params, int lhs, int rhs,
                      const std::string &label)
{
    Node node;
    node.type = OpType::BatchMatmul;
    node.params = params;
    node.inputs = {lhs, rhs};
    node.label = label;
    node.outputElems = params.b * params.n * params.m;
    return push(std::move(node));
}

int
Graph::addSoftmax(const RowsColsParams &params, int input,
                  const std::string &label)
{
    Node node;
    node.type = OpType::Softmax;
    node.params = params;
    node.inputs = {input};
    node.label = label;
    node.outputElems = params.rows * params.cols;
    return push(std::move(node));
}

int
Graph::addMaxPool2d(const PoolParams &params, int input,
                    const std::string &label)
{
    Node node;
    node.type = OpType::MaxPool2d;
    node.params = params;
    node.inputs = {input};
    node.label = label;
    int64_t oh = (params.h - params.kernel) / params.stride + 1;
    int64_t ow = (params.w - params.kernel) / params.stride + 1;
    node.outputElems = params.n * params.c * oh * ow;
    return push(std::move(node));
}

int
Graph::addGlobalAvgPool(int64_t n, int64_t c, int64_t h, int64_t w,
                        int input, const std::string &label)
{
    Node node;
    node.type = OpType::GlobalAvgPool;
    PoolParams params;
    params.n = n;
    params.c = c;
    params.h = h;
    params.w = w;
    node.params = params;
    node.inputs = {input};
    node.label = label;
    node.outputElems = n * c;
    return push(std::move(node));
}

int
Graph::addLayerNorm(const RowsColsParams &params, int input,
                    const std::string &label)
{
    Node node;
    node.type = OpType::LayerNorm;
    node.params = params;
    node.inputs = {input};
    node.label = label;
    node.outputElems = params.rows * params.cols;
    return push(std::move(node));
}

int
Graph::addEpilogue(OpType type, int input, const std::string &label)
{
    FELIX_CHECK(isFusableEpilogue(type),
                "addEpilogue: not an epilogue op");
    FELIX_CHECK(input >= 0 &&
                input < static_cast<int>(nodes_.size()),
                "addEpilogue: bad input node");
    Node node;
    node.type = type;
    node.inputs = {input};
    node.label = label.empty() ? opTypeName(type) : label;
    node.outputElems = nodes_[input].outputElems;
    return push(std::move(node));
}

int
Graph::addAdd(int lhs, int rhs, const std::string &label)
{
    FELIX_CHECK(lhs >= 0 && rhs >= 0, "addAdd: bad inputs");
    Node node;
    node.type = OpType::Add;
    node.inputs = {lhs, rhs};
    node.label = label;
    node.outputElems = nodes_[lhs].outputElems;
    return push(std::move(node));
}

namespace {

double
nodeFlops(const Node &node)
{
    switch (node.type) {
      case OpType::Conv2d: {
        const auto &config = std::get<tir::Conv2dConfig>(node.params);
        return 2.0 * node.outputElems *
               (config.c / config.groups) * config.r * config.s;
      }
      case OpType::Conv3d: {
        const auto &config = std::get<tir::Conv3dConfig>(node.params);
        return 2.0 * node.outputElems * config.c * config.kd *
               config.r * config.s;
      }
      case OpType::TConv2d: {
        const auto &config = std::get<tir::TConv2dConfig>(node.params);
        return 2.0 * node.outputElems * config.c * config.r *
               config.s;
      }
      case OpType::Dense: {
        const auto &params = std::get<DenseParams>(node.params);
        return 2.0 * params.n * params.m * params.k;
      }
      case OpType::BatchMatmul: {
        const auto &params = std::get<BmmParams>(node.params);
        return 2.0 * params.b * params.n * params.m * params.k;
      }
      default:
        return static_cast<double>(node.outputElems);
    }
}

bool
isAnchor(OpType type)
{
    switch (type) {
      case OpType::Conv2d:
      case OpType::Conv3d:
      case OpType::TConv2d:
      case OpType::Dense:
      case OpType::BatchMatmul:
        return true;
      default:
        return false;
    }
}

tir::Epilogue
toEpilogue(OpType type)
{
    switch (type) {
      case OpType::Relu: return tir::Epilogue::Relu;
      case OpType::Sigmoid: return tir::Epilogue::Sigmoid;
      case OpType::Tanh: return tir::Epilogue::Tanh;
      case OpType::Gelu: return tir::Epilogue::Gelu;
      default: return tir::Epilogue::None;
    }
}

} // namespace

double
Graph::totalFlops() const
{
    double flops = 0.0;
    for (const Node &node : nodes_)
        flops += nodeFlops(node);
    return flops;
}

std::vector<Task>
partition(const Graph &graph)
{
    const auto &nodes = graph.nodes();

    // Consumer lists (a node fuses into its producer only when it is
    // the sole consumer).
    std::vector<std::vector<int>> consumers(nodes.size());
    for (const Node &node : nodes) {
        for (int input : node.inputs) {
            if (input >= 0)
                consumers[input].push_back(node.id);
        }
    }

    std::vector<bool> absorbed(nodes.size(), false);
    std::vector<Task> raw;

    auto fuseChain = [&](int start, bool &bias,
                         tir::Epilogue &epilogue) {
        int cur = start;
        while (consumers[cur].size() == 1) {
            const Node &next = nodes[consumers[cur][0]];
            if (!isFusableEpilogue(next.type))
                break;
            if (next.type == OpType::BiasAdd ||
                next.type == OpType::BatchNorm) {
                if (bias)
                    break;   // one bias-like stage per anchor
                bias = true;
            } else {
                if (epilogue != tir::Epilogue::None)
                    break;
                epilogue = toEpilogue(next.type);
            }
            absorbed[next.id] = true;
            cur = next.id;
        }
    };

    for (const Node &node : nodes) {
        if (absorbed[node.id])
            continue;
        Task task;
        task.anchorType = node.type;
        task.exampleLabel = node.label;

        if (isAnchor(node.type)) {
            bool bias = false;
            tir::Epilogue epilogue = tir::Epilogue::None;
            fuseChain(node.id, bias, epilogue);
            switch (node.type) {
              case OpType::Conv2d: {
                auto config = std::get<tir::Conv2dConfig>(node.params);
                config.bias = config.bias || bias;
                config.epilogue = epilogue;
                task.subgraph = tir::conv2d(config, node.label);
                break;
              }
              case OpType::Conv3d: {
                auto config = std::get<tir::Conv3dConfig>(node.params);
                config.bias = config.bias || bias;
                config.epilogue = epilogue;
                task.subgraph = tir::conv3d(config, node.label);
                break;
              }
              case OpType::TConv2d: {
                auto config =
                    std::get<tir::TConv2dConfig>(node.params);
                config.bias = config.bias || bias;
                config.epilogue = epilogue;
                task.subgraph = tir::tconv2d(config, node.label);
                break;
              }
              case OpType::Dense: {
                const auto &params = std::get<DenseParams>(node.params);
                task.subgraph = tir::dense(params.n, params.m,
                                           params.k, bias, epilogue,
                                           node.label);
                break;
              }
              case OpType::BatchMatmul: {
                const auto &params = std::get<BmmParams>(node.params);
                task.subgraph = tir::batchMatmul(
                    params.b, params.n, params.m, params.k,
                    node.label);
                break;
              }
              default:
                panic("unreachable anchor type");
            }
        } else {
            switch (node.type) {
              case OpType::Softmax: {
                const auto &params =
                    std::get<RowsColsParams>(node.params);
                task.subgraph = tir::softmax(params.rows, params.cols,
                                             node.label);
                break;
              }
              case OpType::MaxPool2d: {
                const auto &params = std::get<PoolParams>(node.params);
                task.subgraph = tir::maxPool2d(
                    params.n, params.c, params.h, params.w,
                    params.kernel, params.stride, node.label);
                break;
              }
              case OpType::GlobalAvgPool: {
                const auto &params = std::get<PoolParams>(node.params);
                task.subgraph = tir::globalAvgPool2d(
                    params.n, params.c, params.h, params.w,
                    node.label);
                break;
              }
              case OpType::LayerNorm: {
                const auto &params =
                    std::get<RowsColsParams>(node.params);
                task.subgraph = tir::layerNorm(
                    params.rows, params.cols, node.label);
                break;
              }
              case OpType::Add: {
                // Residual add, with any directly following
                // activation folded into the arithmetic.
                tir::ArithCounts arith;
                arith.add = 1;
                int cur = node.id;
                while (consumers[cur].size() == 1) {
                    const Node &next = nodes[consumers[cur][0]];
                    if (next.type == OpType::Relu) {
                        arith.cmp += 1;
                    } else if (isFusableEpilogue(next.type) &&
                               next.type != OpType::BiasAdd &&
                               next.type != OpType::BatchNorm) {
                        arith.special += 1;
                    } else {
                        break;
                    }
                    absorbed[next.id] = true;
                    cur = next.id;
                }
                task.subgraph = tir::elementwise(node.outputElems, 2,
                                                 arith, node.label);
                task.anchorType = OpType::Elementwise;
                break;
              }
              default: {
                // Standalone pointwise node (unfused activation,
                // quantize stub, ...).
                tir::ArithCounts arith;
                arith.add = 1;
                task.subgraph = tir::elementwise(
                    std::max<int64_t>(1, node.outputElems), 1, arith,
                    node.label);
                task.anchorType = OpType::Elementwise;
                break;
              }
            }
        }
        raw.push_back(std::move(task));
    }

    // Deduplicate structurally identical tasks, accumulating weights.
    std::map<uint64_t, size_t> byHash;
    std::vector<Task> tasks;
    for (Task &task : raw) {
        uint64_t h = task.subgraph.structuralHash();
        auto it = byHash.find(h);
        if (it == byHash.end()) {
            byHash.emplace(h, tasks.size());
            tasks.push_back(std::move(task));
        } else {
            tasks[it->second].weight += task.weight;
        }
    }
    return tasks;
}

} // namespace graph
} // namespace felix
