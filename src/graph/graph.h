/**
 * @file
 * Computation graphs of tensor operators and their partitioning into
 * fused-subgraph tuning tasks (paper §3.1).
 *
 * A Graph is a DAG whose nodes are tensor operators and whose edges
 * are dataflow. partition() fuses operators in fixed patterns — a
 * compute-intensive anchor (conv / dense / batched matmul / ...)
 * absorbs its elementwise epilogue chain (bias add, batch norm,
 * activations), exactly the greedy fusion Ansor applies — and
 * deduplicates structurally identical subgraphs into weighted tasks
 * (ResNet-50's repeated bottlenecks become one task with weight n).
 */
#ifndef FELIX_GRAPH_GRAPH_H_
#define FELIX_GRAPH_GRAPH_H_

#include <string>
#include <variant>
#include <vector>

#include "tir/compute.h"
#include "tir/ops.h"

namespace felix {
namespace graph {

/** Operator families appearing in the evaluated networks. */
enum class OpType : uint8_t {
    Conv2d,
    Conv3d,
    TConv2d,
    Dense,
    BatchMatmul,
    Softmax,
    MaxPool2d,
    GlobalAvgPool,
    LayerNorm,
    BiasAdd,        ///< elementwise epilogue candidates below
    BatchNorm,
    Relu,
    Sigmoid,
    Tanh,
    Gelu,
    Add,            ///< residual addition (two tensor inputs)
    Elementwise,    ///< other pointwise op
};

const char *opTypeName(OpType type);

/** True for single-input pointwise ops that fuse into an anchor. */
bool isFusableEpilogue(OpType type);

/** Parameters of a Dense node. */
struct DenseParams
{
    int64_t n = 1, m = 1, k = 1;
};

/** Parameters of a BatchMatmul node. */
struct BmmParams
{
    int64_t b = 1, n = 1, m = 1, k = 1;
};

/** Parameters of 2D pooling. */
struct PoolParams
{
    int64_t n = 1, c = 1, h = 1, w = 1;
    int64_t kernel = 2, stride = 2;
};

/** Parameters of softmax / layer norm over [rows, cols]. */
struct RowsColsParams
{
    int64_t rows = 1, cols = 1;
};

/** Parameters of standalone elementwise nodes. */
struct EltwiseParams
{
    int64_t elems = 1;
    int numInputs = 1;
    tir::ArithCounts arith;
};

using NodeParams =
    std::variant<std::monostate, tir::Conv2dConfig, tir::Conv3dConfig,
                 tir::TConv2dConfig, DenseParams, BmmParams, PoolParams,
                 RowsColsParams, EltwiseParams>;

/** One operator node. */
struct Node
{
    int id = -1;
    OpType type = OpType::Elementwise;
    NodeParams params;
    std::vector<int> inputs;   ///< producing node ids (-1 = graph input)
    std::string label;         ///< e.g. "layer3.0.conv2"

    /** Output element count (needed to fuse elementwise chains). */
    int64_t outputElems = 0;
};

/** A computation graph under construction. */
class Graph
{
  public:
    explicit Graph(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    const std::vector<Node> &nodes() const { return nodes_; }

    int addConv2d(const tir::Conv2dConfig &config, int input,
                  const std::string &label = "conv2d");
    int addConv3d(const tir::Conv3dConfig &config, int input,
                  const std::string &label = "conv3d");
    int addTConv2d(const tir::TConv2dConfig &config, int input,
                   const std::string &label = "tconv2d");
    int addDense(const DenseParams &params, int input,
                 const std::string &label = "dense");
    int addBatchMatmul(const BmmParams &params, int lhs, int rhs,
                       const std::string &label = "batch_matmul");
    int addSoftmax(const RowsColsParams &params, int input,
                   const std::string &label = "softmax");
    int addMaxPool2d(const PoolParams &params, int input,
                     const std::string &label = "max_pool");
    int addGlobalAvgPool(int64_t n, int64_t c, int64_t h, int64_t w,
                         int input, const std::string &label = "gap");
    int addLayerNorm(const RowsColsParams &params, int input,
                     const std::string &label = "layer_norm");
    /** Epilogue ops: bias/bn/activations (single tensor input). */
    int addEpilogue(OpType type, int input,
                    const std::string &label = "");
    /** Residual addition of two tensors of equal shape. */
    int addAdd(int lhs, int rhs, const std::string &label = "add");

    /** Total FLOPs of all compute nodes (sanity checks/tests). */
    double totalFlops() const;

  private:
    int push(Node node);

    std::string name_;
    std::vector<Node> nodes_;
};

/** One deduplicated tuning task. */
struct Task
{
    tir::SubgraphDef subgraph;
    OpType anchorType = OpType::Elementwise;
    int weight = 1;            ///< occurrences in the network
    std::string exampleLabel;  ///< one representative layer name
};

/** Partition a graph into weighted fused-subgraph tasks. */
std::vector<Task> partition(const Graph &graph);

} // namespace graph
} // namespace felix

#endif // FELIX_GRAPH_GRAPH_H_
