#include "expr/tape.h"

#include <cstring>
#include <unordered_map>

#include "expr/op_kernels.h"
#include "support/logging.h"

namespace felix {
namespace expr {

namespace {

uint64_t
bitsOf(double value)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

const uint64_t kOneBits = bitsOf(1.0);
const uint64_t kPosZeroBits = bitsOf(0.0);
const uint64_t kNegZeroBits = bitsOf(-0.0);

/**
 * Provisional operand reference while the pass runs: the final slot
 * numbers are only known after DCE decides which constants and
 * instructions survive.
 */
struct Ref
{
    enum Kind : uint8_t { kConst, kVar, kOp, kNone };
    Kind kind = kNone;
    int32_t index = -1;   ///< const pool / var / kept-instruction idx

    bool operator==(const Ref &other) const
    {
        return kind == other.kind && index == other.index;
    }
};

struct KeptInstr
{
    OpCode op;
    Ref a0, a1, a2;
};

/** Const pool deduplicated by bit pattern, in first-seen order. */
class ConstPool
{
  public:
    Ref
    add(double value)
    {
        uint64_t bits = bitsOf(value);
        auto [it, inserted] =
            index_.emplace(bits, static_cast<int32_t>(values_.size()));
        if (inserted)
            values_.push_back(value);
        return Ref{Ref::kConst, it->second};
    }

    double value(int32_t index) const { return values_[index]; }
    size_t size() const { return values_.size(); }

  private:
    std::vector<double> values_;
    std::unordered_map<uint64_t, int32_t> index_;
};

bool
isConstBits(const ConstPool &pool, const Ref &ref, uint64_t bits)
{
    return ref.kind == Ref::kConst && bitsOf(pool.value(ref.index)) == bits;
}

} // namespace

RawTape
buildRawTape(const std::vector<Expr> &roots,
             const std::vector<std::string> &var_names)
{
    RawTape raw;
    raw.numVars = var_names.size();

    std::unordered_map<std::string, int32_t> varSlot;
    for (size_t i = 0; i < var_names.size(); ++i)
        varSlot.emplace(var_names[i], static_cast<int32_t>(i));

    // Topologically order the distinct nodes via iterative DFS and
    // assign each a tape slot.
    std::unordered_map<const ExprNode *, int32_t> slotOf;
    std::vector<std::pair<Expr, size_t>> stack;
    for (const Expr &root : roots) {
        FELIX_CHECK(root.defined(), "compiling undefined expression");
        if (slotOf.count(root.get()))
            continue;
        stack.emplace_back(root, 0);
        while (!stack.empty()) {
            auto &[node, child] = stack.back();
            if (slotOf.count(node.get())) {
                stack.pop_back();
                continue;
            }
            if (child < node->args().size()) {
                Expr next = node->args()[child++];
                if (!slotOf.count(next.get()))
                    stack.emplace_back(next, 0);
                continue;
            }
            RawInstr instr;
            instr.op = node->op();
            if (node.isConst()) {
                instr.payload = node.constValue();
            } else if (node.isVar()) {
                auto it = varSlot.find(node.varName());
                FELIX_CHECK(it != varSlot.end(),
                            "variable not in slot order: ",
                            node.varName());
                instr.payload = static_cast<double>(it->second);
            } else {
                const auto &args = node->args();
                instr.a0 = slotOf.at(args[0].get());
                if (args.size() > 1)
                    instr.a1 = slotOf.at(args[1].get());
                if (args.size() > 2)
                    instr.a2 = slotOf.at(args[2].get());
            }
            slotOf.emplace(node.get(),
                           static_cast<int32_t>(raw.instrs.size()));
            raw.instrs.push_back(instr);
            stack.pop_back();
        }
    }
    for (const Expr &root : roots)
        raw.outputSlots.push_back(slotOf.at(root.get()));
    return raw;
}

TapeProgram
optimizeTape(const RawTape &raw, bool forward_only, TapeOptStats *stats)
{
    TapeOptStats local;
    TapeOptStats &s = stats ? *stats : local;
    s = TapeOptStats{};

    ConstPool pool;
    std::vector<KeptInstr> kept;
    std::vector<Ref> res(raw.instrs.size());

    // ---- Pass 1: leaf hoisting, constant folding, and (on
    // forward-only tapes) identity forwarding, in one in-order walk.
    // Operands are resolved through `res`, so forwarding chains
    // collapse as they are built.
    for (size_t i = 0; i < raw.instrs.size(); ++i) {
        const RawInstr &instr = raw.instrs[i];
        if (instr.op == OpCode::ConstOp) {
            res[i] = pool.add(instr.payload);
            ++s.leavesHoisted;
            continue;
        }
        if (instr.op == OpCode::VarOp) {
            int32_t var = static_cast<int32_t>(instr.payload);
            FELIX_CHECK(var >= 0 &&
                            var < static_cast<int32_t>(raw.numVars),
                        "raw tape references variable ", var,
                        " outside [0, ", raw.numVars, ")");
            res[i] = Ref{Ref::kVar, var};
            ++s.leavesHoisted;
            continue;
        }

        const int arity = opArity(instr.op);
        Ref r0 = res[instr.a0];
        Ref r1 = arity > 1 ? res[instr.a1] : Ref{};
        Ref r2 = arity > 2 ? res[instr.a2] : Ref{};

        // Exact constant folding: evaluate with the same inlined
        // kernel the runtime would use, so the folded constant is
        // bit-identical to the value the tape would have computed.
        bool allConst = r0.kind == Ref::kConst &&
                        (arity < 2 || r1.kind == Ref::kConst) &&
                        (arity < 3 || r2.kind == Ref::kConst);
        if (allConst) {
            double vals[3] = {pool.value(r0.index),
                              arity > 1 ? pool.value(r1.index) : 0.0,
                              arity > 2 ? pool.value(r2.index) : 0.0};
            res[i] = pool.add(opk::evalOpInline(instr.op, vals));
            ++s.constFolded;
            continue;
        }

        // Identity forwarding. Only rewrites whose replacement is
        // bit-identical for every IEEE-754 input are allowed (note
        // the signed-zero asymmetry between x-0 and x+0), and only
        // on forward-only tapes — redirecting consumers changes
        // *where* in the reverse sweep an adjoint contribution
        // lands, which reorders floating-point accumulation.
        if (forward_only) {
            Ref fwd;   // kNone = no rule fired
            switch (instr.op) {
              case OpCode::Mul:
                if (isConstBits(pool, r0, kOneBits))
                    fwd = r1;
                else if (isConstBits(pool, r1, kOneBits))
                    fwd = r0;
                break;
              case OpCode::Div:
              case OpCode::Pow:
                if (isConstBits(pool, r1, kOneBits))
                    fwd = r0;
                break;
              case OpCode::Add:
                // x + (-0.0) == x for every x; x + (+0.0) is NOT an
                // identity (it maps -0.0 to +0.0), so +0 stays.
                if (isConstBits(pool, r0, kNegZeroBits))
                    fwd = r1;
                else if (isConstBits(pool, r1, kNegZeroBits))
                    fwd = r0;
                break;
              case OpCode::Sub:
                // x - (+0.0) == x for every x; x - (-0.0) is not.
                if (isConstBits(pool, r1, kPosZeroBits))
                    fwd = r0;
                break;
              case OpCode::Neg:
                // Double negation: -(-x) == x bit for bit.
                if (r0.kind == Ref::kOp &&
                    kept[r0.index].op == OpCode::Neg)
                    fwd = kept[r0.index].a0;
                break;
              case OpCode::Min:
              case OpCode::Max:
                if (r0 == r1)
                    fwd = r0;
                break;
              case OpCode::Select:
                if (r0.kind == Ref::kConst)
                    fwd = pool.value(r0.index) != 0.0 ? r1 : r2;
                else if (r1 == r2)
                    fwd = r1;
                break;
              default:
                break;
            }
            if (fwd.kind != Ref::kNone) {
                res[i] = fwd;
                ++s.identityForwarded;
                continue;
            }
        }

        kept.push_back(KeptInstr{instr.op, r0, r1, r2});
        res[i] = Ref{Ref::kOp,
                     static_cast<int32_t>(kept.size() - 1)};
    }

    std::vector<Ref> outputs;
    outputs.reserve(raw.outputSlots.size());
    for (int32_t slot : raw.outputSlots) {
        FELIX_CHECK(slot >= 0 &&
                        slot < static_cast<int32_t>(res.size()),
                    "raw tape output slot out of range");
        outputs.push_back(res[slot]);
    }

    // ---- Pass 2: liveness from the outputs. Removing a dead
    // instruction never changes gradients: a slot nothing consumes
    // and no output seeds keeps a zero adjoint, and zero adjoints
    // are skipped by the reverse sweep.
    std::vector<char> opLive(kept.size(), 0);
    std::vector<char> constLive(pool.size(), 0);
    auto markRef = [&](const Ref &ref) {
        if (ref.kind == Ref::kOp)
            opLive[ref.index] = 1;
        else if (ref.kind == Ref::kConst)
            constLive[ref.index] = 1;
    };
    for (const Ref &ref : outputs)
        markRef(ref);
    for (size_t i = kept.size(); i-- > 0;) {
        if (!opLive[i])
            continue;
        markRef(kept[i].a0);
        markRef(kept[i].a1);
        markRef(kept[i].a2);
    }

    // ---- Pass 3: slot renumbering. Surviving constants and
    // instructions are compacted into [consts | vars | ops] while
    // preserving relative instruction order — the reverse sweep must
    // visit survivors in exactly the raw order for adjoint
    // accumulation to stay bit-identical.
    TapeProgram program;
    program.numVars = raw.numVars;
    program.forwardOnly = forward_only;
    program.rawSize = raw.instrs.size();

    std::vector<int32_t> constSlot(pool.size(), -1);
    for (size_t c = 0; c < pool.size(); ++c) {
        if (constLive[c]) {
            constSlot[c] =
                static_cast<int32_t>(program.constants.size());
            program.constants.push_back(pool.value(
                static_cast<int32_t>(c)));
        }
    }
    const int32_t varBase =
        static_cast<int32_t>(program.constants.size());
    const int32_t opBase =
        varBase + static_cast<int32_t>(raw.numVars);

    std::vector<int32_t> opSlot(kept.size(), -1);
    int32_t nextOp = 0;
    for (size_t i = 0; i < kept.size(); ++i) {
        if (opLive[i])
            opSlot[i] = opBase + nextOp++;
        else
            ++s.deadRemoved;
    }
    auto finalSlot = [&](const Ref &ref) -> int32_t {
        switch (ref.kind) {
          case Ref::kConst: return constSlot[ref.index];
          case Ref::kVar: return varBase + ref.index;
          case Ref::kOp: return opSlot[ref.index];
          case Ref::kNone: return -1;
        }
        return -1;
    };
    program.instrs.reserve(static_cast<size_t>(nextOp));
    for (size_t i = 0; i < kept.size(); ++i) {
        if (!opLive[i])
            continue;
        TapeInstr instr;
        instr.op = kept[i].op;
        instr.a0 = finalSlot(kept[i].a0);
        instr.a1 = finalSlot(kept[i].a1);
        instr.a2 = finalSlot(kept[i].a2);
        program.instrs.push_back(instr);
    }
    program.outputSlots.reserve(outputs.size());
    for (const Ref &ref : outputs)
        program.outputSlots.push_back(finalSlot(ref));
    return program;
}

void
rawForward(const RawTape &tape, const std::vector<double> &inputs,
           std::vector<double> &values, std::vector<double> &outputs)
{
    FELIX_CHECK(inputs.size() == tape.numVars,
                "rawForward: expected ", tape.numVars, " inputs");
    values.resize(tape.instrs.size());
    for (size_t i = 0; i < tape.instrs.size(); ++i) {
        const RawInstr &instr = tape.instrs[i];
        switch (instr.op) {
          case OpCode::ConstOp:
            values[i] = instr.payload;
            break;
          case OpCode::VarOp:
            values[i] = inputs[static_cast<size_t>(instr.payload)];
            break;
          default: {
            double args[3] = {0, 0, 0};
            args[0] = values[instr.a0];
            if (instr.a1 >= 0)
                args[1] = values[instr.a1];
            if (instr.a2 >= 0)
                args[2] = values[instr.a2];
            values[i] = opk::evalOpInline(instr.op, args);
            break;
          }
        }
    }
    outputs.resize(tape.outputSlots.size());
    for (size_t k = 0; k < tape.outputSlots.size(); ++k)
        outputs[k] = values[tape.outputSlots[k]];
}

void
rawBackward(const RawTape &tape, const std::vector<double> &values,
            const std::vector<double> &output_grads,
            std::vector<double> &input_grads)
{
    FELIX_CHECK(values.size() == tape.instrs.size(),
                "rawBackward: run rawForward first");
    FELIX_CHECK(output_grads.size() == tape.outputSlots.size(),
                "rawBackward: expected ", tape.outputSlots.size(),
                " output grads");
    std::vector<double> adjoints(tape.instrs.size(), 0.0);
    for (size_t k = 0; k < tape.outputSlots.size(); ++k)
        adjoints[tape.outputSlots[k]] += output_grads[k];
    input_grads.assign(tape.numVars, 0.0);

    double dummy = 0.0;
    for (size_t idx = tape.instrs.size(); idx-- > 0;) {
        const RawInstr &instr = tape.instrs[idx];
        double adj = adjoints[idx];
        if (adj == 0.0)
            continue;
        if (instr.op == OpCode::ConstOp)
            continue;
        if (instr.op == OpCode::VarOp) {
            input_grads[static_cast<size_t>(instr.payload)] += adj;
            continue;
        }
        double a0 = values[instr.a0];
        double a1 = instr.a1 >= 0 ? values[instr.a1] : 0.0;
        opk::backpropOp(instr.op, adj, values[idx], a0, a1,
                        &adjoints[instr.a0],
                        instr.a1 >= 0 ? &adjoints[instr.a1] : &dummy,
                        instr.a2 >= 0 ? &adjoints[instr.a2] : &dummy);
    }
}

void
programForward(const TapeProgram &program,
               const std::vector<double> &inputs,
               std::vector<double> &values,
               std::vector<double> &outputs)
{
    FELIX_CHECK(inputs.size() == program.numVars,
                "programForward: expected ", program.numVars,
                " inputs");
    values.assign(program.numSlots(), 0.0);
    std::copy(program.constants.begin(), program.constants.end(),
              values.begin());
    std::copy(inputs.begin(), inputs.end(),
              values.begin() + program.firstVarSlot());
    size_t slot = program.firstOpSlot();
    for (const TapeInstr &instr : program.instrs) {
        double args[3] = {0, 0, 0};
        args[0] = values[instr.a0];
        if (instr.a1 >= 0)
            args[1] = values[instr.a1];
        if (instr.a2 >= 0)
            args[2] = values[instr.a2];
        values[slot++] = opk::evalOpInline(instr.op, args);
    }
    outputs.resize(program.outputSlots.size());
    for (size_t k = 0; k < program.outputSlots.size(); ++k)
        outputs[k] = values[program.outputSlots[k]];
}

void
programBackward(const TapeProgram &program,
                const std::vector<double> &values,
                const std::vector<double> &output_grads,
                std::vector<double> &input_grads)
{
    FELIX_CHECK(!program.forwardOnly,
                "programBackward on a forward-only tape");
    FELIX_CHECK(values.size() == program.numSlots(),
                "programBackward: run programForward first");
    FELIX_CHECK(output_grads.size() == program.outputSlots.size(),
                "programBackward: expected ",
                program.outputSlots.size(), " output grads");
    std::vector<double> adjoints(program.numSlots(), 0.0);
    for (size_t k = 0; k < program.outputSlots.size(); ++k)
        adjoints[program.outputSlots[k]] += output_grads[k];

    double dummy = 0.0;
    for (size_t i = program.instrs.size(); i-- > 0;) {
        const TapeInstr &instr = program.instrs[i];
        size_t slot = program.firstOpSlot() + i;
        double adj = adjoints[slot];
        if (adj == 0.0)
            continue;
        double a0 = values[instr.a0];
        double a1 = instr.a1 >= 0 ? values[instr.a1] : 0.0;
        opk::backpropOp(instr.op, adj, values[slot], a0, a1,
                        &adjoints[instr.a0],
                        instr.a1 >= 0 ? &adjoints[instr.a1] : &dummy,
                        instr.a2 >= 0 ? &adjoints[instr.a2] : &dummy);
    }
    // Adjoint slots accumulate via += from +0.0, which can never
    // produce -0.0, so a plain copy reproduces the historical
    // "+= only when nonzero" extraction bit for bit.
    input_grads.resize(program.numVars);
    std::copy(adjoints.begin() + program.firstVarSlot(),
              adjoints.begin() + program.firstVarSlot() +
                  program.numVars,
              input_grads.begin());
}

} // namespace expr
} // namespace felix
