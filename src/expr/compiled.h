/**
 * @file
 * Tape compilation of expression DAGs.
 *
 * Gradient descent evaluates the same feature formulas thousands of
 * times at different variable values. CompiledExprs lowers a set of
 * expression roots into a linear instruction tape (one instruction
 * per distinct DAG node, topologically ordered) so that
 *  - forward evaluation is a tight loop over flat arrays, and
 *  - reverse-mode differentiation replays the tape backwards,
 *    accumulating adjoints (the same trick PyTorch's autograd tape
 *    uses, which the paper relies on for back-propagation).
 */
#ifndef FELIX_EXPR_COMPILED_H_
#define FELIX_EXPR_COMPILED_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"

namespace felix {
namespace expr {

/**
 * Per-thread scratch buffers for evaluating one CompiledExprs tape:
 * forward values and adjoints, sized lazily on first use. A compiled
 * tape is immutable after construction, so any number of workers can
 * share one CompiledExprs as long as each brings its own EvalState.
 */
struct EvalState
{
    std::vector<double> values;    ///< forward value per tape slot
    std::vector<double> adjoints;  ///< adjoint per tape slot
    bool forwardDone = false;
};

/**
 * A set of expressions compiled to a shared evaluation tape.
 *
 * The tape itself is immutable after construction. The const
 * overloads taking an EvalState are thread-safe (one state per
 * thread); the stateless convenience overloads use a member state
 * and keep the historical single-threaded interface.
 */
class CompiledExprs
{
  public:
    /**
     * Compile the given roots.
     *
     * @param roots Output expressions (e.g. 82 features + penalties).
     * @param var_order Variable slot order; when empty, the distinct
     *        variables are collected and sorted by name.
     */
    explicit CompiledExprs(std::vector<Expr> roots,
                           std::vector<std::string> var_order = {});

    /** Variable slot order expected by forward(). */
    const std::vector<std::string> &varNames() const { return varNames_; }

    size_t numVars() const { return varNames_.size(); }
    size_t numOutputs() const { return outputSlots_.size(); }

    /** Number of tape instructions (== distinct DAG nodes). */
    size_t tapeSize() const { return tape_.size(); }

    /**
     * Evaluate all roots at the given variable values.
     *
     * @param inputs One value per variable, in varNames() order.
     * @param outputs Receives numOutputs() values.
     * @param state Per-thread scratch buffers.
     */
    void forward(const std::vector<double> &inputs,
                 std::vector<double> &outputs, EvalState &state) const;

    /**
     * Reverse-mode sweep using the values of the last forward() on
     * the same @p state.
     *
     * Computes d(sum_k output_grads[k] * output_k)/d(input_j).
     * Non-differentiable ops (min/max/select/abs) use the standard
     * one-sided subgradient convention; comparisons and floor have
     * zero derivative.
     *
     * @param output_grads Adjoint seed per output.
     * @param input_grads Receives numVars() gradients.
     * @param state The state forward() ran on.
     */
    void backward(const std::vector<double> &output_grads,
                  std::vector<double> &input_grads,
                  EvalState &state) const;

    /** Convenience: forward then return a copy of the outputs. */
    std::vector<double> eval(const std::vector<double> &inputs,
                             EvalState &state) const;

    // Single-threaded convenience overloads on a member state.
    void forward(const std::vector<double> &inputs,
                 std::vector<double> &outputs);
    void backward(const std::vector<double> &output_grads,
                  std::vector<double> &input_grads);
    std::vector<double> eval(const std::vector<double> &inputs);

  private:
    struct Instr
    {
        OpCode op;
        int32_t a0 = -1;    ///< operand slots into the value buffer
        int32_t a1 = -1;
        int32_t a2 = -1;
        double payload = 0; ///< constant value / variable input slot
    };

    std::vector<std::string> varNames_;
    std::vector<Instr> tape_;
    std::vector<int32_t> outputSlots_;
    EvalState state_;   ///< backs the stateless overloads only
};

/**
 * Evaluate a single expression at a variable assignment. Convenience
 * wrapper for tests and one-off evaluations (compiles a throwaway
 * tape; use CompiledExprs directly in hot loops).
 */
double evalExpr(const Expr &e,
                const std::unordered_map<std::string, double> &env);

} // namespace expr
} // namespace felix

#endif // FELIX_EXPR_COMPILED_H_
