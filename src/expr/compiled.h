/**
 * @file
 * Tape compilation of expression DAGs.
 *
 * Gradient descent evaluates the same feature formulas thousands of
 * times at different variable values. CompiledExprs lowers a set of
 * expression roots into a linear instruction tape (one instruction
 * per distinct DAG node, topologically ordered) and then runs the
 * tape optimizer (expr/tape.h) over it at construction, so that
 *  - forward evaluation is a tight loop over flat arrays whose
 *    per-eval instruction stream contains only real operations
 *    (constant and variable leaves live in dedicated slots),
 *  - reverse-mode differentiation replays the tape backwards,
 *    accumulating adjoints (the same trick PyTorch's autograd tape
 *    uses, which the paper relies on for back-propagation), and
 *  - up to kBatchLanes points can be evaluated in lockstep through
 *    the batched structure-of-arrays entry points, bit-identically
 *    to the scalar path per point (docs/tape_engine.md).
 */
#ifndef FELIX_EXPR_COMPILED_H_
#define FELIX_EXPR_COMPILED_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"
#include "expr/tape.h"
#include "support/aligned.h"
#include "support/batch.h"

namespace felix {
namespace jit {
class JitTape;
}
namespace expr {

/**
 * Per-thread scratch buffers for evaluating one CompiledExprs tape:
 * forward values and adjoints, sized lazily on first use. A compiled
 * tape is immutable after construction, so any number of workers can
 * share one CompiledExprs as long as each brings its own EvalState.
 *
 * A state binds to the tape it was last used with (constant slots
 * are prefilled at bind time) and rebinds transparently when handed
 * to a different tape, so long-lived per-worker states can be reused
 * across tapes and rounds without reallocation in steady state.
 */
struct EvalState
{
    std::vector<double> values;    ///< forward value per tape slot
    std::vector<double> adjoints;  ///< adjoint per tape slot
    bool forwardDone = false;
    uint64_t boundTape = 0;        ///< id of the tape values are for
};

/**
 * Scratch for the batched SoA entry points: the same buffers as
 * EvalState but with one row of kBatchLanes doubles per tape slot,
 * lane-major within the row. Allocate once per worker and reuse.
 * Rows are cache-line-aligned (support/aligned.h) so the SIMD
 * backends' loads and stores never split a line — the tape is one
 * long dependent chain of store-then-reload rows, and split-line
 * stores defeat store-to-load forwarding.
 */
struct BatchEvalState
{
    AlignedRows values;    ///< numSlots x kBatchLanes
    AlignedRows adjoints;  ///< numSlots x kBatchLanes
    size_t width = 0;              ///< active lanes of last forward
    bool forwardDone = false;
    uint64_t boundTape = 0;
};

/**
 * A set of expressions compiled to a shared evaluation tape.
 *
 * The tape itself is immutable after construction. The const
 * overloads taking an EvalState/BatchEvalState are thread-safe (one
 * state per thread); the stateless convenience overloads use a
 * member state and keep the historical single-threaded interface.
 */
class CompiledExprs
{
  public:
    /**
     * Compile the given roots.
     *
     * @param roots Output expressions (e.g. 82 features + penalties).
     * @param var_order Variable slot order; when empty, the distinct
     *        variables are collected and sorted by name.
     * @param forward_only Promise that backward() will never run on
     *        this tape; unlocks the identity-forwarding optimizer
     *        pass (which is forward-bit-exact but not
     *        backward-bit-exact, see expr/tape.h).
     */
    explicit CompiledExprs(std::vector<Expr> roots,
                           std::vector<std::string> var_order = {},
                           bool forward_only = false);

    ~CompiledExprs(); // out of line: jit::JitTape is incomplete here

    /** Variable slot order expected by forward(). */
    const std::vector<std::string> &varNames() const { return varNames_; }

    size_t numVars() const { return varNames_.size(); }
    size_t numOutputs() const { return program_.outputSlots.size(); }

    /** Number of raw tape instructions (== distinct DAG nodes). */
    size_t tapeSize() const { return program_.rawSize; }

    /** Number of per-eval instructions after the optimizer pass. */
    size_t optimizedSize() const { return program_.instrs.size(); }

    /** What the optimizer did to this tape. */
    const TapeOptStats &optStats() const { return optStats_; }

    /** The optimized program (tests and the microbenchmark). */
    const TapeProgram &program() const { return program_; }

    /**
     * Evaluate all roots at the given variable values.
     *
     * @param inputs One value per variable, in varNames() order.
     * @param outputs Receives numOutputs() values.
     * @param state Per-thread scratch buffers.
     */
    void forward(const std::vector<double> &inputs,
                 std::vector<double> &outputs, EvalState &state) const;

    /**
     * Reverse-mode sweep using the values of the last forward() on
     * the same @p state.
     *
     * Computes d(sum_k output_grads[k] * output_k)/d(input_j).
     * Non-differentiable ops (min/max/select/abs) use the standard
     * one-sided subgradient convention; comparisons and floor have
     * zero derivative.
     *
     * @param output_grads Adjoint seed per output.
     * @param input_grads Receives numVars() gradients.
     * @param state The state forward() ran on.
     */
    void backward(const std::vector<double> &output_grads,
                  std::vector<double> &input_grads,
                  EvalState &state) const;

    /**
     * Evaluate @p width points (1..kBatchLanes) in lockstep.
     *
     * All buffers are SoA rows of kBatchLanes doubles:
     * inputs[v * kBatchLanes + lane] is variable v of point `lane`,
     * outputs[k * kBatchLanes + lane] likewise. Lanes >= width are
     * padding; the engine evaluates them on copies of lane 0 so the
     * hot loops keep their fixed trip count, and their outputs are
     * unspecified. Each active lane's outputs are bit-identical to a
     * scalar forward() of the same point.
     *
     * @param inputs numVars() rows.
     * @param width Active lane count, 1..kBatchLanes.
     * @param outputs Receives numOutputs() rows.
     * @param state Per-thread batched scratch.
     */
    void forwardBatch(const double *inputs, size_t width,
                      double *outputs, BatchEvalState &state) const;

    /**
     * Batched reverse sweep over the values of the last
     * forwardBatch() on @p state. Seeds lanes >= width with zero
     * adjoints, so padding contributes nothing. Each active lane's
     * gradients are bit-identical to a scalar backward() of the same
     * point.
     *
     * @param output_grads numOutputs() rows (adjoint seeds).
     * @param input_grads Receives numVars() rows.
     * @param state The state forwardBatch() ran on.
     */
    void backwardBatch(const double *output_grads,
                       double *input_grads,
                       BatchEvalState &state) const;

    // ----- Fused-step entry points (costmodel/fused.h) -----------
    //
    // forwardBatch/backwardBatch round-trip every output row through
    // caller-owned buffers. The fused surrogate step instead reads
    // tape outputs and seeds adjoints directly inside the SoA slot
    // buffers, keeping the 82-feature rows resident in L1 between
    // the tape and the MLP. These split entry points expose that:
    //
    //   forwardBatchKeep(...);             // sweep, no output copy
    //   ... read outputRowPtr(k, state) rows in place ...
    //   beginBackwardBatch(state);         // zero the adjoints
    //   ... accumulate into outputAdjRowPtr(k, state) rows ...
    //   finishBackwardBatch(grads, state); // reverse sweep + copy
    //
    // forwardBatch/backwardBatch are these plus the copies, so both
    // paths execute the identical kernel sequence bit for bit.

    /** forwardBatch without materializing the outputs; read them via
     *  outputRowPtr(). */
    void forwardBatchKeep(const double *inputs, size_t width,
                          BatchEvalState &state) const;

    /** Row of output @p k inside @p state after forwardBatchKeep().
     *  Valid until the next forward on the state. */
    const double *outputRowPtr(size_t k,
                               const BatchEvalState &state) const;

    /** Zero the adjoint buffer ahead of seeding. Call after a
     *  forward on @p state, then accumulate seeds into
     *  outputAdjRowPtr() rows (active lanes only, exactly like the
     *  output_grads contract of backwardBatch). */
    void beginBackwardBatch(BatchEvalState &state) const;

    /** Adjoint-seed row of output @p k (after beginBackwardBatch). */
    double *outputAdjRowPtr(size_t k, BatchEvalState &state) const;

    /** Reverse sweep over the seeded adjoints; writes numVars() rows
     *  of input gradients, exactly like backwardBatch. */
    void finishBackwardBatch(double *input_grads,
                             BatchEvalState &state) const;

    /** Convenience: forward then return a copy of the outputs. */
    std::vector<double> eval(const std::vector<double> &inputs,
                             EvalState &state) const;

    // Single-threaded convenience overloads on a member state.
    void forward(const std::vector<double> &inputs,
                 std::vector<double> &outputs);
    void backward(const std::vector<double> &output_grads,
                  std::vector<double> &input_grads);
    std::vector<double> eval(const std::vector<double> &inputs);

  private:
    void bind(EvalState &state) const;
    void bind(BatchEvalState &state) const;

    /**
     * The JIT-compiled tape, or nullptr when the JIT is off,
     * unsupported, or compilation failed. Compiled lazily on first
     * use (most tapes are short-lived throwaways; only the ones that
     * reach a batched hot loop pay for emission), double-checked so
     * concurrent workers race benignly. jit::enabled() is consulted
     * on every call — not captured at compile time — so runtime
     * toggles (felix-tune --no-jit, benches A/B-ing) take effect at
     * the next batch even for already-compiled tapes.
     */
    const jit::JitTape *jitTape() const;

    std::vector<std::string> varNames_;
    TapeProgram program_;
    TapeOptStats optStats_;
    uint64_t tapeId_;   ///< process-unique, guards state rebinding
    EvalState state_;   ///< backs the stateless overloads only

    mutable std::mutex jitMutex_;
    mutable std::unique_ptr<jit::JitTape> jitTape_;
    mutable std::atomic<const jit::JitTape *> jitCache_{nullptr};
    mutable std::atomic<bool> jitFailed_{false};
};

/**
 * Evaluate a single expression at a variable assignment. Convenience
 * wrapper for tests and one-off evaluations (compiles a throwaway
 * tape; use CompiledExprs directly in hot loops).
 */
double evalExpr(const Expr &e,
                const std::unordered_map<std::string, double> &env);

} // namespace expr
} // namespace felix

#endif // FELIX_EXPR_COMPILED_H_
