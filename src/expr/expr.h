/**
 * @file
 * Symbolic expression DAG.
 *
 * Felix represents schedule-variable formulas (loop bounds, feature
 * formulas, legality constraints, penalty functions) as immutable,
 * hash-consed expression nodes. Two structurally equal expressions
 * are the same node, so equality is pointer equality and DAG-wide
 * passes (evaluation, autodiff, rewriting) are linear in the number
 * of distinct nodes.
 *
 * Construction performs constant folding and a small set of local
 * algebraic simplifications (x+0, x*1, log(exp x), ...), which keeps
 * feature formulas compact without a separate normalization pass.
 *
 * Construction is thread-safe: the intern table is sharded into
 * lock-striped sub-tables and node hashes are purely structural, so
 * concurrent interning from pool workers yields the same canonical
 * nodes as a single-threaded run (see docs/parallelism.md).
 */
#ifndef FELIX_EXPR_EXPR_H_
#define FELIX_EXPR_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace felix {
namespace expr {

/** Operation tags for expression nodes. */
enum class OpCode : uint8_t {
    ConstOp,   ///< floating-point literal
    VarOp,     ///< named schedule variable
    Add, Sub, Mul, Div,
    Pow,       ///< pow(base, exponent)
    Min, Max,
    Neg,
    Log,       ///< natural logarithm
    Exp,
    Sqrt,
    Abs,
    Floor,
    Atan,      ///< arctangent (used by the Cauchy smoothing kernel)
    Sigmoid,   ///< smooth step in (0,1); kernel-dependent shape
    Lt, Le, Gt, Ge, Eq, Ne,   ///< comparisons producing 0/1
    Select,    ///< select(cond, then, else)
};

/** Human-readable name for an opcode (used by the printer). */
const char *opName(OpCode op);

/** Number of operands an opcode takes (0 for leaf nodes). */
int opArity(OpCode op);

class ExprNode;
using ExprNodePtr = std::shared_ptr<const ExprNode>;

/**
 * Value-type handle to an interned expression node.
 *
 * A default-constructed Expr is "undefined" and must not be used as
 * an operand. All factory functions and operators return defined
 * expressions.
 */
class Expr
{
  public:
    Expr() = default;

    /** Wrap an existing node (internal use by the interner). */
    explicit Expr(ExprNodePtr node) : node_(std::move(node)) {}

    /** A floating-point literal. */
    static Expr constant(double value);

    /** An integer literal (stored as double; exact up to 2^53). */
    static Expr intConst(int64_t value);

    /** A named schedule variable. Same name => same node. */
    static Expr var(const std::string &name);

    bool defined() const { return node_ != nullptr; }
    const ExprNode *get() const { return node_.get(); }
    const ExprNode *operator->() const { return node_.get(); }
    const ExprNodePtr &ptr() const { return node_; }

    /** Structural (== pointer) equality thanks to hash-consing. */
    bool same(const Expr &other) const { return node_ == other.node_; }

    /** True when this node is a constant (optionally a given value). */
    bool isConst() const;
    bool isConst(double value) const;

    /** Constant value; panics when not a constant. */
    double constValue() const;

    /** True when this node is a variable. */
    bool isVar() const;

    /** Variable name; panics when not a variable. */
    const std::string &varName() const;

    /** Render to a human-readable string. */
    std::string str() const;

  private:
    ExprNodePtr node_;
};

/**
 * An immutable interned expression node.
 */
class ExprNode
{
  public:
    ExprNode(OpCode op, double value, std::string var_name,
             std::vector<Expr> args, uint64_t hash, uint64_t id);

    OpCode op() const { return op_; }
    double value() const { return value_; }
    const std::string &varName() const { return varName_; }
    const std::vector<Expr> &args() const { return args_; }

    /** Structural hash (combined from child hashes; intern-order
     * independent, identical across threads and runs). */
    uint64_t hash() const { return hash_; }

    /** Unique intern id. NOT ordering-stable under concurrent
     * interning; use only as an opaque identity, never for order. */
    uint64_t id() const { return id_; }

  private:
    OpCode op_;
    double value_;          ///< payload for ConstOp
    std::string varName_;   ///< payload for VarOp
    std::vector<Expr> args_;
    uint64_t hash_;
    uint64_t id_;
};

// Arithmetic constructors. All perform folding/simplification.
Expr add(Expr a, Expr b);
Expr sub(Expr a, Expr b);
Expr mul(Expr a, Expr b);
Expr div(Expr a, Expr b);
Expr pow(Expr base, Expr exponent);
Expr min(Expr a, Expr b);
Expr max(Expr a, Expr b);
Expr neg(Expr a);
Expr log(Expr a);
Expr exp(Expr a);
Expr sqrt(Expr a);
Expr abs(Expr a);
Expr floor(Expr a);
Expr atan(Expr a);
Expr sigmoid(Expr a);
Expr lt(Expr a, Expr b);
Expr le(Expr a, Expr b);
Expr gt(Expr a, Expr b);
Expr ge(Expr a, Expr b);
Expr eq(Expr a, Expr b);
Expr ne(Expr a, Expr b);
Expr select(Expr cond, Expr then_val, Expr else_val);

inline Expr operator+(Expr a, Expr b) { return add(a, b); }
inline Expr operator-(Expr a, Expr b) { return sub(a, b); }
inline Expr operator*(Expr a, Expr b) { return mul(a, b); }
inline Expr operator/(Expr a, Expr b) { return div(a, b); }
inline Expr operator-(Expr a) { return neg(a); }

inline Expr operator+(Expr a, double b) { return add(a, Expr::constant(b)); }
inline Expr operator+(double a, Expr b) { return add(Expr::constant(a), b); }
inline Expr operator-(Expr a, double b) { return sub(a, Expr::constant(b)); }
inline Expr operator-(double a, Expr b) { return sub(Expr::constant(a), b); }
inline Expr operator*(Expr a, double b) { return mul(a, Expr::constant(b)); }
inline Expr operator*(double a, Expr b) { return mul(Expr::constant(a), b); }
inline Expr operator/(Expr a, double b) { return div(a, Expr::constant(b)); }
inline Expr operator/(double a, Expr b) { return div(Expr::constant(a), b); }

/** Evaluate the scalar semantics of an opcode on concrete values. */
double evalOp(OpCode op, const double *args);

/** Collect the distinct variables reachable from the given roots. */
std::vector<std::string> collectVars(const std::vector<Expr> &roots);

/** Substitute variables by expressions (name -> replacement). */
Expr substitute(const Expr &root,
                const std::vector<std::pair<std::string, Expr>> &map);

/** Count distinct nodes reachable from the roots (for tests/stats). */
size_t countNodes(const std::vector<Expr> &roots);

/** Number of live interned nodes in the global intern table. */
size_t internTableSize();

} // namespace expr
} // namespace felix

#endif // FELIX_EXPR_EXPR_H_
