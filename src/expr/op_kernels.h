/**
 * @file
 * Single source of truth for the scalar semantics of every opcode —
 * forward value and reverse-mode adjoint update — as small inline
 * functions.
 *
 * Both the scalar tape walk and the batched SoA lanes (and the
 * reference interpreters the tests compare against) call these same
 * inlined kernels, so one point evaluated through any path executes
 * the identical floating-point operation sequence and produces
 * bit-identical results. Do not duplicate these formulas elsewhere:
 * a reassociated copy would silently break the determinism contract
 * (docs/tape_engine.md).
 */
#ifndef FELIX_EXPR_OP_KERNELS_H_
#define FELIX_EXPR_OP_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "expr/expr.h"
#include "support/simd.h"

namespace felix {
namespace expr {
namespace opk {

// ---------------------------------------------------------------
// Forward kernels. Semantics notes (totalized division, safe log,
// clamped exp/sqrt, the algebraic sigmoid) are documented on evalOp
// in expr.h; the bodies here are the authoritative definitions.
// ---------------------------------------------------------------

inline double fwdAdd(double a, double b) { return a + b; }
inline double fwdSub(double a, double b) { return a - b; }
inline double fwdMul(double a, double b) { return a * b; }

inline double
fwdDiv(double a, double b)
{
    // Totalized division: sizes are >= 1 in valid schedules; an
    // optimizer probing near 0 must still get a finite value.
    if (b == 0.0)
        return a >= 0.0 ? a * 1e18 : a * -1e18;
    return a / b;
}

inline double fwdPow(double a, double b) { return std::pow(a, b); }
inline double fwdMin(double a, double b) { return std::min(a, b); }
inline double fwdMax(double a, double b) { return std::max(a, b); }
inline double fwdNeg(double a) { return -a; }

inline double
fwdLog(double a)
{
    // Safe log keeps the surrogate finite when the optimizer probes
    // infeasible points; the penalty terms pull it back.
    return std::log(std::max(a, 1e-300));
}

inline double fwdExp(double a) { return std::exp(std::min(a, 700.0)); }
inline double fwdSqrt(double a) { return std::sqrt(std::max(a, 0.0)); }
inline double fwdAbs(double a) { return std::abs(a); }
inline double fwdFloor(double a) { return std::floor(a); }
inline double fwdAtan(double a) { return std::atan(a); }

inline double
fwdSigmoid(double a)
{
    // Smooth step from the algebraic kernel 1/sqrt(1+t^2):
    // S(x) = (1 + x/sqrt(1+x^2)) / 2, heavy-tailed vs. logistic.
    return 0.5 * (1.0 + a / std::sqrt(1.0 + a * a));
}

inline double fwdLt(double a, double b) { return a < b ? 1.0 : 0.0; }
inline double fwdLe(double a, double b) { return a <= b ? 1.0 : 0.0; }
inline double fwdGt(double a, double b) { return a > b ? 1.0 : 0.0; }
inline double fwdGe(double a, double b) { return a >= b ? 1.0 : 0.0; }
inline double fwdEq(double a, double b) { return a == b ? 1.0 : 0.0; }
inline double fwdNe(double a, double b) { return a != b ? 1.0 : 0.0; }

inline double
fwdSelect(double c, double t, double e)
{
    return c != 0.0 ? t : e;
}

/** Forward semantics of a non-leaf opcode on concrete operands. */
inline double
evalOpInline(OpCode op, const double *a)
{
    switch (op) {
      case OpCode::Add: return fwdAdd(a[0], a[1]);
      case OpCode::Sub: return fwdSub(a[0], a[1]);
      case OpCode::Mul: return fwdMul(a[0], a[1]);
      case OpCode::Div: return fwdDiv(a[0], a[1]);
      case OpCode::Pow: return fwdPow(a[0], a[1]);
      case OpCode::Min: return fwdMin(a[0], a[1]);
      case OpCode::Max: return fwdMax(a[0], a[1]);
      case OpCode::Neg: return fwdNeg(a[0]);
      case OpCode::Log: return fwdLog(a[0]);
      case OpCode::Exp: return fwdExp(a[0]);
      case OpCode::Sqrt: return fwdSqrt(a[0]);
      case OpCode::Abs: return fwdAbs(a[0]);
      case OpCode::Floor: return fwdFloor(a[0]);
      case OpCode::Atan: return fwdAtan(a[0]);
      case OpCode::Sigmoid: return fwdSigmoid(a[0]);
      case OpCode::Lt: return fwdLt(a[0], a[1]);
      case OpCode::Le: return fwdLe(a[0], a[1]);
      case OpCode::Gt: return fwdGt(a[0], a[1]);
      case OpCode::Ge: return fwdGe(a[0], a[1]);
      case OpCode::Eq: return fwdEq(a[0], a[1]);
      case OpCode::Ne: return fwdNe(a[0], a[1]);
      case OpCode::Select: return fwdSelect(a[0], a[1], a[2]);
      case OpCode::ConstOp:
      case OpCode::VarOp:
        break;
    }
    return 0.0;   // leaves are handled by the caller
}

// ---------------------------------------------------------------
// Reverse-mode kernel.
//
// Applies one instruction's adjoint update: given the node's adjoint
// `adj` (caller guarantees adj != 0), its forward value `v`, and its
// operand values a0/a1/a2, accumulates into the operand adjoint
// slots. The conditional structure (which slots receive an update,
// and when none do) is part of the bit-exactness contract: adding an
// explicit 0.0 where the scalar path added nothing could flip the
// sign of a -0.0 adjoint, so the conditions must stay exactly as
// they are here. Non-differentiable ops use one-sided subgradients;
// comparisons and floor have zero derivative (see
// CompiledExprs::backward docs).
// ---------------------------------------------------------------
inline void
backpropOp(OpCode op, double adj, double v, double a0, double a1,
           double *adj0, double *adj1, double *adj2)
{
    switch (op) {
      case OpCode::ConstOp:
      case OpCode::VarOp:
        break;    // leaves: handled by the engine
      case OpCode::Add:
        *adj0 += adj;
        *adj1 += adj;
        break;
      case OpCode::Sub:
        *adj0 += adj;
        *adj1 -= adj;
        break;
      case OpCode::Mul:
        *adj0 += adj * a1;
        *adj1 += adj * a0;
        break;
      case OpCode::Div: {
        if (a1 != 0.0) {
            *adj0 += adj / a1;
            *adj1 -= adj * a0 / (a1 * a1);
        }
        // At b == 0 the totalized forward value is a huge
        // surrogate; propagating its "gradient" would only
        // destabilize the search, so we drop it (the penalty
        // terms steer the optimizer back into the feasible box).
        break;
      }
      case OpCode::Pow: {
        if (a0 > 0.0) {
            *adj0 += adj * a1 * std::pow(a0, a1 - 1.0);
            *adj1 += adj * v * std::log(a0);
        } else if (a0 < 0.0) {
            *adj0 += adj * a1 * std::pow(a0, a1 - 1.0);
        }
        break;
      }
      case OpCode::Min:
        if (a0 <= a1)
            *adj0 += adj;
        else
            *adj1 += adj;
        break;
      case OpCode::Max:
        if (a0 >= a1)
            *adj0 += adj;
        else
            *adj1 += adj;
        break;
      case OpCode::Neg:
        *adj0 -= adj;
        break;
      case OpCode::Log:
        *adj0 += adj / std::max(a0, 1e-300);
        break;
      case OpCode::Exp:
        *adj0 += adj * v;
        break;
      case OpCode::Sqrt: {
        if (a0 > 0.0)
            *adj0 += adj * 0.5 / std::sqrt(a0);
        break;
      }
      case OpCode::Abs:
        *adj0 += a0 >= 0.0 ? adj : -adj;
        break;
      case OpCode::Floor:
        break;    // piecewise-constant: zero derivative
      case OpCode::Atan:
        *adj0 += adj / (1.0 + a0 * a0);
        break;
      case OpCode::Sigmoid: {
        // d/dx [ (1 + x/sqrt(1+x^2)) / 2 ] = (1+x^2)^(-3/2) / 2
        double t = 1.0 + a0 * a0;
        *adj0 += adj * 0.5 / (t * std::sqrt(t));
        break;
      }
      case OpCode::Lt:
      case OpCode::Le:
      case OpCode::Gt:
      case OpCode::Ge:
      case OpCode::Eq:
      case OpCode::Ne:
        break;    // step functions: zero derivative a.e.
      case OpCode::Select:
        if (a0 != 0.0)
            *adj1 += adj;
        else
            *adj2 += adj;
        break;
    }
}

// ---------------------------------------------------------------
// Lane-vector forms: the same kernels templated over a SIMD vector
// type V from support/simd.h (one of the arch_* backends). Per lane
// these compute the identical FP operation sequence as the scalar
// kernels above — every vector op used is either an IEEE basic
// operation, an exact operation, or a bitwise blend, and
// transcendentals go through perLane() to the very same libm calls
// — so batched evaluation stays bit-identical to scalar at every
// width (docs/tape_engine.md section 3). When editing a scalar
// kernel, update its vector twin in the same commit; the parity
// matrix in tests/test_simd.cc fails on any divergence.
// ---------------------------------------------------------------

template <class V> inline V fwdAddV(V a, V b) { return a + b; }
template <class V> inline V fwdSubV(V a, V b) { return a - b; }
template <class V> inline V fwdMulV(V a, V b) { return a * b; }

template <class V>
inline V
fwdDivV(V a, V b)
{
    const V zero = V::broadcast(0.0);
    // Division is the hottest tape op; zero divisors are vanishingly
    // rare in practice (they are loop extents), so the totalized
    // branch is only blended in when some lane actually divides by
    // zero. The fast path's a / b is the identical IEEE operation,
    // and the slow path's blend matches the scalar branch exactly
    // (the discarded a/b lanes cannot leak through a bitwise
    // select).
    const auto bZero = ceq(b, zero);
    if (!anyLane(bZero))
        return a / b;
    const V special = a * select(cge(a, zero), V::broadcast(1e18),
                                 V::broadcast(-1e18));
    return select(bZero, special, a / b);
}

template <class V>
inline V
fwdPowV(V a, V b)
{
    return simd::perLane2(a, b,
                          [](double x, double y) { return fwdPow(x, y); });
}

template <class V> inline V fwdMinV(V a, V b) { return vmin(a, b); }
template <class V> inline V fwdMaxV(V a, V b) { return vmax(a, b); }
template <class V> inline V fwdNegV(V a) { return vneg(a); }

template <class V>
inline V
fwdLogV(V a)
{
    // max is exact, so clamping in vector registers then taking logs
    // per lane equals fwdLog lane-wise.
    return simd::perLane(vmax(a, V::broadcast(1e-300)),
                         [](double x) { return std::log(x); });
}

template <class V>
inline V
fwdExpV(V a)
{
    return simd::perLane(vmin(a, V::broadcast(700.0)),
                         [](double x) { return std::exp(x); });
}

template <class V>
inline V
fwdSqrtV(V a)
{
    // Hardware sqrt is correctly rounded (IEEE-754), identical to
    // std::sqrt.
    return vsqrt(vmax(a, V::broadcast(0.0)));
}

template <class V> inline V fwdAbsV(V a) { return vabs(a); }
template <class V> inline V fwdFloorV(V a) { return vfloor(a); }

template <class V>
inline V
fwdAtanV(V a)
{
    return simd::perLane(a, [](double x) { return std::atan(x); });
}

template <class V>
inline V
fwdSigmoidV(V a)
{
    const V one = V::broadcast(1.0);
    return V::broadcast(0.5) * (one + a / vsqrt(one + a * a));
}

// Comparison results blend the exact constants 1.0 / +0.0, matching
// the scalar ternaries on every input including NaN.
template <class V>
inline V
fwdLtV(V a, V b)
{
    return select(clt(a, b), V::broadcast(1.0), V::broadcast(0.0));
}
template <class V>
inline V
fwdLeV(V a, V b)
{
    return select(cle(a, b), V::broadcast(1.0), V::broadcast(0.0));
}
template <class V>
inline V
fwdGtV(V a, V b)
{
    return select(cgt(a, b), V::broadcast(1.0), V::broadcast(0.0));
}
template <class V>
inline V
fwdGeV(V a, V b)
{
    return select(cge(a, b), V::broadcast(1.0), V::broadcast(0.0));
}
template <class V>
inline V
fwdEqV(V a, V b)
{
    return select(ceq(a, b), V::broadcast(1.0), V::broadcast(0.0));
}
template <class V>
inline V
fwdNeV(V a, V b)
{
    return select(cne(a, b), V::broadcast(1.0), V::broadcast(0.0));
}

template <class V>
inline V
fwdSelectV(V c, V t, V e)
{
    return select(cne(c, V::broadcast(0.0)), t, e);
}

// ---------------------------------------------------------------
// Vector reverse-mode kernel: one instruction's adjoint update on a
// chunk of V::kWidth lanes. adj0/adj1/adj2 point at the operand
// adjoint chunks (adj1/adj2 may be null for ops that never touch
// them); the caller has already skipped chunks whose adjoints are
// all zero.
//
// Why blending preserves the scalar conditional structure: the
// scalar kernel only updates a slot when (adj != 0) and the
// op-specific condition holds. Here each contribution is computed
// for all lanes, then select()ed to exact +0.0 on lanes where the
// scalar path would have added nothing — and adding +0.0 to an
// adjoint accumulator is a bitwise no-op, because accumulator rows
// start at +0.0 and addition only produces -0.0 from (-0)+(-0), so
// a row can never hold -0.0. The select happens AFTER the arithmetic
// (masking operands before a multiply would not stop 0*inf = NaN),
// and NaN adjoints compare != 0 just as in the scalar zero-skip.
// Add/Sub/Neg contributions are adj itself, which is exactly +0.0 on
// inactive lanes already — no mask needed. Pow's adjoint needs libm,
// so it runs the scalar kernel per lane (identical by definition).
// ---------------------------------------------------------------
template <class V>
inline void
backpropOpV(OpCode op, V adj, V v, V a0, V a1, double *adj0,
            double *adj1, double *adj2)
{
    const V zero = V::broadcast(0.0);
    const auto active = cne(adj, zero);
    const auto accum = [](double *p, V c) {
        (V::load(p) + c).store(p);
    };
    switch (op) {
      case OpCode::ConstOp:
      case OpCode::VarOp:
        break;
      case OpCode::Add:
        accum(adj0, adj);
        accum(adj1, adj);
        break;
      case OpCode::Sub:
        // a -= b is a += (-b) exactly.
        accum(adj0, adj);
        accum(adj1, vneg(adj));
        break;
      case OpCode::Mul:
        accum(adj0, select(active, adj * a1, zero));
        accum(adj1, select(active, adj * a0, zero));
        break;
      case OpCode::Div: {
        const auto m = mand(active, cne(a1, zero));
        accum(adj0, select(m, adj / a1, zero));
        accum(adj1, select(m, vneg((adj * a0) / (a1 * a1)), zero));
        break;
      }
      case OpCode::Pow: {
        // pow/log adjoints stay on the scalar kernel per lane.
        constexpr std::size_t W = V::kWidth;
        double adjL[W], vL[W], a0L[W], a1L[W];
        adj.store(adjL);
        v.store(vL);
        a0.store(a0L);
        a1.store(a1L);
        double dummy = 0.0;
        for (std::size_t l = 0; l < W; ++l) {
            if (adjL[l] == 0.0)
                continue;
            backpropOp(OpCode::Pow, adjL[l], vL[l], a0L[l], a1L[l],
                       &adj0[l], &adj1[l], &dummy);
        }
        break;
      }
      case OpCode::Min: {
        const auto le = cle(a0, a1);
        accum(adj0, select(mand(active, le), adj, zero));
        accum(adj1, select(mandnot(active, le), adj, zero));
        break;
      }
      case OpCode::Max: {
        const auto ge = cge(a0, a1);
        accum(adj0, select(mand(active, ge), adj, zero));
        accum(adj1, select(mandnot(active, ge), adj, zero));
        break;
      }
      case OpCode::Neg:
        accum(adj0, vneg(adj));
        break;
      case OpCode::Log:
        accum(adj0, select(active,
                           adj / vmax(a0, V::broadcast(1e-300)),
                           zero));
        break;
      case OpCode::Exp:
        accum(adj0, select(active, adj * v, zero));
        break;
      case OpCode::Sqrt: {
        const auto m = mand(active, cgt(a0, zero));
        // The a0 <= 0 lanes compute sqrt of a clamped-away value and
        // are blended out; the kept lanes follow the scalar
        // (adj * 0.5) / sqrt(a0) order.
        accum(adj0,
              select(m, (adj * V::broadcast(0.5)) / vsqrt(a0), zero));
        break;
      }
      case OpCode::Abs:
        accum(adj0, select(active,
                           select(cge(a0, zero), adj, vneg(adj)),
                           zero));
        break;
      case OpCode::Floor:
        break;
      case OpCode::Atan:
        accum(adj0, select(active,
                           adj / (V::broadcast(1.0) + a0 * a0),
                           zero));
        break;
      case OpCode::Sigmoid: {
        const V t = V::broadcast(1.0) + a0 * a0;
        accum(adj0,
              select(active,
                     (adj * V::broadcast(0.5)) / (t * vsqrt(t)),
                     zero));
        break;
      }
      case OpCode::Lt:
      case OpCode::Le:
      case OpCode::Gt:
      case OpCode::Ge:
      case OpCode::Eq:
      case OpCode::Ne:
        break;
      case OpCode::Select: {
        const auto c = cne(a0, zero);
        accum(adj1, select(mand(active, c), adj, zero));
        accum(adj2, select(mandnot(active, c), adj, zero));
        break;
      }
    }
}

} // namespace opk
} // namespace expr
} // namespace felix

#endif // FELIX_EXPR_OP_KERNELS_H_
