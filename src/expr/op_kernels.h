/**
 * @file
 * Single source of truth for the scalar semantics of every opcode —
 * forward value and reverse-mode adjoint update — as small inline
 * functions.
 *
 * Both the scalar tape walk and the batched SoA lanes (and the
 * reference interpreters the tests compare against) call these same
 * inlined kernels, so one point evaluated through any path executes
 * the identical floating-point operation sequence and produces
 * bit-identical results. Do not duplicate these formulas elsewhere:
 * a reassociated copy would silently break the determinism contract
 * (docs/tape_engine.md).
 */
#ifndef FELIX_EXPR_OP_KERNELS_H_
#define FELIX_EXPR_OP_KERNELS_H_

#include <algorithm>
#include <cmath>

#include "expr/expr.h"

namespace felix {
namespace expr {
namespace opk {

// ---------------------------------------------------------------
// Forward kernels. Semantics notes (totalized division, safe log,
// clamped exp/sqrt, the algebraic sigmoid) are documented on evalOp
// in expr.h; the bodies here are the authoritative definitions.
// ---------------------------------------------------------------

inline double fwdAdd(double a, double b) { return a + b; }
inline double fwdSub(double a, double b) { return a - b; }
inline double fwdMul(double a, double b) { return a * b; }

inline double
fwdDiv(double a, double b)
{
    // Totalized division: sizes are >= 1 in valid schedules; an
    // optimizer probing near 0 must still get a finite value.
    if (b == 0.0)
        return a >= 0.0 ? a * 1e18 : a * -1e18;
    return a / b;
}

inline double fwdPow(double a, double b) { return std::pow(a, b); }
inline double fwdMin(double a, double b) { return std::min(a, b); }
inline double fwdMax(double a, double b) { return std::max(a, b); }
inline double fwdNeg(double a) { return -a; }

inline double
fwdLog(double a)
{
    // Safe log keeps the surrogate finite when the optimizer probes
    // infeasible points; the penalty terms pull it back.
    return std::log(std::max(a, 1e-300));
}

inline double fwdExp(double a) { return std::exp(std::min(a, 700.0)); }
inline double fwdSqrt(double a) { return std::sqrt(std::max(a, 0.0)); }
inline double fwdAbs(double a) { return std::abs(a); }
inline double fwdFloor(double a) { return std::floor(a); }
inline double fwdAtan(double a) { return std::atan(a); }

inline double
fwdSigmoid(double a)
{
    // Smooth step from the algebraic kernel 1/sqrt(1+t^2):
    // S(x) = (1 + x/sqrt(1+x^2)) / 2, heavy-tailed vs. logistic.
    return 0.5 * (1.0 + a / std::sqrt(1.0 + a * a));
}

inline double fwdLt(double a, double b) { return a < b ? 1.0 : 0.0; }
inline double fwdLe(double a, double b) { return a <= b ? 1.0 : 0.0; }
inline double fwdGt(double a, double b) { return a > b ? 1.0 : 0.0; }
inline double fwdGe(double a, double b) { return a >= b ? 1.0 : 0.0; }
inline double fwdEq(double a, double b) { return a == b ? 1.0 : 0.0; }
inline double fwdNe(double a, double b) { return a != b ? 1.0 : 0.0; }

inline double
fwdSelect(double c, double t, double e)
{
    return c != 0.0 ? t : e;
}

/** Forward semantics of a non-leaf opcode on concrete operands. */
inline double
evalOpInline(OpCode op, const double *a)
{
    switch (op) {
      case OpCode::Add: return fwdAdd(a[0], a[1]);
      case OpCode::Sub: return fwdSub(a[0], a[1]);
      case OpCode::Mul: return fwdMul(a[0], a[1]);
      case OpCode::Div: return fwdDiv(a[0], a[1]);
      case OpCode::Pow: return fwdPow(a[0], a[1]);
      case OpCode::Min: return fwdMin(a[0], a[1]);
      case OpCode::Max: return fwdMax(a[0], a[1]);
      case OpCode::Neg: return fwdNeg(a[0]);
      case OpCode::Log: return fwdLog(a[0]);
      case OpCode::Exp: return fwdExp(a[0]);
      case OpCode::Sqrt: return fwdSqrt(a[0]);
      case OpCode::Abs: return fwdAbs(a[0]);
      case OpCode::Floor: return fwdFloor(a[0]);
      case OpCode::Atan: return fwdAtan(a[0]);
      case OpCode::Sigmoid: return fwdSigmoid(a[0]);
      case OpCode::Lt: return fwdLt(a[0], a[1]);
      case OpCode::Le: return fwdLe(a[0], a[1]);
      case OpCode::Gt: return fwdGt(a[0], a[1]);
      case OpCode::Ge: return fwdGe(a[0], a[1]);
      case OpCode::Eq: return fwdEq(a[0], a[1]);
      case OpCode::Ne: return fwdNe(a[0], a[1]);
      case OpCode::Select: return fwdSelect(a[0], a[1], a[2]);
      case OpCode::ConstOp:
      case OpCode::VarOp:
        break;
    }
    return 0.0;   // leaves are handled by the caller
}

// ---------------------------------------------------------------
// Reverse-mode kernel.
//
// Applies one instruction's adjoint update: given the node's adjoint
// `adj` (caller guarantees adj != 0), its forward value `v`, and its
// operand values a0/a1/a2, accumulates into the operand adjoint
// slots. The conditional structure (which slots receive an update,
// and when none do) is part of the bit-exactness contract: adding an
// explicit 0.0 where the scalar path added nothing could flip the
// sign of a -0.0 adjoint, so the conditions must stay exactly as
// they are here. Non-differentiable ops use one-sided subgradients;
// comparisons and floor have zero derivative (see
// CompiledExprs::backward docs).
// ---------------------------------------------------------------
inline void
backpropOp(OpCode op, double adj, double v, double a0, double a1,
           double *adj0, double *adj1, double *adj2)
{
    switch (op) {
      case OpCode::ConstOp:
      case OpCode::VarOp:
        break;    // leaves: handled by the engine
      case OpCode::Add:
        *adj0 += adj;
        *adj1 += adj;
        break;
      case OpCode::Sub:
        *adj0 += adj;
        *adj1 -= adj;
        break;
      case OpCode::Mul:
        *adj0 += adj * a1;
        *adj1 += adj * a0;
        break;
      case OpCode::Div: {
        if (a1 != 0.0) {
            *adj0 += adj / a1;
            *adj1 -= adj * a0 / (a1 * a1);
        }
        // At b == 0 the totalized forward value is a huge
        // surrogate; propagating its "gradient" would only
        // destabilize the search, so we drop it (the penalty
        // terms steer the optimizer back into the feasible box).
        break;
      }
      case OpCode::Pow: {
        if (a0 > 0.0) {
            *adj0 += adj * a1 * std::pow(a0, a1 - 1.0);
            *adj1 += adj * v * std::log(a0);
        } else if (a0 < 0.0) {
            *adj0 += adj * a1 * std::pow(a0, a1 - 1.0);
        }
        break;
      }
      case OpCode::Min:
        if (a0 <= a1)
            *adj0 += adj;
        else
            *adj1 += adj;
        break;
      case OpCode::Max:
        if (a0 >= a1)
            *adj0 += adj;
        else
            *adj1 += adj;
        break;
      case OpCode::Neg:
        *adj0 -= adj;
        break;
      case OpCode::Log:
        *adj0 += adj / std::max(a0, 1e-300);
        break;
      case OpCode::Exp:
        *adj0 += adj * v;
        break;
      case OpCode::Sqrt: {
        if (a0 > 0.0)
            *adj0 += adj * 0.5 / std::sqrt(a0);
        break;
      }
      case OpCode::Abs:
        *adj0 += a0 >= 0.0 ? adj : -adj;
        break;
      case OpCode::Floor:
        break;    // piecewise-constant: zero derivative
      case OpCode::Atan:
        *adj0 += adj / (1.0 + a0 * a0);
        break;
      case OpCode::Sigmoid: {
        // d/dx [ (1 + x/sqrt(1+x^2)) / 2 ] = (1+x^2)^(-3/2) / 2
        double t = 1.0 + a0 * a0;
        *adj0 += adj * 0.5 / (t * std::sqrt(t));
        break;
      }
      case OpCode::Lt:
      case OpCode::Le:
      case OpCode::Gt:
      case OpCode::Ge:
      case OpCode::Eq:
      case OpCode::Ne:
        break;    // step functions: zero derivative a.e.
      case OpCode::Select:
        if (a0 != 0.0)
            *adj1 += adj;
        else
            *adj2 += adj;
        break;
    }
}

} // namespace opk
} // namespace expr
} // namespace felix

#endif // FELIX_EXPR_OP_KERNELS_H_
