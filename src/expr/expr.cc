#include "expr/expr.h"

#include "expr/op_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "support/logging.h"
#include "support/rng.h"

namespace felix {
namespace expr {

const char *
opName(OpCode op)
{
    switch (op) {
      case OpCode::ConstOp: return "const";
      case OpCode::VarOp: return "var";
      case OpCode::Add: return "+";
      case OpCode::Sub: return "-";
      case OpCode::Mul: return "*";
      case OpCode::Div: return "/";
      case OpCode::Pow: return "pow";
      case OpCode::Min: return "min";
      case OpCode::Max: return "max";
      case OpCode::Neg: return "neg";
      case OpCode::Log: return "log";
      case OpCode::Exp: return "exp";
      case OpCode::Sqrt: return "sqrt";
      case OpCode::Abs: return "abs";
      case OpCode::Floor: return "floor";
      case OpCode::Atan: return "atan";
      case OpCode::Sigmoid: return "sigmoid";
      case OpCode::Lt: return "<";
      case OpCode::Le: return "<=";
      case OpCode::Gt: return ">";
      case OpCode::Ge: return ">=";
      case OpCode::Eq: return "==";
      case OpCode::Ne: return "!=";
      case OpCode::Select: return "select";
    }
    return "?";
}

int
opArity(OpCode op)
{
    switch (op) {
      case OpCode::ConstOp:
      case OpCode::VarOp:
        return 0;
      case OpCode::Neg:
      case OpCode::Log:
      case OpCode::Exp:
      case OpCode::Sqrt:
      case OpCode::Abs:
      case OpCode::Floor:
      case OpCode::Atan:
      case OpCode::Sigmoid:
        return 1;
      case OpCode::Select:
        return 3;
      default:
        return 2;
    }
}

ExprNode::ExprNode(OpCode op, double value, std::string var_name,
                   std::vector<Expr> args, uint64_t hash, uint64_t id)
    : op_(op), value_(value), varName_(std::move(var_name)),
      args_(std::move(args)), hash_(hash), id_(id)
{
}

namespace {

uint64_t
constBits(double value)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

/**
 * Global hash-consing table, sharded into lock-striped sub-tables so
 * Expr construction is thread-safe (parallel tape compilation and
 * dataset synthesis intern concurrently). A node's hash is purely
 * structural — combined from its children's hashes, never from
 * intern order — so the shard an expression lands in, and every
 * canonicalization decision, is identical no matter which thread
 * interns it first.
 */
class Interner
{
  public:
    static Interner &
    instance()
    {
        static Interner interner;
        return interner;
    }

    Expr
    intern(OpCode op, double value, const std::string &var_name,
           std::vector<Expr> args)
    {
        uint64_t h = hashKey(op, value, var_name, args);
        Shard &shard = shards_[h % kShards];
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto range = shard.table.equal_range(h);
        for (auto it = range.first; it != range.second; ++it) {
            const ExprNode &node = *it->second;
            if (equalKey(node, op, value, var_name, args))
                return Expr(it->second);
        }
        // Ids are unique (shard-tagged) but NOT ordering-stable
        // across thread interleavings; nothing may depend on their
        // order.
        uint64_t id = shard.nextId++ * kShards + h % kShards;
        auto node = std::make_shared<const ExprNode>(
            op, value, var_name, std::move(args), h, id);
        shard.table.emplace(h, node);
        return Expr(node);
    }

    size_t
    size() const
    {
        size_t total = 0;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            total += shard.table.size();
        }
        return total;
    }

  private:
    static constexpr size_t kShards = 64;

    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_multimap<uint64_t, ExprNodePtr> table;
        uint64_t nextId = 0;
    };

    static uint64_t
    hashKey(OpCode op, double value, const std::string &var_name,
            const std::vector<Expr> &args)
    {
        uint64_t h = hashCombine(0x5f3759df, static_cast<uint64_t>(op));
        if (op == OpCode::ConstOp) {
            h = hashCombine(h, constBits(value));
        } else if (op == OpCode::VarOp) {
            h = hashCombine(h, std::hash<std::string>{}(var_name));
        }
        for (const Expr &arg : args)
            h = hashCombine(h, arg->hash());
        return h;
    }

    static bool
    equalKey(const ExprNode &node, OpCode op, double value,
             const std::string &var_name, const std::vector<Expr> &args)
    {
        if (node.op() != op || node.args().size() != args.size())
            return false;
        if (op == OpCode::ConstOp) {
            // Bitwise comparison so -0.0 and 0.0 stay distinct and
            // NaN constants intern consistently.
            if (constBits(node.value()) != constBits(value))
                return false;
        }
        if (op == OpCode::VarOp && node.varName() != var_name)
            return false;
        for (size_t i = 0; i < args.size(); ++i) {
            if (node.args()[i].get() != args[i].get())
                return false;
        }
        return true;
    }

    Shard shards_[kShards];
};

bool
isCommutative(OpCode op)
{
    switch (op) {
      case OpCode::Add:
      case OpCode::Mul:
      case OpCode::Min:
      case OpCode::Max:
      case OpCode::Eq:
      case OpCode::Ne:
        return true;
      default:
        return false;
    }
}

/** Leaf-kind rank: variables before constants before compounds. */
int
canonicalRank(const ExprNode *node)
{
    if (node->op() == OpCode::VarOp)
        return 0;
    if (node->op() == OpCode::ConstOp)
        return 1;
    return 2;
}

/**
 * Deterministic structural order for commutative canonicalization.
 * Depends only on the expressions themselves (never on intern order),
 * so every thread — and every --jobs value — canonicalizes "a + b"
 * to the same operand order.
 */
bool
canonicalBefore(const ExprNode *a, const ExprNode *b)
{
    if (a == b)
        return false;
    int ra = canonicalRank(a), rb = canonicalRank(b);
    if (ra != rb)
        return ra < rb;
    if (a->op() == OpCode::VarOp)
        return a->varName() < b->varName();
    if (a->op() == OpCode::ConstOp)
        return constBits(a->value()) < constBits(b->value());
    if (a->hash() != b->hash())
        return a->hash() < b->hash();
    // Hash collision between distinct structures: fall back to a
    // full structural comparison (astronomically rare; equal
    // structures are the same node and returned above).
    if (a->op() != b->op())
        return a->op() < b->op();
    if (a->args().size() != b->args().size())
        return a->args().size() < b->args().size();
    for (size_t i = 0; i < a->args().size(); ++i) {
        const ExprNode *ca = a->args()[i].get();
        const ExprNode *cb = b->args()[i].get();
        if (ca != cb)
            return canonicalBefore(ca, cb);
    }
    return false;
}

Expr
makeNode(OpCode op, std::vector<Expr> args)
{
    for (const Expr &arg : args)
        FELIX_CHECK(arg.defined(), "undefined operand to ", opName(op));
    // Canonicalize commutative operand order for better sharing.
    if (isCommutative(op) && args.size() == 2 &&
        canonicalBefore(args[1].get(), args[0].get())) {
        std::swap(args[0], args[1]);
    }
    return Interner::instance().intern(op, 0.0, {}, std::move(args));
}

bool
allConst(const std::vector<Expr> &args)
{
    return std::all_of(args.begin(), args.end(),
                       [](const Expr &e) { return e.isConst(); });
}

Expr
foldOrMake(OpCode op, std::vector<Expr> args)
{
    if (allConst(args)) {
        double vals[3] = {0, 0, 0};
        for (size_t i = 0; i < args.size(); ++i)
            vals[i] = args[i].constValue();
        return Expr::constant(evalOp(op, vals));
    }
    return makeNode(op, std::move(args));
}

} // namespace

Expr
Expr::constant(double value)
{
    return Interner::instance().intern(OpCode::ConstOp, value, {}, {});
}

Expr
Expr::intConst(int64_t value)
{
    return constant(static_cast<double>(value));
}

Expr
Expr::var(const std::string &name)
{
    FELIX_CHECK(!name.empty(), "variable needs a name");
    return Interner::instance().intern(OpCode::VarOp, 0.0, name, {});
}

bool
Expr::isConst() const
{
    return defined() && node_->op() == OpCode::ConstOp;
}

bool
Expr::isConst(double value) const
{
    return isConst() && node_->value() == value;
}

double
Expr::constValue() const
{
    FELIX_CHECK(isConst(), "constValue on non-constant expression");
    return node_->value();
}

bool
Expr::isVar() const
{
    return defined() && node_->op() == OpCode::VarOp;
}

const std::string &
Expr::varName() const
{
    FELIX_CHECK(isVar(), "varName on non-variable expression");
    return node_->varName();
}

double
evalOp(OpCode op, const double *a)
{
    // The per-op semantics live in expr/op_kernels.h so the scalar
    // walk, the batched SoA lanes, and the reference interpreters
    // all inline the identical floating-point sequence.
    if (op == OpCode::ConstOp || op == OpCode::VarOp)
        panic("evalOp on leaf opcode");
    return opk::evalOpInline(op, a);
}

Expr
add(Expr a, Expr b)
{
    if (a.isConst(0.0))
        return b;
    if (b.isConst(0.0))
        return a;
    return foldOrMake(OpCode::Add, {a, b});
}

Expr
sub(Expr a, Expr b)
{
    if (b.isConst(0.0))
        return a;
    if (a.same(b))
        return Expr::constant(0.0);
    return foldOrMake(OpCode::Sub, {a, b});
}

Expr
mul(Expr a, Expr b)
{
    if (a.isConst(1.0))
        return b;
    if (b.isConst(1.0))
        return a;
    if (a.isConst(0.0) || b.isConst(0.0))
        return Expr::constant(0.0);
    return foldOrMake(OpCode::Mul, {a, b});
}

Expr
div(Expr a, Expr b)
{
    if (b.isConst(1.0))
        return a;
    if (a.isConst(0.0))
        return Expr::constant(0.0);
    if (a.same(b)) {
        // Size expressions are >= 1 in any valid schedule, so x/x = 1.
        return Expr::constant(1.0);
    }
    return foldOrMake(OpCode::Div, {a, b});
}

Expr
pow(Expr base, Expr exponent)
{
    if (exponent.isConst(1.0))
        return base;
    if (exponent.isConst(0.0))
        return Expr::constant(1.0);
    if (base.isConst(1.0))
        return Expr::constant(1.0);
    return foldOrMake(OpCode::Pow, {base, exponent});
}

Expr
min(Expr a, Expr b)
{
    if (a.same(b))
        return a;
    return foldOrMake(OpCode::Min, {a, b});
}

Expr
max(Expr a, Expr b)
{
    if (a.same(b))
        return a;
    return foldOrMake(OpCode::Max, {a, b});
}

Expr
neg(Expr a)
{
    if (a.defined() && a->op() == OpCode::Neg)
        return a->args()[0];
    return foldOrMake(OpCode::Neg, {a});
}

Expr
log(Expr a)
{
    if (a.defined() && a->op() == OpCode::Exp)
        return a->args()[0];
    return foldOrMake(OpCode::Log, {a});
}

Expr
exp(Expr a)
{
    if (a.defined() && a->op() == OpCode::Log)
        return a->args()[0];
    return foldOrMake(OpCode::Exp, {a});
}

Expr
sqrt(Expr a)
{
    return foldOrMake(OpCode::Sqrt, {a});
}

Expr
abs(Expr a)
{
    if (a.defined() && a->op() == OpCode::Abs)
        return a;
    return foldOrMake(OpCode::Abs, {a});
}

Expr
floor(Expr a)
{
    if (a.defined() && a->op() == OpCode::Floor)
        return a;
    return foldOrMake(OpCode::Floor, {a});
}

Expr
atan(Expr a)
{
    return foldOrMake(OpCode::Atan, {a});
}

Expr
sigmoid(Expr a)
{
    return foldOrMake(OpCode::Sigmoid, {a});
}

Expr
lt(Expr a, Expr b)
{
    if (a.same(b))
        return Expr::constant(0.0);
    return foldOrMake(OpCode::Lt, {a, b});
}

Expr
le(Expr a, Expr b)
{
    if (a.same(b))
        return Expr::constant(1.0);
    return foldOrMake(OpCode::Le, {a, b});
}

Expr
gt(Expr a, Expr b)
{
    if (a.same(b))
        return Expr::constant(0.0);
    return foldOrMake(OpCode::Gt, {a, b});
}

Expr
ge(Expr a, Expr b)
{
    if (a.same(b))
        return Expr::constant(1.0);
    return foldOrMake(OpCode::Ge, {a, b});
}

Expr
eq(Expr a, Expr b)
{
    if (a.same(b))
        return Expr::constant(1.0);
    return foldOrMake(OpCode::Eq, {a, b});
}

Expr
ne(Expr a, Expr b)
{
    if (a.same(b))
        return Expr::constant(0.0);
    return foldOrMake(OpCode::Ne, {a, b});
}

Expr
select(Expr cond, Expr then_val, Expr else_val)
{
    if (cond.isConst())
        return cond.constValue() != 0.0 ? then_val : else_val;
    if (then_val.same(else_val))
        return then_val;
    return foldOrMake(OpCode::Select, {cond, then_val, else_val});
}

namespace {

void
visitPostorder(const Expr &root, std::unordered_set<const ExprNode *> &seen,
               const std::function<void(const Expr &)> &fn)
{
    if (!root.defined() || seen.count(root.get()))
        return;
    // Iterative DFS: feature formulas can be deep.
    std::vector<std::pair<Expr, size_t>> stack;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
        auto &[node, child] = stack.back();
        if (seen.count(node.get())) {
            stack.pop_back();
            continue;
        }
        if (child < node->args().size()) {
            Expr next = node->args()[child++];
            if (!seen.count(next.get()))
                stack.emplace_back(next, 0);
        } else {
            seen.insert(node.get());
            fn(node);
            stack.pop_back();
        }
    }
}

} // namespace

std::vector<std::string>
collectVars(const std::vector<Expr> &roots)
{
    std::unordered_set<const ExprNode *> seen;
    std::vector<std::string> names;
    std::unordered_set<std::string> nameSet;
    for (const Expr &root : roots) {
        visitPostorder(root, seen, [&](const Expr &node) {
            if (node.isVar() && nameSet.insert(node.varName()).second)
                names.push_back(node.varName());
        });
    }
    std::sort(names.begin(), names.end());
    return names;
}

Expr
substitute(const Expr &root,
           const std::vector<std::pair<std::string, Expr>> &map)
{
    std::unordered_map<std::string, Expr> lookup(map.begin(), map.end());
    std::unordered_map<const ExprNode *, Expr> memo;
    std::unordered_set<const ExprNode *> seen;
    Expr result;
    visitPostorder(root, seen, [&](const Expr &node) {
        Expr replaced;
        if (node.isVar()) {
            auto it = lookup.find(node.varName());
            replaced = (it != lookup.end()) ? it->second : node;
        } else if (node->args().empty()) {
            replaced = node;
        } else {
            std::vector<Expr> newArgs;
            newArgs.reserve(node->args().size());
            bool changed = false;
            for (const Expr &arg : node->args()) {
                const Expr &sub = memo.at(arg.get());
                changed |= !sub.same(arg);
                newArgs.push_back(sub);
            }
            if (!changed) {
                replaced = node;
            } else {
                // Rebuild through the public constructors so folding
                // and simplification re-apply.
                switch (node->op()) {
                  case OpCode::Add:
                    replaced = add(newArgs[0], newArgs[1]); break;
                  case OpCode::Sub:
                    replaced = sub(newArgs[0], newArgs[1]); break;
                  case OpCode::Mul:
                    replaced = mul(newArgs[0], newArgs[1]); break;
                  case OpCode::Div:
                    replaced = div(newArgs[0], newArgs[1]); break;
                  case OpCode::Pow:
                    replaced = pow(newArgs[0], newArgs[1]); break;
                  case OpCode::Min:
                    replaced = min(newArgs[0], newArgs[1]); break;
                  case OpCode::Max:
                    replaced = max(newArgs[0], newArgs[1]); break;
                  case OpCode::Neg: replaced = neg(newArgs[0]); break;
                  case OpCode::Log: replaced = log(newArgs[0]); break;
                  case OpCode::Exp: replaced = exp(newArgs[0]); break;
                  case OpCode::Sqrt: replaced = sqrt(newArgs[0]); break;
                  case OpCode::Abs: replaced = abs(newArgs[0]); break;
                  case OpCode::Floor: replaced = floor(newArgs[0]); break;
                  case OpCode::Atan: replaced = atan(newArgs[0]); break;
                  case OpCode::Sigmoid:
                    replaced = sigmoid(newArgs[0]); break;
                  case OpCode::Lt:
                    replaced = lt(newArgs[0], newArgs[1]); break;
                  case OpCode::Le:
                    replaced = le(newArgs[0], newArgs[1]); break;
                  case OpCode::Gt:
                    replaced = gt(newArgs[0], newArgs[1]); break;
                  case OpCode::Ge:
                    replaced = ge(newArgs[0], newArgs[1]); break;
                  case OpCode::Eq:
                    replaced = eq(newArgs[0], newArgs[1]); break;
                  case OpCode::Ne:
                    replaced = ne(newArgs[0], newArgs[1]); break;
                  case OpCode::Select:
                    replaced = select(newArgs[0], newArgs[1], newArgs[2]);
                    break;
                  case OpCode::ConstOp:
                  case OpCode::VarOp:
                    panic("leaf with arguments");
                }
            }
        }
        memo.emplace(node.get(), replaced);
        result = replaced;
    });
    if (!root.defined())
        return root;
    return memo.at(root.get());
}

size_t
countNodes(const std::vector<Expr> &roots)
{
    std::unordered_set<const ExprNode *> seen;
    for (const Expr &root : roots)
        visitPostorder(root, seen, [](const Expr &) {});
    return seen.size();
}

size_t
internTableSize()
{
    return Interner::instance().size();
}

} // namespace expr
} // namespace felix
