#include <sstream>
#include <unordered_map>

#include "expr/expr.h"
#include "support/logging.h"
#include "support/string_util.h"

namespace felix {
namespace expr {

namespace {

bool
isInfix(OpCode op)
{
    switch (op) {
      case OpCode::Add:
      case OpCode::Sub:
      case OpCode::Mul:
      case OpCode::Div:
      case OpCode::Lt:
      case OpCode::Le:
      case OpCode::Gt:
      case OpCode::Ge:
      case OpCode::Eq:
      case OpCode::Ne:
        return true;
      default:
        return false;
    }
}

std::string
renderConst(double v)
{
    // Print integral constants without a trailing ".000000".
    if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15)
        return std::to_string(static_cast<int64_t>(v));
    return strformat("%g", v);
}

std::string
render(const Expr &e,
       std::unordered_map<const ExprNode *, std::string> &memo)
{
    auto it = memo.find(e.get());
    if (it != memo.end())
        return it->second;

    std::string out;
    if (e.isConst()) {
        out = renderConst(e.constValue());
    } else if (e.isVar()) {
        out = e.varName();
    } else if (isInfix(e->op())) {
        out = "(" + render(e->args()[0], memo) + " " +
              opName(e->op()) + " " + render(e->args()[1], memo) + ")";
    } else {
        std::vector<std::string> parts;
        for (const Expr &arg : e->args())
            parts.push_back(render(arg, memo));
        out = std::string(opName(e->op())) + "(" + join(parts, ", ") + ")";
    }
    memo.emplace(e.get(), out);
    return out;
}

} // namespace

std::string
Expr::str() const
{
    if (!defined())
        return "<undef>";
    std::unordered_map<const ExprNode *, std::string> memo;
    return render(*this, memo);
}

} // namespace expr
} // namespace felix
