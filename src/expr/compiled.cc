#include "expr/compiled.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/logging.h"

namespace felix {
namespace expr {

CompiledExprs::CompiledExprs(std::vector<Expr> roots,
                             std::vector<std::string> var_order)
{
    if (var_order.empty())
        varNames_ = collectVars(roots);
    else
        varNames_ = std::move(var_order);

    std::unordered_map<std::string, int32_t> varSlot;
    for (size_t i = 0; i < varNames_.size(); ++i)
        varSlot.emplace(varNames_[i], static_cast<int32_t>(i));

    // Topologically order the distinct nodes via iterative DFS and
    // assign each a tape slot.
    std::unordered_map<const ExprNode *, int32_t> slotOf;
    std::vector<std::pair<Expr, size_t>> stack;
    for (const Expr &root : roots) {
        FELIX_CHECK(root.defined(), "compiling undefined expression");
        if (slotOf.count(root.get()))
            continue;
        stack.emplace_back(root, 0);
        while (!stack.empty()) {
            auto &[node, child] = stack.back();
            if (slotOf.count(node.get())) {
                stack.pop_back();
                continue;
            }
            if (child < node->args().size()) {
                Expr next = node->args()[child++];
                if (!slotOf.count(next.get()))
                    stack.emplace_back(next, 0);
                continue;
            }
            Instr instr;
            instr.op = node->op();
            if (node.isConst()) {
                instr.payload = node.constValue();
            } else if (node.isVar()) {
                auto it = varSlot.find(node.varName());
                FELIX_CHECK(it != varSlot.end(),
                            "variable not in slot order: ",
                            node.varName());
                instr.payload = static_cast<double>(it->second);
            } else {
                const auto &args = node->args();
                instr.a0 = slotOf.at(args[0].get());
                if (args.size() > 1)
                    instr.a1 = slotOf.at(args[1].get());
                if (args.size() > 2)
                    instr.a2 = slotOf.at(args[2].get());
            }
            slotOf.emplace(node.get(), static_cast<int32_t>(tape_.size()));
            tape_.push_back(instr);
            stack.pop_back();
        }
    }
    for (const Expr &root : roots)
        outputSlots_.push_back(slotOf.at(root.get()));
}

void
CompiledExprs::forward(const std::vector<double> &inputs,
                       std::vector<double> &outputs,
                       EvalState &state) const
{
    FELIX_CHECK(inputs.size() == varNames_.size(),
                "expected ", varNames_.size(), " inputs, got ",
                inputs.size());
    std::vector<double> &values_ = state.values;
    values_.resize(tape_.size());
    for (size_t i = 0; i < tape_.size(); ++i) {
        const Instr &instr = tape_[i];
        switch (instr.op) {
          case OpCode::ConstOp:
            values_[i] = instr.payload;
            break;
          case OpCode::VarOp:
            values_[i] = inputs[static_cast<size_t>(instr.payload)];
            break;
          default: {
            double args[3] = {0, 0, 0};
            args[0] = values_[instr.a0];
            if (instr.a1 >= 0)
                args[1] = values_[instr.a1];
            if (instr.a2 >= 0)
                args[2] = values_[instr.a2];
            values_[i] = evalOp(instr.op, args);
            break;
          }
        }
    }
    outputs.resize(outputSlots_.size());
    for (size_t k = 0; k < outputSlots_.size(); ++k)
        outputs[k] = values_[outputSlots_[k]];
    state.forwardDone = true;
}

void
CompiledExprs::backward(const std::vector<double> &output_grads,
                        std::vector<double> &input_grads,
                        EvalState &state) const
{
    FELIX_CHECK(state.forwardDone, "backward() before forward()");
    FELIX_CHECK(output_grads.size() == outputSlots_.size(),
                "expected ", outputSlots_.size(), " output grads");

    const std::vector<double> &values_ = state.values;
    std::vector<double> &adjoints_ = state.adjoints;
    adjoints_.assign(tape_.size(), 0.0);
    for (size_t k = 0; k < outputSlots_.size(); ++k)
        adjoints_[outputSlots_[k]] += output_grads[k];

    input_grads.assign(varNames_.size(), 0.0);

    for (size_t idx = tape_.size(); idx-- > 0;) {
        const Instr &instr = tape_[idx];
        double adj = adjoints_[idx];
        if (adj == 0.0)
            continue;
        switch (instr.op) {
          case OpCode::ConstOp:
            break;
          case OpCode::VarOp:
            input_grads[static_cast<size_t>(instr.payload)] += adj;
            break;
          case OpCode::Add:
            adjoints_[instr.a0] += adj;
            adjoints_[instr.a1] += adj;
            break;
          case OpCode::Sub:
            adjoints_[instr.a0] += adj;
            adjoints_[instr.a1] -= adj;
            break;
          case OpCode::Mul:
            adjoints_[instr.a0] += adj * values_[instr.a1];
            adjoints_[instr.a1] += adj * values_[instr.a0];
            break;
          case OpCode::Div: {
            double b = values_[instr.a1];
            if (b != 0.0) {
                adjoints_[instr.a0] += adj / b;
                adjoints_[instr.a1] -=
                    adj * values_[instr.a0] / (b * b);
            }
            // At b == 0 the totalized forward value is a huge
            // surrogate; propagating its "gradient" would only
            // destabilize the search, so we drop it (the penalty
            // terms steer the optimizer back into the feasible box).
            break;
          }
          case OpCode::Pow: {
            double a = values_[instr.a0];
            double b = values_[instr.a1];
            double v = values_[idx];
            if (a > 0.0) {
                adjoints_[instr.a0] += adj * b * std::pow(a, b - 1.0);
                adjoints_[instr.a1] += adj * v * std::log(a);
            } else if (a < 0.0) {
                adjoints_[instr.a0] += adj * b * std::pow(a, b - 1.0);
            }
            break;
          }
          case OpCode::Min:
            if (values_[instr.a0] <= values_[instr.a1])
                adjoints_[instr.a0] += adj;
            else
                adjoints_[instr.a1] += adj;
            break;
          case OpCode::Max:
            if (values_[instr.a0] >= values_[instr.a1])
                adjoints_[instr.a0] += adj;
            else
                adjoints_[instr.a1] += adj;
            break;
          case OpCode::Neg:
            adjoints_[instr.a0] -= adj;
            break;
          case OpCode::Log:
            adjoints_[instr.a0] +=
                adj / std::max(values_[instr.a0], 1e-300);
            break;
          case OpCode::Exp:
            adjoints_[instr.a0] += adj * values_[idx];
            break;
          case OpCode::Sqrt: {
            double a = values_[instr.a0];
            if (a > 0.0)
                adjoints_[instr.a0] += adj * 0.5 / std::sqrt(a);
            break;
          }
          case OpCode::Abs:
            adjoints_[instr.a0] +=
                values_[instr.a0] >= 0.0 ? adj : -adj;
            break;
          case OpCode::Floor:
            break;    // piecewise-constant: zero derivative
          case OpCode::Atan: {
            double x = values_[instr.a0];
            adjoints_[instr.a0] += adj / (1.0 + x * x);
            break;
          }
          case OpCode::Sigmoid: {
            // d/dx [ (1 + x/sqrt(1+x^2)) / 2 ] = (1+x^2)^(-3/2) / 2
            double x = values_[instr.a0];
            double t = 1.0 + x * x;
            adjoints_[instr.a0] += adj * 0.5 / (t * std::sqrt(t));
            break;
          }
          case OpCode::Lt:
          case OpCode::Le:
          case OpCode::Gt:
          case OpCode::Ge:
          case OpCode::Eq:
          case OpCode::Ne:
            break;    // step functions: zero derivative a.e.
          case OpCode::Select:
            if (values_[instr.a0] != 0.0)
                adjoints_[instr.a1] += adj;
            else
                adjoints_[instr.a2] += adj;
            break;
        }
    }
}

std::vector<double>
CompiledExprs::eval(const std::vector<double> &inputs,
                    EvalState &state) const
{
    std::vector<double> outputs;
    forward(inputs, outputs, state);
    return outputs;
}

void
CompiledExprs::forward(const std::vector<double> &inputs,
                       std::vector<double> &outputs)
{
    forward(inputs, outputs, state_);
}

void
CompiledExprs::backward(const std::vector<double> &output_grads,
                        std::vector<double> &input_grads)
{
    backward(output_grads, input_grads, state_);
}

std::vector<double>
CompiledExprs::eval(const std::vector<double> &inputs)
{
    return eval(inputs, state_);
}

double
evalExpr(const Expr &e,
         const std::unordered_map<std::string, double> &env)
{
    CompiledExprs compiled({e});
    std::vector<double> inputs;
    inputs.reserve(compiled.numVars());
    for (const std::string &name : compiled.varNames()) {
        auto it = env.find(name);
        FELIX_CHECK(it != env.end(), "missing value for variable ", name);
        inputs.push_back(it->second);
    }
    return compiled.eval(inputs)[0];
}

} // namespace expr
} // namespace felix
