#include "expr/compiled.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "expr/op_kernels.h"
#include "jit/jit.h"
#include "obs/metrics.h"
#include "simd/kernels.h"
#include "support/logging.h"

namespace felix {
namespace expr {

namespace {

uint64_t
nextTapeId()
{
    // Starts at 1 so a default-constructed state (boundTape == 0)
    // never matches a live tape.
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

CompiledExprs::CompiledExprs(std::vector<Expr> roots,
                             std::vector<std::string> var_order,
                             bool forward_only)
    : tapeId_(nextTapeId())
{
    if (var_order.empty())
        varNames_ = collectVars(roots);
    else
        varNames_ = std::move(var_order);

    RawTape raw = buildRawTape(roots, varNames_);
    program_ = optimizeTape(raw, forward_only, &optStats_);

    auto &reg = obs::MetricsRegistry::instance();
    reg.counter("tape.instrs_raw")
        .add(static_cast<double>(program_.rawSize));
    reg.counter("tape.instrs_optimized")
        .add(static_cast<double>(program_.instrs.size()));
    reg.counter("tape.leaves_hoisted")
        .add(static_cast<double>(optStats_.leavesHoisted));
    reg.counter("tape.const_folded")
        .add(static_cast<double>(optStats_.constFolded));
    reg.counter("tape.identity_forwarded")
        .add(static_cast<double>(optStats_.identityForwarded));
    reg.counter("tape.dead_removed")
        .add(static_cast<double>(optStats_.deadRemoved));
}

CompiledExprs::~CompiledExprs() = default;

const jit::JitTape *
CompiledExprs::jitTape() const
{
    if (!jit::enabled() || !jit::supported())
        return nullptr;
    const jit::JitTape *tape =
        jitCache_.load(std::memory_order_acquire);
    if (tape != nullptr)
        return tape;
    if (jitFailed_.load(std::memory_order_relaxed))
        return nullptr;
    std::lock_guard<std::mutex> lock(jitMutex_);
    tape = jitCache_.load(std::memory_order_relaxed);
    if (tape != nullptr || jitFailed_.load(std::memory_order_relaxed))
        return tape;
    jitTape_ = jit::JitTape::compile(program_);
    if (jitTape_ == nullptr) {
        // Empty tape, no executable memory, ... — remember the
        // failure so the interpreter fallback is branch-cheap.
        jitFailed_.store(true, std::memory_order_relaxed);
        return nullptr;
    }
    jitCache_.store(jitTape_.get(), std::memory_order_release);
    return jitTape_.get();
}

void
CompiledExprs::bind(EvalState &state) const
{
    if (state.boundTape == tapeId_)
        return;
    // Constant slots are filled once per binding; forward only ever
    // writes variable and instruction slots after this.
    state.values.assign(program_.numSlots(), 0.0);
    std::copy(program_.constants.begin(), program_.constants.end(),
              state.values.begin());
    state.adjoints.clear();
    state.forwardDone = false;
    state.boundTape = tapeId_;
}

void
CompiledExprs::forward(const std::vector<double> &inputs,
                       std::vector<double> &outputs,
                       EvalState &state) const
{
    FELIX_CHECK(inputs.size() == varNames_.size(),
                "expected ", varNames_.size(), " inputs, got ",
                inputs.size());
    bind(state);
    std::vector<double> &values = state.values;
    std::copy(inputs.begin(), inputs.end(),
              values.begin() + program_.firstVarSlot());
    size_t slot = program_.firstOpSlot();
    for (const TapeInstr &instr : program_.instrs) {
        double args[3] = {0, 0, 0};
        args[0] = values[instr.a0];
        if (instr.a1 >= 0)
            args[1] = values[instr.a1];
        if (instr.a2 >= 0)
            args[2] = values[instr.a2];
        values[slot++] = opk::evalOpInline(instr.op, args);
    }
    outputs.resize(program_.outputSlots.size());
    for (size_t k = 0; k < program_.outputSlots.size(); ++k)
        outputs[k] = values[program_.outputSlots[k]];
    state.forwardDone = true;
}

void
CompiledExprs::backward(const std::vector<double> &output_grads,
                        std::vector<double> &input_grads,
                        EvalState &state) const
{
    FELIX_CHECK(!program_.forwardOnly,
                "backward() on a tape compiled forward-only");
    FELIX_CHECK(state.forwardDone && state.boundTape == tapeId_,
                "backward() before forward()");
    FELIX_CHECK(output_grads.size() == program_.outputSlots.size(),
                "expected ", program_.outputSlots.size(),
                " output grads");

    const std::vector<double> &values = state.values;
    std::vector<double> &adjoints = state.adjoints;
    adjoints.assign(program_.numSlots(), 0.0);
    for (size_t k = 0; k < program_.outputSlots.size(); ++k)
        adjoints[program_.outputSlots[k]] += output_grads[k];

    double dummy = 0.0;
    for (size_t i = program_.instrs.size(); i-- > 0;) {
        const TapeInstr &instr = program_.instrs[i];
        size_t slot = program_.firstOpSlot() + i;
        double adj = adjoints[slot];
        if (adj == 0.0)
            continue;
        double a0 = values[instr.a0];
        double a1 = instr.a1 >= 0 ? values[instr.a1] : 0.0;
        opk::backpropOp(instr.op, adj, values[slot], a0, a1,
                        &adjoints[instr.a0],
                        instr.a1 >= 0 ? &adjoints[instr.a1] : &dummy,
                        instr.a2 >= 0 ? &adjoints[instr.a2] : &dummy);
    }
    // Variable adjoints accumulate via += from +0.0 and can never
    // become -0.0, so a plain copy reproduces the historical
    // "+= only when nonzero" extraction bit for bit.
    input_grads.resize(varNames_.size());
    std::copy(adjoints.begin() + program_.firstVarSlot(),
              adjoints.begin() + program_.firstVarSlot() +
                  varNames_.size(),
              input_grads.begin());
}

void
CompiledExprs::bind(BatchEvalState &state) const
{
    if (state.boundTape == tapeId_)
        return;
    state.values.assign(program_.numSlots() * kBatchLanes, 0.0);
    for (size_t c = 0; c < program_.constants.size(); ++c) {
        double *row = &state.values[c * kBatchLanes];
        for (size_t l = 0; l < kBatchLanes; ++l)
            row[l] = program_.constants[c];
    }
    state.adjoints.clear();
    state.forwardDone = false;
    state.width = 0;
    state.boundTape = tapeId_;
}

void
CompiledExprs::forwardBatchKeep(const double *inputs, size_t width,
                                BatchEvalState &state) const
{
    FELIX_CHECK(width >= 1 && width <= kBatchLanes,
                "forwardBatch width ", width, " out of [1, ",
                kBatchLanes, "]");
    bind(state);
    double *vals = state.values.data();

    // Variable rows. Padding lanes replicate lane 0 so every lane
    // computes on real, finite inputs (no NaN surprises, no denormal
    // slowdowns) while the lane loops keep their fixed trip count.
    const size_t varBase = program_.firstVarSlot();
    for (size_t v = 0; v < program_.numVars; ++v) {
        double *row = &vals[(varBase + v) * kBatchLanes];
        const double *in = &inputs[v * kBatchLanes];
        for (size_t l = 0; l < kBatchLanes; ++l)
            row[l] = in[l < width ? l : 0];
    }

    // The instruction sweep: either the JIT-compiled tape (the same
    // kernel bodies as straight-line native code, bit-identical by
    // construction — tests/test_jit.cc) or the runtime-dispatched
    // SIMD backend (src/simd/): the same per-op kernels as the
    // scalar walk, in lane-vector form (expr/op_kernels.h), chunked
    // across the kBatchLanes-wide rows. Tape slots are SSA —
    // operands always live in strictly earlier slots, so the
    // destination row never aliases them — and every backend is
    // bit-identical per lane (tests/test_simd.cc).
    if (const jit::JitTape *jt = jitTape())
        jt->forward(vals);
    else
        simd::activeKernels().tapeForward(program_, vals);

    state.width = width;
    state.forwardDone = true;
}

const double *
CompiledExprs::outputRowPtr(size_t k,
                            const BatchEvalState &state) const
{
    return &state.values[static_cast<size_t>(
                             program_.outputSlots[k]) *
                         kBatchLanes];
}

void
CompiledExprs::forwardBatch(const double *inputs, size_t width,
                            double *outputs,
                            BatchEvalState &state) const
{
    forwardBatchKeep(inputs, width, state);
    for (size_t k = 0; k < program_.outputSlots.size(); ++k) {
        const double *row = outputRowPtr(k, state);
        double *outRow = &outputs[k * kBatchLanes];
        for (size_t l = 0; l < kBatchLanes; ++l)
            outRow[l] = row[l];
    }
}

void
CompiledExprs::beginBackwardBatch(BatchEvalState &state) const
{
    FELIX_CHECK(!program_.forwardOnly,
                "backwardBatch() on a tape compiled forward-only");
    FELIX_CHECK(state.forwardDone && state.boundTape == tapeId_,
                "backwardBatch() before forwardBatch()");
    state.adjoints.assign(program_.numSlots() * kBatchLanes, 0.0);
}

double *
CompiledExprs::outputAdjRowPtr(size_t k, BatchEvalState &state) const
{
    return &state.adjoints[static_cast<size_t>(
                               program_.outputSlots[k]) *
                           kBatchLanes];
}

void
CompiledExprs::finishBackwardBatch(double *input_grads,
                                   BatchEvalState &state) const
{
    const double *vals = state.values.data();
    double *adjs = state.adjoints.data();

    // The reverse sweep runs as JIT-compiled native code or in the
    // dispatched backend; both execute the same per-instruction
    // bodies: per-chunk all-zero skip (the vector form of the scalar
    // zero-skip) and blended adjoint updates whose masked-out lanes
    // contribute an exact +0.0 — a bitwise no-op on accumulator
    // rows — so the data-dependent branch structure of backpropOp is
    // reproduced bit for bit at every width (see opk::backpropOpV).
    const jit::JitTape *jt = jitTape();
    if (jt != nullptr && jt->hasBackward())
        jt->backward(vals, adjs);
    else
        simd::activeKernels().tapeBackward(program_, vals, adjs);

    const size_t varBase = program_.firstVarSlot();
    for (size_t v = 0; v < program_.numVars; ++v) {
        const double *row = &adjs[(varBase + v) * kBatchLanes];
        double *g = &input_grads[v * kBatchLanes];
        for (size_t l = 0; l < kBatchLanes; ++l)
            g[l] = row[l];
    }
}

void
CompiledExprs::backwardBatch(const double *output_grads,
                             double *input_grads,
                             BatchEvalState &state) const
{
    beginBackwardBatch(state);
    const size_t width = state.width;

    // Seed active lanes only; padding lanes keep zero adjoints, so
    // the per-lane zero-skip in the sweep short-circuits their work.
    for (size_t k = 0; k < program_.outputSlots.size(); ++k) {
        double *row = outputAdjRowPtr(k, state);
        const double *g = &output_grads[k * kBatchLanes];
        for (size_t l = 0; l < width; ++l)
            row[l] += g[l];
    }

    finishBackwardBatch(input_grads, state);
}

std::vector<double>
CompiledExprs::eval(const std::vector<double> &inputs,
                    EvalState &state) const
{
    std::vector<double> outputs;
    forward(inputs, outputs, state);
    return outputs;
}

void
CompiledExprs::forward(const std::vector<double> &inputs,
                       std::vector<double> &outputs)
{
    forward(inputs, outputs, state_);
}

void
CompiledExprs::backward(const std::vector<double> &output_grads,
                        std::vector<double> &input_grads)
{
    backward(output_grads, input_grads, state_);
}

std::vector<double>
CompiledExprs::eval(const std::vector<double> &inputs)
{
    return eval(inputs, state_);
}

double
evalExpr(const Expr &e,
         const std::unordered_map<std::string, double> &env)
{
    CompiledExprs compiled({e});
    std::vector<double> inputs;
    inputs.reserve(compiled.numVars());
    for (const std::string &name : compiled.varNames()) {
        auto it = env.find(name);
        FELIX_CHECK(it != env.end(), "missing value for variable ", name);
        inputs.push_back(it->second);
    }
    return compiled.eval(inputs)[0];
}

} // namespace expr
} // namespace felix
