/**
 * @file
 * Linear tape representation of compiled expression DAGs, and the
 * tape-optimizer pass that runs at CompiledExprs construction.
 *
 * A *raw* tape is the historical format: one instruction per
 * distinct DAG node in topological order, constant and variable
 * leaves included as instructions. The optimizer lowers it to a
 * *tape program* whose per-eval instruction stream contains only
 * real operations:
 *
 *  - leaf hoisting: constants become slots filled once per state
 *    binding, variables become slots filled from the input vector —
 *    neither costs a dispatched instruction per evaluation;
 *  - exact constant folding of operations whose operands are all
 *    constants (evaluated with the very kernels the runtime uses, so
 *    the folded value is bit-identical to what the tape would have
 *    computed);
 *  - algebraic identity forwarding (x*1, x/1, x^1, x + (-0.0),
 *    x - 0, --x, min/max(x,x), select on a constant or with equal
 *    branches) — applied only to forward-only tapes, see below;
 *  - dead-instruction elimination against the output slots;
 *  - slot renumbering: surviving instructions are compacted into
 *    [consts | vars | ops] slot order while preserving their
 *    relative execution order.
 *
 * Bit-exactness contract. Every pass preserves forward outputs
 * bit-for-bit. For tapes that also run backward, only passes that
 * provably preserve the *order* of adjoint accumulation are applied
 * (hoisting, folding, DCE, renumbering); identity forwarding is
 * disabled there because redirecting a consumer past an eliminated
 * node moves its adjoint contribution to a different position in the
 * reverse sweep, which can change floating-point rounding even
 * though each contribution is bit-identical. Feature tapes used for
 * candidate ranking never run backward, so they opt in to the full
 * pass set via forward_only. Note also that `x + (+0.0)` is *not*
 * eliminated: IEEE-754 addition of +0.0 maps an x of -0.0 to +0.0,
 * so the rewrite is not value-preserving (x - 0.0 and x + (-0.0)
 * are, and those are the forms the pass handles).
 *
 * docs/tape_engine.md walks through the design and the determinism
 * argument in detail.
 */
#ifndef FELIX_EXPR_TAPE_H_
#define FELIX_EXPR_TAPE_H_

#include <cstdint>
#include <vector>

#include "expr/expr.h"

namespace felix {
namespace expr {

/** One raw-tape entry: a DAG node, leaves included. */
struct RawInstr
{
    OpCode op;
    int32_t a0 = -1;    ///< operand slots into the raw value buffer
    int32_t a1 = -1;
    int32_t a2 = -1;
    double payload = 0; ///< constant value / variable input slot
};

/**
 * The unoptimized tape: exactly what CompiledExprs historically
 * executed. Kept as the optimizer input and as the reference
 * semantics the tests compare the optimized program against.
 * Assumes leaves are deduplicated (one instruction per distinct
 * constant bit-pattern / variable), which hash-consed DAGs
 * guarantee.
 */
struct RawTape
{
    size_t numVars = 0;
    std::vector<RawInstr> instrs;
    std::vector<int32_t> outputSlots;
};

/** One optimized-tape operation; operands index the slot space. */
struct TapeInstr
{
    OpCode op;
    int32_t a0 = -1;
    int32_t a1 = -1;
    int32_t a2 = -1;
};

/**
 * An optimized tape program. Slot space layout:
 *
 *   [0, constants.size())   constant slots (filled at state bind)
 *   [firstVarSlot(), +numVars)  variable slots (filled per eval)
 *   [firstOpSlot(), numSlots()) one slot per instruction, in order
 */
struct TapeProgram
{
    size_t numVars = 0;
    std::vector<double> constants;    ///< values of the const slots
    std::vector<TapeInstr> instrs;    ///< executed per evaluation
    std::vector<int32_t> outputSlots; ///< into the slot space
    bool forwardOnly = false;
    size_t rawSize = 0;   ///< raw instruction count pre-optimization

    size_t firstVarSlot() const { return constants.size(); }
    size_t firstOpSlot() const { return constants.size() + numVars; }
    size_t numSlots() const { return firstOpSlot() + instrs.size(); }
};

/** What the optimizer did (metrics + tests). */
struct TapeOptStats
{
    size_t leavesHoisted = 0;   ///< const/var instrs moved to slots
    size_t constFolded = 0;     ///< ops folded to constants
    size_t identityForwarded = 0;
    size_t deadRemoved = 0;     ///< unreferenced ops dropped by DCE
};

/** Lower a set of expression roots to the raw tape format. */
RawTape buildRawTape(const std::vector<Expr> &roots,
                     const std::vector<std::string> &var_names);

/**
 * The optimizer pass. @p forward_only additionally enables identity
 * forwarding (see the file comment for why gradient-bearing tapes
 * must not use it).
 */
TapeProgram optimizeTape(const RawTape &raw, bool forward_only,
                         TapeOptStats *stats = nullptr);

// Reference interpreters over the two formats. These execute the
// same op kernels as the production engine (expr/op_kernels.h) and
// exist so tests can compare raw vs. optimized execution bit for
// bit; hot paths use CompiledExprs.
void rawForward(const RawTape &tape, const std::vector<double> &inputs,
                std::vector<double> &values,
                std::vector<double> &outputs);
void rawBackward(const RawTape &tape, const std::vector<double> &values,
                 const std::vector<double> &output_grads,
                 std::vector<double> &input_grads);
void programForward(const TapeProgram &program,
                    const std::vector<double> &inputs,
                    std::vector<double> &values,
                    std::vector<double> &outputs);
void programBackward(const TapeProgram &program,
                     const std::vector<double> &values,
                     const std::vector<double> &output_grads,
                     std::vector<double> &input_grads);

} // namespace expr
} // namespace felix

#endif // FELIX_EXPR_TAPE_H_
