#include "rewrite/smoothing.h"

#include <cmath>
#include <unordered_map>

#include "support/logging.h"

namespace felix {
namespace rewrite {

using expr::Expr;
using expr::ExprNode;
using expr::OpCode;

const char *
kernelName(Kernel kernel)
{
    switch (kernel) {
      case Kernel::Algebraic: return "algebraic";
      case Kernel::Gaussian: return "gaussian";
      case Kernel::Bump: return "bump";
    }
    return "?";
}

Expr
smoothStep(const Expr &x, Kernel kernel)
{
    switch (kernel) {
      case Kernel::Algebraic:
        // S(x) = (1 + x/sqrt(1+x^2)) / 2, from phi = 1/sqrt(1+t^2).
        return expr::sigmoid(x);
      case Kernel::Gaussian: {
        // Logistic approximation of the Gaussian CDF (probit scale
        // factor 1.702); avoids needing an erf opcode.
        Expr one = Expr::constant(1.0);
        return one / (one + expr::exp(-(x * 1.702)));
      }
      case Kernel::Bump:
        // Cauchy CDF: 1/2 + atan(x)/pi.
        return Expr::constant(0.5) + expr::atan(x) / M_PI;
    }
    panic("unknown kernel");
}

Expr
smoothMax0(const Expr &x, Kernel kernel)
{
    switch (kernel) {
      case Kernel::Algebraic:
        // Antiderivative of the algebraic step: (x + sqrt(1+x^2))/2.
        return (x + expr::sqrt(Expr::constant(1.0) + x * x)) * 0.5;
      case Kernel::Gaussian: {
        // Softplus at the probit scale: ln(1+e^(1.702 x)) / 1.702.
        Expr one = Expr::constant(1.0);
        return expr::log(one + expr::exp(x * 1.702)) / 1.702;
      }
      case Kernel::Bump:
        // Antiderivative of the Cauchy step:
        // x/2 + (x atan x - ln(1+x^2)/2) / pi.
        return x * 0.5 +
               (x * expr::atan(x) -
                expr::log(Expr::constant(1.0) + x * x) * 0.5) /
                   M_PI;
    }
    panic("unknown kernel");
}

Expr
smoothMax(const Expr &a, const Expr &b, Kernel kernel)
{
    return b + smoothMax0(a - b, kernel);
}

Expr
smoothMin(const Expr &a, const Expr &b, Kernel kernel)
{
    return a - smoothMax0(a - b, kernel);
}

Expr
smoothAbs(const Expr &x, Kernel kernel)
{
    if (kernel == Kernel::Algebraic) {
        // |x| ~ x^2 / sqrt(1+x^2): smooth, asymptotically exact.
        return x * x / expr::sqrt(Expr::constant(1.0) + x * x);
    }
    // Generic form |x| = x * (2 S(x) - 1).
    return x * (smoothStep(x, kernel) * 2.0 - 1.0);
}

namespace {

/** A localized bump in (0,1]: 1 at t = 0, decaying to 0. */
Expr
smoothBump(const Expr &t, Kernel kernel)
{
    switch (kernel) {
      case Kernel::Algebraic:
      case Kernel::Bump:
        return Expr::constant(1.0) / (Expr::constant(1.0) + t * t);
      case Kernel::Gaussian:
        return expr::exp(-(t * t) * 0.5);
    }
    panic("unknown kernel");
}

/**
 * Turn a (smoothed-operand) comparison into a smooth 0/1 indicator.
 */
Expr
smoothCompare(OpCode op, const Expr &a, const Expr &b, Kernel kernel)
{
    switch (op) {
      case OpCode::Gt:
      case OpCode::Ge:
        return smoothStep(a - b, kernel);
      case OpCode::Lt:
      case OpCode::Le:
        return smoothStep(b - a, kernel);
      case OpCode::Eq:
        return smoothBump(a - b, kernel);
      case OpCode::Ne:
        return Expr::constant(1.0) - smoothBump(a - b, kernel);
      default:
        panic("smoothCompare on non-comparison");
    }
}

bool
isComparison(OpCode op)
{
    switch (op) {
      case OpCode::Lt:
      case OpCode::Le:
      case OpCode::Gt:
      case OpCode::Ge:
      case OpCode::Eq:
      case OpCode::Ne:
        return true;
      default:
        return false;
    }
}

Expr
rewriteNode(const Expr &e, Kernel kernel,
            std::unordered_map<const ExprNode *, Expr> &memo)
{
    auto it = memo.find(e.get());
    if (it != memo.end())
        return it->second;

    Expr result;
    const auto &args = e->args();
    auto rec = [&](const Expr &sub) {
        return rewriteNode(sub, kernel, memo);
    };

    switch (e->op()) {
      case OpCode::Min:
        result = smoothMin(rec(args[0]), rec(args[1]), kernel);
        break;
      case OpCode::Max:
        result = smoothMax(rec(args[0]), rec(args[1]), kernel);
        break;
      case OpCode::Abs:
        result = smoothAbs(rec(args[0]), kernel);
        break;
      case OpCode::Floor:
        // Linear drift approximation: exact in expectation over a
        // unit interval and perfectly smooth.
        result = rec(args[0]) - 0.5;
        break;
      case OpCode::Select: {
        const Expr &cond = args[0];
        Expr p = rec(args[1]);
        Expr q = rec(args[2]);
        Expr indicator;
        if (isComparison(cond->op())) {
            indicator = smoothCompare(cond->op(),
                                      rec(cond->args()[0]),
                                      rec(cond->args()[1]), kernel);
        } else {
            // Generic 0/1 condition: steepened step around 1/2.
            indicator = smoothStep((rec(cond) - 0.5) * 4.0, kernel);
        }
        result = q + (p - q) * indicator;
        break;
      }
      case OpCode::Lt:
      case OpCode::Le:
      case OpCode::Gt:
      case OpCode::Ge:
      case OpCode::Eq:
      case OpCode::Ne:
        result = smoothCompare(e->op(), rec(args[0]), rec(args[1]),
                               kernel);
        break;
      default: {
        // Differentiable op: rebuild only if a child changed.
        bool changed = false;
        std::vector<Expr> newArgs;
        newArgs.reserve(args.size());
        for (const Expr &arg : args) {
            Expr sub = rec(arg);
            changed |= !sub.same(arg);
            newArgs.push_back(sub);
        }
        if (!changed) {
            result = e;
        } else {
            switch (e->op()) {
              case OpCode::Add: result = newArgs[0] + newArgs[1]; break;
              case OpCode::Sub: result = newArgs[0] - newArgs[1]; break;
              case OpCode::Mul: result = newArgs[0] * newArgs[1]; break;
              case OpCode::Div: result = newArgs[0] / newArgs[1]; break;
              case OpCode::Pow:
                result = expr::pow(newArgs[0], newArgs[1]);
                break;
              case OpCode::Neg: result = -newArgs[0]; break;
              case OpCode::Log: result = expr::log(newArgs[0]); break;
              case OpCode::Exp: result = expr::exp(newArgs[0]); break;
              case OpCode::Sqrt:
                result = expr::sqrt(newArgs[0]);
                break;
              case OpCode::Atan:
                result = expr::atan(newArgs[0]);
                break;
              case OpCode::Sigmoid:
                result = expr::sigmoid(newArgs[0]);
                break;
              default:
                panic("unhandled opcode in smoothing rewrite");
            }
        }
        break;
      }
    }
    FELIX_CHECK(result.defined());
    memo.emplace(e.get(), result);
    return result;
}

bool
checkSmooth(const Expr &e,
            std::unordered_map<const ExprNode *, bool> &memo)
{
    auto it = memo.find(e.get());
    if (it != memo.end())
        return it->second;
    bool smooth = true;
    switch (e->op()) {
      case OpCode::Min:
      case OpCode::Max:
      case OpCode::Abs:
      case OpCode::Floor:
      case OpCode::Select:
      case OpCode::Lt:
      case OpCode::Le:
      case OpCode::Gt:
      case OpCode::Ge:
      case OpCode::Eq:
      case OpCode::Ne:
        smooth = false;
        break;
      default:
        for (const Expr &arg : e->args())
            smooth = smooth && checkSmooth(arg, memo);
        break;
    }
    memo.emplace(e.get(), smooth);
    return smooth;
}

} // namespace

Expr
makeSmooth(const Expr &root, Kernel kernel)
{
    FELIX_CHECK(root.defined(), "makeSmooth on undefined expression");
    std::unordered_map<const ExprNode *, Expr> memo;
    return rewriteNode(root, kernel, memo);
}

bool
isSmooth(const Expr &root)
{
    FELIX_CHECK(root.defined());
    std::unordered_map<const ExprNode *, bool> memo;
    return checkSmooth(root, memo);
}

} // namespace rewrite
} // namespace felix
