/**
 * @file
 * Gradient-stability rewrites (paper §3.3, "Gradient stability") and
 * constraint-to-penalty lowering (§3.3, "Constraint penalty
 * functions").
 *
 * Program features grow multiplicatively (float_add ~ N*M*K can hit
 * 1e9), which makes gradients vanish. Felix (1) takes the logarithm
 * of each smooth feature, structurally expanding log over products
 * where positivity is provable, and (2) substitutes x = e^y for each
 * schedule variable so the optimizer works in log space. Together
 * the two rewrites turn multiplicative formulas into additive ones
 * with linear growth.
 */
#ifndef FELIX_REWRITE_TRANSFORMS_H_
#define FELIX_REWRITE_TRANSFORMS_H_

#include <string>
#include <vector>

#include "expr/expr.h"

namespace felix {
namespace rewrite {

/**
 * Conservative positivity analysis.
 *
 * Variables are treated as positive: every Felix schedule variable
 * is a size/factor with domain [1, N]. Constants, products,
 * quotients, mins/maxes/sums of positives, exp, sqrt and sigmoid of
 * anything positive, etc.
 */
bool provablyPositive(const expr::Expr &e);

/**
 * log(feature), expanded structurally where positivity allows:
 *   log(a*b) -> log a + log b        log(a/b) -> log a - log b
 *   log(a^b) -> b * log a            log(exp a) -> a
 *   log(sqrt a) -> log(a) / 2
 * Subterms that cannot be proven positive stay under a (safe) log.
 */
expr::Expr logExpand(const expr::Expr &feature);

/**
 * Exponential variable substitution x = e^y.
 *
 * Replaces every variable in @p vars by exp(var). Variable names are
 * kept; after this rewrite the optimizer's values are interpreted in
 * log space. When applied after logExpand, occurrences log(exp(v))
 * collapse to v, so tile-size products become sums of log variables.
 */
expr::Expr expSubstituteVars(const expr::Expr &root,
                             const std::vector<std::string> &vars);

/**
 * Penalty function for a constraint g <= 0: max(g, 0)^2.
 *
 * This is already C^1 (derivative 2*max(g,0)), so it is used as-is
 * rather than smoothed — matching the paper's Eqn. 4.
 */
expr::Expr penalty(const expr::Expr &g);

/**
 * The full Felix feature pipeline for one formula:
 * smooth -> log-expand -> e^y substitution.
 */
expr::Expr featurePipeline(const expr::Expr &raw_feature,
                           const std::vector<std::string> &vars);

} // namespace rewrite
} // namespace felix

#endif // FELIX_REWRITE_TRANSFORMS_H_
