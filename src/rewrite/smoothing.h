/**
 * @file
 * Smoothing rewriter: differentiable approximations of
 * non-differentiable operators (paper §3.3).
 *
 * Feature formulas extracted from symbolic programs contain
 * select / min / max / abs / floor, which are discontinuous or have
 * kinks. Felix convolves each such operator with a smoothing kernel
 * phi to obtain an infinitely differentiable approximation, then
 * rewrites whole formulas bottom-up with a library of rules — one
 * per non-differentiable operator.
 *
 * The paper's kernel is the algebraic phi(t) = 1/sqrt(1+t^2), chosen
 * for numerically stable (heavy-tailed) gradients; Gaussian and bump
 * kernels are provided for the ablation bench.
 *
 * Closed forms used (algebraic kernel):
 *   step(x)  ~ S(x)        = (1 + x/sqrt(1+x^2)) / 2
 *   max(x,0) ~ M0(x)       = (x + sqrt(1+x^2)) / 2      (M0' = S)
 *   max(a,b) = b + M0(a-b),  min(a,b) = a - M0(a-b)
 *   select(c >= 0, p, q) ~ q + (p-q) * S(c)
 *   |x| ~ x^2 / sqrt(1+x^2)
 *   floor(x) ~ x - 1/2     (linear drift; exact in expectation)
 */
#ifndef FELIX_REWRITE_SMOOTHING_H_
#define FELIX_REWRITE_SMOOTHING_H_

#include "expr/expr.h"

namespace felix {
namespace rewrite {

/** Smoothing kernel family (ablation: Gaussian / bump vs default). */
enum class Kernel {
    Algebraic,   ///< phi(t) = 1/sqrt(1+t^2): the paper's choice
    Gaussian,    ///< phi(t) = exp(-t^2/2)
    Bump,        ///< phi(t) = 1/(1+t^2) (Cauchy-like bump)
};

const char *kernelName(Kernel kernel);

/** Smooth step S(x): 0 at -inf, 1 at +inf, S(0) = 1/2. */
expr::Expr smoothStep(const expr::Expr &x, Kernel kernel);

/** Smooth approximation of max(x, 0). */
expr::Expr smoothMax0(const expr::Expr &x, Kernel kernel);

/** Smooth max(a, b) = b + smoothMax0(a - b). */
expr::Expr smoothMax(const expr::Expr &a, const expr::Expr &b,
                     Kernel kernel);

/** Smooth min(a, b) = a - smoothMax0(a - b). */
expr::Expr smoothMin(const expr::Expr &a, const expr::Expr &b,
                     Kernel kernel);

/** Smooth |x|. */
expr::Expr smoothAbs(const expr::Expr &x, Kernel kernel);

/**
 * Rewrite @p root bottom-up, replacing every non-differentiable
 * operator (Min, Max, Abs, Floor, Select-with-comparison-condition,
 * bare comparisons) with its smooth version. The result contains
 * only differentiable opcodes; expressions that are already smooth
 * are returned unchanged (same interned node).
 */
expr::Expr makeSmooth(const expr::Expr &root,
                      Kernel kernel = Kernel::Algebraic);

/** True when no node under @p root is non-differentiable. */
bool isSmooth(const expr::Expr &root);

} // namespace rewrite
} // namespace felix

#endif // FELIX_REWRITE_SMOOTHING_H_
