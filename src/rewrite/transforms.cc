#include "rewrite/transforms.h"

#include <unordered_map>

#include "rewrite/smoothing.h"
#include "support/logging.h"

namespace felix {
namespace rewrite {

using expr::Expr;
using expr::ExprNode;
using expr::OpCode;

namespace {

bool
positiveNode(const Expr &e,
             std::unordered_map<const ExprNode *, bool> &memo)
{
    auto it = memo.find(e.get());
    if (it != memo.end())
        return it->second;
    bool pos = false;
    const auto &args = e->args();
    switch (e->op()) {
      case OpCode::ConstOp:
        pos = e.constValue() > 0.0;
        break;
      case OpCode::VarOp:
        // Schedule variables are sizes/factors with domain [1, N].
        pos = true;
        break;
      case OpCode::Add:
      case OpCode::Mul:
      case OpCode::Div:
      case OpCode::Min:
      case OpCode::Max:
        pos = positiveNode(args[0], memo) && positiveNode(args[1], memo);
        break;
      case OpCode::Pow:
        pos = positiveNode(args[0], memo);
        break;
      case OpCode::Exp:
      case OpCode::Sigmoid:
        pos = true;
        break;
      case OpCode::Sqrt:
        pos = positiveNode(args[0], memo);
        break;
      case OpCode::Select:
        pos = positiveNode(args[1], memo) && positiveNode(args[2], memo);
        break;
      default:
        pos = false;
        break;
    }
    memo.emplace(e.get(), pos);
    return pos;
}

Expr
logNode(const Expr &e,
        std::unordered_map<const ExprNode *, bool> &posMemo,
        std::unordered_map<const ExprNode *, Expr> &memo)
{
    auto it = memo.find(e.get());
    if (it != memo.end())
        return it->second;

    Expr result;
    const auto &args = e->args();
    auto positive = [&](const Expr &sub) {
        return positiveNode(sub, posMemo);
    };
    auto rec = [&](const Expr &sub) {
        return logNode(sub, posMemo, memo);
    };

    switch (e->op()) {
      case OpCode::Mul:
        if (positive(args[0]) && positive(args[1])) {
            result = rec(args[0]) + rec(args[1]);
        }
        break;
      case OpCode::Div:
        if (positive(args[0]) && positive(args[1])) {
            result = rec(args[0]) - rec(args[1]);
        }
        break;
      case OpCode::Pow:
        if (positive(args[0])) {
            result = args[1] * rec(args[0]);
        }
        break;
      case OpCode::Exp:
        result = args[0];
        break;
      case OpCode::Sqrt:
        if (positive(args[0])) {
            result = rec(args[0]) * 0.5;
        }
        break;
      default:
        break;
    }
    if (!result.defined())
        result = expr::log(e);
    memo.emplace(e.get(), result);
    return result;
}

} // namespace

bool
provablyPositive(const Expr &e)
{
    FELIX_CHECK(e.defined());
    std::unordered_map<const ExprNode *, bool> memo;
    return positiveNode(e, memo);
}

Expr
logExpand(const Expr &feature)
{
    FELIX_CHECK(feature.defined());
    std::unordered_map<const ExprNode *, bool> posMemo;
    std::unordered_map<const ExprNode *, Expr> memo;
    return logNode(feature, posMemo, memo);
}

Expr
expSubstituteVars(const Expr &root, const std::vector<std::string> &vars)
{
    std::vector<std::pair<std::string, Expr>> map;
    map.reserve(vars.size());
    for (const std::string &name : vars)
        map.emplace_back(name, expr::exp(Expr::var(name)));
    return expr::substitute(root, map);
}

Expr
penalty(const Expr &g)
{
    Expr clipped = expr::max(g, Expr::constant(0.0));
    return clipped * clipped;
}

Expr
featurePipeline(const Expr &raw_feature,
                const std::vector<std::string> &vars)
{
    Expr smooth = makeSmooth(raw_feature);
    Expr logged = logExpand(smooth);
    return expSubstituteVars(logged, vars);
}

} // namespace rewrite
} // namespace felix
