#include "costmodel/cost_model.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/logging.h"
#include "support/parallel.h"

namespace felix {
namespace costmodel {

void
Scaler::fit(const std::vector<std::vector<double>> &transformed)
{
    FELIX_CHECK(!transformed.empty(), "scaler fit on empty data");
    const size_t dim = transformed[0].size();
    mean_.assign(dim, 0.0);
    std_.assign(dim, 0.0);
    for (const auto &row : transformed) {
        for (size_t i = 0; i < dim; ++i)
            mean_[i] += row[i];
    }
    for (double &m : mean_)
        m /= static_cast<double>(transformed.size());
    for (const auto &row : transformed) {
        for (size_t i = 0; i < dim; ++i) {
            double d = row[i] - mean_[i];
            std_[i] += d * d;
        }
    }
    for (double &s : std_) {
        s = std::sqrt(s / static_cast<double>(transformed.size()));
        if (s < 1e-6)
            s = 1.0;   // constant feature: pass through centred
    }
}

std::vector<double>
Scaler::apply(const std::vector<double> &x) const
{
    FELIX_CHECK(x.size() == mean_.size(), "scaler: wrong input size");
    std::vector<double> out(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        out[i] = (x[i] - mean_[i]) / std_[i];
    return out;
}

void
Scaler::save(std::ostream &os) const
{
    os.precision(17);
    for (double m : mean_)
        os << m << " ";
    os << "\n";
    for (double s : std_)
        os << s << " ";
    os << "\n";
}

Scaler
Scaler::load(std::istream &is, size_t size)
{
    Scaler scaler;
    scaler.mean_.resize(size);
    scaler.std_.resize(size);
    for (double &m : scaler.mean_)
        is >> m;
    for (double &s : scaler.std_)
        is >> s;
    FELIX_CHECK(static_cast<bool>(is), "truncated scaler");
    return scaler;
}

CostModel::CostModel(MlpConfig config, uint64_t seed)
    : config_(std::move(config)), rng_(seed), mlp_(config_, rng_)
{
}

double
CostModel::inputTransform(double raw_feature)
{
    return std::log(std::max(raw_feature, 1.0));
}

std::vector<double>
CostModel::transformFeatures(const std::vector<double> &raw)
{
    std::vector<double> out(raw.size());
    for (size_t i = 0; i < raw.size(); ++i)
        out[i] = inputTransform(raw[i]);
    return out;
}

double
CostModel::targetOf(double latency_sec)
{
    return -std::log(std::max(latency_sec, 1e-12));
}

double
CostModel::latencyOf(double score)
{
    return std::exp(-score);
}

void
CostModel::fit(const std::vector<Sample> &samples, int epochs,
               int batch_size, double lr)
{
    FELIX_CHECK(!samples.empty(), "cost model fit on empty dataset");
    FELIX_SPAN("costmodel.fit", "costmodel");
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    xs.reserve(samples.size());
    for (const Sample &sample : samples) {
        xs.push_back(transformFeatures(sample.rawFeatures));
        ys.push_back(targetOf(sample.latencySec));
    }
    scaler_.fit(xs);
    for (auto &x : xs)
        x = scaler_.apply(x);
    // Center the targets: -log(latency) sits around 8-12, and an
    // uncentered head wastes hundreds of Adam steps learning the
    // mean before it can learn the ranking.
    targetMean_ = 0.0;
    for (double y : ys)
        targetMean_ += y;
    targetMean_ /= static_cast<double>(ys.size());
    for (double &y : ys)
        y -= targetMean_;

    std::vector<size_t> order(xs.size());
    std::iota(order.begin(), order.end(), 0);
    for (int epoch = 0; epoch < epochs; ++epoch) {
        rng_.shuffle(order);
        double epochLoss = 0.0;
        int batches = 0;
        for (size_t start = 0; start < order.size();
             start += batch_size) {
            size_t end = std::min(order.size(),
                                  start + static_cast<size_t>(
                                              batch_size));
            std::vector<std::vector<double>> bx;
            std::vector<double> by;
            for (size_t i = start; i < end; ++i) {
                bx.push_back(xs[order[i]]);
                by.push_back(ys[order[i]]);
            }
            epochLoss += mlp_.trainBatch(bx, by, lr);
            ++batches;
        }
        double epochMse = epochLoss / std::max(1, batches);
        obs::MetricsRegistry::instance()
            .gauge("costmodel.train_loss")
            .set(epochMse);
        debug("cost model epoch ", epoch, " mse ", epochMse);
    }
}

double
CostModel::finetune(const std::vector<Sample> &samples, int steps,
                    double lr)
{
    if (samples.empty() || !scaler_.fitted() || steps <= 0)
        return -1.0;
    FELIX_SPAN("costmodel.finetune", "costmodel");
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (const Sample &sample : samples) {
        xs.push_back(
            scaler_.apply(transformFeatures(sample.rawFeatures)));
        ys.push_back(targetOf(sample.latencySec) - targetMean_);
    }
    double lossSum = 0.0;
    for (int step = 0; step < steps; ++step)
        lossSum += mlp_.trainBatch(xs, ys, lr);
    double meanLoss = lossSum / steps;
    auto &registry = obs::MetricsRegistry::instance();
    registry.counter("costmodel.finetune_steps").add(steps);
    registry.gauge("costmodel.train_loss").set(meanLoss);
    return meanLoss;
}

double
CostModel::predict(const std::vector<double> &raw_features) const
{
    FELIX_CHECK(scaler_.fitted(), "cost model not fitted");
    return targetMean_ +
           mlp_.forward(scaler_.apply(transformFeatures(raw_features)));
}

double
CostModel::predictWithGrad(const std::vector<double> &raw_features,
                           std::vector<double> &grad) const
{
    return predictTransformedWithGrad(
        transformFeatures(raw_features), grad);
}

double
CostModel::predictTransformedWithGrad(
    const std::vector<double> &transformed,
    std::vector<double> &grad) const
{
    FELIX_CHECK(scaler_.fitted(), "cost model not fitted");
    std::vector<double> scaled = scaler_.apply(transformed);
    double score = mlp_.forwardInputGrad(scaled, grad);
    // Chain through standardization: d/dz = d/dz' / sigma.
    const auto &stds = scaler_.stddevs();
    for (size_t i = 0; i < grad.size(); ++i)
        grad[i] /= stds[i];
    return targetMean_ + score;
}

void
CostModel::predictBatch(const double *raw, double *scores,
                        PredictScratch &scratch) const
{
    FELIX_CHECK(scaler_.fitted(), "cost model not fitted");
    constexpr size_t L = kBatchLanes;
    const size_t dim = scaler_.means().size();
    const double *means = scaler_.means().data();
    const double *stds = scaler_.stddevs().data();
    std::vector<double> &scaled = scratch.scaled;
    scaled.resize(dim * L);
    // phi + standardization per lane, elementwise — the identical
    // scalar expressions predict() evaluates.
    for (size_t i = 0; i < dim; ++i) {
        const double *in = &raw[i * L];
        double *out = &scaled[i * L];
        for (size_t l = 0; l < L; ++l)
            out[l] = (inputTransform(in[l]) - means[i]) / stds[i];
    }
    double y[L];
    mlp_.forwardBatch(scaled.data(), y, scratch.mlp);
    for (size_t l = 0; l < L; ++l)
        scores[l] = targetMean_ + y[l];
}

void
CostModel::predictTransformedWithGradBatch(
    const double *transformed, double *scores, double *grads,
    PredictScratch &scratch) const
{
    FELIX_CHECK(scaler_.fitted(), "cost model not fitted");
    constexpr size_t L = kBatchLanes;
    const size_t dim = scaler_.means().size();
    const double *means = scaler_.means().data();
    const double *stds = scaler_.stddevs().data();
    std::vector<double> &scaled = scratch.scaled;
    scaled.resize(dim * L);
    for (size_t i = 0; i < dim; ++i) {
        const double *in = &transformed[i * L];
        double *out = &scaled[i * L];
        for (size_t l = 0; l < L; ++l)
            out[l] = (in[l] - means[i]) / stds[i];
    }
    double y[L];
    mlp_.forwardInputGradBatch(scaled.data(), y, grads,
                               scratch.mlp);
    // Chain through standardization: d/dz = d/dz' / sigma.
    for (size_t i = 0; i < dim; ++i) {
        double *g = &grads[i * L];
        for (size_t l = 0; l < L; ++l)
            g[l] /= stds[i];
    }
    for (size_t l = 0; l < L; ++l)
        scores[l] = targetMean_ + y[l];
}

ModelMetrics
CostModel::validate(const std::vector<Sample> &samples) const
{
    ModelMetrics metrics;
    if (samples.empty())
        return metrics;
    std::vector<double> preds(samples.size());
    std::vector<double> targets(samples.size());
    parallelFor("costmodel.validate", samples.size(), [&](size_t i) {
        preds[i] = predict(samples[i].rawFeatures);
        targets[i] = targetOf(samples[i].latencySec);
    });
    for (size_t i = 0; i < preds.size(); ++i) {
        double err = preds[i] - targets[i];
        metrics.mse += err * err;
    }
    metrics.mse /= static_cast<double>(preds.size());

    // Pairwise ranking accuracy, mapped to [-1, 1].
    size_t agree = 0, total = 0;
    Rng rng(12345);
    size_t pairs = std::min<size_t>(20000, preds.size() *
                                               (preds.size() - 1) / 2);
    for (size_t p = 0; p < pairs; ++p) {
        size_t a = rng.index(preds.size());
        size_t b = rng.index(preds.size());
        if (a == b || targets[a] == targets[b])
            continue;
        ++total;
        bool predOrder = preds[a] < preds[b];
        bool trueOrder = targets[a] < targets[b];
        agree += (predOrder == trueOrder);
    }
    if (total > 0) {
        metrics.rankCorrelation =
            2.0 * static_cast<double>(agree) /
                static_cast<double>(total) -
            1.0;
    }
    return metrics;
}

void
CostModel::save(const std::string &path) const
{
    std::ofstream os(path);
    FELIX_CHECK(os.good(), "cannot write cost model to " + path);
    os << "felix-cost-model v1\n";
    mlp_.save(os);
    os << static_cast<size_t>(config_.layerSizes.front()) << "\n";
    scaler_.save(os);
    os << targetMean_ << "\n";
}

std::optional<CostModel>
CostModel::tryLoad(const std::string &path)
{
    std::ifstream is(path);
    if (!is.good())
        return std::nullopt;
    std::string word1, word2;
    is >> word1 >> word2;
    if (word1 != "felix-cost-model" || word2 != "v1")
        return std::nullopt;
    Mlp mlp = Mlp::load(is);
    size_t scalerSize = 0;
    is >> scalerSize;
    Scaler scaler = Scaler::load(is, scalerSize);
    double targetMean = 0.0;
    is >> targetMean;
    if (!is)
        return std::nullopt;

    CostModel model;
    model.mlp_ = std::move(mlp);
    model.scaler_ = std::move(scaler);
    model.targetMean_ = targetMean;
    return model;
}

void
CostModel::saveState(std::ostream &os) const
{
    os << "felix-cost-model-state v1\n";
    mlp_.saveFull(os);
    if (scaler_.fitted()) {
        os << scaler_.means().size() << "\n";
        scaler_.save(os);
    } else {
        os << 0 << "\n";
    }
    os.precision(17);
    os << targetMean_ << "\n";
}

std::optional<CostModel>
CostModel::loadState(std::istream &is)
{
    std::string word1, word2;
    is >> word1 >> word2;
    if (word1 != "felix-cost-model-state" || word2 != "v1")
        return std::nullopt;
    Mlp mlp = Mlp::loadFull(is);
    size_t scalerSize = 0;
    is >> scalerSize;
    Scaler scaler;
    if (scalerSize > 0)
        scaler = Scaler::load(is, scalerSize);
    double targetMean = 0.0;
    is >> targetMean;
    if (!is)
        return std::nullopt;

    CostModel model;
    model.mlp_ = std::move(mlp);
    model.scaler_ = std::move(scaler);
    model.targetMean_ = targetMean;
    return model;
}

} // namespace costmodel
} // namespace felix
