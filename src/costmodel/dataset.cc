#include "costmodel/dataset.h"

#include <filesystem>

#include "expr/compiled.h"
#include "features/features.h"
#include "sim/gpu_model.h"
#include "sketch/sampling.h"
#include "sketch/sketch.h"
#include "support/logging.h"
#include "support/parallel.h"
#include "support/string_util.h"
#include "tir/ops.h"

namespace felix {
namespace costmodel {

namespace {

int64_t
pick(Rng &rng, std::initializer_list<int64_t> choices)
{
    std::vector<int64_t> values(choices);
    return values[rng.index(values.size())];
}

tir::SubgraphDef
randomConv2d(Rng &rng, int id)
{
    tir::Conv2dConfig config;
    config.n = pick(rng, {1, 1, 8, 16});   // bulk-inference batches
    config.c = pick(rng, {16, 32, 64, 128, 256});
    config.h = config.w = pick(rng, {7, 14, 28, 56, 112});
    config.k = pick(rng, {16, 32, 64, 128, 256});
    config.r = config.s = pick(rng, {1, 3, 5});
    config.stride = pick(rng, {1, 2});
    config.pad = config.r / 2;
    config.bias = rng.bernoulli(0.7);
    if (rng.bernoulli(0.5))
        config.epilogue = tir::Epilogue::Relu;
    if (rng.bernoulli(0.15)) {
        config.k = config.c;
        config.groups = config.c;   // depthwise
    }
    return tir::conv2d(config, strformat("ds_conv2d_%d", id));
}

tir::SubgraphDef
randomConv3d(Rng &rng, int id)
{
    tir::Conv3dConfig config;
    config.n = pick(rng, {1, 1, 8});
    config.c = pick(rng, {16, 32, 64});
    config.d = pick(rng, {4, 8, 16});
    config.h = config.w = pick(rng, {14, 28, 56});
    config.k = pick(rng, {16, 32, 64});
    config.kd = config.r = config.s = 3;
    config.stride = pick(rng, {1, 2});
    config.pad = 1;
    config.bias = rng.bernoulli(0.5);
    return tir::conv3d(config, strformat("ds_conv3d_%d", id));
}

tir::SubgraphDef
randomDense(Rng &rng, int id)
{
    // Cover transformer-scale projections (LLaMA: m/k up to 11008
    // and the 32000-way LM head) as well as classifier heads.
    int64_t n = pick(rng, {1, 16, 64, 100, 128, 256, 512});
    int64_t m = pick(rng, {64, 128, 256, 512, 1024, 2048, 4096, 8192,
                           11008, 32000});
    int64_t k = pick(rng, {64, 128, 256, 512, 1024, 2048, 4096,
                           11008});
    return tir::dense(n, m, k, rng.bernoulli(0.7),
                      rng.bernoulli(0.4) ? tir::Epilogue::Relu
                                         : tir::Epilogue::None,
                      strformat("ds_dense_%d", id));
}

tir::SubgraphDef
randomBatchMatmul(Rng &rng, int id)
{
    int64_t b = pick(rng, {4, 8, 12, 16, 32, 192, 512});
    int64_t n = pick(rng, {32, 50, 64, 100, 128, 256});
    int64_t m = pick(rng, {32, 64, 128, 256});
    int64_t k = pick(rng, {32, 64, 128, 256});
    return tir::batchMatmul(b, n, m, k,
                            strformat("ds_bmm_%d", id));
}

tir::SubgraphDef
randomOther(Rng &rng, int id)
{
    switch (rng.index(4)) {
      case 0:
        return tir::softmax(pick(rng, {16, 64, 256}),
                            pick(rng, {128, 512, 1024}),
                            strformat("ds_softmax_%d", id));
      case 1: {
        int64_t c = pick(rng, {32, 64, 128});
        int64_t hw = pick(rng, {28, 56, 112});
        return tir::maxPool2d(1, c, hw, hw, 2, 2,
                              strformat("ds_pool_%d", id));
      }
      case 2: {
        tir::ArithCounts arith;
        arith.add = 1;
        arith.mul = 1;
        return tir::elementwise(
            pick(rng, {1 << 14, 1 << 17, 1 << 20}), 2, arith,
            strformat("ds_eltwise_%d", id));
      }
      default:
        return tir::layerNorm(pick(rng, {64, 197, 512}),
                              pick(rng, {256, 768, 1024}),
                              strformat("ds_ln_%d", id));
    }
}

} // namespace

std::vector<tir::SubgraphDef>
datasetSubgraphPool(int count, Rng &rng)
{
    std::vector<tir::SubgraphDef> pool;
    pool.reserve(count);
    for (int i = 0; i < count; ++i) {
        // Mix mirrors TenSet's task distribution: convolution and
        // linear-layer bottlenecks dominate.
        double roll = rng.uniform();
        if (roll < 0.40)
            pool.push_back(randomConv2d(rng, i));
        else if (roll < 0.50)
            pool.push_back(randomConv3d(rng, i));
        else if (roll < 0.75)
            pool.push_back(randomDense(rng, i));
        else if (roll < 0.88)
            pool.push_back(randomBatchMatmul(rng, i));
        else
            pool.push_back(randomOther(rng, i));
    }
    return pool;
}

std::vector<Sample>
synthesizeDataset(const sim::DeviceConfig &device,
                  const DatasetOptions &options)
{
    Rng rng(options.seed);
    auto pool = datasetSubgraphPool(options.numSubgraphs, rng);

    // Subgraphs synthesize independently — sketch generation, tape
    // compilation (concurrent interning) and sampling from a forked
    // per-subgraph stream — then concatenate in pool order.
    std::vector<Rng> subgraphRngs = rng.forkStreams(pool.size());
    std::vector<std::vector<Sample>> perSubgraph(pool.size());
    parallelFor("dataset.subgraph", pool.size(), [&](size_t si) {
        const tir::SubgraphDef &subgraph = pool[si];
        Rng &subRng = subgraphRngs[si];
        std::vector<Sample> &out = perSubgraph[si];
        for (const auto &sched : sketch::generateSketches(subgraph)) {
            std::vector<std::string> names;
            for (const auto &domain : sched.vars)
                names.push_back(domain.name);
            auto formulas = features::extractFeatures(sched.program);
            expr::CompiledExprs compiled(formulas, names);
            expr::EvalState state;
            for (int i = 0; i < options.schedulesPerSketch; ++i) {
                auto x = sketch::sampleValid(sched, subRng);
                Sample sample;
                sample.rawFeatures = compiled.eval(x, state);
                sample.latencySec = sim::measureKernel(
                    sample.rawFeatures, device, /*noise_seed=*/0);
                out.push_back(std::move(sample));
            }
        }
    });
    std::vector<Sample> samples;
    for (std::vector<Sample> &part : perSubgraph) {
        for (Sample &sample : part)
            samples.push_back(std::move(sample));
    }
    inform("synthesized ", samples.size(), " dataset samples for ",
           device.name);
    return samples;
}

CostModel
pretrainedCostModel(sim::DeviceKind device, const std::string &cache_dir,
                    const DatasetOptions &options)
{
    std::string tag;
    switch (device) {
      case sim::DeviceKind::A10G: tag = "a10g"; break;
      case sim::DeviceKind::A5000: tag = "a5000"; break;
      case sim::DeviceKind::XavierNX: tag = "xavier_nx"; break;
    }
    std::string path = cache_dir + "/cost_model_" + tag + ".txt";
    if (auto cached = CostModel::tryLoad(path)) {
        return std::move(*cached);
    }
    inform("pretraining cost model for ", deviceKindName(device),
           " (cache miss at ", path, ")");
    auto samples = synthesizeDataset(sim::deviceConfig(device),
                                     options);
    CostModel model({}, options.seed);
    model.fit(samples);
    auto metrics = model.validate(samples);
    inform("cost model for ", deviceKindName(device), ": train mse ",
           metrics.mse, ", rank corr ", metrics.rankCorrelation);
    std::error_code ec;
    std::filesystem::create_directories(cache_dir, ec);
    model.save(path);
    return model;
}

} // namespace costmodel
} // namespace felix
