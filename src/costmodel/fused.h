/**
 * @file
 * The fused surrogate gradient step (one round-step of Felix's
 * descent, Algorithm 1 lines 15-18, as a single blocked pass).
 *
 * The unfused batched step materializes three full feature matrices
 * per step: tape outputs copied out of the SoA slot buffer, scaled
 * copies staged for the MLP, and the MLP input gradient copied back
 * into an adjoint-seed matrix for the tape. For an 82-feature row x
 * kBatchLanes lanes, those round-trips dominate once the tape sweep
 * itself is JIT-compiled (src/jit/). FusedGradStep chains the same
 * four stages — tape forward, MLP forward, MLP input gradient, tape
 * backward — through the engines' internal SoA rows instead:
 *
 *   tape forwardBatchKeep        (outputs stay in the slot buffer)
 *     -> standardize rows straight into Mlp::stageInputRows
 *     -> Mlp::forwardInputGradStaged (grad stays in MLP scratch)
 *     -> seed tape adjoints straight from the MLP gradient rows
 *   tape finishBackwardBatch     (input grads out, as before)
 *
 * Bit-exactness: every arithmetic operation, in the same order, on
 * the same values as the unfused path — the only eliminated work is
 * copies (and the penalty seed's "+= 0.0" writes, which are bitwise
 * no-ops on the freshly zeroed adjoint rows). tests/test_jit.cc
 * asserts fused == unfused per lane, bit for bit, at every width.
 */
#ifndef FELIX_COSTMODEL_FUSED_H_
#define FELIX_COSTMODEL_FUSED_H_

#include <cstddef>

#include "costmodel/cost_model.h"
#include "expr/compiled.h"

namespace felix {
namespace costmodel {

/**
 * One objective tape + cost model pair bound for fused stepping.
 * Immutable and thread-safe: workers share one FusedGradStep and
 * bring their own BatchEvalState/PredictScratch, exactly like the
 * underlying engines.
 */
class FusedGradStep
{
  public:
    /**
     * @param objective Tape whose first @p numFeatures outputs are
     *        the smoothed model inputs and next @p numPenalties
     *        outputs the constraint penalties (optim/search.cc).
     * @param model Fitted cost model (scaler + MLP).
     * @param lambda Penalty weight (GradSearchOptions::lambda).
     */
    FusedGradStep(const expr::CompiledExprs &objective,
                  const CostModel &model, size_t numFeatures,
                  size_t numPenalties, double lambda);

    /**
     * One surrogate step: tape forward, model score + input
     * gradient, adjoint seeding, tape backward.
     *
     * @param inputs numVars rows of kBatchLanes doubles (SoA).
     * @param width Active lanes, 1..kBatchLanes.
     * @param scores One row; scores[l] is the model score of lane l
     *        (active lanes only).
     * @param inputGrads numVars rows: d(-score + penalty)/d(input),
     *        the descent direction the Adam step consumes.
     */
    void run(const double *inputs, size_t width, double *scores,
             double *inputGrads, expr::BatchEvalState &tape,
             PredictScratch &scratch) const;

  private:
    const expr::CompiledExprs &objective_;
    const CostModel &model_;
    size_t numFeatures_;
    size_t numPenalties_;
    double lambda_;
};

} // namespace costmodel
} // namespace felix

#endif // FELIX_COSTMODEL_FUSED_H_
