#include "costmodel/fused.h"

#include "support/batch.h"
#include "support/logging.h"

namespace felix {
namespace costmodel {

FusedGradStep::FusedGradStep(const expr::CompiledExprs &objective,
                             const CostModel &model,
                             size_t numFeatures, size_t numPenalties,
                             double lambda)
    : objective_(objective), model_(model),
      numFeatures_(numFeatures), numPenalties_(numPenalties),
      lambda_(lambda)
{
    FELIX_CHECK(model_.scaler().fitted(),
                "FusedGradStep on an unfitted cost model");
    FELIX_CHECK(model_.scaler().means().size() == numFeatures_,
                "FusedGradStep: tape emits ", numFeatures_,
                " features but the model expects ",
                model_.scaler().means().size());
    FELIX_CHECK(objective_.numOutputs() ==
                    numFeatures_ + numPenalties_,
                "FusedGradStep: objective outputs don't match "
                "features + penalties");
}

void
FusedGradStep::run(const double *inputs, size_t width,
                   double *scores, double *inputGrads,
                   expr::BatchEvalState &tape,
                   PredictScratch &scratch) const
{
    constexpr size_t L = kBatchLanes;
    const Mlp &mlp = model_.mlp();
    const double *means = model_.scaler().means().data();
    const double *stds = model_.scaler().stddevs().data();

    objective_.forwardBatchKeep(inputs, width, tape);

    // Standardize the feature rows straight out of the tape's slot
    // buffer into the network's input rows — the unfused path's
    // outputs/scaled copies collapse into this one pass, same
    // per-lane arithmetic (cost_model.cc
    // predictTransformedWithGradBatch).
    double *xRows = mlp.stageInputRows(scratch.mlp);
    for (size_t k = 0; k < numFeatures_; ++k) {
        const double *in = objective_.outputRowPtr(k, tape);
        double *out = &xRows[k * L];
        for (size_t l = 0; l < L; ++l)
            out[l] = (in[l] - means[k]) / stds[k];
    }

    double y[kBatchLanes];
    mlp.forwardInputGradStaged(y, scratch.mlp);
    for (size_t l = 0; l < L; ++l)
        scores[l] = model_.targetMean() + y[l];

    // Seed the tape adjoints directly from the MLP gradient rows.
    // Unfused: grads /= sigma, outputGrads = -grads, adjoint += seed
    // — three passes. Here: adjoint += -(grad / sigma), the same
    // operations on the same values in the same order (the adjoint
    // rows were just zeroed, so += is the identical accumulation).
    objective_.beginBackwardBatch(tape);
    const double *gRows = mlp.inputGradRows(scratch.mlp);
    for (size_t k = 0; k < numFeatures_; ++k) {
        const double *g = &gRows[k * L];
        double *adj = objective_.outputAdjRowPtr(k, tape);
        for (size_t l = 0; l < width; ++l)
            adj[l] += -(g[l] / stds[k]);
    }
    // Penalty seeds: lambda * d(p^2)/dp for violated constraints.
    // The unfused path writes an explicit 0.0 for satisfied ones and
    // adds it — a bitwise no-op on the zeroed rows — so skipping the
    // add entirely is bit-identical.
    for (size_t p = 0; p < numPenalties_; ++p) {
        const double *out =
            objective_.outputRowPtr(numFeatures_ + p, tape);
        double *adj =
            objective_.outputAdjRowPtr(numFeatures_ + p, tape);
        for (size_t l = 0; l < width; ++l) {
            const double v = out[l];
            if (v > 0.0)
                adj[l] += lambda_ * 2.0 * v;
        }
    }

    objective_.finishBackwardBatch(inputGrads, tape);
}

} // namespace costmodel
} // namespace felix
