/**
 * @file
 * Multi-layer perceptron with Adam training.
 *
 * The paper uses TenSet's MLP cost model (4 linear layers) trained
 * with PyTorch; this is a from-scratch C++ equivalent. Beyond the
 * usual parameter gradients it exposes the *input* gradient — the
 * quantity Felix back-propagates into the differentiable feature
 * formulas during schedule search.
 *
 * The default layer sizes are smaller than TenSet's ~250K-parameter
 * network because training here runs on one CPU core; DESIGN.md
 * documents the substitution.
 */
#ifndef FELIX_COSTMODEL_MLP_H_
#define FELIX_COSTMODEL_MLP_H_

#include <iosfwd>
#include <vector>

#include "support/aligned.h"
#include "support/batch.h"
#include "support/rng.h"

namespace felix {
namespace costmodel {

/**
 * Reusable buffers for the scalar forward/forwardInputGrad paths.
 * Hot loops (gradient descent, candidate ranking) keep one of these
 * per worker so steady-state inference performs no allocation; the
 * buffers grow to the network's working-set size on first use and
 * are reused verbatim afterwards.
 */
struct MlpScratch
{
    std::vector<double> cur, next;          ///< forward activations
    std::vector<std::vector<double>> acts;  ///< per-layer (input grad)
    std::vector<double> adj, prev;          ///< backward adjoints
};

/**
 * Scratch for the batched entry points: the same buffers with one
 * row of kBatchLanes doubles per neuron, lane-major within the row.
 * Rows are cache-line-aligned so every SIMD backend's loads and
 * stores stay within one line (support/aligned.h).
 */
struct MlpBatchScratch
{
    AlignedRows cur, next;
    std::vector<AlignedRows> acts;
    AlignedRows adj, prev;
    AlignedRows madj;  ///< ReLU-masked adjoint rows

    // Scalar-lane fallback buffers (see the width-1 note on
    // Mlp::forwardBatch): per-lane gather/scatter staging plus one
    // scalar scratch, reused across lanes and calls.
    MlpScratch lane;
    std::vector<double> laneIn, laneDx;
};

/** MLP shape: sizes of every layer including input and output. */
struct MlpConfig
{
    std::vector<int> layerSizes = {82, 128, 128, 64, 1};
    double adamBeta1 = 0.9;
    double adamBeta2 = 0.999;
    double adamEps = 1e-8;
};

/**
 * Fully connected ReLU network with a linear head.
 *
 * forward()/forwardInputGrad() are const and safe to call from many
 * threads at once. trainBatch() mutates parameters (not reentrant)
 * but internally fans the per-sample gradient accumulation out over
 * the global pool in fixed-size chunks, reduced in chunk order, so
 * training results are identical for any --jobs value.
 */
class Mlp
{
  public:
    Mlp(MlpConfig config, Rng &rng);

    int inputSize() const { return config_.layerSizes.front(); }
    size_t parameterCount() const;

    /** Forward pass; input size must equal inputSize(). */
    double forward(const std::vector<double> &x,
                   MlpScratch &scratch) const;

    /**
     * Forward pass plus the gradient of the output with respect to
     * the input vector (the path Felix's gradient descent uses).
     */
    double forwardInputGrad(const std::vector<double> &x,
                            std::vector<double> &dx,
                            MlpScratch &scratch) const;

    // Allocating convenience overloads (thin wrappers over the
    // scratch versions; construct a throwaway scratch per call).
    double forward(const std::vector<double> &x) const;
    double forwardInputGrad(const std::vector<double> &x,
                            std::vector<double> &dx) const;

    /**
     * Evaluate kBatchLanes inputs in lockstep. All buffers are SoA
     * rows of kBatchLanes doubles: x[i * kBatchLanes + lane] is
     * feature i of point `lane`, y is one row of scores. Lanes are
     * fully independent (the ReLU gates are per lane), so each
     * lane's score is bit-identical to a scalar forward() of that
     * point; callers with partial batches pad the unused lanes with
     * any finite values.
     */
    void forwardBatch(const double *x, double *y,
                      MlpBatchScratch &scratch) const;

    /**
     * Batched forward plus input gradient: y is one row of scores,
     * dx is inputSize() rows of d(score)/d(input). Per lane
     * bit-identical to forwardInputGrad() (row-major GEMM-style
     * loops over the same accumulation order).
     */
    void forwardInputGradBatch(const double *x, double *y,
                               double *dx,
                               MlpBatchScratch &scratch) const;

    // ----- Staged entry points (costmodel/fused.h) ---------------
    //
    // The fused surrogate step writes features straight into the
    // network's input rows and reads the input gradient straight out
    // of the adjoint rows, skipping the x/dx round-trips of
    // forwardInputGradBatch (which is implemented on top of these,
    // so both paths run the identical kernel sequence bit for bit).

    /** The input rows (inputSize() x kBatchLanes) to fill before
     *  forwardInputGradStaged(). Sized on first use. */
    double *stageInputRows(MlpBatchScratch &scratch) const;

    /** forwardInputGradBatch reading inputs from stageInputRows()
     *  and leaving the input-gradient rows in @p scratch (read them
     *  via inputGradRows()). y is one row of scores. */
    void forwardInputGradStaged(double *y,
                                MlpBatchScratch &scratch) const;

    /** Input-gradient rows left by forwardInputGradStaged(); valid
     *  until the next call on @p scratch. */
    const double *inputGradRows(const MlpBatchScratch &scratch) const
    {
        return scratch.adj.data();
    }

    /**
     * One Adam step on a mini-batch with MSE loss.
     * @return the batch mean squared error before the update.
     */
    double trainBatch(const std::vector<std::vector<double>> &xs,
                      const std::vector<double> &ys, double lr);

    /** Mean squared error over a dataset (no update). */
    double evaluate(const std::vector<std::vector<double>> &xs,
                    const std::vector<double> &ys) const;

    void save(std::ostream &os) const;
    static Mlp load(std::istream &is);

    /**
     * Full-state serialization: weights and biases plus the Adam
     * moments and step counter, so a loaded network continues
     * training bit-identically to one that never stopped. save()
     * (inference-only) stays the pretrained-cache format; this is
     * the checkpoint format (docs/distributed.md).
     */
    void saveFull(std::ostream &os) const;
    static Mlp loadFull(std::istream &is);

  private:
    explicit Mlp(MlpConfig config);

    struct Layer
    {
        int in = 0, out = 0;
        std::vector<double> weight;   ///< out x in, row-major
        std::vector<double> bias;     ///< out
        // Adam state
        std::vector<double> mWeight, vWeight, mBias, vBias;
    };

    static void forwardLayerBatch(const Layer &layer, bool hidden,
                                  const AlignedRows &cur,
                                  AlignedRows &out);

    MlpConfig config_;
    std::vector<Layer> layers_;
    int64_t adamStep_ = 0;
};

} // namespace costmodel
} // namespace felix

#endif // FELIX_COSTMODEL_MLP_H_
