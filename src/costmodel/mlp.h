/**
 * @file
 * Multi-layer perceptron with Adam training.
 *
 * The paper uses TenSet's MLP cost model (4 linear layers) trained
 * with PyTorch; this is a from-scratch C++ equivalent. Beyond the
 * usual parameter gradients it exposes the *input* gradient — the
 * quantity Felix back-propagates into the differentiable feature
 * formulas during schedule search.
 *
 * The default layer sizes are smaller than TenSet's ~250K-parameter
 * network because training here runs on one CPU core; DESIGN.md
 * documents the substitution.
 */
#ifndef FELIX_COSTMODEL_MLP_H_
#define FELIX_COSTMODEL_MLP_H_

#include <iosfwd>
#include <vector>

#include "support/rng.h"

namespace felix {
namespace costmodel {

/** MLP shape: sizes of every layer including input and output. */
struct MlpConfig
{
    std::vector<int> layerSizes = {82, 128, 128, 64, 1};
    double adamBeta1 = 0.9;
    double adamBeta2 = 0.999;
    double adamEps = 1e-8;
};

/**
 * Fully connected ReLU network with a linear head.
 *
 * forward()/forwardInputGrad() are const and safe to call from many
 * threads at once. trainBatch() mutates parameters (not reentrant)
 * but internally fans the per-sample gradient accumulation out over
 * the global pool in fixed-size chunks, reduced in chunk order, so
 * training results are identical for any --jobs value.
 */
class Mlp
{
  public:
    Mlp(MlpConfig config, Rng &rng);

    int inputSize() const { return config_.layerSizes.front(); }
    size_t parameterCount() const;

    /** Forward pass; input size must equal inputSize(). */
    double forward(const std::vector<double> &x) const;

    /**
     * Forward pass plus the gradient of the output with respect to
     * the input vector (the path Felix's gradient descent uses).
     */
    double forwardInputGrad(const std::vector<double> &x,
                            std::vector<double> &dx) const;

    /**
     * One Adam step on a mini-batch with MSE loss.
     * @return the batch mean squared error before the update.
     */
    double trainBatch(const std::vector<std::vector<double>> &xs,
                      const std::vector<double> &ys, double lr);

    /** Mean squared error over a dataset (no update). */
    double evaluate(const std::vector<std::vector<double>> &xs,
                    const std::vector<double> &ys) const;

    void save(std::ostream &os) const;
    static Mlp load(std::istream &is);

  private:
    explicit Mlp(MlpConfig config);

    struct Layer
    {
        int in = 0, out = 0;
        std::vector<double> weight;   ///< out x in, row-major
        std::vector<double> bias;     ///< out
        // Adam state
        std::vector<double> mWeight, vWeight, mBias, vBias;
    };

    MlpConfig config_;
    std::vector<Layer> layers_;
    int64_t adamStep_ = 0;
};

} // namespace costmodel
} // namespace felix

#endif // FELIX_COSTMODEL_MLP_H_
