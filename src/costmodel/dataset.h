/**
 * @file
 * Synthetic pretraining dataset — the TenSet substitute.
 *
 * TenSet provides >1000 real subgraphs with thousands of measured
 * schedules each; the paper trains its cost model on ~250K schedules
 * from 500 subgraphs. This reproduction has no GPU to measure on, so
 * the dataset is synthesized the same way TenSet was collected:
 * a pool of representative subgraphs (convolutions, dense layers,
 * batched matmuls, pooling, softmax, elementwise — the bottleneck
 * workload families), random valid schedules for each, and the
 * latency of every (subgraph, schedule) pair measured on the
 * simulated device. Sizes default smaller than TenSet's because
 * training runs on one CPU core (see DESIGN.md §2); the paper itself
 * notes that using the full TenSet brings negligible benefit.
 */
#ifndef FELIX_COSTMODEL_DATASET_H_
#define FELIX_COSTMODEL_DATASET_H_

#include <vector>

#include "costmodel/cost_model.h"
#include "sim/device.h"
#include "tir/compute.h"

namespace felix {
namespace costmodel {

/** Dataset synthesis parameters. */
struct DatasetOptions
{
    int numSubgraphs = 64;        ///< pool size (TenSet: 500)
    int schedulesPerSketch = 96;  ///< random schedules per sketch
    uint64_t seed = 2024;
};

/** A randomized pool of representative tuning tasks. */
std::vector<tir::SubgraphDef> datasetSubgraphPool(int count, Rng &rng);

/** Random schedules x simulated measurements for one device. */
std::vector<Sample> synthesizeDataset(const sim::DeviceConfig &device,
                                      const DatasetOptions &options);

/**
 * The per-device pretrained cost model, trained once and cached at
 * `<cache_dir>/cost_model_<device>.txt` (the felix.pretrained_cost_model
 * of the paper's programming interface, Fig. 5).
 */
CostModel pretrainedCostModel(sim::DeviceKind device,
                              const std::string &cache_dir = "pretrained",
                              const DatasetOptions &options = {});

} // namespace costmodel
} // namespace felix

#endif // FELIX_COSTMODEL_DATASET_H_
