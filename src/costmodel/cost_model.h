/**
 * @file
 * The pretrained cost model C (paper §3.3-§3.4).
 *
 * Maps a concrete 82-feature vector to a predicted performance
 * score (higher = faster; the training target is -log(latency)).
 * Inputs pass through the transform phi(f) = log(max(f, 1)) —
 * matching the symbolic feature pipeline, whose smoothed formulas
 * approximate the same quantity — followed by per-feature
 * standardization. The model exposes the gradient of the score with
 * respect to the transformed features, which Felix chains into the
 * reverse-mode tape of the feature formulas (Algorithm 1, line 18).
 */
#ifndef FELIX_COSTMODEL_COST_MODEL_H_
#define FELIX_COSTMODEL_COST_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "costmodel/mlp.h"

namespace felix {
namespace costmodel {

/** One training sample: raw features and measured latency. */
struct Sample
{
    std::vector<double> rawFeatures;
    double latencySec = 0.0;
};

/** Per-feature standardization fitted on transformed features. */
class Scaler
{
  public:
    void fit(const std::vector<std::vector<double>> &transformed);
    std::vector<double> apply(const std::vector<double> &x) const;
    const std::vector<double> &means() const { return mean_; }
    const std::vector<double> &stddevs() const { return std_; }
    bool fitted() const { return !mean_.empty(); }

    void save(std::ostream &os) const;
    static Scaler load(std::istream &is, size_t size);

  private:
    std::vector<double> mean_, std_;
};

/**
 * Reusable buffers for the batched predict paths: one per worker,
 * allocated on first use and reused so steady-state batched
 * inference performs no allocation.
 */
struct PredictScratch
{
    MlpBatchScratch mlp;
    std::vector<double> scaled;   ///< inputSize rows of kBatchLanes
};

/** Quality metrics of a cost model on a held-out set. */
struct ModelMetrics
{
    double mse = 0.0;           ///< on the -log(latency) target
    double rankCorrelation = 0; ///< Spearman-like pairwise accuracy
};

/**
 * The trainable cost model. Create, fit() on a dataset (or load a
 * pretrained file), then predict()/predictWithGrad() during search
 * and finetune() with fresh measurements after each round.
 */
class CostModel
{
  public:
    explicit CostModel(MlpConfig config = {}, uint64_t seed = 1);

    /** phi(f) = log(max(f, 1)): the model-input transform. */
    static double inputTransform(double raw_feature);
    static std::vector<double> transformFeatures(
        const std::vector<double> &raw);

    /** Training target: higher-is-better score of a latency. */
    static double targetOf(double latency_sec);
    /** Inverse of targetOf. */
    static double latencyOf(double score);

    /** Fit scaler + network from scratch. */
    void fit(const std::vector<Sample> &samples, int epochs = 12,
             int batch_size = 128, double lr = 1e-3);

    /**
     * A few gradient steps on fresh measurements (keeps scaler).
     * @return the mean MSE across the steps taken (the fine-tune
     *         loss reported in the per-round telemetry), or a
     *         negative value when nothing was trained.
     */
    double finetune(const std::vector<Sample> &samples, int steps = 16,
                    double lr = 2e-4);

    /** Predicted score from raw features (higher = faster). */
    double predict(const std::vector<double> &raw_features) const;

    /**
     * Predicted score plus d(score)/d(transformed feature) — the
     * gradient Felix chains into the symbolic feature tape.
     */
    double predictWithGrad(const std::vector<double> &raw_features,
                           std::vector<double> &grad) const;

    /** Score + gradient, starting from already-transformed inputs. */
    double predictTransformedWithGrad(
        const std::vector<double> &transformed,
        std::vector<double> &grad) const;

    /**
     * Batched predict() over kBatchLanes raw feature vectors in SoA
     * rows (raw[i * kBatchLanes + lane] = feature i of point
     * `lane`); scores is one row. Lanes are independent and each is
     * bit-identical to the scalar predict() of that point; pad
     * unused lanes with any finite values.
     */
    void predictBatch(const double *raw, double *scores,
                      PredictScratch &scratch) const;

    /**
     * Batched predictTransformedWithGrad(): scores is one row,
     * grads is inputSize rows of d(score)/d(transformed feature).
     * Per lane bit-identical to the scalar overload.
     */
    void predictTransformedWithGradBatch(const double *transformed,
                                         double *scores,
                                         double *grads,
                                         PredictScratch &scratch) const;

    // ----- Fused-step accessors (costmodel/fused.h) --------------
    // FusedGradStep runs the model's pieces (standardization, MLP,
    // target centering) inline between the two tape sweeps; these
    // expose exactly what predictTransformedWithGradBatch combines.
    const Mlp &mlp() const { return mlp_; }
    const Scaler &scaler() const { return scaler_; }
    double targetMean() const { return targetMean_; }

    ModelMetrics validate(const std::vector<Sample> &samples) const;

    void save(const std::string &path) const;
    static std::optional<CostModel> tryLoad(const std::string &path);

    /**
     * Full trainable state (network weights, Adam moments, scaler,
     * target centering) to/from a stream, so a checkpointed tuner
     * resumes fine-tuning bit-identically to an uninterrupted run.
     * save()/tryLoad() stay the inference-oriented pretrained-cache
     * format; this is the checkpoint payload format.
     */
    void saveState(std::ostream &os) const;
    static std::optional<CostModel> loadState(std::istream &is);

  private:
    MlpConfig config_;
    Rng rng_;       ///< declared before mlp_: used to initialize it
    Mlp mlp_;
    Scaler scaler_;
    /** Target centering: the MLP learns score - targetMean_. */
    double targetMean_ = 0.0;
};

} // namespace costmodel
} // namespace felix

#endif // FELIX_COSTMODEL_COST_MODEL_H_
