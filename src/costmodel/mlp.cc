#include "costmodel/mlp.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "obs/metrics.h"
#include "support/logging.h"
#include "support/parallel.h"

namespace felix {
namespace costmodel {

Mlp::Mlp(MlpConfig config) : config_(std::move(config))
{
    FELIX_CHECK(config_.layerSizes.size() >= 2,
                "MLP needs at least input and output layers");
    FELIX_CHECK(config_.layerSizes.back() == 1,
                "cost model MLP has a scalar output");
    for (size_t i = 0; i + 1 < config_.layerSizes.size(); ++i) {
        Layer layer;
        layer.in = config_.layerSizes[i];
        layer.out = config_.layerSizes[i + 1];
        layer.weight.assign(
            static_cast<size_t>(layer.in) * layer.out, 0.0);
        layer.bias.assign(layer.out, 0.0);
        layer.mWeight.assign(layer.weight.size(), 0.0);
        layer.vWeight.assign(layer.weight.size(), 0.0);
        layer.mBias.assign(layer.bias.size(), 0.0);
        layer.vBias.assign(layer.bias.size(), 0.0);
        layers_.push_back(std::move(layer));
    }
}

Mlp::Mlp(MlpConfig config, Rng &rng) : Mlp(std::move(config))
{
    // He initialization for the ReLU hidden layers.
    for (Layer &layer : layers_) {
        double scale = std::sqrt(2.0 / layer.in);
        for (double &w : layer.weight)
            w = rng.normal(0.0, scale);
    }
}

size_t
Mlp::parameterCount() const
{
    size_t count = 0;
    for (const Layer &layer : layers_)
        count += layer.weight.size() + layer.bias.size();
    return count;
}

double
Mlp::forward(const std::vector<double> &x, MlpScratch &scratch) const
{
    FELIX_CHECK(static_cast<int>(x.size()) == inputSize(),
                "MLP forward: wrong input size");
    std::vector<double> &cur = scratch.cur;
    std::vector<double> &next = scratch.next;
    cur.assign(x.begin(), x.end());
    for (size_t li = 0; li < layers_.size(); ++li) {
        const Layer &layer = layers_[li];
        next.assign(layer.out, 0.0);
        for (int o = 0; o < layer.out; ++o) {
            double acc = layer.bias[o];
            const double *row =
                layer.weight.data() +
                static_cast<size_t>(o) * layer.in;
            for (int i = 0; i < layer.in; ++i)
                acc += row[i] * cur[i];
            // ReLU on hidden layers, identity on the head.
            if (li + 1 < layers_.size() && acc < 0.0)
                acc = 0.0;
            next[o] = acc;
        }
        cur.swap(next);
    }
    return cur[0];
}

double
Mlp::forwardInputGrad(const std::vector<double> &x,
                      std::vector<double> &dx,
                      MlpScratch &scratch) const
{
    FELIX_CHECK(static_cast<int>(x.size()) == inputSize(),
                "MLP forwardInputGrad: wrong input size");
    // Forward, storing activations per layer.
    std::vector<std::vector<double>> &acts = scratch.acts;
    acts.resize(layers_.size() + 1);
    acts[0].assign(x.begin(), x.end());
    for (size_t li = 0; li < layers_.size(); ++li) {
        const Layer &layer = layers_[li];
        std::vector<double> &out = acts[li + 1];
        out.assign(layer.out, 0.0);
        const std::vector<double> &cur = acts[li];
        for (int o = 0; o < layer.out; ++o) {
            double acc = layer.bias[o];
            const double *row =
                layer.weight.data() +
                static_cast<size_t>(o) * layer.in;
            for (int i = 0; i < layer.in; ++i)
                acc += row[i] * cur[i];
            if (li + 1 < layers_.size() && acc < 0.0)
                acc = 0.0;
            out[o] = acc;
        }
    }
    const double result = acts.back()[0];

    // Backward: adjoint of the scalar output wrt activations.
    std::vector<double> &adj = scratch.adj;
    std::vector<double> &prev = scratch.prev;
    adj.assign(1, 1.0);
    for (size_t li = layers_.size(); li-- > 0;) {
        const Layer &layer = layers_[li];
        const std::vector<double> &out = acts[li + 1];
        prev.assign(layer.in, 0.0);
        for (int o = 0; o < layer.out; ++o) {
            double a = adj[o];
            // ReLU gate (hidden layers only).
            if (li + 1 < layers_.size() && out[o] <= 0.0)
                continue;
            const double *row =
                layer.weight.data() +
                static_cast<size_t>(o) * layer.in;
            for (int i = 0; i < layer.in; ++i)
                prev[i] += a * row[i];
        }
        adj.swap(prev);
    }
    dx.assign(adj.begin(), adj.end());
    return result;
}

double
Mlp::forward(const std::vector<double> &x) const
{
    MlpScratch scratch;
    return forward(x, scratch);
}

double
Mlp::forwardInputGrad(const std::vector<double> &x,
                      std::vector<double> &dx) const
{
    MlpScratch scratch;
    return forwardInputGrad(x, dx, scratch);
}

void
Mlp::forwardLayerBatch(const Layer &layer, bool hidden,
                       const std::vector<double> &cur,
                       std::vector<double> &out)
{
    constexpr size_t L = kBatchLanes;
    out.resize(static_cast<size_t>(layer.out) * L);
    const double *__restrict curBase = cur.data();
    const double *__restrict weights = layer.weight.data();
    // Blocks of four neurons share each input-row load instead of
    // refetching it per neuron. Each lane still accumulates in the
    // scalar order (bias first, then inputs 0..in-1), so per lane
    // the result is bit-identical to forward().
    constexpr int kBlock = 4;
    const int fullEnd = layer.out - layer.out % kBlock;
    for (int ob = 0; ob < fullEnd; ob += kBlock) {
        double acc[kBlock][L];
        for (int b = 0; b < kBlock; ++b)
            for (size_t l = 0; l < L; ++l)
                acc[b][l] = layer.bias[ob + b];
        for (int i = 0; i < layer.in; ++i) {
            const double *curRow =
                curBase + static_cast<size_t>(i) * L;
            for (int b = 0; b < kBlock; ++b) {
                const double w =
                    weights[static_cast<size_t>(ob + b) * layer.in +
                            i];
                for (size_t l = 0; l < L; ++l)
                    acc[b][l] += w * curRow[l];
            }
        }
        for (int b = 0; b < kBlock; ++b) {
            double *__restrict outRow =
                &out[static_cast<size_t>(ob + b) * L];
            for (size_t l = 0; l < L; ++l)
                outRow[l] =
                    hidden && acc[b][l] < 0.0 ? 0.0 : acc[b][l];
        }
    }
    for (int o = fullEnd; o < layer.out; ++o) {
        double acc[L];
        for (size_t l = 0; l < L; ++l)
            acc[l] = layer.bias[o];
        const double *__restrict row =
            weights + static_cast<size_t>(o) * layer.in;
        for (int i = 0; i < layer.in; ++i) {
            const double w = row[i];
            const double *curRow =
                curBase + static_cast<size_t>(i) * L;
            for (size_t l = 0; l < L; ++l)
                acc[l] += w * curRow[l];
        }
        double *__restrict outRow = &out[static_cast<size_t>(o) * L];
        for (size_t l = 0; l < L; ++l)
            outRow[l] = hidden && acc[l] < 0.0 ? 0.0 : acc[l];
    }
}

void
Mlp::forwardBatch(const double *x, double *y,
                  MlpBatchScratch &scratch) const
{
    constexpr size_t L = kBatchLanes;
    std::vector<double> &cur = scratch.cur;
    std::vector<double> &next = scratch.next;
    cur.assign(x, x + static_cast<size_t>(inputSize()) * L);
    for (size_t li = 0; li < layers_.size(); ++li) {
        forwardLayerBatch(layers_[li], li + 1 < layers_.size(), cur,
                          next);
        cur.swap(next);
    }
    for (size_t l = 0; l < L; ++l)
        y[l] = cur[l];
}

void
Mlp::forwardInputGradBatch(const double *x, double *y, double *dx,
                           MlpBatchScratch &scratch) const
{
    constexpr size_t L = kBatchLanes;
    std::vector<std::vector<double>> &acts = scratch.acts;
    acts.resize(layers_.size() + 1);
    acts[0].assign(x, x + static_cast<size_t>(inputSize()) * L);
    for (size_t li = 0; li < layers_.size(); ++li)
        forwardLayerBatch(layers_[li], li + 1 < layers_.size(),
                          acts[li], acts[li + 1]);
    for (size_t l = 0; l < L; ++l)
        y[l] = acts.back()[l];

    std::vector<double> &adj = scratch.adj;
    std::vector<double> &prev = scratch.prev;
    std::vector<double> &madj = scratch.madj;
    adj.assign(L, 1.0);
    for (size_t li = layers_.size(); li-- > 0;) {
        const Layer &layer = layers_[li];
        const bool hidden = li + 1 < layers_.size();
        const std::vector<double> &out = acts[li + 1];

        // The scalar path skips a neuron entirely when its ReLU gate
        // is closed. Selecting a 0.0 adjoint for closed lanes BEFORE
        // the multiplies reproduces that bit for bit with
        // branch-free inner loops: a NaN/inf adjoint on a closed
        // lane never touches the products, the masked terms are
        // exact +/-0.0 (finite weights), and an accumulator row can
        // never hold -0.0 (IEEE addition yields -0.0 only for
        // (-0)+(-0), and rows start at +0.0), so adding them never
        // changes a bit.
        madj.resize(static_cast<size_t>(layer.out) * L);
        for (int o = 0; o < layer.out; ++o) {
            const double *outRow =
                &out[static_cast<size_t>(o) * L];
            const double *aRow =
                &adj[static_cast<size_t>(o) * L];
            double *mRow = &madj[static_cast<size_t>(o) * L];
            for (size_t l = 0; l < L; ++l)
                mRow[l] =
                    !hidden || outRow[l] > 0.0 ? aRow[l] : 0.0;
        }

        // Accumulate blocks of neurons per sweep over the input
        // rows: each prev row is read and written once per BLOCK
        // instead of once per neuron (8x less traffic), and the
        // block's weight rows stay resident across the i sweep. Per
        // (input, lane) the additions still run in ascending neuron
        // order — exactly the scalar order.
        prev.assign(static_cast<size_t>(layer.in) * L, 0.0);
        constexpr int kBlock = 8;
        const double *__restrict weights = layer.weight.data();
        const double *__restrict madjBase = madj.data();
        double *__restrict prevBase = prev.data();
        for (int ob = 0; ob < layer.out; ob += kBlock) {
            const int oe = std::min(layer.out, ob + kBlock);
            for (int i = 0; i < layer.in; ++i) {
                double *pRow =
                    prevBase + static_cast<size_t>(i) * L;
                for (int o = ob; o < oe; ++o) {
                    const double w =
                        weights[static_cast<size_t>(o) * layer.in +
                                i];
                    const double *mRow =
                        madjBase + static_cast<size_t>(o) * L;
                    for (size_t l = 0; l < L; ++l)
                        pRow[l] += mRow[l] * w;
                }
            }
        }
        adj.swap(prev);
    }
    const size_t inRows = static_cast<size_t>(inputSize()) * L;
    for (size_t i = 0; i < inRows; ++i)
        dx[i] = adj[i];
}

double
Mlp::trainBatch(const std::vector<std::vector<double>> &xs,
                const std::vector<double> &ys, double lr)
{
    FELIX_CHECK(!xs.empty() && xs.size() == ys.size(),
                "trainBatch: bad batch");
    {
        auto &registry = obs::MetricsRegistry::instance();
        registry.counter("costmodel.train_batches").add(1.0);
        registry.counter("costmodel.train_samples")
            .add(static_cast<double>(xs.size()));
    }
    const double invBatch = 1.0 / static_cast<double>(xs.size());

    // Per-sample gradients accumulate into per-chunk partials with a
    // FIXED chunk size, then reduce in chunk order on this thread —
    // the floating-point summation order depends only on the batch,
    // never on --jobs, so training is bit-identical at any pool size.
    constexpr size_t kChunk = 16;
    const size_t numChunks = (xs.size() + kChunk - 1) / kChunk;
    struct ChunkGrads
    {
        std::vector<std::vector<double>> gWeight, gBias;
        double loss = 0.0;
    };
    std::vector<ChunkGrads> chunkGrads(numChunks);

    parallelForChunks(
        "costmodel.train_chunk", xs.size(), kChunk,
        [&](size_t begin, size_t end) {
            ChunkGrads &chunk = chunkGrads[begin / kChunk];
            chunk.gWeight.resize(layers_.size());
            chunk.gBias.resize(layers_.size());
            for (size_t li = 0; li < layers_.size(); ++li) {
                chunk.gWeight[li].assign(layers_[li].weight.size(),
                                         0.0);
                chunk.gBias[li].assign(layers_[li].bias.size(), 0.0);
            }
            std::vector<std::vector<double>> acts;
            for (size_t si = begin; si < end; ++si) {
                // Forward with stored activations.
                acts.clear();
                acts.push_back(xs[si]);
                for (size_t li = 0; li < layers_.size(); ++li) {
                    const Layer &layer = layers_[li];
                    std::vector<double> out(layer.out, 0.0);
                    const std::vector<double> &cur = acts.back();
                    for (int o = 0; o < layer.out; ++o) {
                        double acc = layer.bias[o];
                        const double *row =
                            layer.weight.data() +
                            static_cast<size_t>(o) * layer.in;
                        for (int i = 0; i < layer.in; ++i)
                            acc += row[i] * cur[i];
                        if (li + 1 < layers_.size() && acc < 0.0)
                            acc = 0.0;
                        out[o] = acc;
                    }
                    acts.push_back(std::move(out));
                }
                const double pred = acts.back()[0];
                const double err = pred - ys[si];
                chunk.loss += err * err;

                // Backward.
                std::vector<double> adj = {2.0 * err * invBatch};
                for (size_t li = layers_.size(); li-- > 0;) {
                    const Layer &layer = layers_[li];
                    const std::vector<double> &out = acts[li + 1];
                    const std::vector<double> &in = acts[li];
                    std::vector<double> prev(layer.in, 0.0);
                    for (int o = 0; o < layer.out; ++o) {
                        if (li + 1 < layers_.size() && out[o] <= 0.0)
                            continue;
                        const double a = adj[o];
                        double *gw =
                            chunk.gWeight[li].data() +
                            static_cast<size_t>(o) * layer.in;
                        const double *row =
                            layer.weight.data() +
                            static_cast<size_t>(o) * layer.in;
                        for (int i = 0; i < layer.in; ++i) {
                            gw[i] += a * in[i];
                            prev[i] += a * row[i];
                        }
                        chunk.gBias[li][o] += a;
                    }
                    adj.swap(prev);
                }
            }
        });

    // Deterministic chunk-order reduction.
    std::vector<std::vector<double>> gWeight(layers_.size());
    std::vector<std::vector<double>> gBias(layers_.size());
    for (size_t li = 0; li < layers_.size(); ++li) {
        gWeight[li].assign(layers_[li].weight.size(), 0.0);
        gBias[li].assign(layers_[li].bias.size(), 0.0);
    }
    double loss = 0.0;
    for (const ChunkGrads &chunk : chunkGrads) {
        loss += chunk.loss;
        for (size_t li = 0; li < layers_.size(); ++li) {
            for (size_t i = 0; i < gWeight[li].size(); ++i)
                gWeight[li][i] += chunk.gWeight[li][i];
            for (size_t i = 0; i < gBias[li].size(); ++i)
                gBias[li][i] += chunk.gBias[li][i];
        }
    }

    // Adam update.
    ++adamStep_;
    const double b1 = config_.adamBeta1, b2 = config_.adamBeta2;
    const double corr1 = 1.0 - std::pow(b1, adamStep_);
    const double corr2 = 1.0 - std::pow(b2, adamStep_);
    for (size_t li = 0; li < layers_.size(); ++li) {
        Layer &layer = layers_[li];
        auto update = [&](std::vector<double> &param,
                          std::vector<double> &m, std::vector<double> &v,
                          const std::vector<double> &g) {
            for (size_t i = 0; i < param.size(); ++i) {
                m[i] = b1 * m[i] + (1.0 - b1) * g[i];
                v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
                double mHat = m[i] / corr1;
                double vHat = v[i] / corr2;
                param[i] -=
                    lr * mHat / (std::sqrt(vHat) + config_.adamEps);
            }
        };
        update(layer.weight, layer.mWeight, layer.vWeight,
               gWeight[li]);
        update(layer.bias, layer.mBias, layer.vBias, gBias[li]);
    }
    return loss / static_cast<double>(xs.size());
}

double
Mlp::evaluate(const std::vector<std::vector<double>> &xs,
              const std::vector<double> &ys) const
{
    FELIX_CHECK(xs.size() == ys.size());
    if (xs.empty())
        return 0.0;
    constexpr size_t kChunk = 16;
    std::vector<double> chunkLoss((xs.size() + kChunk - 1) / kChunk,
                                  0.0);
    parallelForChunks("costmodel.evaluate_chunk", xs.size(), kChunk,
                      [&](size_t begin, size_t end) {
                          double local = 0.0;
                          for (size_t i = begin; i < end; ++i) {
                              double err = forward(xs[i]) - ys[i];
                              local += err * err;
                          }
                          chunkLoss[begin / kChunk] = local;
                      });
    double loss = 0.0;
    for (double l : chunkLoss)
        loss += l;
    return loss / static_cast<double>(xs.size());
}

void
Mlp::save(std::ostream &os) const
{
    os << "mlp " << config_.layerSizes.size() << "\n";
    for (int size : config_.layerSizes)
        os << size << " ";
    os << "\n";
    os.precision(17);
    for (const Layer &layer : layers_) {
        for (double w : layer.weight)
            os << w << " ";
        os << "\n";
        for (double b : layer.bias)
            os << b << " ";
        os << "\n";
    }
}

Mlp
Mlp::load(std::istream &is)
{
    std::string tag;
    size_t numSizes = 0;
    is >> tag >> numSizes;
    FELIX_CHECK(tag == "mlp" && numSizes >= 2 && numSizes < 64,
                "bad MLP file header");
    MlpConfig config;
    config.layerSizes.resize(numSizes);
    for (size_t i = 0; i < numSizes; ++i)
        is >> config.layerSizes[i];
    Mlp mlp(config);
    for (Layer &layer : mlp.layers_) {
        for (double &w : layer.weight)
            is >> w;
        for (double &b : layer.bias)
            is >> b;
    }
    FELIX_CHECK(static_cast<bool>(is), "truncated MLP file");
    return mlp;
}

} // namespace costmodel
} // namespace felix
