#include "costmodel/mlp.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "obs/metrics.h"
#include "simd/kernels.h"
#include "support/logging.h"
#include "support/parallel.h"

namespace felix {
namespace costmodel {

Mlp::Mlp(MlpConfig config) : config_(std::move(config))
{
    FELIX_CHECK(config_.layerSizes.size() >= 2,
                "MLP needs at least input and output layers");
    FELIX_CHECK(config_.layerSizes.back() == 1,
                "cost model MLP has a scalar output");
    for (size_t i = 0; i + 1 < config_.layerSizes.size(); ++i) {
        Layer layer;
        layer.in = config_.layerSizes[i];
        layer.out = config_.layerSizes[i + 1];
        layer.weight.assign(
            static_cast<size_t>(layer.in) * layer.out, 0.0);
        layer.bias.assign(layer.out, 0.0);
        layer.mWeight.assign(layer.weight.size(), 0.0);
        layer.vWeight.assign(layer.weight.size(), 0.0);
        layer.mBias.assign(layer.bias.size(), 0.0);
        layer.vBias.assign(layer.bias.size(), 0.0);
        layers_.push_back(std::move(layer));
    }
}

Mlp::Mlp(MlpConfig config, Rng &rng) : Mlp(std::move(config))
{
    // He initialization for the ReLU hidden layers.
    for (Layer &layer : layers_) {
        double scale = std::sqrt(2.0 / layer.in);
        for (double &w : layer.weight)
            w = rng.normal(0.0, scale);
    }
}

size_t
Mlp::parameterCount() const
{
    size_t count = 0;
    for (const Layer &layer : layers_)
        count += layer.weight.size() + layer.bias.size();
    return count;
}

double
Mlp::forward(const std::vector<double> &x, MlpScratch &scratch) const
{
    FELIX_CHECK(static_cast<int>(x.size()) == inputSize(),
                "MLP forward: wrong input size");
    std::vector<double> &cur = scratch.cur;
    std::vector<double> &next = scratch.next;
    cur.assign(x.begin(), x.end());
    for (size_t li = 0; li < layers_.size(); ++li) {
        const Layer &layer = layers_[li];
        next.assign(layer.out, 0.0);
        for (int o = 0; o < layer.out; ++o) {
            double acc = layer.bias[o];
            const double *row =
                layer.weight.data() +
                static_cast<size_t>(o) * layer.in;
            for (int i = 0; i < layer.in; ++i)
                acc += row[i] * cur[i];
            // ReLU on hidden layers, identity on the head.
            if (li + 1 < layers_.size() && acc < 0.0)
                acc = 0.0;
            next[o] = acc;
        }
        cur.swap(next);
    }
    return cur[0];
}

double
Mlp::forwardInputGrad(const std::vector<double> &x,
                      std::vector<double> &dx,
                      MlpScratch &scratch) const
{
    FELIX_CHECK(static_cast<int>(x.size()) == inputSize(),
                "MLP forwardInputGrad: wrong input size");
    // Forward, storing activations per layer.
    std::vector<std::vector<double>> &acts = scratch.acts;
    acts.resize(layers_.size() + 1);
    acts[0].assign(x.begin(), x.end());
    for (size_t li = 0; li < layers_.size(); ++li) {
        const Layer &layer = layers_[li];
        std::vector<double> &out = acts[li + 1];
        out.assign(layer.out, 0.0);
        const std::vector<double> &cur = acts[li];
        for (int o = 0; o < layer.out; ++o) {
            double acc = layer.bias[o];
            const double *row =
                layer.weight.data() +
                static_cast<size_t>(o) * layer.in;
            for (int i = 0; i < layer.in; ++i)
                acc += row[i] * cur[i];
            if (li + 1 < layers_.size() && acc < 0.0)
                acc = 0.0;
            out[o] = acc;
        }
    }
    const double result = acts.back()[0];

    // Backward: adjoint of the scalar output wrt activations.
    std::vector<double> &adj = scratch.adj;
    std::vector<double> &prev = scratch.prev;
    adj.assign(1, 1.0);
    for (size_t li = layers_.size(); li-- > 0;) {
        const Layer &layer = layers_[li];
        const std::vector<double> &out = acts[li + 1];
        prev.assign(layer.in, 0.0);
        for (int o = 0; o < layer.out; ++o) {
            double a = adj[o];
            // ReLU gate (hidden layers only).
            if (li + 1 < layers_.size() && out[o] <= 0.0)
                continue;
            const double *row =
                layer.weight.data() +
                static_cast<size_t>(o) * layer.in;
            for (int i = 0; i < layer.in; ++i)
                prev[i] += a * row[i];
        }
        adj.swap(prev);
    }
    dx.assign(adj.begin(), adj.end());
    return result;
}

double
Mlp::forward(const std::vector<double> &x) const
{
    MlpScratch scratch;
    return forward(x, scratch);
}

double
Mlp::forwardInputGrad(const std::vector<double> &x,
                      std::vector<double> &dx) const
{
    MlpScratch scratch;
    return forwardInputGrad(x, dx, scratch);
}

void
Mlp::forwardLayerBatch(const Layer &layer, bool hidden,
                       const AlignedRows &cur, AlignedRows &out)
{
    // The blocked kernel (four neurons share each input-row load;
    // per lane the accumulation order stays bias first, then inputs
    // 0..in-1, so per lane the result is bit-identical to forward())
    // lives in src/simd/kernels_impl.h, compiled per SIMD backend
    // and dispatched at runtime.
    out.resize(static_cast<size_t>(layer.out) * kBatchLanes);
    simd::activeKernels().mlpForwardLayer(
        layer.weight.data(), layer.bias.data(), layer.in, layer.out,
        hidden, cur.data(), out.data());
}

/**
 * Scalar-lane fallback test for the batched entry points.
 *
 * The blocked batch kernels keep kBlock accumulator *rows* live;
 * at lane width 1 a row is 16 scalars, so the register allocator
 * spills the 4x16 (forward) / 8x16 (backward) accumulator tile to
 * the stack on every iteration — BENCH_tape.json showed
 * mlp_input_grad/batch/simd=scalar at ~12k pts/s versus ~32k for
 * the plain scalar path. Gathering each lane and running the
 * scalar network is faster AND bit-identical: the batch contract
 * already guarantees every lane equals a scalar forward() of that
 * point, which is exactly what this computes.
 */
static bool
useScalarLanes()
{
    return simd::activeKernels().width == 1;
}

void
Mlp::forwardBatch(const double *x, double *y,
                  MlpBatchScratch &scratch) const
{
    constexpr size_t L = kBatchLanes;
    if (useScalarLanes()) {
        std::vector<double> &in = scratch.laneIn;
        in.resize(static_cast<size_t>(inputSize()));
        for (size_t l = 0; l < L; ++l) {
            for (int i = 0; i < inputSize(); ++i)
                in[static_cast<size_t>(i)] =
                    x[static_cast<size_t>(i) * L + l];
            y[l] = forward(in, scratch.lane);
        }
        return;
    }
    AlignedRows &cur = scratch.cur;
    AlignedRows &next = scratch.next;
    cur.assign(x, x + static_cast<size_t>(inputSize()) * L);
    for (size_t li = 0; li < layers_.size(); ++li) {
        forwardLayerBatch(layers_[li], li + 1 < layers_.size(), cur,
                          next);
        cur.swap(next);
    }
    for (size_t l = 0; l < L; ++l)
        y[l] = cur[l];
}

double *
Mlp::stageInputRows(MlpBatchScratch &scratch) const
{
    scratch.acts.resize(layers_.size() + 1);
    scratch.acts[0].resize(static_cast<size_t>(inputSize()) *
                           kBatchLanes);
    return scratch.acts[0].data();
}

void
Mlp::forwardInputGradStaged(double *y,
                            MlpBatchScratch &scratch) const
{
    constexpr size_t L = kBatchLanes;
    std::vector<AlignedRows> &acts = scratch.acts;

    if (useScalarLanes()) {
        // See the width-1 note above forwardBatch; the gradient
        // rows land in scratch.adj exactly like the batched sweep.
        const double *x = acts[0].data();
        scratch.adj.assign(static_cast<size_t>(inputSize()) * L,
                           0.0);
        std::vector<double> &in = scratch.laneIn;
        std::vector<double> &dxLane = scratch.laneDx;
        in.resize(static_cast<size_t>(inputSize()));
        for (size_t l = 0; l < L; ++l) {
            for (int i = 0; i < inputSize(); ++i)
                in[static_cast<size_t>(i)] =
                    x[static_cast<size_t>(i) * L + l];
            y[l] = forwardInputGrad(in, dxLane, scratch.lane);
            for (int i = 0; i < inputSize(); ++i)
                scratch.adj[static_cast<size_t>(i) * L + l] =
                    dxLane[static_cast<size_t>(i)];
        }
        return;
    }

    for (size_t li = 0; li < layers_.size(); ++li)
        forwardLayerBatch(layers_[li], li + 1 < layers_.size(),
                          acts[li], acts[li + 1]);
    for (size_t l = 0; l < L; ++l)
        y[l] = acts.back()[l];

    AlignedRows &adj = scratch.adj;
    AlignedRows &prev = scratch.prev;
    AlignedRows &madj = scratch.madj;
    adj.assign(L, 1.0);
    for (size_t li = layers_.size(); li-- > 0;) {
        const Layer &layer = layers_[li];
        const bool hidden = li + 1 < layers_.size();
        const AlignedRows &out = acts[li + 1];

        // ReLU masking and the blocked adjoint accumulation run in
        // the runtime-dispatched backend (src/simd/kernels_impl.h).
        // The scalar path skips a neuron entirely when its gate is
        // closed; the kernel instead selects a 0.0 adjoint for
        // closed lanes BEFORE the multiplies, which reproduces that
        // bit for bit: the masked terms are exact +/-0.0 (finite
        // weights), and an accumulator row can never hold -0.0
        // (IEEE addition yields -0.0 only for (-0)+(-0), and rows
        // start at +0.0), so adding them never changes a bit. Per
        // (input, lane) the additions still run in ascending neuron
        // order — exactly the scalar order.
        madj.resize(static_cast<size_t>(layer.out) * L);
        prev.assign(static_cast<size_t>(layer.in) * L, 0.0);
        simd::activeKernels().mlpBackwardLayer(
            layer.weight.data(), layer.in, layer.out, hidden,
            out.data(), adj.data(), madj.data(), prev.data());
        adj.swap(prev);
    }
}

void
Mlp::forwardInputGradBatch(const double *x, double *y, double *dx,
                           MlpBatchScratch &scratch) const
{
    constexpr size_t L = kBatchLanes;
    const size_t inRows = static_cast<size_t>(inputSize()) * L;
    double *rows = stageInputRows(scratch);
    std::copy(x, x + inRows, rows);
    forwardInputGradStaged(y, scratch);
    const double *g = inputGradRows(scratch);
    for (size_t i = 0; i < inRows; ++i)
        dx[i] = g[i];
}

double
Mlp::trainBatch(const std::vector<std::vector<double>> &xs,
                const std::vector<double> &ys, double lr)
{
    FELIX_CHECK(!xs.empty() && xs.size() == ys.size(),
                "trainBatch: bad batch");
    {
        auto &registry = obs::MetricsRegistry::instance();
        registry.counter("costmodel.train_batches").add(1.0);
        registry.counter("costmodel.train_samples")
            .add(static_cast<double>(xs.size()));
    }
    const double invBatch = 1.0 / static_cast<double>(xs.size());

    // Per-sample gradients accumulate into per-chunk partials with a
    // FIXED chunk size, then reduce in chunk order on this thread —
    // the floating-point summation order depends only on the batch,
    // never on --jobs, so training is bit-identical at any pool size.
    constexpr size_t kChunk = 16;
    const size_t numChunks = (xs.size() + kChunk - 1) / kChunk;
    struct ChunkGrads
    {
        std::vector<std::vector<double>> gWeight, gBias;
        double loss = 0.0;
    };
    std::vector<ChunkGrads> chunkGrads(numChunks);

    parallelForChunks(
        "costmodel.train_chunk", xs.size(), kChunk,
        [&](size_t begin, size_t end) {
            ChunkGrads &chunk = chunkGrads[begin / kChunk];
            chunk.gWeight.resize(layers_.size());
            chunk.gBias.resize(layers_.size());
            for (size_t li = 0; li < layers_.size(); ++li) {
                chunk.gWeight[li].assign(layers_[li].weight.size(),
                                         0.0);
                chunk.gBias[li].assign(layers_[li].bias.size(), 0.0);
            }
            std::vector<std::vector<double>> acts;
            for (size_t si = begin; si < end; ++si) {
                // Forward with stored activations.
                acts.clear();
                acts.push_back(xs[si]);
                for (size_t li = 0; li < layers_.size(); ++li) {
                    const Layer &layer = layers_[li];
                    std::vector<double> out(layer.out, 0.0);
                    const std::vector<double> &cur = acts.back();
                    for (int o = 0; o < layer.out; ++o) {
                        double acc = layer.bias[o];
                        const double *row =
                            layer.weight.data() +
                            static_cast<size_t>(o) * layer.in;
                        for (int i = 0; i < layer.in; ++i)
                            acc += row[i] * cur[i];
                        if (li + 1 < layers_.size() && acc < 0.0)
                            acc = 0.0;
                        out[o] = acc;
                    }
                    acts.push_back(std::move(out));
                }
                const double pred = acts.back()[0];
                const double err = pred - ys[si];
                chunk.loss += err * err;

                // Backward.
                std::vector<double> adj = {2.0 * err * invBatch};
                for (size_t li = layers_.size(); li-- > 0;) {
                    const Layer &layer = layers_[li];
                    const std::vector<double> &out = acts[li + 1];
                    const std::vector<double> &in = acts[li];
                    std::vector<double> prev(layer.in, 0.0);
                    for (int o = 0; o < layer.out; ++o) {
                        if (li + 1 < layers_.size() && out[o] <= 0.0)
                            continue;
                        const double a = adj[o];
                        double *gw =
                            chunk.gWeight[li].data() +
                            static_cast<size_t>(o) * layer.in;
                        const double *row =
                            layer.weight.data() +
                            static_cast<size_t>(o) * layer.in;
                        for (int i = 0; i < layer.in; ++i) {
                            gw[i] += a * in[i];
                            prev[i] += a * row[i];
                        }
                        chunk.gBias[li][o] += a;
                    }
                    adj.swap(prev);
                }
            }
        });

    // Deterministic chunk-order reduction.
    std::vector<std::vector<double>> gWeight(layers_.size());
    std::vector<std::vector<double>> gBias(layers_.size());
    for (size_t li = 0; li < layers_.size(); ++li) {
        gWeight[li].assign(layers_[li].weight.size(), 0.0);
        gBias[li].assign(layers_[li].bias.size(), 0.0);
    }
    double loss = 0.0;
    for (const ChunkGrads &chunk : chunkGrads) {
        loss += chunk.loss;
        for (size_t li = 0; li < layers_.size(); ++li) {
            for (size_t i = 0; i < gWeight[li].size(); ++i)
                gWeight[li][i] += chunk.gWeight[li][i];
            for (size_t i = 0; i < gBias[li].size(); ++i)
                gBias[li][i] += chunk.gBias[li][i];
        }
    }

    // Adam update.
    ++adamStep_;
    const double b1 = config_.adamBeta1, b2 = config_.adamBeta2;
    const double corr1 = 1.0 - std::pow(b1, adamStep_);
    const double corr2 = 1.0 - std::pow(b2, adamStep_);
    for (size_t li = 0; li < layers_.size(); ++li) {
        Layer &layer = layers_[li];
        auto update = [&](std::vector<double> &param,
                          std::vector<double> &m, std::vector<double> &v,
                          const std::vector<double> &g) {
            // Vectorized across the parameter vector; each element's
            // update is independent and uses the exact scalar
            // operation order, so any backend is bit-identical.
            simd::activeKernels().adamStep(
                param.data(), g.data(), m.data(), v.data(),
                param.size(), b1, b2, corr1, corr2, lr,
                config_.adamEps);
        };
        update(layer.weight, layer.mWeight, layer.vWeight,
               gWeight[li]);
        update(layer.bias, layer.mBias, layer.vBias, gBias[li]);
    }
    return loss / static_cast<double>(xs.size());
}

double
Mlp::evaluate(const std::vector<std::vector<double>> &xs,
              const std::vector<double> &ys) const
{
    FELIX_CHECK(xs.size() == ys.size());
    if (xs.empty())
        return 0.0;
    constexpr size_t kChunk = 16;
    std::vector<double> chunkLoss((xs.size() + kChunk - 1) / kChunk,
                                  0.0);
    parallelForChunks("costmodel.evaluate_chunk", xs.size(), kChunk,
                      [&](size_t begin, size_t end) {
                          double local = 0.0;
                          for (size_t i = begin; i < end; ++i) {
                              double err = forward(xs[i]) - ys[i];
                              local += err * err;
                          }
                          chunkLoss[begin / kChunk] = local;
                      });
    double loss = 0.0;
    for (double l : chunkLoss)
        loss += l;
    return loss / static_cast<double>(xs.size());
}

void
Mlp::save(std::ostream &os) const
{
    os << "mlp " << config_.layerSizes.size() << "\n";
    for (int size : config_.layerSizes)
        os << size << " ";
    os << "\n";
    os.precision(17);
    for (const Layer &layer : layers_) {
        for (double w : layer.weight)
            os << w << " ";
        os << "\n";
        for (double b : layer.bias)
            os << b << " ";
        os << "\n";
    }
}

Mlp
Mlp::load(std::istream &is)
{
    std::string tag;
    size_t numSizes = 0;
    is >> tag >> numSizes;
    FELIX_CHECK(tag == "mlp" && numSizes >= 2 && numSizes < 64,
                "bad MLP file header");
    MlpConfig config;
    config.layerSizes.resize(numSizes);
    for (size_t i = 0; i < numSizes; ++i)
        is >> config.layerSizes[i];
    Mlp mlp(config);
    for (Layer &layer : mlp.layers_) {
        for (double &w : layer.weight)
            is >> w;
        for (double &b : layer.bias)
            is >> b;
    }
    FELIX_CHECK(static_cast<bool>(is), "truncated MLP file");
    return mlp;
}

void
Mlp::saveFull(std::ostream &os) const
{
    // precision(17) round-trips every finite double exactly through
    // a correctly-rounded strtod — the same guarantee the tuning
    // records and the pretrained-model cache already rely on.
    save(os);
    os << "adam " << adamStep_ << "\n";
    os.precision(17);
    for (const Layer &layer : layers_) {
        for (double m : layer.mWeight)
            os << m << " ";
        os << "\n";
        for (double v : layer.vWeight)
            os << v << " ";
        os << "\n";
        for (double m : layer.mBias)
            os << m << " ";
        os << "\n";
        for (double v : layer.vBias)
            os << v << " ";
        os << "\n";
    }
}

Mlp
Mlp::loadFull(std::istream &is)
{
    Mlp mlp = load(is);
    std::string tag;
    is >> tag >> mlp.adamStep_;
    FELIX_CHECK(tag == "adam" && static_cast<bool>(is),
                "bad MLP checkpoint: missing adam state");
    for (Layer &layer : mlp.layers_) {
        for (double &m : layer.mWeight)
            is >> m;
        for (double &v : layer.vWeight)
            is >> v;
        for (double &m : layer.mBias)
            is >> m;
        for (double &v : layer.vBias)
            is >> v;
    }
    FELIX_CHECK(static_cast<bool>(is), "truncated MLP checkpoint");
    return mlp;
}

} // namespace costmodel
} // namespace felix
