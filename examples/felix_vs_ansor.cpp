/**
 * @file
 * Gradient search vs evolutionary search on one network: tunes
 * DCGAN on the RTX A5000 with both strategies under the same virtual
 * tuning budget and prints the two latency-vs-time curves — a
 * single-network slice of the paper's Figure 7.
 *
 *   ./examples/felix_vs_ansor [budget_virtual_seconds]
 */
#include <cstdio>
#include <cstdlib>

#include "core/felix.h"
#include "models/models.h"

using namespace felix;

namespace {

void
runStrategy(tuner::StrategyKind kind, double budget)
{
    auto device = sim::DeviceKind::A5000;
    auto tasks = extractSubgraphs(models::dcgan(1));
    auto model = pretrainedCostModel(Device::cuda("a5000"));

    tuner::TunerOptions options;
    options.strategy = kind;
    // Scaled-down Ansor population so the example stays snappy.
    options.evo.population = 512;

    tuner::GraphTuner tuner(tasks, model, device, options);
    std::printf("%s:\n", tuner::strategyName(kind));
    double lastPrint = 0.0;
    while (tuner.clockNow() < budget) {
        tuner.tuneRounds(1);
        if (tuner.clockNow() - lastPrint >= budget / 8.0) {
            std::printf("  t=%6.0fs  latency=%8.3f ms\n",
                        tuner.clockNow(),
                        tuner.networkLatency() * 1e3);
            lastPrint = tuner.clockNow();
        }
    }
    std::printf("  final: %.3f ms after %d measurements\n\n",
                tuner.networkLatency() * 1e3,
                tuner.totalMeasurements());
}

} // namespace

int
main(int argc, char **argv)
{
    const double budget = argc > 1 ? std::atof(argv[1]) : 600.0;
    std::printf("DCGAN on RTX A5000, %.0f virtual seconds budget\n\n",
                budget);
    runStrategy(tuner::StrategyKind::FelixGradient, budget);
    runStrategy(tuner::StrategyKind::AnsorTenSet, budget);
    std::printf("expected: Felix reaches low latency in a fraction "
                "of the evolutionary baseline's tuning time.\n");
    return 0;
}
