/**
 * @file
 * A tour of Felix's core machinery on the paper's running example
 * (Fig. 3): the Dense-Add subgraph. Shows the generated symbolic
 * schedules, the symbolic programs T(p0, s*) with schedule variables
 * in their loop bounds, the feature formulas and their smoothed
 * differentiable versions, and the legality constraints.
 *
 *   ./examples/symbolic_schedules
 */
#include <cmath>
#include <cstdio>

#include "expr/compiled.h"
#include "features/features.h"
#include "rewrite/smoothing.h"
#include "rewrite/transforms.h"
#include "sketch/sampling.h"
#include "sketch/sketch.h"
#include "tir/ops.h"

using namespace felix;

int
main()
{
    // The paper's Fig. 3 example: E[i,j] = sum_k A[i,k]*B[k,j] + C[j].
    auto subgraph = tir::dense(256, 256, 256, /*bias=*/true,
                               tir::Epilogue::None, "dense_add");
    std::printf("=== Dense-Add subgraph (paper Fig. 3) ===\n");
    std::printf("dominant op: %s, %lld spatial x %lld reduce points\n\n",
                subgraph.dominantOp().name.c_str(),
                static_cast<long long>(
                    subgraph.dominantOp().spatialExtent()),
                static_cast<long long>(
                    subgraph.dominantOp().reduceExtent()));

    auto sketches = sketch::generateSketches(subgraph);
    for (const auto &sched : sketches) {
        std::printf("--- symbolic schedule s* (%s), %zu variables, "
                    "%zu constraints ---\n",
                    sched.desc.c_str(), sched.vars.size(),
                    sched.constraints.size());
        std::printf("%s\n", sched.schedule.str().c_str());
        std::printf("symbolic program p* = T(p0, s*):\n%s\n",
                    sched.program.str().c_str());
    }

    // Feature formulas of the simple sketch (paper §3.3).
    const auto &sched = sketches.back();
    std::vector<std::string> names;
    for (const auto &domain : sched.vars)
        names.push_back(domain.name);
    auto features = features::extractFeatures(sched.program);
    std::printf("=== feature formulas (x-space) ===\n");
    for (const char *name : {"float_mad", "block_len", "int_add"}) {
        int idx = features::featureIndex(name);
        std::printf("%-12s = %s\n", name,
                    features[idx].str().c_str());
    }

    // The int_add formula contains a select() discontinuity; the
    // smoothing rewriter replaces it with a differentiable form.
    int intAdd = features::featureIndex("int_add");
    expr::Expr smooth = rewrite::makeSmooth(features[intAdd]);
    std::printf("\nint_add is smooth before rewrite? %s; after? %s\n",
                rewrite::isSmooth(features[intAdd]) ? "yes" : "no",
                rewrite::isSmooth(smooth) ? "yes" : "no");

    // Full pipeline: smooth -> log expand -> x = e^y substitution.
    expr::Expr pipelined =
        rewrite::featurePipeline(features[intAdd], names);
    expr::CompiledExprs tape({pipelined}, names);
    std::vector<double> y(names.size(), std::log(4.0));
    std::vector<double> out, grads;
    tape.forward(y, out);
    tape.backward({1.0}, grads);
    std::printf("pipeline value at all-tiles=4 (log space): %.3f\n",
                out[0]);
    std::printf("gradient w.r.t. each log-variable:");
    for (size_t i = 0; i < names.size(); ++i)
        std::printf(" %s=%.4f", names[i].c_str(), grads[i]);
    std::printf("\n\n");

    // Constraints and validity: sample, round, validate.
    Rng rng(1);
    auto x = sketch::sampleValid(sched, rng);
    std::printf("random valid schedule:");
    for (size_t i = 0; i < x.size(); ++i)
        std::printf(" %s=%g", names[i].c_str(), x[i]);
    std::printf("\nvalid? %s\n",
                sketch::isValidAssignment(sched, x) ? "yes" : "no");

    std::vector<double> offGrid(y.size(), std::log(5.7));
    auto rounded = sketch::roundToValid(sched, offGrid);
    if (rounded) {
        std::printf("relaxed point e^y = 5.7 rounds to:");
        for (size_t i = 0; i < rounded->size(); ++i)
            std::printf(" %s=%g", names[i].c_str(), (*rounded)[i]);
        std::printf("  (divisor snapping in log space)\n");
    }
    return 0;
}
