/**
 * @file
 * Edge-deployment scenario (the paper's motivating use case):
 * MobileNet-v2 on the Xavier NX under a tight tuning-time budget.
 * Compares the Felix-tuned latency against the vendor libraries and
 * reports when Felix passes each of them — the "time-constrained
 * tuning on resource-constrained devices" story of §1/§6.1.
 *
 *   ./examples/edge_deployment [budget_virtual_seconds]
 */
#include <cstdio>
#include <cstdlib>

#include "core/felix.h"
#include "frameworks/frameworks.h"
#include "models/models.h"

using namespace felix;

int
main(int argc, char **argv)
{
    const double budget = argc > 1 ? std::atof(argv[1]) : 900.0;
    auto device = Device::cuda("xavier-nx");
    const auto &config = device.config();

    auto dnn = models::mobilenetV2(1);
    auto tasks = extractSubgraphs(dnn);

    std::printf("MobileNet-v2 on %s (%zu tasks)\n",
                config.name.c_str(), tasks.size());
    double libs[3];
    int fi = 0;
    for (frameworks::Framework framework : frameworks::allFrameworks()) {
        libs[fi] = frameworks::networkLatency(tasks, config, framework);
        std::printf("  %-10s : %8.3f ms\n",
                    frameworks::frameworkName(framework),
                    libs[fi] * 1e3);
        ++fi;
    }

    auto cost_model = pretrainedCostModel(device);
    OptimizerOptions options;
    Optimizer opt(tasks, cost_model, device, options);

    // Tune in slices, reporting when each library falls.
    bool passed[3] = {false, false, false};
    while (opt.tuner().clockNow() < budget) {
        opt.optimizeFor(opt.tuner().clockNow() + 60.0);
        double felix = opt.tuner().networkLatency();
        for (int i = 0; i < 3; ++i) {
            if (!passed[i] && felix < libs[i]) {
                passed[i] = true;
                std::printf("  -> Felix passes %s at %.0f virtual "
                            "seconds (%.3f ms)\n",
                            frameworks::frameworkName(
                                frameworks::allFrameworks()[i]),
                            opt.tuner().clockNow(), felix * 1e3);
            }
        }
    }
    double felix = opt.tuner().networkLatency();
    std::printf("final Felix latency after %.0f s: %.3f ms "
                "(%.2fx vs PyTorch, %.2fx vs TensorRT)\n",
                opt.tuner().clockNow(), felix * 1e3, libs[0] / felix,
                libs[2] / felix);
    return 0;
}
