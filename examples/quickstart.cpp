/**
 * @file
 * Quickstart: the C++ analogue of the paper's Figure 5 — optimize
 * ResNet-50 for the Xavier NX edge GPU with a few lines of code.
 *
 *   ./examples/quickstart [rounds]
 */
#include <cstdio>
#include <cstdlib>

#include "core/felix.h"
#include "models/models.h"

int
main(int argc, char **argv)
{
    const int rounds = argc > 1 ? std::atoi(argv[1]) : 80;

    // Define the hardware target to optimize for.
    auto device = felix::Device::cuda("xavier-nx");

    // Define the DNN to optimize (ResNet-50 at batch size 1).
    auto dnn = felix::models::resnet50(/*batch=*/1);

    // Extract subgraphs to tune from the DNN.
    auto graphs = felix::extractSubgraphs(dnn);
    std::printf("extracted %zu fused-subgraph tasks from %s\n",
                graphs.size(), dnn.name().c_str());

    // Get the pretrained cost model for the target device (trained
    // and cached on first use).
    auto cost_model = felix::pretrainedCostModel(device);

    // The Optimizer sets up the search space and the differentiable
    // objective for each subgraph.
    felix::Optimizer opt(graphs, cost_model, device);

    // Run the gradient-descent search.
    std::printf("tuning for %d rounds...\n", rounds);
    opt.optimizeAll(rounds, /*measure_per_round=*/16,
                    /*save_res=*/"resnet50.cfg");

    // Apply the best schedules found and "compile".
    auto lib = opt.compileWithBestConfigs();
    std::printf("tuned ResNet-50 latency on %s: %.3f ms "
                "(%.0f virtual tuning seconds)\n",
                device.config().name.c_str(), lib.run() * 1e3,
                opt.tuner().clockNow());

    // The module can be saved and loaded later.
    lib.save("resnet50_xavier_nx.cfg");
    auto loaded = felix::CompiledModule::load("resnet50_xavier_nx.cfg");
    std::printf("reloaded module latency: %.3f ms\n",
                loaded->run() * 1e3);
    return 0;
}
