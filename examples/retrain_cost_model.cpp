/**
 * @file
 * Retraining the cost model (paper §4: "retraining Felix's cost
 * model ... [is] optional and can help achieve better search
 * results").
 *
 * Synthesizes a fresh TenSet-style dataset for a device, trains a
 * cost model from scratch, reports ranking quality on held-out
 * samples, demonstrates per-round fine-tuning on "measurements" of a
 * specific workload, and saves the result where
 * felix::pretrainedCostModel() will pick it up.
 *
 *   ./examples/retrain_cost_model [num_subgraphs] [schedules_each]
 */
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "costmodel/dataset.h"
#include "expr/compiled.h"
#include "features/features.h"
#include "sim/gpu_model.h"
#include "sketch/sampling.h"
#include "tir/ops.h"

using namespace felix;

int
main(int argc, char **argv)
{
    costmodel::DatasetOptions options;
    options.numSubgraphs = argc > 1 ? std::atoi(argv[1]) : 24;
    options.schedulesPerSketch = argc > 2 ? std::atoi(argv[2]) : 48;
    options.seed = 99;

    const auto &device = sim::deviceConfig(sim::DeviceKind::A5000);
    std::printf("synthesizing dataset: %d subgraphs x %d schedules "
                "per sketch...\n",
                options.numSubgraphs, options.schedulesPerSketch);
    auto samples = costmodel::synthesizeDataset(device, options);

    // 90/10 train/validation split.
    size_t split = samples.size() * 9 / 10;
    std::vector<costmodel::Sample> train(samples.begin(),
                                         samples.begin() + split);
    std::vector<costmodel::Sample> held(samples.begin() + split,
                                        samples.end());

    costmodel::CostModel model({}, options.seed);
    std::printf("training on %zu samples...\n", train.size());
    model.fit(train);
    auto metrics = model.validate(held);
    std::printf("held-out: mse %.3f, pairwise rank correlation "
                "%.3f\n",
                metrics.mse, metrics.rankCorrelation);

    // Fine-tune toward one specific workload, as Algorithm 1 line 24
    // does after each round of hardware measurements.
    auto subgraph = tir::dense(100, 11008, 4096, false);
    auto sketches = sketch::generateSketches(subgraph);
    std::vector<costmodel::Sample> fresh;
    Rng rng(7);
    for (const auto &sched : sketches) {
        std::vector<std::string> names;
        for (const auto &domain : sched.vars)
            names.push_back(domain.name);
        expr::CompiledExprs tape(
            features::extractFeatures(sched.program), names);
        for (int i = 0; i < 32; ++i) {
            costmodel::Sample sample;
            sample.rawFeatures =
                tape.eval(sketch::sampleValid(sched, rng));
            sample.latencySec =
                sim::measureKernel(sample.rawFeatures, device, i);
            fresh.push_back(std::move(sample));
        }
    }
    auto before = model.validate(fresh);
    model.finetune(fresh, /*steps=*/64);
    auto after = model.validate(fresh);
    std::printf("workload-specific mse: %.3f -> %.3f after "
                "fine-tuning on %zu measurements\n",
                before.mse, after.mse, fresh.size());

    std::error_code ec;
    std::filesystem::create_directories("pretrained", ec);
    model.save("pretrained/cost_model_a5000.txt");
    std::printf("saved to pretrained/cost_model_a5000.txt "
                "(felix::pretrainedCostModel will load it)\n");
    return 0;
}
