/**
 * @file
 * Extending Felix with a custom operator.
 *
 * Builds a tensor operator Felix has never seen — a fused
 * "attention score" kernel S[b,i,j] = sum_d Q[b,i,d]*K[b,j,d],
 * scaled and passed through a tanh gate — directly through the tir
 * compute-definition API, then tunes it with gradient descent and
 * compares against a library-style roofline estimate. Shows the
 * extension path of paper §4: any compute definition with iteration
 * axes and buffer accesses slots into sketch generation, feature
 * extraction and the differentiable pipeline unchanged.
 *
 *   ./examples/custom_operator [rounds]
 */
#include <cstdio>
#include <cstdlib>

#include "core/felix.h"
#include "sim/gpu_model.h"

using namespace felix;

namespace {

tir::SubgraphDef
fusedAttentionScore(int64_t batch, int64_t seq, int64_t dim)
{
    tir::ComputeOp op;
    op.name = "attn_score";
    op.axes = {
        {"b", batch, false},
        {"i", seq, false},
        {"j", seq, false},
        {"d", dim, true},
    };
    // One FMA per point plus the scale-and-tanh epilogue amortized
    // over the reduction.
    op.arith.fma = 1;
    op.arith.mul = 1.0 / static_cast<double>(dim);
    op.arith.special = 1.0 / static_cast<double>(dim);

    tir::BufferAccess q;
    q.tensor = "Q";
    q.dims = {{{{"b", 1}}, batch}, {{{"i", 1}}, seq},
              {{{"d", 1}}, dim}};
    op.inputs.push_back(std::move(q));
    tir::BufferAccess k;
    k.tensor = "K";
    k.dims = {{{{"b", 1}}, batch}, {{{"j", 1}}, seq},
              {{{"d", 1}}, dim}};
    op.inputs.push_back(std::move(k));

    tir::SubgraphDef subgraph;
    subgraph.name = "attn_score";
    subgraph.ops.push_back(std::move(op));
    return subgraph;
}

} // namespace

int
main(int argc, char **argv)
{
    const int rounds = argc > 1 ? std::atoi(argv[1]) : 16;
    auto device = Device::cuda("a5000");
    const auto &config = device.config();

    auto subgraph = fusedAttentionScore(/*batch=*/16, /*seq=*/128,
                                        /*dim=*/64);
    std::printf("custom operator: %s, %.2f GFLOPs\n",
                subgraph.name.c_str(), subgraph.totalFlops() / 1e9);

    // Inspect what Felix generated for it.
    auto sketches = sketch::generateSketches(subgraph);
    for (const auto &sched : sketches) {
        std::printf("  sketch %-28s %2zu vars, %2zu constraints\n",
                    sched.desc.c_str(), sched.vars.size(),
                    sched.constraints.size());
    }

    graph::Task task;
    task.subgraph = subgraph;
    task.anchorType = graph::OpType::BatchMatmul;
    task.exampleLabel = "attn_score";

    auto model = pretrainedCostModel(device);
    tuner::GraphTuner tuner({task}, model, device.kind, {});
    double naive = tuner.taskRecords()[0].bestLatencySec;
    tuner.tuneRounds(rounds);
    double tuned = tuner.taskRecords()[0].bestLatencySec;
    double roofline = subgraph.totalFlops() / config.peakFlops();

    std::printf("naive schedule : %9.1f us\n", naive * 1e6);
    std::printf("Felix-tuned    : %9.1f us  (%.0fx faster, %.0f%% of "
                "the compute roofline)\n",
                tuned * 1e6, naive / tuned,
                100.0 * roofline / tuned);
    return 0;
}
