/**
 * @file
 * felix-tune: a small command-line front end to the library.
 *
 *   felix-tune --network resnet50 --device a5000 --budget 600
 *              [--batch N] [--strategy felix|ansor] [--seed N]
 *              [--out FILE.cfg] [--compare-frameworks]
 *
 * Tunes one network for one device under a virtual tuning budget and
 * prints the resulting latency (optionally against the simulated
 * vendor libraries), saving the best schedules to a module file.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/felix.h"
#include "frameworks/frameworks.h"
#include "jit/jit.h"
#include "models/models.h"
#include "obs/metrics.h"
#include "obs/round_log.h"
#include "obs/trace.h"
#include "shard/merge.h"
#include "shard/shard.h"
#include "simd/kernels.h"
#include "sketch/sketch.h"
#include "support/logging.h"
#include "support/parallel.h"

using namespace felix;

namespace {

void
usage()
{
    std::printf(
        "usage: felix-tune --network NAME [options]\n"
        "  --network   resnet50 | mobilenet_v2 | r3d_18 | dcgan |\n"
        "              vit_b32 | llama\n"
        "  --device    a10g | a5000 | xavier-nx   (default a5000)\n"
        "  --batch     input batch size           (default 1)\n"
        "  --budget    virtual tuning seconds     (default 600)\n"
        "  --strategy  felix | ansor              (default felix)\n"
        "  --seed      RNG seed                   (default 1)\n"
        "  --jobs      worker threads (default 1; results are\n"
        "              bit-identical for any value)\n"
        "  --out       save best schedules to a module file\n"
        "  --compare-frameworks  also report library latencies\n"
        "  --show-schedules N    print the bound loop nests of the\n"
        "                        N most time-consuming tasks\n"
        "  --log FILE  append every measurement as a replayable\n"
        "              tuning record (Ansor-style tuning log)\n"
        "  --save-records FILE   append the history-best schedule\n"
        "              per task after tuning (the schedule-cache\n"
        "              format felix-serve warm-starts from)\n"
        "  --replay-records FILE apply history best from a tuning\n"
        "              record log and skip the search entirely\n"
        "  --trace-out FILE    write a Chrome trace_event JSON file\n"
        "                      (open in chrome://tracing / Perfetto)\n"
        "  --metrics-out FILE  write per-round telemetry records plus\n"
        "                      a final metrics snapshot as JSONL\n"
        "  --no-batch  evaluate gradient-search points one at a\n"
        "              time instead of in SoA batches (debugging;\n"
        "              results are bit-identical either way)\n"
        "  --simd W    SIMD backend for the batched kernels: a\n"
        "              vector width (1 | 2 | 4 | 8) or 'off' for\n"
        "              the scalar fallback (default: widest the CPU\n"
        "              supports; also via FELIX_SIMD). Results are\n"
        "              bit-identical at every width\n"
        "  --no-jit    run the descent tapes through the batched\n"
        "              interpreter instead of the copy-and-patch\n"
        "              JIT (also via FELIX_JIT=off). Results are\n"
        "              bit-identical either way\n"
        "  --jit       force the JIT on, overriding FELIX_JIT=off\n"
        "              (no-op where unsupported: non-x86 or no AVX2)\n"
        "  --log-level L       debug | info | warn | error\n"
        "                      (also via FELIX_LOG_LEVEL)\n"
        "  --cache-dir DIR     pretrained cost-model cache directory\n"
        "                      (default: pretrained)\n"
        "sharded tuning (docs/distributed.md):\n"
        "  --shards K          partition the tasks across K shard\n"
        "                      processes; run this process as one of\n"
        "                      them (merged output is byte-identical\n"
        "                      to --shards 1)\n"
        "  --shard-id I        which shard this process is (0..K-1)\n"
        "  --shard-dir DIR     shard artifact directory (required\n"
        "                      with --shards and --merge)\n"
        "  --rounds-per-task R tuning rounds per task (default 4)\n"
        "  --resume            resume from the newest valid\n"
        "                      checkpoint in the shard directory\n"
        "  --no-checkpoint     skip the per-round checkpoints\n"
        "  --kill-at-round N   test hook: SIGKILL this process after\n"
        "                      it executes N rounds (worst-case\n"
        "                      crash point, before the checkpoint)\n"
        "  --merge             merge the finished shards found in\n"
        "                      --shard-dir into merged.* artifacts\n");
}

graph::Graph
buildNetwork(const std::string &name, int batch)
{
    if (name == "resnet50")
        return models::resnet50(batch);
    if (name == "mobilenet_v2")
        return models::mobilenetV2(batch);
    if (name == "r3d_18")
        return models::r3d18(batch);
    if (name == "dcgan")
        return models::dcgan(batch);
    if (name == "vit_b32")
        return models::vitB32(batch);
    if (name == "llama")
        return models::llama(batch);
    fatal("unknown network: " + name);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string network, deviceName = "a5000", strategy = "felix";
    std::string outPath;
    int batch = 1;
    double budget = 600.0;
    uint64_t seed = 1;
    int jobs = 0;
    bool compareFrameworks = false;
    int showSchedules = 0;
    bool useBatch = true;
    std::string logPath, traceOut, metricsOut;
    std::string saveRecords, replayRecords;
    std::string cacheDir = "pretrained";
    int shards = 0, shardId = 0, roundsPerTask = 4;
    int killAtRound = 0;
    std::string shardDir;
    bool resume = false, checkpoint = true, merge = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                fatal("missing value for " + arg);
            }
            return argv[++i];
        };
        if (arg == "--network") network = next();
        else if (arg == "--device") deviceName = next();
        else if (arg == "--batch") batch = std::atoi(next().c_str());
        else if (arg == "--budget") budget = std::atof(next().c_str());
        else if (arg == "--strategy") strategy = next();
        else if (arg == "--seed")
            seed = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--jobs") {
            jobs = std::atoi(next().c_str());
            if (jobs < 1)
                fatal("--jobs needs a positive thread count");
        }
        else if (arg == "--out") outPath = next();
        else if (arg == "--compare-frameworks")
            compareFrameworks = true;
        else if (arg == "--show-schedules")
            showSchedules = std::atoi(next().c_str());
        else if (arg == "--log")
            logPath = next();
        else if (arg == "--save-records")
            saveRecords = next();
        else if (arg == "--replay-records")
            replayRecords = next();
        else if (arg == "--trace-out")
            traceOut = next();
        else if (arg == "--metrics-out")
            metricsOut = next();
        else if (arg == "--cache-dir")
            cacheDir = next();
        else if (arg == "--shards") {
            shards = std::atoi(next().c_str());
            if (shards < 1)
                fatal("--shards needs a positive shard count");
        }
        else if (arg == "--shard-id")
            shardId = std::atoi(next().c_str());
        else if (arg == "--shard-dir")
            shardDir = next();
        else if (arg == "--rounds-per-task") {
            roundsPerTask = std::atoi(next().c_str());
            if (roundsPerTask < 1)
                fatal("--rounds-per-task needs a positive count");
        }
        else if (arg == "--resume")
            resume = true;
        else if (arg == "--no-checkpoint")
            checkpoint = false;
        else if (arg == "--kill-at-round")
            killAtRound = std::atoi(next().c_str());
        else if (arg == "--merge")
            merge = true;
        else if (arg == "--no-batch")
            useBatch = false;
        else if (arg == "--no-jit")
            jit::setEnabled(false);
        else if (arg == "--jit")
            jit::setEnabled(true);
        else if (arg == "--simd") {
            std::string value = next();
            int width = value == "off" ? 1 : std::atoi(value.c_str());
            if (width < 1 || !simd::setPreferredWidth(width)) {
                std::string widths;
                for (int w : simd::availableWidths())
                    widths += (widths.empty() ? "" : " | ") +
                              std::to_string(w);
                fatal("bad --simd '" + value + "' (this build: " +
                      widths + " | off)");
            }
        }
        else if (arg == "--log-level") {
            std::string name = next();
            auto level = parseLogLevel(name);
            if (!level)
                fatal("bad --log-level '" + name +
                      "' (expected debug|info|warn|error)");
            setLogLevel(*level);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument: " + arg);
        }
    }
    if (merge) {
        // Merge needs no network: everything it consumes is in the
        // shard directory's manifests.
        if (shardDir.empty())
            fatal("--merge needs --shard-dir");
        auto result = shard::mergeShards(shardDir);
        if (!result)
            return 1;
        std::printf("merged %d shards (%ld rounds, %zu tasks): "
                    "%9.3f ms\n",
                    result->shards, result->rounds, result->tasks,
                    result->networkLatencySec * 1e3);
        std::printf("wrote %s\n",
                    shard::mergedModulePath(shardDir).c_str());
        return 0;
    }
    if (network.empty()) {
        usage();
        return 1;
    }

    // Resize the pool before any parallel work (cost-model pretrain
    // on a cache miss runs before the tuner is constructed).
    if (jobs > 0)
        setGlobalJobs(jobs);

    if (!traceOut.empty())
        obs::Tracer::instance().start(traceOut);

    auto device = Device::cuda(deviceName);
    auto dnn = buildNetwork(network, batch);
    auto tasks = extractSubgraphs(dnn);
    std::printf("%s (batch %d) on %s: %zu tuning tasks\n",
                network.c_str(), batch, device.config().name.c_str(),
                tasks.size());

    if (shards > 0) {
        if (shardDir.empty())
            fatal("--shards needs --shard-dir");
        if (shardId < 0 || shardId >= shards)
            fatal("--shard-id must be in [0, --shards)");
        obs::setShardIdentity(shardId, shards);
        shard::ShardOptions shardOptions;
        shardOptions.seed = seed;
        shardOptions.shards = shards;
        shardOptions.shardId = shardId;
        shardOptions.roundsPerTask = roundsPerTask;
        shardOptions.strategy =
            (strategy == "ansor") ? tuner::StrategyKind::AnsorTenSet
                                  : tuner::StrategyKind::FelixGradient;
        shardOptions.grad.useBatch = useBatch;
        shardOptions.dir = shardDir;
        shardOptions.checkpoint = checkpoint;
        shardOptions.resume = resume;
        shardOptions.killAfterRounds = killAtRound;
        shard::ShardRunner runner(tasks,
                                  pretrainedCostModel(device, cacheDir),
                                  device, shardOptions);
        int rc = runner.run();
        if (rc == 0)
            std::printf("shard %d/%d done: artifacts in %s\n",
                        shardId, shards, shardDir.c_str());
        if (!traceOut.empty() && !obs::Tracer::instance().stop())
            return 1;
        return rc;
    }

    if (compareFrameworks) {
        for (auto framework : frameworks::allFrameworks()) {
            if (!frameworks::frameworkSupports(
                    framework, network, device.kind, batch)) {
                std::printf("  %-10s : unsupported\n",
                            frameworks::frameworkName(framework));
                continue;
            }
            std::printf("  %-10s : %9.3f ms\n",
                        frameworks::frameworkName(framework),
                        frameworks::networkLatency(
                            tasks, device.config(), framework) *
                            1e3);
        }
    }

    if (!replayRecords.empty()) {
        // TVM's "apply history best": rebuild the best schedule per
        // task from a tuning-record log, no search at all. This is
        // the same lookup the felix-serve schedule cache answers
        // repeat subgraphs from (docs/serving.md).
        auto records = tuner::loadRecords(replayRecords);
        std::vector<std::string> missing;
        auto module =
            applyHistoryBest(tasks, records, device, &missing);
        std::printf("  %-10s : %9.3f ms  (replayed %zu records, "
                    "%zu tasks missing)\n",
                    "replay", module.run() * 1e3, records.size(),
                    missing.size());
        for (const std::string &label : missing)
            std::printf("    missing: %s\n", label.c_str());
        if (!outPath.empty()) {
            module.save(outPath);
            std::printf("saved replayed schedules to %s\n",
                        outPath.c_str());
        }
        return missing.empty() ? 0 : 2;
    }

    OptimizerOptions options;
    options.tuner.seed = seed;
    options.tuner.numThreads = jobs;
    options.tuner.recordLogPath = logPath;
    options.tuner.roundLogPath = metricsOut;
    options.tuner.grad.useBatch = useBatch;
    options.tuner.strategy = (strategy == "ansor")
                                 ? tuner::StrategyKind::AnsorTenSet
                                 : tuner::StrategyKind::FelixGradient;
    Optimizer opt(tasks, pretrainedCostModel(device, cacheDir),
                  device, options);
    opt.optimizeFor(budget);

    auto module = opt.compileWithBestConfigs();
    std::printf("  %-10s : %9.3f ms  (after %.0f virtual seconds, "
                "%d measurements)\n",
                strategy == "ansor" ? "Ansor" : "Felix",
                module.run() * 1e3, opt.tuner().clockNow(),
                opt.tuner().totalMeasurements());
    if (!outPath.empty()) {
        module.save(outPath);
        std::printf("saved best schedules to %s\n", outPath.c_str());
    }
    if (!saveRecords.empty()) {
        // History-best per task, one atomic append: the schedule-
        // cache warm-start format shared with felix-serve.
        std::vector<tuner::TuneRecord> best;
        for (const auto &record : opt.tuner().taskRecords()) {
            tuner::TuneRecord entry;
            entry.taskHash = record.task.subgraph.structuralHash();
            entry.taskLabel = record.task.exampleLabel;
            entry.sketchIndex = record.bestCandidate.sketchIndex;
            entry.scheduleVars = record.bestCandidate.x;
            entry.latencySec = record.bestLatencySec;
            entry.clockSec = opt.tuner().clockNow();
            best.push_back(std::move(entry));
        }
        tuner::appendRecords(saveRecords, best);
        std::printf("saved %zu history-best records to %s\n",
                    best.size(), saveRecords.c_str());
    }

    if (showSchedules > 0) {
        // Rank tasks by their share of the network latency and print
        // the concrete (bound) loop nest of the winners.
        const auto &records = opt.tuner().taskRecords();
        std::vector<size_t> order(records.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return records[a].task.weight * records[a].bestLatencySec >
                   records[b].task.weight * records[b].bestLatencySec;
        });
        for (int rank = 0;
             rank < showSchedules &&
             rank < static_cast<int>(order.size());
             ++rank) {
            const auto &record = records[order[rank]];
            const auto &sched =
                record.strategy
                    ->sketches()[record.bestCandidate.sketchIndex];
            std::printf("\n=== %s (weight %d, %.1f us/kernel, "
                        "sketch %s) ===\n",
                        record.task.exampleLabel.c_str(),
                        record.task.weight,
                        record.bestLatencySec * 1e6,
                        sched.desc.c_str());
            auto bound =
                sched.schedule.bind(record.bestCandidate.x);
            auto program = tir::applySchedule(record.task.subgraph,
                                              bound);
            std::printf("%s", program.str().c_str());
        }
    }

    if (!metricsOut.empty()) {
        if (!obs::appendMetricsSnapshot(
                metricsOut,
                obs::MetricsRegistry::instance().snapshot()))
            return 1;
        std::printf("wrote per-round telemetry to %s\n",
                    metricsOut.c_str());
    }
    if (!traceOut.empty()) {
        if (obs::Tracer::instance().stop()) {
            std::printf("wrote trace to %s (open in chrome://tracing "
                        "or https://ui.perfetto.dev)\n",
                        traceOut.c_str());
        } else {
            return 1;
        }
    }
    return 0;
}
