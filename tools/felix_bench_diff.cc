/**
 * @file
 * felix-bench-diff: compare a fresh `bench_tape` / `bench_serve`
 * --json-out run against a committed BENCH_*.json baseline and fail
 * on regressions beyond a noise threshold (docs/serving.md "Bench
 * gate").
 *
 *   felix-bench-diff --baseline BENCH_tape.json --current new.json \
 *                    [--threshold 0.5]
 *
 * Compared metrics, matched per benchmark name:
 *   real_time_ns            lower is better
 *   *_per_s / *_per_sec     higher is better
 * Everything else (simd widths, instruction counts, backend names)
 * is configuration, not performance, and is ignored. A benchmark
 * present in the baseline but missing from the current run counts
 * as a regression; one present only in the current run is reported
 * as NEW — informational by default (a freshly added benchmark has
 * no baseline yet), a failure under --strict-new (for gates whose
 * baseline must enumerate every benchmark). Exit codes: 0 within
 * threshold, 1 regression, 2 bad invocation or malformed input.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

using namespace felix;

namespace {

void
usage()
{
    std::printf(
        "usage: felix-bench-diff --baseline FILE --current FILE "
        "[--threshold F]\n"
        "  --baseline FILE  committed BENCH_*.json to compare "
        "against\n"
        "  --current FILE   fresh bench --json-out run\n"
        "  --threshold F    allowed fractional slowdown "
        "(default 0.5,\n"
        "                   i.e. fail when >50%% worse than "
        "baseline)\n"
        "  --strict-new     fail when the current run has a\n"
        "                   benchmark the baseline lacks (default:\n"
        "                   report it as NEW and continue)\n");
}

/** True for throughput counters (higher is better). */
bool
isRateKey(const std::string &key)
{
    auto endsWith = [&](const char *suffix) {
        const size_t n = std::strlen(suffix);
        return key.size() >= n &&
               key.compare(key.size() - n, n, suffix) == 0;
    };
    return endsWith("_per_s") || endsWith("_per_sec");
}

std::optional<obs::JsonValue>
loadJson(const std::string &path, std::string *why)
{
    std::ifstream in(path);
    if (!in.good()) {
        *why = "cannot read " + path;
        return std::nullopt;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    auto doc = obs::parseJson(buffer.str(), &error);
    if (!doc) {
        *why = path + ": " + error;
        return std::nullopt;
    }
    return doc;
}

/** results[] keyed by benchmark name. */
const obs::JsonValue *
findResult(const obs::JsonValue &doc, const std::string &name)
{
    const obs::JsonValue *results = doc.find("results");
    if (!results || !results->isArray())
        return nullptr;
    for (const obs::JsonValue &result : results->asArray()) {
        if (result.stringOr("name", "") == name)
            return &result;
    }
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baselinePath, currentPath;
    double threshold = 0.5;
    bool strictNew = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--baseline") baselinePath = next();
        else if (arg == "--current") currentPath = next();
        else if (arg == "--threshold")
            threshold = std::atof(next());
        else if (arg == "--strict-new")
            strictNew = true;
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (baselinePath.empty() || currentPath.empty() ||
        threshold <= 0.0) {
        usage();
        return 2;
    }

    std::string why;
    auto baseline = loadJson(baselinePath, &why);
    if (!baseline) {
        std::fprintf(stderr, "felix-bench-diff: %s\n", why.c_str());
        return 2;
    }
    auto current = loadJson(currentPath, &why);
    if (!current) {
        std::fprintf(stderr, "felix-bench-diff: %s\n", why.c_str());
        return 2;
    }

    const obs::JsonValue *baseResults = baseline->find("results");
    if (!baseResults || !baseResults->isArray()) {
        std::fprintf(stderr,
                     "felix-bench-diff: %s has no results[]\n",
                     baselinePath.c_str());
        return 2;
    }

    int compared = 0, regressions = 0;
    for (const obs::JsonValue &base : baseResults->asArray()) {
        const std::string name = base.stringOr("name", "");
        if (name.empty() || !base.isObject())
            continue;
        const obs::JsonValue *cur = findResult(*current, name);
        if (!cur) {
            std::printf("MISSING   %s (in baseline, not in "
                        "current run)\n",
                        name.c_str());
            ++regressions;
            continue;
        }
        for (const auto &[key, value] : base.asObject()) {
            if (!value.isNumber())
                continue;
            const bool rate = isRateKey(key);
            if (!rate && key != "real_time_ns")
                continue;
            const obs::JsonValue *curValue = cur->find(key);
            if (!curValue || !curValue->isNumber())
                continue;
            const double baseNum = value.asNumber();
            const double curNum = curValue->asNumber();
            if (baseNum <= 0.0)
                continue;
            ++compared;
            // ratio > 1 means "worse" for both orientations.
            const double ratio =
                rate ? baseNum / curNum : curNum / baseNum;
            const bool regressed = ratio > 1.0 + threshold;
            std::printf("%-9s %s %s base=%.6g cur=%.6g "
                        "worse_by=%+.1f%%\n",
                        regressed ? "REGRESSED" : "ok",
                        name.c_str(), key.c_str(), baseNum, curNum,
                        100.0 * (ratio - 1.0));
            if (regressed)
                ++regressions;
        }
    }

    // Benchmarks only the current run has: a fresh benchmark has no
    // baseline yet, so this is informational unless --strict-new.
    int fresh = 0;
    const obs::JsonValue *curResults = current->find("results");
    if (curResults && curResults->isArray()) {
        for (const obs::JsonValue &cur : curResults->asArray()) {
            const std::string name = cur.stringOr("name", "");
            if (name.empty() || !cur.isObject())
                continue;
            if (findResult(*baseline, name))
                continue;
            ++fresh;
            std::printf("NEW       %s (in current run, not in "
                        "baseline%s)\n",
                        name.c_str(),
                        strictNew ? "; --strict-new" : "");
            if (strictNew)
                ++regressions;
        }
    }

    std::printf("felix-bench-diff: %d metrics compared, "
                "%d new, %d regression%s (threshold %.0f%%)\n",
                compared, fresh, regressions,
                regressions == 1 ? "" : "s", 100.0 * threshold);
    return regressions > 0 ? 1 : 0;
}
