/**
 * @file
 * felix-top: live introspection client for a felix-serve daemon
 * (docs/observability.md "felix-top").
 *
 *   felix-top --socket PATH                 # poll and render
 *   felix-top --socket PATH --once          # one machine-readable line
 *   felix-top --socket PATH --once --no-wall
 *   felix-top --socket PATH --send FILE     # NDJSON client mode
 *
 * Speaks the admin side of the NDJSON protocol (docs/serving.md):
 * `stats` and `tasks` for the deterministic tuning-progress view,
 * plus `metrics` (registry snapshot) and `dump` (flight recorder)
 * when wall-clock data is wanted. With --once --no-wall the output
 * is a pure function of the daemon's request history, so CI can
 * byte-compare it across daemon --jobs values.
 */
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/json.h"
#include "support/logging.h"

using namespace felix;

namespace {

void
usage()
{
    std::printf(
        "usage: felix-top --socket PATH [mode] [options]\n"
        "  --socket PATH   felix-serve Unix domain socket\n"
        "modes (default: poll and render a dashboard):\n"
        "  --once          print one combined JSON object and exit\n"
        "  --send FILE     send each NDJSON line of FILE (- for\n"
        "                  stdin), print each response; a plain\n"
        "                  protocol client for scripts and tests\n"
        "options:\n"
        "  --no-wall       skip the wall-clock ops (metrics, dump);\n"
        "                  with --once the output is byte-stable\n"
        "                  across daemon restarts and --jobs\n"
        "  --interval-ms N poll period           (default 1000)\n"
        "  --count N       stop after N polls    (default 0 = run\n"
        "                  until the daemon goes away)\n");
}

/** Connected NDJSON client: line-buffered reads over a socket. */
class Client
{
  public:
    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool
    connect(const std::string &path)
    {
        if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
            warn("socket path too long: ", path);
            return false;
        }
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            return false;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
            return false;
        }
        return true;
    }

    bool
    sendLine(const std::string &line)
    {
        std::string out = line + "\n";
        size_t written = 0;
        while (written < out.size()) {
            ssize_t n = ::write(fd_, out.data() + written,
                                out.size() - written);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            written += static_cast<size_t>(n);
        }
        return true;
    }

    bool
    readLine(std::string *line)
    {
        size_t nl;
        while ((nl = buffer_.find('\n')) == std::string::npos) {
            char chunk[4096];
            ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            buffer_.append(chunk, static_cast<size_t>(n));
        }
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
    }

    /** One round trip: request line out, response line in. */
    bool
    request(const std::string &line, std::string *response)
    {
        return sendLine(line) && readLine(response);
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

/** --send FILE: forward request lines, print response lines. */
int
runSend(Client &client, const std::string &path)
{
    std::ifstream file;
    std::istream *in = &std::cin;
    if (path != "-") {
        file.open(path);
        if (!file.good())
            fatal("cannot read " + path);
        in = &file;
    }
    std::string line, response;
    while (std::getline(*in, line)) {
        if (line.empty())
            continue;
        if (!client.request(line, &response))
            fatal("daemon went away mid-conversation");
        std::cout << response << "\n";
    }
    std::cout.flush();
    return 0;
}

/**
 * --once: one combined JSON object on stdout. Deterministic ops
 * first; the wall-clock ops are appended unless --no-wall.
 */
int
runOnce(Client &client, bool no_wall)
{
    std::string stats, tasks;
    if (!client.request("{\"op\":\"stats\"}", &stats) ||
        !client.request("{\"op\":\"tasks\"}", &tasks))
        fatal("daemon did not answer stats/tasks");
    std::string out =
        "{\"stats\":" + stats + ",\"tasks\":" + tasks;
    if (!no_wall) {
        std::string metrics, dump;
        if (!client.request("{\"op\":\"metrics\"}", &metrics) ||
            !client.request("{\"op\":\"dump\"}", &dump))
            fatal("daemon did not answer metrics/dump");
        out += ",\"metrics\":" + metrics + ",\"dump\":" + dump;
    }
    out += "}";
    std::cout << out << "\n";
    std::cout.flush();
    return 0;
}

/** Render one poll of stats + tasks as a human dashboard block. */
bool
renderPoll(Client &client, const std::string &socket_path,
           bool no_wall)
{
    std::string statsLine, tasksLine;
    if (!client.request("{\"op\":\"stats\"}", &statsLine) ||
        !client.request("{\"op\":\"tasks\"}", &tasksLine))
        return false;
    auto stats = obs::parseJson(statsLine);
    auto tasks = obs::parseJson(tasksLine);
    if (!stats || !tasks)
        return false;

    const double hits = stats->numberOr("cache_hits", 0);
    const double misses = stats->numberOr("cache_misses", 0);
    const double lookups = hits + misses;
    std::printf("felix-serve @ %s\n", socket_path.c_str());
    std::printf(
        "  requests %.0f  rounds %.0f  cache %.0f entries  "
        "tasks %.0f\n",
        stats->numberOr("requests", 0),
        stats->numberOr("rounds", 0),
        stats->numberOr("cache_size", 0),
        stats->numberOr("tasks", 0));
    std::printf("  hit rate %.1f%% overall",
                lookups > 0 ? 100.0 * hits / lookups : 0.0);
    if (const obs::JsonValue *window = stats->find("window")) {
        std::printf(" | %.1f%% over last %.0f lookups",
                    100.0 * window->numberOr("hit_rate", 0),
                    window->numberOr("filled", 0));
    }
    std::printf("\n");
    // Shard identity and checkpoint status: present only when the
    // daemon runs with --shard-id / --checkpoint.
    const obs::JsonValue *shard = stats->find("shard");
    const obs::JsonValue *ckpt = stats->find("checkpoint");
    if (shard || ckpt) {
        std::printf(" ");
        if (shard) {
            std::printf(" shard %.0f/%.0f",
                        shard->numberOr("id", 0),
                        shard->numberOr("count", 0));
        }
        if (ckpt) {
            std::printf("%s checkpoint writes %.0f, pending "
                        "restore %.0f",
                        shard ? " |" : "",
                        ckpt->numberOr("writes", 0),
                        ckpt->numberOr("pending_restore", 0));
        }
        std::printf("\n");
    }
    if (const obs::JsonValue *lat =
            stats->find("answer_latency_us")) {
        std::printf(
            "  answer latency us: p50 %.1f  p95 %.1f  p99 %.1f  "
            "mean %.1f  (n=%.0f)\n",
            lat->numberOr("p50", 0), lat->numberOr("p95", 0),
            lat->numberOr("p99", 0), lat->numberOr("mean", 0),
            lat->numberOr("count", 0));
    }
    if (!no_wall) {
        std::string metricsLine;
        if (client.request("{\"op\":\"metrics\"}", &metricsLine)) {
            auto metrics = obs::parseJson(metricsLine);
            const obs::JsonValue *gauges =
                metrics ? metrics->find("registry") : nullptr;
            gauges = gauges ? gauges->find("gauges") : nullptr;
            if (gauges) {
                std::printf(
                    "  request rate %.1f/s\n",
                    gauges->numberOr("serve.request_rate_per_sec",
                                     0));
            }
        }
    }

    const obs::JsonValue *list = tasks->find("tasks");
    if (list && list->isArray() && !list->asArray().empty()) {
        std::printf("  %-28s %6s %8s %12s %8s %6s\n", "TASK",
                    "ROUNDS", "STAGNANT", "BEST_US", "TRAFFIC",
                    "HITS");
        for (const obs::JsonValue &task : list->asArray()) {
            std::printf(
                "  %-28.28s %6.0f %8.0f %12.1f %7.1f%% %6.0f\n",
                task.stringOr("label", "?").c_str(),
                task.numberOr("rounds", 0),
                task.numberOr("stagnant", 0),
                task.numberOr("best_latency_sec", 0) * 1e6,
                100.0 * task.numberOr("traffic_share", 0),
                task.numberOr("cache_hits", 0));
        }
    }
    std::printf("\n");
    std::fflush(stdout);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath, sendPath;
    bool once = false, noWall = false;
    int intervalMs = 1000, count = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                fatal("missing value for " + arg);
            }
            return argv[++i];
        };
        if (arg == "--socket") socketPath = next();
        else if (arg == "--once") once = true;
        else if (arg == "--send") sendPath = next();
        else if (arg == "--no-wall") noWall = true;
        else if (arg == "--interval-ms")
            intervalMs = std::max(1, std::atoi(next().c_str()));
        else if (arg == "--count")
            count = std::atoi(next().c_str());
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument: " + arg);
        }
    }
    if (socketPath.empty()) {
        usage();
        fatal("--socket PATH is required");
    }

    Client client;
    if (!client.connect(socketPath))
        fatal("cannot connect to " + socketPath + ": " +
              std::strerror(errno));

    if (!sendPath.empty())
        return runSend(client, sendPath);
    if (once)
        return runOnce(client, noWall);

    int polls = 0;
    while (renderPoll(client, socketPath, noWall)) {
        if (count > 0 && ++polls >= count)
            return 0;
        ::usleep(static_cast<useconds_t>(intervalMs) * 1000);
    }
    warn("felix-top: daemon went away");
    return 1;
}
