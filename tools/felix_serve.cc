/**
 * @file
 * felix-serve: the Felix tuning daemon (docs/serving.md).
 *
 *   felix-serve --stdio  [options]            # NDJSON on stdin/stdout
 *   felix-serve --socket /run/felix.sock [options]
 *
 * Answers graph-tuning requests from a schedule cache keyed on the
 * subgraph structural hash, warm-started from (and persisted back
 * to) a tuning-record log, and spends background tuning rounds on
 * the subgraphs that dominate fleet traffic (count-min sketch +
 * heavy-hitter heap, traffic_share x remaining_latency scheduling).
 *
 * In --stdio mode requests are processed strictly in order and
 * tuning only runs on explicit {"op":"rounds"} requests, so a fixed
 * request trace with a fixed --seed yields bit-identical responses
 * across runs and across --jobs values (the determinism contract
 * the serve_smoke ctest enforces). In --socket mode the daemon
 * additionally tunes --rounds-per-idle rounds whenever the socket
 * stays quiet for --idle-ms.
 */
#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/felix.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/round_log.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "support/logging.h"
#include "support/parallel.h"

using namespace felix;

namespace {

/** Set by the SIGINT/SIGTERM handler; checked by both loops. */
volatile sig_atomic_t g_stopSignal = 0;

void
onStopSignal(int signo)
{
    g_stopSignal = signo;
}

/**
 * Fatal-signal handler: dump the flight-recorder tail to stderr so
 * a crashing daemon explains its last moments, then re-raise with
 * the default disposition for a normal core/exit. Only
 * async-signal-safe calls: write(2) and the lock-free dumpTo().
 */
void
onFatalSignal(int signo)
{
    static const char header[] =
        "felix-serve: fatal signal, flight recorder tail:\n";
    ::write(2, header, sizeof(header) - 1);
    obs::FlightRecorder::instance().dumpTo(2);
    ::signal(signo, SIG_DFL);
    ::raise(signo);
}

void
installSignalHandlers()
{
    struct sigaction stop{};
    stop.sa_handler = onStopSignal;
    sigemptyset(&stop.sa_mask);
    // No SA_RESTART: blocking reads (stdin getline, socket poll)
    // must fail with EINTR so the loops notice the flag and run
    // the graceful-shutdown path (persist + log finalization).
    stop.sa_flags = 0;
    ::sigaction(SIGINT, &stop, nullptr);
    ::sigaction(SIGTERM, &stop, nullptr);

    struct sigaction crash{};
    crash.sa_handler = onFatalSignal;
    sigemptyset(&crash.sa_mask);
    crash.sa_flags = 0;
    for (int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE})
        ::sigaction(signo, &crash, nullptr);
}

void
usage()
{
    std::printf(
        "usage: felix-serve (--stdio | --socket PATH) [options]\n"
        "  --stdio         serve NDJSON requests on stdin/stdout\n"
        "  --socket PATH   listen on a Unix domain socket\n"
        "  --device        a10g | a5000 | xavier-nx (default a5000)\n"
        "  --strategy      felix | ansor           (default felix)\n"
        "  --seed          RNG seed                (default 1)\n"
        "  --jobs          worker threads (default 1; responses are\n"
        "                  bit-identical for any value)\n"
        "  --records PATH  tuning-record log: warm-starts the\n"
        "                  schedule cache and receives improved\n"
        "                  schedules on flush/shutdown\n"
        "  --serve-log F   JSONL serve log (one line per request,\n"
        "                  plus a final metrics snapshot; aggregate\n"
        "                  with felix-trace-summary)\n"
        "  --checkpoint F  tuner-state checkpoint file: restored at\n"
        "                  startup so a restarted daemon resumes its\n"
        "                  background tuning, rewritten crash-safely\n"
        "                  on flush/shutdown/SIGTERM\n"
        "  --shard-id N    shard identity for fleet telemetry\n"
        "                  (trace spans, flight dumps, serve log)\n"
        "  --shards K      shard count reported beside --shard-id\n"
        "  --rounds-per-idle N  socket mode: background tuning\n"
        "                  rounds per idle period (default 1)\n"
        "  --idle-ms N     socket poll timeout in ms (default 50)\n"
        "  --heavy-k N     heavy-hitter slots      (default 8)\n"
        "  --hit-window N  sliding window (lookups) for the admin\n"
        "                  windowed hit rate       (default 256)\n"
        "  --flight N      flight-recorder ring capacity\n"
        "                  (default 1024)\n"
        "  --log-level L   debug | info | warn | error\n"
        "  --cache-dir DIR pretrained cost-model cache directory\n"
        "                  (default: pretrained)\n");
}

/** Write all of @p text to @p fd, retrying on EINTR/partials. */
bool
writeAll(int fd, const std::string &text)
{
    size_t written = 0;
    while (written < text.size()) {
        ssize_t n = ::write(fd, text.data() + written,
                            text.size() - written);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        written += static_cast<size_t>(n);
    }
    return true;
}

/** One connected client: its fd and partial-line buffer. */
struct Client
{
    int fd = -1;
    std::string buffer;
};

int
runSocket(serve::ServeSession &session, const std::string &path,
          int rounds_per_idle, int idle_ms)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path))
        fatal("socket path too long: " + path);
    ::unlink(path.c_str());
    int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        fatal(std::string("socket: ") + std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("bind " + path + ": " + std::strerror(errno));
    if (::listen(listenFd, 8) != 0)
        fatal("listen " + path + ": " + std::strerror(errno));
    inform("felix-serve: listening on ", path);

    std::vector<Client> clients;
    while (!session.shutdownRequested() && g_stopSignal == 0) {
        std::vector<pollfd> fds;
        fds.push_back({listenFd, POLLIN, 0});
        for (const Client &client : clients)
            fds.push_back({client.fd, POLLIN, 0});
        int rc = ::poll(fds.data(), fds.size(), idle_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            warn("poll: ", std::strerror(errno));
            break;
        }
        if (rc == 0) {
            // Quiet socket: spend the idle time tuning the
            // traffic-weighted hottest subgraphs.
            if (rounds_per_idle > 0)
                session.runRounds(rounds_per_idle);
            continue;
        }
        if (fds[0].revents & POLLIN) {
            int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd >= 0)
                clients.push_back({fd, std::string()});
        }
        for (size_t i = clients.size(); i-- > 0;) {
            if (!(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Client &client = clients[i];
            char chunk[4096];
            ssize_t n = ::read(client.fd, chunk, sizeof(chunk));
            if (n <= 0) {
                ::close(client.fd);
                clients.erase(clients.begin() + i);
                continue;
            }
            client.buffer.append(chunk, static_cast<size_t>(n));
            size_t start = 0, nl;
            bool drop = false;
            while ((nl = client.buffer.find('\n', start)) !=
                   std::string::npos) {
                std::string line =
                    client.buffer.substr(start, nl - start);
                start = nl + 1;
                if (line.empty())
                    continue;
                std::string response = session.handle(line);
                if (!writeAll(client.fd, response + "\n")) {
                    drop = true;
                    break;
                }
                if (session.shutdownRequested())
                    break;
            }
            client.buffer.erase(0, start);
            if (drop) {
                ::close(client.fd);
                clients.erase(clients.begin() + i);
            }
            if (session.shutdownRequested())
                break;
        }
    }
    for (const Client &client : clients)
        ::close(client.fd);
    ::close(listenFd);
    ::unlink(path.c_str());
    session.persist();
    session.writeCheckpoint();
    session.finalizeLogs();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool stdio = false;
    std::string socketPath, strategy = "felix";
    std::string cacheDir = "pretrained";
    serve::ServeOptions options;
    int jobs = 0;
    int roundsPerIdle = 1;
    int idleMs = 50;
    int shardId = -1, shardCount = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                fatal("missing value for " + arg);
            }
            return argv[++i];
        };
        if (arg == "--stdio") stdio = true;
        else if (arg == "--socket") socketPath = next();
        else if (arg == "--device") options.device = next();
        else if (arg == "--strategy") strategy = next();
        else if (arg == "--seed")
            options.tuner.seed =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--jobs") {
            jobs = std::atoi(next().c_str());
            if (jobs < 1)
                fatal("--jobs needs a positive thread count");
        }
        else if (arg == "--records") options.recordsPath = next();
        else if (arg == "--serve-log") options.serveLogPath = next();
        else if (arg == "--checkpoint")
            options.checkpointPath = next();
        else if (arg == "--shard-id")
            shardId = std::atoi(next().c_str());
        else if (arg == "--shards")
            shardCount = std::atoi(next().c_str());
        else if (arg == "--rounds-per-idle")
            roundsPerIdle = std::atoi(next().c_str());
        else if (arg == "--idle-ms")
            idleMs = std::atoi(next().c_str());
        else if (arg == "--heavy-k")
            options.heavyHitterK = static_cast<size_t>(
                std::max(1, std::atoi(next().c_str())));
        else if (arg == "--hit-window")
            options.hitWindow = static_cast<size_t>(
                std::max(1, std::atoi(next().c_str())));
        else if (arg == "--flight")
            obs::FlightRecorder::instance().reset(
                static_cast<size_t>(
                    std::max(1, std::atoi(next().c_str()))));
        else if (arg == "--cache-dir") cacheDir = next();
        else if (arg == "--log-level") {
            std::string name = next();
            auto level = parseLogLevel(name);
            if (!level)
                fatal("bad --log-level '" + name +
                      "' (expected debug|info|warn|error)");
            setLogLevel(*level);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument: " + arg);
        }
    }
    if (stdio == !socketPath.empty()) {
        usage();
        fatal("pick exactly one of --stdio / --socket PATH");
    }
    options.tuner.strategy = (strategy == "ansor")
                                 ? tuner::StrategyKind::AnsorTenSet
                                 : tuner::StrategyKind::FelixGradient;
    options.tuner.numThreads = jobs;
    if (jobs > 0)
        setGlobalJobs(jobs);
    if (shardId >= 0)
        obs::setShardIdentity(shardId, shardCount);

    auto device = Device::cuda(options.device);
    serve::ServeSession session(
        std::move(options), pretrainedCostModel(device, cacheDir));

    installSignalHandlers();
    int rc = stdio ? session.runStdio(std::cin, std::cout)
                   : runSocket(session, socketPath, roundsPerIdle,
                               idleMs);
    if (g_stopSignal != 0) {
        // The loops already ran the persist + log-finalization path
        // on their way out; just note the signal for the record.
        obs::FlightRecorder::instance().record(
            obs::FlightKind::Signal, 0, 0, g_stopSignal);
        inform("felix-serve: caught signal ",
               static_cast<int>(g_stopSignal),
               ", shut down gracefully");
    }

    // Close the serve log with a metrics snapshot so
    // felix-trace-summary sees the full registry (serve.* included).
    const std::string &serveLog = session.serveLogPath();
    if (!serveLog.empty() &&
        !obs::appendMetricsSnapshot(
            serveLog, obs::MetricsRegistry::instance().snapshot()))
        return 1;
    return rc;
}
