#!/bin/sh
# One-command bench-regression gate (EXPERIMENTS.md "Bench gate"):
#
#   tools/bench_gate.sh [build-dir]
#
# Configures an opt-in gate build (-DFELIX_BENCH_GATE=ON, Release),
# builds the bench binaries and felix-bench-diff, and runs the
# "bench-gate" ctest label: each bench suite executes with
# --json-out and is diffed against the committed BENCH_*.json
# baselines with felix-bench-diff --threshold 0.5 --strict-new.
# Strict-new means a newly added benchmark series fails the gate
# until the baseline is re-committed from a fresh run, so the
# committed baselines always enumerate every series.
#
# Exit status is ctest's: 0 when every suite is within threshold and
# fully enumerated by its baseline.
set -eu

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$src_dir/build-bench-gate"}

cmake -B "$build_dir" -S "$src_dir" \
    -DCMAKE_BUILD_TYPE=Release -DFELIX_BENCH_GATE=ON
cmake --build "$build_dir" -j \
    --target bench_tape bench_serve felix-bench-diff
cd "$build_dir"
exec ctest -L bench-gate --output-on-failure
