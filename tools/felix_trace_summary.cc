/**
 * @file
 * felix-trace-summary: aggregate a Chrome trace (--trace-out) and/or
 * a per-round telemetry JSONL file (--metrics-out) from felix-tune,
 * or a serve log (felix-serve --serve-log) into a human-readable
 * breakdown.
 *
 *   felix-trace-summary trace.json [metrics.jsonl]
 *   felix-trace-summary --serve serve.jsonl
 *
 * Prints, from the trace: total time per span name (count / total /
 * mean / share of wall time). From the round records: rounds per
 * strategy, seeds launched, constraint-violation rate after
 * rounding, cost-model prediction error against the measurements,
 * and the fine-tune loss trajectory; from a serve log: requests per
 * op (count / response bytes / wall time), the cache hit rate, and
 * background rounds run; from the final metrics snapshot: every
 * counter and gauge.
 *
 * Exits non-zero when a file fails to parse — the ctest smoke tests
 * use this as the telemetry-format validator.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "shard/manifest.h"
#include "shard/shard.h"
#include "support/logging.h"

using namespace felix;

namespace {

struct SpanAgg
{
    int64_t count = 0;
    int64_t totalUs = 0;
};

/** Read a whole file; false when it cannot be opened. */
bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path);
    if (!is.good())
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

int
summarizeTrace(const std::string &path,
               const std::string &req_filter)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 1;
    }
    std::string error;
    auto doc = obs::parseJson(text, &error);
    if (!doc || !doc->isObject()) {
        std::fprintf(stderr, "%s: malformed JSON (%s)\n",
                     path.c_str(), error.c_str());
        return 1;
    }
    const obs::JsonValue *events = doc->find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr, "%s: missing traceEvents array\n",
                     path.c_str());
        return 1;
    }

    std::map<std::string, SpanAgg> byName;
    int64_t minTs = -1, maxEnd = 0;
    for (const obs::JsonValue &event : events->asArray()) {
        if (!event.isObject())
            continue;
        if (event.stringOr("ph", "") != "X")
            continue;
        if (!req_filter.empty()) {
            // Keep only spans recorded while the given request was
            // live ("args":{"req":"N"}, docs/observability.md).
            const obs::JsonValue *args = event.find("args");
            const obs::JsonValue *req =
                args ? args->find("req") : nullptr;
            if (!req || !req->isString() ||
                req->asString() != req_filter)
                continue;
        }
        std::string name = event.stringOr("name", "?");
        int64_t ts =
            static_cast<int64_t>(event.numberOr("ts", 0.0));
        int64_t dur =
            static_cast<int64_t>(event.numberOr("dur", 0.0));
        SpanAgg &agg = byName[name];
        ++agg.count;
        agg.totalUs += dur;
        if (minTs < 0 || ts < minTs)
            minTs = ts;
        maxEnd = std::max(maxEnd, ts + dur);
    }
    const double wallMs =
        minTs < 0 ? 0.0
                  : static_cast<double>(maxEnd - minTs) / 1000.0;

    std::printf("== trace: %s ==\n", path.c_str());
    if (!req_filter.empty())
        std::printf("(spans of request %s only)\n",
                    req_filter.c_str());
    std::printf("%zu span names, wall %.1f ms\n\n", byName.size(),
                wallMs);
    std::printf("  %-28s %8s %12s %10s %7s\n", "span", "count",
                "total ms", "mean ms", "wall%");
    std::vector<std::pair<std::string, SpanAgg>> rows(byName.begin(),
                                                      byName.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.totalUs > b.second.totalUs;
              });
    for (const auto &[name, agg] : rows) {
        double totalMs = static_cast<double>(agg.totalUs) / 1000.0;
        std::printf("  %-28s %8lld %12.2f %10.3f %6.1f%%\n",
                    name.c_str(),
                    static_cast<long long>(agg.count), totalMs,
                    totalMs / static_cast<double>(agg.count),
                    wallMs > 0.0 ? 100.0 * totalMs / wallMs : 0.0);
    }
    std::printf("\n(nested spans overlap their parents, so "
                "percentages do not sum to 100)\n\n");
    return 0;
}

int
summarizeRounds(const std::string &path)
{
    std::ifstream is(path);
    if (!is.good()) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 1;
    }

    struct StrategyAgg
    {
        int rounds = 0;
        int64_t seeds = 0;
        int64_t attempts = 0;
        int64_t invalid = 0;
        int64_t candidates = 0;
        double wallMs = 0.0;
        double absLogErrorSum = 0.0;   ///< |log(pred / measured)|
        int64_t errorCount = 0;
        double firstLoss = -1.0, lastLoss = -1.0;
    };
    /** Per-op aggregate of serve-log request lines. */
    struct ServeAgg
    {
        int64_t count = 0;
        int64_t bytes = 0;
        double wallUs = 0.0;
    };
    std::map<std::string, ServeAgg> byOp;
    int64_t hitsTotal = 0, missesTotal = 0, roundsTotal = 0;
    int64_t tasksTotal = 0;
    double windowHitRate = -1.0;   ///< last window_hit_rate seen
    obs::JsonValue taskSummary;    ///< the {"type":"tasks"} line
    bool haveTaskSummary = false;

    std::map<std::string, StrategyAgg> byStrategy;
    obs::JsonValue snapshotValue;
    bool haveSnapshot = false;

    std::printf("== records: %s ==\n", path.c_str());
    std::string line;
    int lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::string error;
        auto record = obs::parseJson(line, &error);
        if (!record || !record->isObject()) {
            std::fprintf(stderr, "%s:%d: malformed JSONL (%s)\n",
                         path.c_str(), lineNo, error.c_str());
            return 1;
        }
        std::string type = record->stringOr("type", "");
        if (type == "metrics") {
            if (const obs::JsonValue *reg = record->find("registry")) {
                snapshotValue = *reg;
                haveSnapshot = true;
            }
            continue;
        }
        if (type == "serve") {
            // One line per daemon request (docs/serving.md); the
            // *_total fields are running counters, so the last line
            // seen carries the session totals.
            ServeAgg &agg = byOp[record->stringOr("op", "?")];
            ++agg.count;
            agg.bytes += static_cast<int64_t>(
                record->numberOr("response_bytes", 0.0));
            agg.wallUs += record->numberOr("wall_us", 0.0);
            hitsTotal = static_cast<int64_t>(
                record->numberOr("hits_total", 0.0));
            missesTotal = static_cast<int64_t>(
                record->numberOr("misses_total", 0.0));
            roundsTotal = static_cast<int64_t>(
                record->numberOr("rounds_total", 0.0));
            tasksTotal = static_cast<int64_t>(
                record->numberOr("tasks", 0.0));
            windowHitRate =
                record->numberOr("window_hit_rate", windowHitRate);
            continue;
        }
        if (type == "tasks") {
            // End-of-session per-task tuning-progress summary
            // (ServeSession::finalizeLogs).
            taskSummary = *record;
            haveTaskSummary = true;
            continue;
        }
        if (type != "round")
            continue;
        StrategyAgg &agg =
            byStrategy[record->stringOr("strategy", "?")];
        ++agg.rounds;
        agg.seeds += static_cast<int64_t>(
            record->numberOr("seeds", 0.0));
        agg.attempts += static_cast<int64_t>(
            record->numberOr("rounding_attempts", 0.0));
        agg.invalid += static_cast<int64_t>(
            record->numberOr("rounding_invalid", 0.0));
        agg.wallMs += record->numberOr("wall_ms", 0.0);
        double loss = record->numberOr("finetune_loss", -1.0);
        if (loss >= 0.0) {
            if (agg.firstLoss < 0.0)
                agg.firstLoss = loss;
            agg.lastLoss = loss;
        }
        if (const obs::JsonValue *cands =
                record->find("candidates")) {
            if (cands->isArray()) {
                for (const obs::JsonValue &c : cands->asArray()) {
                    ++agg.candidates;
                    double pred = c.numberOr("predicted_sec", 0.0);
                    double meas = c.numberOr("measured_sec", 0.0);
                    if (pred > 0.0 && meas > 0.0) {
                        agg.absLogErrorSum +=
                            std::fabs(std::log(pred / meas));
                        ++agg.errorCount;
                    }
                }
            }
        }
    }

    for (const auto &[strategy, agg] : byStrategy) {
        std::printf("\n%s: %d rounds, %.1f ms real search+measure\n",
                    strategy.c_str(), agg.rounds, agg.wallMs);
        std::printf("  seeds launched      : %lld (%.1f/round)\n",
                    static_cast<long long>(agg.seeds),
                    agg.rounds ? static_cast<double>(agg.seeds) /
                                     agg.rounds
                               : 0.0);
        std::printf("  rounding violations : %lld / %lld (%.1f%%)\n",
                    static_cast<long long>(agg.invalid),
                    static_cast<long long>(agg.attempts),
                    agg.attempts ? 100.0 *
                                       static_cast<double>(
                                           agg.invalid) /
                                       static_cast<double>(
                                           agg.attempts)
                                 : 0.0);
        std::printf("  measured candidates : %lld\n",
                    static_cast<long long>(agg.candidates));
        if (agg.errorCount > 0) {
            // exp(mean |log ratio|) reads as "x-fold off on average".
            std::printf("  pred-vs-measured    : %.2fx mean "
                        "latency-ratio error\n",
                        std::exp(agg.absLogErrorSum /
                                 static_cast<double>(
                                     agg.errorCount)));
        }
        if (agg.lastLoss >= 0.0) {
            std::printf("  finetune loss       : %.4f -> %.4f\n",
                        agg.firstLoss, agg.lastLoss);
        }
    }

    if (!byOp.empty()) {
        std::printf("\n  %-10s %8s %12s %12s\n", "op", "count",
                    "resp bytes", "mean ms");
        for (const auto &[op, agg] : byOp) {
            std::printf("  %-10s %8lld %12lld %12.3f\n", op.c_str(),
                        static_cast<long long>(agg.count),
                        static_cast<long long>(agg.bytes),
                        agg.wallUs / 1000.0 /
                            static_cast<double>(agg.count));
        }
        const int64_t answered = hitsTotal + missesTotal;
        std::printf("\n  cache               : %lld hits / %lld "
                    "misses (%.1f%% hit rate)\n",
                    static_cast<long long>(hitsTotal),
                    static_cast<long long>(missesTotal),
                    answered ? 100.0 *
                                   static_cast<double>(hitsTotal) /
                                   static_cast<double>(answered)
                             : 0.0);
        if (windowHitRate >= 0.0) {
            std::printf("  windowed hit rate   : %.1f%% (sliding "
                        "window, last request)\n",
                        100.0 * windowHitRate);
        }
        std::printf("  background rounds   : %lld across %lld "
                    "registered tasks\n",
                    static_cast<long long>(roundsTotal),
                    static_cast<long long>(tasksTotal));
    }

    if (haveTaskSummary) {
        const obs::JsonValue *list = taskSummary.find("tasks");
        if (list && list->isArray() && !list->asArray().empty()) {
            std::printf("\n  per-task tuning progress:\n");
            std::printf("  %-28s %6s %8s %12s %8s %6s\n", "task",
                        "rounds", "stagnant", "best us",
                        "traffic", "hits");
            for (const obs::JsonValue &task : list->asArray()) {
                std::printf(
                    "  %-28.28s %6.0f %8.0f %12.1f %7.1f%% %6.0f\n",
                    task.stringOr("label", "?").c_str(),
                    task.numberOr("rounds", 0.0),
                    task.numberOr("stagnant", 0.0),
                    task.numberOr("best_latency_sec", 0.0) * 1e6,
                    100.0 * task.numberOr("traffic_share", 0.0),
                    task.numberOr("cache_hits", 0.0));
            }
        }
    }

    if (haveSnapshot) {
        std::printf("\nfinal metrics snapshot:\n");
        if (const obs::JsonValue *counters =
                snapshotValue.find("counters")) {
            for (const auto &[name, value] : counters->asObject()) {
                if (value.isNumber()) {
                    std::printf("  counter %-26s %.3f\n",
                                name.c_str(), value.asNumber());
                }
            }
        }
        if (const obs::JsonValue *gauges =
                snapshotValue.find("gauges")) {
            for (const auto &[name, value] : gauges->asObject()) {
                if (value.isNumber()) {
                    std::printf("  gauge   %-26s %.3f\n",
                                name.c_str(), value.asNumber());
                }
            }
        }
        if (const obs::JsonValue *histograms =
                snapshotValue.find("histograms")) {
            for (const auto &[name, value] :
                 histograms->asObject()) {
                double count = value.numberOr("count", 0.0);
                double sum = value.numberOr("sum", 0.0);
                std::printf("  histo   %-26s n=%.0f mean=%.3f\n",
                            name.c_str(), count,
                            count > 0.0 ? sum / count : 0.0);
            }
        }
    }
    return 0;
}

/**
 * --shards DIR: per-shard progress from the manifests a sharded
 * felix-tune run leaves behind (docs/distributed.md). Exits
 * non-zero when a shard's manifest is missing or malformed, so it
 * doubles as the shard-directory validator in scripts.
 */
int
summarizeShards(const std::string &dir)
{
    auto first = shard::loadManifest(shard::shardManifestPath(dir, 0));
    if (!first) {
        std::fprintf(stderr, "cannot load %s\n",
                     shard::shardManifestPath(dir, 0).c_str());
        return 1;
    }
    const int shards = first->shards;
    std::printf("== shards: %s ==\n", dir.c_str());
    std::printf("seed %llu, %d shards, %d rounds/task, %zu tasks, "
                "strategy %s, device %s\n\n",
                static_cast<unsigned long long>(first->seed), shards,
                first->roundsPerTask, first->tasks.size(),
                first->strategy.c_str(), first->device.c_str());

    std::printf("  %-6s %6s %8s %8s %6s %8s\n", "SHARD", "TASKS",
                "ROUNDS", "RECORDS", "DONE", "LAST_G");
    int rc = 0;
    std::vector<shard::ShardManifest> manifests;
    for (int i = 0; i < shards; ++i) {
        auto manifest =
            i == 0 ? std::move(first)
                   : shard::loadManifest(
                         shard::shardManifestPath(dir, i));
        if (!manifest) {
            std::printf("  %-6d (manifest missing or malformed)\n",
                        i);
            rc = 1;
            continue;
        }
        int owned = 0;
        for (const shard::ManifestTask &task : manifest->tasks) {
            if (shard::shardOf(task.hash, shards) == i)
                ++owned;
        }
        long records = 0;
        for (const shard::ManifestRound &round : manifest->rounds)
            records += round.recordsLines;
        std::printf("  %-6d %6d %8zu %8ld %6s %8ld\n", i, owned,
                    manifest->rounds.size(), records,
                    manifest->done ? "yes" : "NO",
                    manifest->lastG);
        manifests.push_back(std::move(*manifest));
    }

    std::printf("\n  %-28s %6s %12s\n", "TASK", "SHARD", "BEST_US");
    for (const shard::ManifestTask &task : manifests.front().tasks) {
        const int owner = shard::shardOf(task.hash, shards);
        double bestUs = -1.0;
        for (const shard::ShardManifest &manifest : manifests) {
            if (manifest.shardId != owner)
                continue;
            for (const shard::ManifestBest &best : manifest.bests) {
                if (best.index == task.index)
                    bestUs = best.latencySec * 1e6;
            }
        }
        if (bestUs >= 0.0)
            std::printf("  %-28.28s %6d %12.1f\n",
                        task.label.c_str(), owner, bestUs);
        else
            std::printf("  %-28.28s %6d %12s\n", task.label.c_str(),
                        owner, "(pending)");
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    auto usage = [](FILE *to) {
        std::fprintf(
            to,
            "usage: felix-trace-summary [--req N] TRACE.json "
            "[METRICS.jsonl]\n"
            "       felix-trace-summary --serve SERVE.jsonl\n"
            "       felix-trace-summary --shards DIR\n"
            "  TRACE.json    from felix-tune --trace-out\n"
            "  METRICS.jsonl from felix-tune --metrics-out\n"
            "  SERVE.jsonl   from felix-serve --serve-log\n"
            "  DIR           shard directory from felix-tune "
            "--shards\n"
            "  --req N       only spans recorded while request N\n"
            "                was live (felix-serve correlation "
            "ids)\n");
    };
    std::string servePath, shardsDir, reqFilter;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(stderr);
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--serve") servePath = next();
        else if (arg == "--shards") shardsDir = next();
        else if (arg == "--req") reqFilter = next();
        else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            positional.push_back(arg);
        }
    }
    if (!shardsDir.empty()) {
        if (!positional.empty() || !reqFilter.empty() ||
            !servePath.empty()) {
            usage(stderr);
            return 1;
        }
        return summarizeShards(shardsDir);
    }
    if (!servePath.empty()) {
        if (!positional.empty() || !reqFilter.empty()) {
            usage(stderr);
            return 1;
        }
        return summarizeRounds(servePath);
    }
    if (positional.empty() || positional.size() > 2) {
        usage(stderr);
        return 1;
    }
    int rc = summarizeTrace(positional[0], reqFilter);
    if (rc != 0)
        return rc;
    if (positional.size() == 2)
        return summarizeRounds(positional[1]);
    return 0;
}
