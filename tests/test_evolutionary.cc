/**
 * @file
 * Unit tests of the evolutionary baseline's genetic operators:
 * mutation preserves divisibility, crossover mixes whole split
 * groups, selection favours fitter individuals, and the search
 * respects its population/measurement budgets.
 */
#include <gtest/gtest.h>

#include <set>

#include "costmodel/dataset.h"
#include "evolutionary/evolutionary.h"
#include "sketch/sampling.h"
#include "tir/ops.h"

namespace felix {
namespace evolutionary {
namespace {

const costmodel::CostModel &
testModel()
{
    static const costmodel::CostModel model = [] {
        costmodel::DatasetOptions options;
        options.numSubgraphs = 6;
        options.schedulesPerSketch = 24;
        options.seed = 19;
        auto samples = costmodel::synthesizeDataset(
            sim::deviceConfig(sim::DeviceKind::A5000), options);
        costmodel::MlpConfig config;
        config.layerSizes = {82, 32, 1};
        costmodel::CostModel model(config, 19);
        model.fit(samples, 4, 128, 1.5e-3);
        return model;
    }();
    return model;
}

TEST(Evolutionary, RoundRespectsBudgets)
{
    auto subgraph = tir::dense(256, 256, 256, true);
    EvoSearchOptions options;
    options.population = 64;
    options.generations = 3;
    options.nMeasure = 10;
    EvolutionarySearch search(subgraph, options);
    Rng rng(3);
    auto result = search.round(testModel(), rng);
    EXPECT_LE(result.toMeasure.size(), 10u);
    // population x generations predictions.
    EXPECT_EQ(result.trace.numPredictions, 64 * 3);
}

TEST(Evolutionary, AllProposedCandidatesValid)
{
    auto subgraph = tir::dense(192, 384, 96, true);
    EvoSearchOptions options;
    options.population = 96;
    options.generations = 3;
    options.nMeasure = 24;
    EvolutionarySearch search(subgraph, options);
    Rng rng(5);
    for (int round = 0; round < 3; ++round) {
        auto result = search.round(testModel(), rng);
        for (const auto &candidate : result.toMeasure) {
            EXPECT_TRUE(sketch::isValidAssignment(
                search.sketches()[candidate.sketchIndex],
                candidate.x));
        }
    }
}

TEST(Evolutionary, LaterGenerationsScoreHigher)
{
    auto subgraph = tir::dense(512, 512, 512, false);
    EvoSearchOptions options;
    options.population = 128;
    options.generations = 4;
    EvolutionarySearch search(subgraph, options);
    Rng rng(7);
    auto result = search.round(testModel(), rng);
    const auto &scores = result.trace.visitedScores;
    ASSERT_EQ(scores.size(), 128u * 4u);
    double firstGen = 0.0, lastGen = 0.0;
    for (int i = 0; i < 128; ++i) {
        firstGen += scores[i];
        lastGen += scores[scores.size() - 128 + i];
    }
    EXPECT_GT(lastGen, firstGen);
}

TEST(Evolutionary, MeasurementSetCoversAllSketches)
{
    // The stratified floor guarantees every schedule family gets
    // corrective measurements (cost-model feedback loop).
    auto subgraph = tir::dense(512, 512, 512, true);
    EvoSearchOptions options;
    options.population = 128;
    options.generations = 3;
    options.nMeasure = 16;
    EvolutionarySearch search(subgraph, options);
    Rng rng(9);
    auto result = search.round(testModel(), rng);
    std::set<int> sketchesSeen;
    for (const auto &candidate : result.toMeasure)
        sketchesSeen.insert(candidate.sketchIndex);
    EXPECT_EQ(sketchesSeen.size(), search.sketches().size());
}

TEST(Evolutionary, DeterministicGivenSeed)
{
    auto subgraph = tir::dense(128, 256, 128, false);
    EvoSearchOptions options;
    options.population = 48;
    options.generations = 2;
    EvolutionarySearch searchA(subgraph, options);
    EvolutionarySearch searchB(subgraph, options);
    Rng rngA(31), rngB(31);
    auto a = searchA.round(testModel(), rngA);
    auto b = searchB.round(testModel(), rngB);
    ASSERT_EQ(a.toMeasure.size(), b.toMeasure.size());
    for (size_t i = 0; i < a.toMeasure.size(); ++i) {
        EXPECT_EQ(a.toMeasure[i].sketchIndex,
                  b.toMeasure[i].sketchIndex);
        EXPECT_EQ(a.toMeasure[i].x, b.toMeasure[i].x);
    }
}

} // namespace
} // namespace evolutionary
} // namespace felix
