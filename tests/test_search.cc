/**
 * @file
 * Integration tests of the two search strategies (Felix gradient
 * descent, Ansor evolutionary) against the simulated device and a
 * cost model trained on a small synthetic dataset: valid candidates,
 * improvement over random schedules, and Fig-8-style convergence
 * behaviour (gradient search concentrates its population on high
 * predicted performance faster).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "costmodel/dataset.h"
#include "evolutionary/evolutionary.h"
#include "features/features.h"
#include "optim/adam.h"
#include "optim/search.h"
#include "sim/gpu_model.h"
#include "sketch/sampling.h"
#include "tir/ops.h"

namespace felix {
namespace optim {
namespace {

/** Small dataset-trained model, shared across tests (slow to fit). */
const costmodel::CostModel &
testModel()
{
    static const costmodel::CostModel model = [] {
        costmodel::DatasetOptions options;
        options.numSubgraphs = 10;
        options.schedulesPerSketch = 48;
        options.seed = 7;
        auto samples = costmodel::synthesizeDataset(
            sim::deviceConfig(sim::DeviceKind::A5000), options);
        costmodel::MlpConfig config;
        config.layerSizes = {82, 64, 64, 1};
        costmodel::CostModel model(config, 7);
        model.fit(samples, /*epochs=*/8, /*batch=*/128, /*lr=*/1.5e-3);
        return model;
    }();
    return model;
}

TEST(AdamTest, MinimizesQuadratic)
{
    AdamConfig config;
    config.lr = 0.1;
    Adam adam(2, config);
    std::vector<double> x = {5.0, -3.0};
    for (int i = 0; i < 500; ++i) {
        std::vector<double> grad = {2.0 * (x[0] - 1.0),
                                    2.0 * (x[1] - 2.0)};
        adam.step(x, grad);
    }
    EXPECT_NEAR(x[0], 1.0, 0.05);
    EXPECT_NEAR(x[1], 2.0, 0.05);
}

TEST(GradientSearchTest, CandidatesAreValidAndRanked)
{
    auto subgraph = tir::dense(256, 256, 256, true);
    GradSearchOptions options;
    options.nSeeds = 4;
    options.nSteps = 60;
    options.nMeasure = 8;
    GradientSearch search(subgraph, options);
    Rng rng(13);
    auto result = search.round(testModel(), rng);

    ASSERT_GT(result.toMeasure.size(), 0u);
    EXPECT_LE(result.toMeasure.size(), 8u);
    // Selection is stratified per sketch (a measurement floor per
    // schedule family), so ordering is monotone within each sketch.
    for (size_t i = 0; i < result.toMeasure.size(); ++i) {
        for (size_t j = i + 1; j < result.toMeasure.size(); ++j) {
            if (result.toMeasure[i].sketchIndex ==
                result.toMeasure[j].sketchIndex) {
                EXPECT_GE(result.toMeasure[i].predictedScore,
                          result.toMeasure[j].predictedScore);
            }
        }
    }
    for (const Candidate &candidate : result.toMeasure) {
        EXPECT_TRUE(sketch::isValidAssignment(
            search.sketches()[candidate.sketchIndex], candidate.x));
        EXPECT_EQ(candidate.rawFeatures.size(), 82u);
    }
}

TEST(GradientSearchTest, TraceCountsPredictions)
{
    auto subgraph = tir::dense(256, 256, 256, false);
    GradSearchOptions options;
    options.nSeeds = 4;
    options.nSteps = 50;
    GradientSearch search(subgraph, options);
    Rng rng(17);
    auto result = search.round(testModel(), rng);
    // nSeeds * nSteps objective evaluations plus candidate ranking.
    EXPECT_GE(result.trace.numPredictions, 200);
    EXPECT_GE(result.trace.visitedScores.size(), 200u);
}

TEST(GradientSearchTest, BeatsRandomSampling)
{
    auto subgraph = tir::dense(512, 512, 512, false);
    const auto &device = sim::deviceConfig(sim::DeviceKind::A5000);

    GradSearchOptions options;
    options.nSeeds = 8;
    options.nSteps = 100;
    options.nMeasure = 8;
    GradientSearch search(subgraph, options);
    Rng rng(29);
    auto result = search.round(testModel(), rng);
    ASSERT_FALSE(result.toMeasure.empty());

    double bestSearched = 1e9;
    for (const Candidate &candidate : result.toMeasure) {
        bestSearched = std::min(
            bestSearched,
            sim::kernelLatency(candidate.rawFeatures, device));
    }

    // Average of an equal number of random valid schedules.
    Rng randomRng(31);
    double randomSum = 0.0;
    int randomCount = 0;
    for (const auto &sched : search.sketches()) {
        std::vector<std::string> names;
        for (const auto &domain : sched.vars)
            names.push_back(domain.name);
        for (int i = 0; i < 4; ++i) {
            auto x = sketch::sampleValid(sched, randomRng);
            auto f = features::concreteFeatures(sched.program, names,
                                                x);
            randomSum += sim::kernelLatency(f, device);
            ++randomCount;
        }
    }
    double randomMean = randomSum / randomCount;
    EXPECT_LT(bestSearched, randomMean * 0.5)
        << "best " << bestSearched << " vs random mean "
        << randomMean;
}

TEST(GradientSearchTest, ConvergesTowardHigherPredictedScores)
{
    auto subgraph = tir::dense(256, 256, 256, false);
    GradSearchOptions options;
    options.nSeeds = 4;
    options.nSteps = 120;
    GradientSearch search(subgraph, options);
    Rng rng(37);
    auto result = search.round(testModel(), rng);
    const auto &scores = result.trace.visitedScores;
    ASSERT_GE(scores.size(),
              static_cast<size_t>(options.nSeeds * options.nSteps));
    // Descent must improve over its own starting points: averaged
    // over seeds, the best score seen on a trajectory clearly
    // exceeds the score at its random initialization.
    double meanGain = 0.0;
    for (int s = 0; s < options.nSeeds; ++s) {
        double first = scores[static_cast<size_t>(s) * options.nSteps];
        double best = first;
        for (int t = 0; t < options.nSteps; ++t) {
            best = std::max(
                best,
                scores[static_cast<size_t>(s) * options.nSteps + t]);
        }
        meanGain += best - first;
    }
    meanGain /= options.nSeeds;
    EXPECT_GT(meanGain, 0.05);
}

TEST(EvolutionaryTest, CandidatesAreValidAndImprove)
{
    auto subgraph = tir::dense(256, 256, 256, true);
    evolutionary::EvoSearchOptions options;
    options.population = 128;
    options.generations = 4;
    options.nMeasure = 16;
    evolutionary::EvolutionarySearch search(subgraph, options);
    Rng rng(41);
    auto result = search.round(testModel(), rng);
    ASSERT_GT(result.toMeasure.size(), 0u);
    for (const Candidate &candidate : result.toMeasure) {
        EXPECT_TRUE(sketch::isValidAssignment(
            search.sketches()[candidate.sketchIndex], candidate.x));
    }
    // The best of the evolved population beats the average initial.
    const auto &scores = result.trace.visitedScores;
    ASSERT_GE(scores.size(), 256u);
    double initMean = 0.0;
    for (int i = 0; i < options.population; ++i)
        initMean += scores[i];
    initMean /= options.population;
    EXPECT_GT(result.toMeasure[0].predictedScore, initMean);
}

TEST(EvolutionaryTest, ElitesCarryAcrossRounds)
{
    auto subgraph = tir::dense(256, 256, 256, false);
    evolutionary::EvoSearchOptions options;
    options.population = 64;
    options.generations = 2;
    options.nMeasure = 8;
    evolutionary::EvolutionarySearch search(subgraph, options);
    Rng rng(43);
    auto round1 = search.round(testModel(), rng);
    auto round2 = search.round(testModel(), rng);
    // Second round should not regress: best predicted score is at
    // least as good as the first round's.
    EXPECT_GE(round2.toMeasure[0].predictedScore,
              round1.toMeasure[0].predictedScore - 0.3);
}

TEST(Fig8Property, GradientPopulationConcentratesFaster)
{
    // The qualitative claim behind Fig. 8: after an equal number of
    // schedules searched, the *spread* between the best and the
    // 64th-best predicted score is much smaller for Felix than for
    // the evolutionary baseline. The spread of one run is a noisy
    // statistic, so the claim is checked across several seeds and
    // must hold in the majority.
    auto subgraph = tir::dense(512, 512, 512, false);

    auto spread = [](std::vector<double> scores) {
        // Distinct schedules only: the evolutionary population
        // carries many copies of its elites. k is the paper's
        // 64-of-8192 rank scaled to this search size (512).
        std::sort(scores.begin(), scores.end(), std::greater<>());
        scores.erase(std::unique(scores.begin(), scores.end()),
                     scores.end());
        size_t k = std::min<size_t>(8, scores.size() - 1);
        return scores[0] - scores[k];
    };
    // Compare the converged tails (last quarter) of both searches.
    auto tail = [](const std::vector<double> &scores) {
        return std::vector<double>(
            scores.begin() + 3 * scores.size() / 4, scores.end());
    };

    int gradWins = 0;
    const std::vector<uint64_t> seeds = {53, 54, 55, 56, 57};
    for (uint64_t seed : seeds) {
        Rng rngA(seed), rngB(seed);

        GradSearchOptions gradOptions;
        gradOptions.nSeeds = 8;
        gradOptions.nSteps = 64;   // 512 schedules searched
        GradientSearch grad(subgraph, gradOptions);
        auto gradResult = grad.round(testModel(), rngA);

        evolutionary::EvoSearchOptions evoOptions;
        evoOptions.population = 128;
        evoOptions.generations = 4;   // 512 schedules searched
        evolutionary::EvolutionarySearch evo(subgraph, evoOptions);
        auto evoResult = evo.round(testModel(), rngB);

        double gradSpread =
            spread(tail(gradResult.trace.visitedScores));
        double evoSpread = spread(tail(evoResult.trace.visitedScores));
        gradWins += (gradSpread < evoSpread);
    }
    EXPECT_GE(gradWins * 2, static_cast<int>(seeds.size()) + 1)
        << "gradient search concentrated faster in only " << gradWins
        << " of " << seeds.size() << " seeds";
}

} // namespace
} // namespace optim
} // namespace felix
