# felix-bench-diff self-test (ctest, default-on): validate the
# regression gate's verdict logic on synthetic inputs and its format
# compatibility with the committed BENCH_*.json baselines — without
# running any benchmark (the real gate is the opt-in bench-gate
# label, docs/serving.md).
#
#   1. A baseline compared against itself exits 0.
#   2. An injected 10x real_time_ns regression exits 1 (REGRESSED).
#   3. A throughput (higher-is-better) collapse exits 1.
#   4. A benchmark missing from the current run exits 1 (MISSING).
#   5. A speed-up, however large, exits 0 (the gate is one-sided).
#   6. Malformed input exits 2.
#   7. The committed BENCH_tape.json / BENCH_serve.json self-compare
#      clean, so a fresh --json-out run diffs against them.
#
# Invoked as
#   cmake -DBENCH_DIFF=... -DWORK_DIR=... -DSOURCE_DIR=...
#         -P bench_diff_check.cmake

foreach(var BENCH_DIFF WORK_DIR SOURCE_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "bench_diff_check: missing -D${var}")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_diff expect_rc label baseline current)
    execute_process(
        COMMAND "${BENCH_DIFF}"
            --baseline "${baseline}" --current "${current}" ${ARGN}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL ${expect_rc})
        message(FATAL_ERROR
            "felix-bench-diff ${label}: expected exit ${expect_rc}, "
            "got ${rc}\nstdout:\n${out}\nstderr:\n${err}")
    endif()
    set(diff_out "${out}" PARENT_SCOPE)
endfunction()

set(base "${WORK_DIR}/base.json")
file(WRITE "${base}"
"{\"bench\":\"synthetic\",\"results\":[
{\"name\":\"tape_forward\",\"real_time_ns\":100.0,\"points_per_sec\":5000.0},
{\"name\":\"serve_replay\",\"real_time_ns\":2500.0,\"requests_per_s\":400.0}
]}
")

# 1. Self-compare is clean.
run_diff(0 "self-compare" "${base}" "${base}")
if(NOT diff_out MATCHES "0 regressions")
    message(FATAL_ERROR
        "self-compare reported regressions:\n${diff_out}")
endif()

# 2. Injected 10x wall-time regression trips the gate.
file(WRITE "${WORK_DIR}/slow.json"
"{\"bench\":\"synthetic\",\"results\":[
{\"name\":\"tape_forward\",\"real_time_ns\":1000.0,\"points_per_sec\":5000.0},
{\"name\":\"serve_replay\",\"real_time_ns\":2500.0,\"requests_per_s\":400.0}
]}
")
run_diff(1 "injected regression" "${base}" "${WORK_DIR}/slow.json")
if(NOT diff_out MATCHES "REGRESSED +tape_forward real_time_ns")
    message(FATAL_ERROR
        "injected slowdown not flagged:\n${diff_out}")
endif()

# 3. A throughput collapse (rate key, higher is better) trips it too.
file(WRITE "${WORK_DIR}/slow_rate.json"
"{\"bench\":\"synthetic\",\"results\":[
{\"name\":\"tape_forward\",\"real_time_ns\":100.0,\"points_per_sec\":1000.0},
{\"name\":\"serve_replay\",\"real_time_ns\":2500.0,\"requests_per_s\":400.0}
]}
")
run_diff(1 "rate regression" "${base}" "${WORK_DIR}/slow_rate.json")
if(NOT diff_out MATCHES "REGRESSED +tape_forward points_per_sec")
    message(FATAL_ERROR
        "throughput collapse not flagged:\n${diff_out}")
endif()

# 4. A benchmark that vanished from the current run is a regression.
file(WRITE "${WORK_DIR}/missing.json"
"{\"bench\":\"synthetic\",\"results\":[
{\"name\":\"tape_forward\",\"real_time_ns\":100.0,\"points_per_sec\":5000.0}
]}
")
run_diff(1 "missing benchmark" "${base}" "${WORK_DIR}/missing.json")
if(NOT diff_out MATCHES "MISSING +serve_replay")
    message(FATAL_ERROR
        "vanished benchmark not flagged:\n${diff_out}")
endif()

# 5. Speed-ups never fail: the gate is one-sided by design, so a
# faster machine only ever tightens future baselines by a re-run.
file(WRITE "${WORK_DIR}/fast.json"
"{\"bench\":\"synthetic\",\"results\":[
{\"name\":\"tape_forward\",\"real_time_ns\":10.0,\"points_per_sec\":50000.0},
{\"name\":\"serve_replay\",\"real_time_ns\":250.0,\"requests_per_s\":4000.0}
]}
")
run_diff(0 "speed-up" "${base}" "${WORK_DIR}/fast.json")

# 5b. A benchmark only the current run has is informational by
# default (NEW, exit 0) and a failure under --strict-new.
file(WRITE "${WORK_DIR}/extra.json"
"{\"bench\":\"synthetic\",\"results\":[
{\"name\":\"tape_forward\",\"real_time_ns\":100.0,\"points_per_sec\":5000.0},
{\"name\":\"serve_replay\",\"real_time_ns\":2500.0,\"requests_per_s\":400.0},
{\"name\":\"brand_new\",\"real_time_ns\":42.0}
]}
")
run_diff(0 "new benchmark" "${base}" "${WORK_DIR}/extra.json")
if(NOT diff_out MATCHES "NEW +brand_new")
    message(FATAL_ERROR
        "baseline-absent benchmark not reported as NEW:\n${diff_out}")
endif()
run_diff(1 "new benchmark, strict" "${base}" "${WORK_DIR}/extra.json"
         --strict-new)
if(NOT diff_out MATCHES "NEW +brand_new")
    message(FATAL_ERROR
        "--strict-new did not report the NEW line:\n${diff_out}")
endif()

# 6. Malformed input is an invocation error, not a pass.
file(WRITE "${WORK_DIR}/broken.json" "{\"results\": [nope]}")
run_diff(2 "malformed input" "${base}" "${WORK_DIR}/broken.json")

# 7. The committed baselines parse and self-compare clean, proving a
# fresh bench --json-out run can be diffed against them.
foreach(committed BENCH_tape.json BENCH_serve.json)
    set(path "${SOURCE_DIR}/${committed}")
    if(NOT EXISTS "${path}")
        message(FATAL_ERROR "committed baseline missing: ${path}")
    endif()
    run_diff(0 "committed ${committed}" "${path}" "${path}")
    if(NOT diff_out MATCHES " metrics compared" OR
       diff_out MATCHES "^0 metrics compared")
        message(FATAL_ERROR
            "committed ${committed} yielded no comparable metrics:"
            "\n${diff_out}")
    endif()
endforeach()

message(STATUS
    "bench-diff check OK: verdict logic and committed-baseline "
    "format both validated")
