/**
 * @file
 * Tests for the expression rewriter: smoothing kernels, smoothing
 * rewrite rules, positivity analysis, log expansion, exponential
 * variable substitution, and penalty lowering.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/gradcheck.h"
#include "expr/compiled.h"
#include "expr/expr.h"
#include "rewrite/smoothing.h"
#include "rewrite/transforms.h"

namespace felix {
namespace rewrite {
namespace {

using expr::Expr;
using expr::evalExpr;

TEST(SmoothStep, MidpointAndLimitsAllKernels)
{
    Expr x = Expr::var("x");
    for (Kernel k : {Kernel::Algebraic, Kernel::Gaussian, Kernel::Bump}) {
        Expr s = smoothStep(x, k);
        EXPECT_NEAR(evalExpr(s, {{"x", 0.0}}), 0.5, 1e-9)
            << kernelName(k);
        EXPECT_GT(evalExpr(s, {{"x", 50.0}}), 0.95) << kernelName(k);
        EXPECT_LT(evalExpr(s, {{"x", -50.0}}), 0.05) << kernelName(k);
    }
}

TEST(SmoothStep, MonotoneIncreasing)
{
    Expr x = Expr::var("x");
    for (Kernel k : {Kernel::Algebraic, Kernel::Gaussian, Kernel::Bump}) {
        Expr s = smoothStep(x, k);
        double prev = -1.0;
        for (double v = -5.0; v <= 5.0; v += 0.25) {
            double cur = evalExpr(s, {{"x", v}});
            EXPECT_GT(cur, prev) << kernelName(k) << " at " << v;
            prev = cur;
        }
    }
}

TEST(SmoothMax0, AsymptoticallyExact)
{
    Expr x = Expr::var("x");
    for (Kernel k : {Kernel::Algebraic, Kernel::Gaussian, Kernel::Bump}) {
        // Far from the kink the approximation converges to max(x,0).
        // The Cauchy (bump) kernel converges only logarithmically —
        // its heavy tails have no finite mean — so it gets a looser
        // tolerance.
        double tol = (k == Kernel::Bump) ? 2.0 : 0.5;
        Expr m = smoothMax0(x, k);
        EXPECT_NEAR(evalExpr(m, {{"x", 40.0}}), 40.0, tol)
            << kernelName(k);
        EXPECT_NEAR(evalExpr(m, {{"x", -40.0}}), 0.0, tol)
            << kernelName(k);
    }
}

TEST(SmoothMax0, AlgebraicClosedFormMatchesPaper)
{
    // M0(x) = (x + sqrt(1+x^2))/2; M0(0) = 1/2.
    Expr x = Expr::var("x");
    Expr m = smoothMax0(x, Kernel::Algebraic);
    EXPECT_NEAR(evalExpr(m, {{"x", 0.0}}), 0.5, 1e-12);
    EXPECT_NEAR(evalExpr(m, {{"x", 3.0}}),
                (3.0 + std::sqrt(10.0)) / 2.0, 1e-12);
}

TEST(SmoothMinMax, BracketTrueValues)
{
    Expr a = Expr::var("a"), b = Expr::var("b");
    Expr sMax = smoothMax(a, b, Kernel::Algebraic);
    Expr sMin = smoothMin(a, b, Kernel::Algebraic);
    // smooth max >= true max; smooth min <= true min.
    double vMax = evalExpr(sMax, {{"a", 2.0}, {"b", 7.0}});
    double vMin = evalExpr(sMin, {{"a", 2.0}, {"b", 7.0}});
    EXPECT_GE(vMax, 7.0);
    EXPECT_LE(vMin, 2.0);
    EXPECT_NEAR(vMax, 7.0, 2.6);
    // Identity: min(a,b) + max(a,b) == a + b holds exactly.
    EXPECT_NEAR(vMax + vMin, 9.0, 1e-9);
}

TEST(SmoothAbs, ApproximatesAbs)
{
    Expr x = Expr::var("x");
    for (Kernel k : {Kernel::Algebraic, Kernel::Gaussian, Kernel::Bump}) {
        double tol = (k == Kernel::Bump) ? 1.0 : 0.5;
        Expr s = smoothAbs(x, k);
        EXPECT_NEAR(evalExpr(s, {{"x", 20.0}}), 20.0, tol)
            << kernelName(k);
        EXPECT_NEAR(evalExpr(s, {{"x", -20.0}}), 20.0, tol)
            << kernelName(k);
        EXPECT_NEAR(evalExpr(s, {{"x", 0.0}}), 0.0, 0.2)
            << kernelName(k);
    }
}

TEST(MakeSmooth, PaperSelectExample)
{
    // The paper's int_add feature: select(TILE0 > 1, 5, 2).
    Expr t = Expr::var("TILE0");
    Expr raw = expr::select(expr::gt(t, Expr::constant(1.0)),
                            Expr::constant(5.0), Expr::constant(2.0));
    Expr smooth = makeSmooth(raw);
    EXPECT_TRUE(isSmooth(smooth));
    // Far from the threshold the smooth version matches the exact one.
    EXPECT_NEAR(evalExpr(smooth, {{"TILE0", 32.0}}), 5.0, 0.1);
    EXPECT_NEAR(evalExpr(smooth, {{"TILE0", -30.0}}), 2.0, 0.1);
    // At the threshold it is between the two branch values.
    double mid = evalExpr(smooth, {{"TILE0", 1.0}});
    EXPECT_GT(mid, 2.0);
    EXPECT_LT(mid, 5.0);
}

TEST(MakeSmooth, ResultHasNoNonDiffOps)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    Expr raw = expr::max(x, y) + expr::min(x * y, Expr::constant(7.0)) +
               expr::abs(x - y) +
               expr::select(expr::le(x, y), x + 1.0, y * 2.0) +
               expr::floor(x / y);
    EXPECT_FALSE(isSmooth(raw));
    Expr smooth = makeSmooth(raw);
    EXPECT_TRUE(isSmooth(smooth));
}

TEST(MakeSmooth, SmoothInputUnchanged)
{
    Expr x = Expr::var("x");
    Expr e = expr::log(x + 1.0) * expr::exp(x);
    EXPECT_TRUE(makeSmooth(e).same(e));
}

TEST(MakeSmooth, GradientsExistEverywhere)
{
    // The smoothed select must have a nonzero gradient near the
    // threshold — that is the whole point of smoothing.
    Expr t = Expr::var("t");
    Expr raw = expr::select(expr::gt(t, Expr::constant(4.0)),
                            Expr::constant(10.0), Expr::constant(1.0));
    Expr smooth = makeSmooth(raw);
    expr::CompiledExprs compiled({smooth});
    std::vector<double> out, grads;
    compiled.forward({4.0}, out);
    compiled.backward({1.0}, grads);
    EXPECT_GT(grads[0], 0.1);

    // The raw select has zero gradient: nothing for GD to follow.
    expr::CompiledExprs rawCompiled({raw});
    rawCompiled.forward({4.0}, out);
    rawCompiled.backward({1.0}, grads);
    EXPECT_DOUBLE_EQ(grads[0], 0.0);
}

TEST(MakeSmooth, BareComparisonBecomesStep)
{
    Expr x = Expr::var("x");
    Expr raw = expr::ge(x, Expr::constant(2.0));
    Expr smooth = makeSmooth(raw);
    EXPECT_TRUE(isSmooth(smooth));
    EXPECT_NEAR(evalExpr(smooth, {{"x", 2.0}}), 0.5, 1e-9);
    EXPECT_GT(evalExpr(smooth, {{"x", 30.0}}), 0.95);
}

TEST(MakeSmooth, EqualityBecomesBump)
{
    Expr x = Expr::var("x");
    Expr raw = expr::select(expr::eq(x, Expr::constant(3.0)),
                            Expr::constant(9.0), Expr::constant(1.0));
    Expr smooth = makeSmooth(raw);
    EXPECT_TRUE(isSmooth(smooth));
    EXPECT_NEAR(evalExpr(smooth, {{"x", 3.0}}), 9.0, 1e-9);
    EXPECT_NEAR(evalExpr(smooth, {{"x", 30.0}}), 1.0, 0.1);
}

TEST(Positivity, BasicRules)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    EXPECT_TRUE(provablyPositive(x));
    EXPECT_TRUE(provablyPositive(x * y));
    EXPECT_TRUE(provablyPositive(x / y));
    EXPECT_TRUE(provablyPositive(x + y));
    EXPECT_TRUE(provablyPositive(Expr::constant(3.0)));
    EXPECT_FALSE(provablyPositive(Expr::constant(-1.0)));
    EXPECT_FALSE(provablyPositive(x - y));
    EXPECT_TRUE(provablyPositive(expr::exp(x - y)));
    EXPECT_TRUE(provablyPositive(expr::min(x, y)));
}

TEST(Positivity, PowSelectAndSqrtRules)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    EXPECT_TRUE(provablyPositive(expr::pow(x, y - x)));
    EXPECT_TRUE(provablyPositive(
        expr::select(expr::gt(x, y), x, y * 2.0)));
    EXPECT_FALSE(provablyPositive(
        expr::select(expr::gt(x, y), x - y, y)));
    EXPECT_TRUE(provablyPositive(expr::sqrt(x * y)));
    EXPECT_TRUE(provablyPositive(expr::sigmoid(x - y)));
}

TEST(Penalty, CompoundConstraintChain)
{
    // Two-sided bound 4 <= T <= 16 as two penalties: both zero only
    // inside the box.
    Expr t = Expr::var("T");
    Expr pLo = penalty(Expr::constant(4.0) - t);
    Expr pHi = penalty(t - 16.0);
    Expr total = pLo + pHi;
    EXPECT_DOUBLE_EQ(evalExpr(total, {{"T", 8.0}}), 0.0);
    EXPECT_GT(evalExpr(total, {{"T", 2.0}}), 0.0);
    EXPECT_GT(evalExpr(total, {{"T", 20.0}}), 0.0);
}

TEST(LogExpand, ProductBecomesSum)
{
    Expr n = Expr::var("N"), m = Expr::var("M"), k = Expr::var("K");
    Expr feature = n * m * k;          // float_add = N*M*K
    Expr logged = logExpand(feature);
    // log(N*M*K) -> log N + log M + log K.
    double v = evalExpr(logged, {{"N", 2.0}, {"M", 4.0}, {"K", 8.0}});
    EXPECT_NEAR(v, std::log(64.0), 1e-12);
    // Structure check: no Log-of-Mul remains at the top.
    EXPECT_EQ(logged->op(), expr::OpCode::Add);
}

TEST(LogExpand, DivisionBecomesDifference)
{
    Expr n = Expr::var("N"), t = Expr::var("T");
    Expr logged = logExpand(n / t);
    double v = evalExpr(logged, {{"N", 32.0}, {"T", 4.0}});
    EXPECT_NEAR(v, std::log(8.0), 1e-12);
    EXPECT_EQ(logged->op(), expr::OpCode::Sub);
}

TEST(LogExpand, NonPositiveStaysUnderLog)
{
    Expr x = Expr::var("x"), y = Expr::var("y");
    Expr logged = logExpand(x - y);   // difference: not provably > 0
    EXPECT_EQ(logged->op(), expr::OpCode::Log);
}

TEST(ExpSubstitute, CollapsesLogOfVar)
{
    Expr n = Expr::var("N"), m = Expr::var("M");
    Expr logged = logExpand(n * m);
    Expr sub = expSubstituteVars(logged, {"N", "M"});
    // log(exp N) + log(exp M) = N + M: now linear in the variables.
    double v = evalExpr(sub, {{"N", 1.5}, {"M", 2.5}});
    EXPECT_NEAR(v, 4.0, 1e-12);
}

TEST(ExpSubstitute, ValuesInterpretedInLogSpace)
{
    Expr t = Expr::var("T");
    Expr sub = expSubstituteVars(t * 3.0, {"T"});
    // T substituted by e^T: at T=ln 4 the value is 12.
    EXPECT_NEAR(evalExpr(sub, {{"T", std::log(4.0)}}), 12.0, 1e-9);
}

TEST(Penalty, ZeroWhenSatisfiedQuadraticWhenViolated)
{
    Expr t = Expr::var("T");
    // Constraint T - 8 <= 0.
    Expr p = penalty(t - 8.0);
    EXPECT_DOUBLE_EQ(evalExpr(p, {{"T", 5.0}}), 0.0);
    EXPECT_DOUBLE_EQ(evalExpr(p, {{"T", 8.0}}), 0.0);
    EXPECT_DOUBLE_EQ(evalExpr(p, {{"T", 11.0}}), 9.0);
}

TEST(Penalty, GradientPushesTowardFeasible)
{
    Expr t = Expr::var("T");
    Expr p = penalty(t - 8.0);
    expr::CompiledExprs compiled({p});
    std::vector<double> out, grads;
    compiled.forward({10.0}, out);
    compiled.backward({1.0}, grads);
    EXPECT_DOUBLE_EQ(grads[0], 4.0);   // 2*max(g,0) = 4 > 0: decrease T
    compiled.forward({5.0}, out);
    compiled.backward({1.0}, grads);
    EXPECT_DOUBLE_EQ(grads[0], 0.0);   // feasible: no push
}

TEST(FeaturePipeline, EndToEndProducesSmoothAdditiveFormula)
{
    // Paper's running example features of program p*_1 (Dense-Add):
    //   float_add   = N*M*K
    //   blockIdx    = N*M/TILE0
    //   int_add     = N*M*K * select(TILE0 > 1, 5, 2)
    Expr n = Expr::intConst(64), m = Expr::intConst(64),
         k = Expr::intConst(64);
    Expr tile = Expr::var("TILE0");
    Expr intAdd = n * m * k *
                  expr::select(expr::gt(tile, Expr::constant(1.0)),
                               Expr::constant(5.0), Expr::constant(2.0));
    Expr out = featurePipeline(intAdd, {"TILE0"});
    EXPECT_TRUE(isSmooth(out));

    // At TILE0 = ln(8) (log space), the raw feature is 64^3 * 5.
    double v = evalExpr(out, {{"TILE0", std::log(8.0)}});
    EXPECT_NEAR(v, std::log(64.0 * 64.0 * 64.0 * 5.0), 0.05);

    // Gradient must be finite and nonzero somewhere near the kink.
    auto check = autodiff::checkGradients(out, {{"TILE0", 0.05}});
    EXPECT_TRUE(check.passed) << check.maxRelError;
}

TEST(FeaturePipeline, LinearGrowthInLogSpace)
{
    // float_add = N*M*K with all three as variables: in log space the
    // pipeline output is exactly N+M+K (linear growth, stable grads).
    Expr f = Expr::var("N") * Expr::var("M") * Expr::var("K");
    Expr out = featurePipeline(f, {"N", "M", "K"});
    double v1 = evalExpr(out, {{"N", 1.0}, {"M", 2.0}, {"K", 3.0}});
    EXPECT_NEAR(v1, 6.0, 1e-9);
    expr::CompiledExprs compiled({out});
    std::vector<double> o, g;
    compiled.forward({10.0, 10.0, 10.0}, o);
    compiled.backward({1.0}, g);
    // All partials are exactly 1: no vanishing gradient even at
    // feature value e^30.
    EXPECT_NEAR(g[0], 1.0, 1e-9);
    EXPECT_NEAR(g[1], 1.0, 1e-9);
    EXPECT_NEAR(g[2], 1.0, 1e-9);
}

/** Kernel sweep: smoothing must be differentiable for every kernel. */
class KernelSweep : public ::testing::TestWithParam<Kernel> {};

TEST_P(KernelSweep, SmoothedSelectHasFiniteGradEverywhere)
{
    Kernel kernel = GetParam();
    Expr t = Expr::var("t");
    Expr raw = expr::select(expr::gt(t, Expr::constant(2.0)),
                            t * 3.0, t + 1.0);
    Expr smooth = makeSmooth(raw, kernel);
    EXPECT_TRUE(isSmooth(smooth));
    expr::CompiledExprs compiled({smooth});
    std::vector<double> out, grads;
    for (double v = -4.0; v <= 8.0; v += 0.5) {
        compiled.forward({v}, out);
        compiled.backward({1.0}, grads);
        EXPECT_TRUE(std::isfinite(grads[0]))
            << kernelName(kernel) << " at " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelSweep,
    ::testing::Values(Kernel::Algebraic, Kernel::Gaussian, Kernel::Bump));

} // namespace
} // namespace rewrite
} // namespace felix
