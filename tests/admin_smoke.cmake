# Admin-protocol smoke test (ctest): start a real socket-mode
# felix-serve daemon, prime it with a fixed request trace through
# felix-top --send, and validate the live-introspection surface of
# docs/observability.md:
#
#   1. `felix-top --once --no-wall` (stats + tasks only) returns
#      non-trivial answer-latency quantiles, a windowed hit rate, and
#      per-task tuning progress — and is BYTE-IDENTICAL between a
#      --jobs 1 daemon and a --jobs 4 daemon primed with the same
#      trace (the deterministic half of the admin protocol).
#   2. `felix-top --once` (wall ops included) additionally carries
#      the metrics registry and the flight-recorder dump with
#      request-correlated events.
#   3. SIGTERM shuts the daemon down gracefully: the schedule cache
#      is persisted to the records log and the serve log is
#      finalized with the {"type":"tasks"} progress summary, which
#      felix-trace-summary --serve then renders.
#
# Invoked as
#   cmake -DFELIX_SERVE=... -DFELIX_TOP=... -DTRACE_SUMMARY=...
#         -DWORK_DIR=... -DCACHE_DIR=... -P admin_smoke.cmake

foreach(var FELIX_SERVE FELIX_TOP TRACE_SUMMARY WORK_DIR CACHE_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "admin_smoke: missing -D${var}")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(pid1 "")
set(pid2 "")

# Kill any daemon we started before failing the test, so a broken
# assertion does not leak processes into the ctest run.
macro(admin_fail msg)
    execute_process(
        COMMAND sh -c "kill -9 ${pid1} ${pid2} 2>/dev/null; true")
    message(FATAL_ERROR "${msg}")
endmacro()

# The priming trace deliberately has no shutdown op: the daemon must
# stay up for the admin queries. miss -> miss -> 2 rounds -> hit is
# the same shape serve_smoke replays, so the sampled state
# (quantiles, window, per-task progress) is known non-trivial.
set(prime "${WORK_DIR}/prime.ndjson")
file(WRITE "${prime}"
"{\"op\":\"tune\",\"network\":\"dcgan\",\"batch\":1}
{\"op\":\"tune\",\"network\":\"dcgan\",\"batch\":2}
{\"op\":\"rounds\",\"n\":2}
{\"op\":\"tune\",\"network\":\"dcgan\",\"batch\":1}
")

# Start a daemon in the background (cmake cannot spawn detached
# processes itself, so a shell does it and echoes the pid).
# --rounds-per-idle 0 keeps idle periods from tuning, which would
# make the sampled state depend on wall-clock timing.
function(start_daemon tag jobs out_pid)
    set(extra ${ARGN})
    string(REPLACE ";" " " extra_str "${extra}")
    execute_process(
        COMMAND sh -c "'${FELIX_SERVE}' --socket '${WORK_DIR}/${tag}.sock' \
--device a5000 --seed 3 --jobs ${jobs} --rounds-per-idle 0 \
--log-level info --cache-dir '${CACHE_DIR}' ${extra_str} \
> '${WORK_DIR}/daemon_${tag}.log' 2>&1 & echo $!"
        OUTPUT_VARIABLE pid
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        admin_fail("could not start daemon ${tag}")
    endif()
    string(STRIP "${pid}" pid)
    set(${out_pid} "${pid}" PARENT_SCOPE)
endfunction()

# Prime (and implicitly wait for readiness): connecting fails until
# the daemon has bound its socket, and felix-top exits non-zero on a
# failed connect, so retrying the send doubles as the readiness
# probe. Only a successful connect delivers requests, so no daemon
# sees the trace twice. Readiness probes must not be separate admin
# requests: those would bump the request counters by a
# timing-dependent amount and break the out1-vs-out2 byte compare.
function(prime_daemon tag)
    set(primed FALSE)
    foreach(attempt RANGE 50)
        execute_process(
            COMMAND "${FELIX_TOP}"
                --socket "${WORK_DIR}/${tag}.sock" --send "${prime}"
            OUTPUT_QUIET ERROR_QUIET
            RESULT_VARIABLE rc)
        if(rc EQUAL 0)
            set(primed TRUE)
            break()
        endif()
        execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
    endforeach()
    if(NOT primed)
        admin_fail("daemon ${tag} never became ready on "
                   "${WORK_DIR}/${tag}.sock")
    endif()
endfunction()

function(snapshot_no_wall tag out_file)
    execute_process(
        COMMAND "${FELIX_TOP}"
            --socket "${WORK_DIR}/${tag}.sock" --once --no-wall
        OUTPUT_FILE "${out_file}"
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        admin_fail("felix-top --once --no-wall failed against "
                   "daemon ${tag} (${rc}):\n${err}")
    endif()
endfunction()

start_daemon(a 1 pid1
    --records "${WORK_DIR}/records.log"
    --serve-log "${WORK_DIR}/serve.jsonl")
prime_daemon(a)
snapshot_no_wall(a "${WORK_DIR}/once_a.json")

# The deterministic snapshot must carry real data, not zeros: the
# answer-latency histogram saw every primed answer, the sliding
# window is non-empty, and both tuning tasks report progress.
file(READ "${WORK_DIR}/once_a.json" once_a)
if(NOT once_a MATCHES "\"answer_latency_us\":{\"count\":[1-9]")
    admin_fail("stats carried no answer-latency samples: ${once_a}")
endif()
if(NOT once_a MATCHES "\"p95\":[0-9]*[1-9]")
    admin_fail("stats carried only zero quantiles: ${once_a}")
endif()
if(NOT once_a MATCHES "\"window\":{\"size\":[1-9]")
    admin_fail("stats carried no sliding window: ${once_a}")
endif()
# dcgan@1 and dcgan@2 each partition into per-subgraph tuning tasks,
# so the registry holds several tasks, every one with traffic.
if(NOT once_a MATCHES "\"type\":\"tasks\",\"count\":[1-9]")
    admin_fail("tasks reported no tuning tasks: ${once_a}")
endif()
if(NOT once_a MATCHES "\"traffic_count\":[1-9]")
    admin_fail("tasks reported no traffic: ${once_a}")
endif()
if(NOT once_a MATCHES "\"rounds\":[1-9]")
    admin_fail("tasks reported no tuning rounds: ${once_a}")
endif()

# Wall-clock ops (metrics + dump) ride the same connection when
# --no-wall is omitted; the flight dump must hold request-correlated
# events from the priming trace.
execute_process(
    COMMAND "${FELIX_TOP}" --socket "${WORK_DIR}/a.sock" --once
    OUTPUT_FILE "${WORK_DIR}/once_wall.json"
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    admin_fail("felix-top --once (wall) failed (${rc}):\n${err}")
endif()
file(READ "${WORK_DIR}/once_wall.json" once_wall)
if(NOT once_wall MATCHES "\"metrics\":{" OR
   NOT once_wall MATCHES "\"registry\":{")
    admin_fail("wall snapshot missing metrics registry: "
               "${once_wall}")
endif()
if(NOT once_wall MATCHES "\"dump\":{" OR
   NOT once_wall MATCHES "\"kind\":\"cache_hit\"")
    admin_fail("wall snapshot missing flight-recorder events: "
               "${once_wall}")
endif()

# Acceptance criterion (ISSUE 7): the deterministic snapshot is
# bit-stable across --jobs. A second daemon primed identically at
# --jobs 4 must answer stats+tasks byte-identically.
start_daemon(b 4 pid2)
prime_daemon(b)
snapshot_no_wall(b "${WORK_DIR}/once_b.json")
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        "${WORK_DIR}/once_a.json" "${WORK_DIR}/once_b.json"
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    admin_fail("admin snapshot differs between --jobs 1 and "
               "--jobs 4 (${WORK_DIR}/once_a.json vs once_b.json): "
               "the deterministic admin ops leak wall-clock or "
               "thread-count state")
endif()

# Graceful shutdown: SIGTERM must flush the schedule cache to the
# records log and finalize the serve log before exit.
execute_process(COMMAND sh -c "kill -TERM ${pid1}")
set(stopped FALSE)
foreach(attempt RANGE 50)
    execute_process(
        COMMAND sh -c "kill -0 ${pid1} 2>/dev/null"
        RESULT_VARIABLE alive)
    if(NOT alive EQUAL 0)
        set(stopped TRUE)
        break()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
endforeach()
if(NOT stopped)
    admin_fail("daemon a did not exit within 10s of SIGTERM")
endif()
set(pid1 "")

if(NOT EXISTS "${WORK_DIR}/records.log")
    admin_fail("SIGTERM shutdown persisted no records log")
endif()
file(READ "${WORK_DIR}/daemon_a.log" daemon_log)
if(NOT daemon_log MATCHES "shut down gracefully")
    admin_fail("daemon a did not report a graceful shutdown:\n"
               "${daemon_log}")
endif()
file(READ "${WORK_DIR}/serve.jsonl" serve_log)
if(NOT serve_log MATCHES "\"type\":\"tasks\"")
    admin_fail("serve log was not finalized with the per-task "
               "summary")
endif()

# The finalized serve log renders through felix-trace-summary with
# the new windowed-hit-rate and per-task sections.
execute_process(
    COMMAND "${TRACE_SUMMARY}" --serve "${WORK_DIR}/serve.jsonl"
    OUTPUT_VARIABLE summary
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    admin_fail("felix-trace-summary rejected the finalized serve "
               "log (${rc}):\n${err}")
endif()
if(NOT summary MATCHES "windowed hit rate" OR
   NOT summary MATCHES "per-task tuning progress")
    admin_fail("serve-log summary missing admin sections:\n"
               "${summary}")
endif()

# Daemon b only existed for the byte compare; take it down too.
execute_process(COMMAND sh -c "kill -TERM ${pid2}")
foreach(attempt RANGE 50)
    execute_process(
        COMMAND sh -c "kill -0 ${pid2} 2>/dev/null"
        RESULT_VARIABLE alive)
    if(NOT alive EQUAL 0)
        break()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
endforeach()

message(STATUS
    "admin smoke OK: live quantiles, --jobs bit-stability, flight "
    "dump, graceful SIGTERM, summary rendering")
