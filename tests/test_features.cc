/**
 * @file
 * Tests for feature extraction: formula correctness on hand-checked
 * schedules, symbolic/concrete consistency, smoothing compatibility,
 * and the full feature pipeline on real sketches.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "expr/compiled.h"
#include "features/features.h"
#include "rewrite/smoothing.h"
#include "rewrite/transforms.h"
#include "support/logging.h"
#include "sketch/sampling.h"
#include "sketch/sketch.h"
#include "tir/ops.h"

namespace felix {
namespace features {
namespace {

using expr::Expr;

tir::SubgraphDef
denseAdd(int64_t n = 256, int64_t m = 256, int64_t k = 256)
{
    return tir::dense(n, m, k, /*bias=*/true);
}

std::vector<double>
featuresAt(const sketch::SymbolicSchedule &sched,
           const std::vector<double> &x)
{
    std::vector<std::string> names;
    for (const auto &domain : sched.vars)
        names.push_back(domain.name);
    return concreteFeatures(sched.program, names, x);
}

TEST(Names, EightyTwoDistinctNames)
{
    const auto &names = featureNames();
    EXPECT_EQ(names.size(), static_cast<size_t>(kNumFeatures));
    std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
}

TEST(Names, OrderIsStableAcrossReleases)
{
    // Cached cost models index features by position: reordering or
    // renaming entries silently invalidates every saved model. This
    // snapshot pins the first/last entry of each feature family.
    const auto &names = featureNames();
    EXPECT_EQ(names[0], "float_mad");
    EXPECT_EQ(names[7], "int_add");
    EXPECT_EQ(names[8], "block_len");
    EXPECT_EQ(names[19], "unroll_applied");
    EXPECT_EQ(names[26], "global_load_traffic_bytes");
    EXPECT_EQ(names[38], "shared_bytes_total");
    EXPECT_EQ(names[46], "b0_unique_bytes");
    EXPECT_EQ(names[70], "loop_depth_root");
    EXPECT_EQ(names[81], "is_reduction");
}

TEST(Names, IndexLookupRoundTrips)
{
    EXPECT_EQ(featureIndex("float_mad"), 0);
    EXPECT_EQ(featureIndex("block_len"), 8);
    EXPECT_THROW(featureIndex("no_such_feature"), InternalError);
}

TEST(Extract, FlopCountMatchesWorkload)
{
    auto sketches = sketch::generateSketches(denseAdd());
    const auto &sched = sketches[1];   // simple sketch
    std::vector<double> ones(sched.vars.size(), 1.0);
    auto f = featuresAt(sched, ones);
    // float_mad: matmul N*M*K points (the bias stage adds float_add).
    EXPECT_NEAR(f[featureIndex("float_mad")],
                256.0 * 256.0 * 256.0, 1.0);
    EXPECT_NEAR(f[featureIndex("float_add")], 256.0 * 256.0, 1.0);
}

TEST(Extract, LaunchGeometryMatchesSchedule)
{
    auto sketches = sketch::generateSketches(denseAdd());
    const auto &sched = sketches[1];
    std::vector<double> x(sched.vars.size(), 1.0);
    x[sched.varIndex("f_th")] = 128.0;
    x[sched.varIndex("f_in")] = 4.0;
    ASSERT_TRUE(sketch::isValidAssignment(sched, x));
    auto f = featuresAt(sched, x);
    // Fused spatial = 65536; blocks = 65536/(128*4) = 128.
    EXPECT_NEAR(f[featureIndex("thread_len")], 128.0, 1e-9);
    EXPECT_NEAR(f[featureIndex("block_len")], 128.0, 1e-9);
    EXPECT_NEAR(f[featureIndex("total_threads")], 128.0 * 128.0,
                1e-9);
}

TEST(Extract, UnrollSelectDiscontinuity)
{
    // The int_add feature follows the paper: select(UNROLL > 1, 2, 5)
    // per point.
    auto sketches = sketch::generateSketches(denseAdd());
    const auto &sched = sketches[1];
    std::vector<double> x(sched.vars.size(), 1.0);
    auto fNoUnroll = featuresAt(sched, x);
    x[sched.varIndex("UNROLL")] = 16.0;
    auto fUnroll = featuresAt(sched, x);
    int idx = featureIndex("int_add");
    EXPECT_GT(fNoUnroll[idx], fUnroll[idx]);
    EXPECT_NEAR(fNoUnroll[idx] / fUnroll[idx], 2.5, 0.01);
}

TEST(Extract, PaperFig3FeatureTable)
{
    // The paper's feature table for the Dense-Add program p*_1:
    //   float ops  = N*M*K
    //   blockIdx   = N*M/TILE0 (our simple sketch: the f_th thread
    //                tile plays TILE0's role when f_in = 1)
    //   int_add    = N*M*K * select(UNROLL > 1, small, large)
    const int64_t N = 256, M = 256, K = 256;
    auto sketches = sketch::generateSketches(denseAdd(N, M, K));
    const auto &sched = sketches[1];   // gpu.simple_tiling
    std::vector<double> x(sched.vars.size(), 1.0);
    const double tile = 64.0;
    x[sched.varIndex("f_th")] = tile;
    ASSERT_TRUE(sketch::isValidAssignment(sched, x));
    auto f = featuresAt(sched, x);
    EXPECT_NEAR(f[featureIndex("float_mad")],
                static_cast<double>(N * M * K), 1.0);
    EXPECT_NEAR(f[featureIndex("block_len")],
                static_cast<double>(N * M) / tile, 1e-9);
    // int_add is proportional to N*M*K with the select() factor.
    double perPoint =
        f[featureIndex("int_add")] / f[featureIndex("points_total")];
    EXPECT_NEAR(perPoint, 5.0, 0.01);   // UNROLL == 1 branch
}

TEST(Extract, SharedMemoryFeaturesOnlyWithCacheStages)
{
    auto sketches = sketch::generateSketches(denseAdd());
    std::vector<double> onesFull(sketches[0].vars.size(), 1.0);
    auto fFull = featuresAt(sketches[0], onesFull);
    std::vector<double> onesSimple(sketches[1].vars.size(), 1.0);
    auto fSimple = featuresAt(sketches[1], onesSimple);
    EXPECT_GT(fFull[featureIndex("uses_shared")], 0.5);
    EXPECT_GT(fFull[featureIndex("shared_bytes_total")], 0.0);
    EXPECT_LT(fSimple[featureIndex("uses_shared")], 0.5);
    EXPECT_EQ(fSimple[featureIndex("shared_bytes_total")], 0.0);
}

TEST(Extract, ThreadTilingShrinksPerBlockFootprint)
{
    auto sketches = sketch::generateSketches(denseAdd());
    const auto &full = sketches[0];
    std::vector<double> small(full.vars.size(), 1.0);
    std::vector<double> big = small;
    // 16x16 thread tiles: each block covers a 16x16 output tile.
    big[full.varIndex("sp0_th")] = 16.0;
    big[full.varIndex("sp1_th")] = 16.0;
    ASSERT_TRUE(sketch::isValidAssignment(full, big));
    auto fSmall = featuresAt(full, small);
    auto fBig = featuresAt(full, big);
    int idx = featureIndex("footprint_per_block_bytes");
    EXPECT_GT(fBig[idx], fSmall[idx]);
    // Fewer blocks when each covers more work.
    EXPECT_LT(fBig[featureIndex("block_len")],
              fSmall[featureIndex("block_len")]);
}

TEST(Extract, GlobalTrafficDecreasesWithLargerTiles)
{
    // Bigger K-tiles => fewer refetches of A and B per block.
    auto sketches = sketch::generateSketches(denseAdd());
    const auto &full = sketches[0];
    std::vector<double> x(full.vars.size(), 1.0);
    x[full.varIndex("sp0_th")] = 16.0;
    x[full.varIndex("sp1_th")] = 16.0;
    std::vector<double> xk = x;
    xk[full.varIndex("r0_in")] = 16.0;
    ASSERT_TRUE(sketch::isValidAssignment(full, x));
    ASSERT_TRUE(sketch::isValidAssignment(full, xk));
    auto f1 = featuresAt(full, x);
    auto f2 = featuresAt(full, xk);
    // Same unique bytes either way.
    EXPECT_DOUBLE_EQ(f1[featureIndex("global_unique_bytes")],
                     f2[featureIndex("global_unique_bytes")]);
    // Buffers: A, B, the matmul output D, the final output E
    // (4 x 256x256 matrices) plus the 256-element bias C.
    EXPECT_EQ(f1[featureIndex("global_unique_bytes")],
              (256.0 * 256.0 * 4.0 + 256.0) * 4.0);
}

TEST(Extract, ConvFootprintUsesSlidingWindow)
{
    tir::Conv2dConfig config;
    config.c = 16;
    config.h = 32;
    config.w = 32;
    config.k = 16;
    auto subgraph = tir::conv2d(config);
    auto sketches = sketch::generateSketches(subgraph);
    const auto &full = sketches[0];
    std::vector<double> x(full.vars.size(), 1.0);
    auto f = featuresAt(full, x);
    // All features finite and footprints positive.
    for (int i = 0; i < kNumFeatures; ++i)
        EXPECT_TRUE(std::isfinite(f[i])) << featureNames()[i];
    EXPECT_GT(f[featureIndex("b0_footprint_block")], 0.0);
}

TEST(Extract, AllFeaturesFiniteAcrossRandomSchedules)
{
    Rng rng(11);
    for (auto *build : {+[] { return denseAdd(128, 128, 128); },
                        +[] { return tir::softmax(64, 512); },
                        +[] {
                            tir::ArithCounts a;
                            a.add = 1;
                            return tir::elementwise(1 << 16, 2, a);
                        }}) {
        auto subgraph = build();
        for (const auto &sched : sketch::generateSketches(subgraph)) {
            for (int i = 0; i < 5; ++i) {
                auto x = sketch::sampleValid(sched, rng);
                auto f = featuresAt(sched, x);
                for (int j = 0; j < kNumFeatures; ++j) {
                    EXPECT_TRUE(std::isfinite(f[j]))
                        << sched.desc << " " << featureNames()[j];
                    EXPECT_GE(f[j], 0.0)
                        << sched.desc << " " << featureNames()[j];
                }
            }
        }
    }
}

TEST(Pipeline, SmoothedFeaturesTrackRawOnes)
{
    // After smoothing + log + e^y substitution, evaluating at
    // y = ln(x) must approximate ln(raw_feature(x)).
    auto sketches = sketch::generateSketches(denseAdd());
    const auto &sched = sketches[1];
    std::vector<std::string> names;
    for (const auto &domain : sched.vars)
        names.push_back(domain.name);

    auto raw = extractFeatures(sched.program);
    std::vector<Expr> pipelined;
    for (const Expr &f : raw)
        pipelined.push_back(rewrite::featurePipeline(f, names));

    std::vector<double> x(sched.vars.size(), 1.0);
    x[sched.varIndex("f_th")] = 64.0;
    x[sched.varIndex("f_in")] = 4.0;
    x[sched.varIndex("r_in")] = 8.0;
    std::vector<double> y(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        y[i] = std::log(x[i]);

    expr::CompiledExprs rawCompiled(raw, names);
    expr::CompiledExprs smoothCompiled(pipelined, names);
    auto rawVals = rawCompiled.eval(x);
    auto smoothVals = smoothCompiled.eval(y);

    int checked = 0;
    for (int i = 0; i < kNumFeatures; ++i) {
        if (rawVals[i] < 8.0)
            continue;    // smoothing error dominates tiny features
        EXPECT_NEAR(smoothVals[i], std::log(rawVals[i]),
                    0.35 + 0.05 * std::abs(std::log(rawVals[i])))
            << featureNames()[i];
        ++checked;
    }
    EXPECT_GE(checked, 25);
}

TEST(Pipeline, SmoothedFeaturesHaveGradients)
{
    auto sketches = sketch::generateSketches(denseAdd());
    const auto &sched = sketches[1];
    std::vector<std::string> names;
    for (const auto &domain : sched.vars)
        names.push_back(domain.name);
    auto raw = extractFeatures(sched.program);
    std::vector<Expr> pipelined;
    for (const Expr &f : raw)
        pipelined.push_back(rewrite::featurePipeline(f, names));
    expr::CompiledExprs compiled(pipelined, names);

    std::vector<double> y(names.size(), std::log(4.0));
    std::vector<double> out, grads;
    compiled.forward(y, out);
    std::vector<double> seed(out.size(), 1.0);
    compiled.backward(seed, grads);
    double norm = 0.0;
    for (double g : grads) {
        EXPECT_TRUE(std::isfinite(g));
        norm += g * g;
    }
    EXPECT_GT(norm, 1e-6);
}

TEST(SharedBytes, MatchesFeatureFormula)
{
    auto sketches = sketch::generateSketches(denseAdd());
    const auto &full = sketches[0];
    std::vector<std::string> names;
    for (const auto &domain : full.vars)
        names.push_back(domain.name);
    Expr shared = sharedBytesPerBlock(full.program);
    expr::CompiledExprs compiled({shared}, names);
    std::vector<double> x(full.vars.size(), 1.0);
    double bytes = compiled.eval(x)[0];
    auto f = featuresAt(full, x);
    EXPECT_NEAR(bytes, f[featureIndex("shared_bytes_total")], 1e-6);
}

} // namespace
} // namespace features
} // namespace felix
