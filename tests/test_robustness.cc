/**
 * @file
 * Robustness / failure-injection tests: degenerate workloads, a
 * useless (constant) cost model, an adversarial (inverted) cost
 * model, and corrupt artifacts. The tuner must degrade gracefully —
 * measurements keep the best-schedule curve monotone even when the
 * model misleads the search.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/felix.h"
#include "support/logging.h"
#include "costmodel/dataset.h"
#include "features/features.h"
#include "models/models.h"
#include "tuner/tuner.h"

namespace felix {
namespace {

std::vector<graph::Task>
smallTasks()
{
    graph::Graph g("small");
    tir::Conv2dConfig conv;
    conv.c = 32;
    conv.h = conv.w = 28;
    conv.k = 64;
    g.addConv2d(conv, -1, "conv");
    return graph::partition(g);
}

/** A cost model fitted on degenerate data: constant predictions. */
costmodel::CostModel
constantModel()
{
    Rng rng(5);
    std::vector<costmodel::Sample> samples;
    for (int i = 0; i < 64; ++i) {
        costmodel::Sample sample;
        sample.rawFeatures.assign(features::kNumFeatures, 0.0);
        for (auto &f : sample.rawFeatures)
            f = std::exp(rng.uniform(0.0, 6.0));
        sample.latencySec = 1e-4;   // identical target everywhere
        samples.push_back(std::move(sample));
    }
    costmodel::MlpConfig config;
    config.layerSizes = {features::kNumFeatures, 8, 1};
    costmodel::CostModel model(config, 5);
    model.fit(samples, 2, 32, 1e-4);
    return model;
}

/** A cost model trained to rank *backwards* (faster = worse). */
costmodel::CostModel
adversarialModel()
{
    costmodel::DatasetOptions options;
    options.numSubgraphs = 6;
    options.schedulesPerSketch = 24;
    options.seed = 11;
    auto samples = costmodel::synthesizeDataset(
        sim::deviceConfig(sim::DeviceKind::A5000), options);
    for (auto &sample : samples) {
        // Invert the target ordering around a 100us pivot.
        sample.latencySec = 1e-8 / sample.latencySec;
    }
    costmodel::MlpConfig config;
    config.layerSizes = {features::kNumFeatures, 32, 1};
    costmodel::CostModel model(config, 11);
    model.fit(samples, 6, 128, 1.5e-3);
    return model;
}

tuner::TunerOptions
fastOptions()
{
    tuner::TunerOptions options;
    options.grad.nSeeds = 4;
    options.grad.nSteps = 40;
    options.grad.nMeasure = 8;
    return options;
}

TEST(Robustness, ConstantCostModelStillImproves)
{
    // With no ranking signal, the search degenerates to measuring
    // (near-)random valid schedules — the best-of-measured curve
    // must still improve on the naive schedule and stay monotone.
    tuner::GraphTuner tuner(smallTasks(), constantModel(),
                            sim::DeviceKind::A5000, fastOptions());
    double initial = tuner.networkLatency();
    tuner.tuneRounds(6);
    EXPECT_LT(tuner.networkLatency(), initial);
    const auto &timeline = tuner.timeline();
    for (size_t i = 1; i < timeline.size(); ++i) {
        EXPECT_LE(timeline[i].networkLatencySec,
                  timeline[i - 1].networkLatencySec + 1e-12);
    }
}

TEST(Robustness, AdversarialCostModelNeverRegresses)
{
    tuner::GraphTuner tuner(smallTasks(), adversarialModel(),
                            sim::DeviceKind::A5000, fastOptions());
    double initial = tuner.networkLatency();
    tuner.tuneRounds(6);
    // Measurements gate every update: the best schedule can only
    // improve, even when the model steers toward slow schedules.
    EXPECT_LE(tuner.networkLatency(), initial);
    const auto &timeline = tuner.timeline();
    for (size_t i = 1; i < timeline.size(); ++i) {
        EXPECT_LE(timeline[i].networkLatencySec,
                  timeline[i - 1].networkLatencySec + 1e-12);
    }
}

TEST(Robustness, AdversarialModelRecoversViaFinetuning)
{
    // The per-round fine-tuning on real measurements must eventually
    // repair an inverted model's ranking: late rounds should find
    // better schedules than the first round's.
    tuner::GraphTuner tuner(smallTasks(), adversarialModel(),
                            sim::DeviceKind::A5000, fastOptions());
    tuner.tuneRounds(1);
    double afterOne = tuner.networkLatency();
    tuner.tuneRounds(11);
    EXPECT_LT(tuner.networkLatency(), afterOne);
}

TEST(Robustness, DegenerateOneElementWorkload)
{
    auto subgraph = tir::dense(1, 1, 1, false);
    auto sketches = sketch::generateSketches(subgraph);
    ASSERT_FALSE(sketches.empty());
    Rng rng(3);
    for (const auto &sched : sketches) {
        auto x = sketch::sampleValid(sched, rng);
        EXPECT_TRUE(sketch::isValidAssignment(sched, x));
        std::vector<std::string> names;
        for (const auto &domain : sched.vars)
            names.push_back(domain.name);
        auto f = features::concreteFeatures(sched.program, names, x);
        for (double v : f)
            EXPECT_TRUE(std::isfinite(v));
    }
}

TEST(Robustness, SingleAxisWorkloads)
{
    // 1-D reductions and 1-element spatial domains must schedule.
    for (auto &subgraph :
         {tir::globalAvgPool2d(1, 1, 64, 64),
          tir::dense(1, 1, 4096, false),
          tir::dense(4096, 1, 1, false)}) {
        auto sketches = sketch::generateSketches(subgraph);
        EXPECT_FALSE(sketches.empty()) << subgraph.name;
        Rng rng(9);
        for (const auto &sched : sketches) {
            auto x = sketch::sampleValid(sched, rng);
            EXPECT_TRUE(sketch::isValidAssignment(sched, x))
                << subgraph.name << "/" << sched.desc;
        }
    }
}

TEST(Robustness, CorruptModuleFileRejected)
{
    const char *path = "corrupt_module_tmp.cfg";
    {
        std::ofstream os(path);
        os << "felix-module v1\nnot-a-number garbage\n";
    }
    EXPECT_FALSE(CompiledModule::load(path).has_value());
    {
        std::ofstream os(path);
        os << "wrong-magic v9\n";
    }
    EXPECT_FALSE(CompiledModule::load(path).has_value());
    std::remove(path);
}

TEST(Robustness, CorruptCostModelFileRejected)
{
    const char *path = "corrupt_model_tmp.txt";
    {
        std::ofstream os(path);
        os << "felix-cost-model v1\nmlp 3\n82 8 1\n0.5 truncated";
    }
    EXPECT_THROW(costmodel::CostModel::tryLoad(path), InternalError);
    std::remove(path);
}

TEST(Robustness, TunerHandlesManyTasksWithTinyBudget)
{
    // More tasks than rounds: the scheduler's first pass covers a
    // prefix; latency must still be finite and never regress.
    auto tasks = extractSubgraphs(models::mobilenetV2(1));
    costmodel::DatasetOptions options;
    options.numSubgraphs = 4;
    options.schedulesPerSketch = 16;
    auto samples = costmodel::synthesizeDataset(
        sim::deviceConfig(sim::DeviceKind::A5000), options);
    costmodel::MlpConfig config;
    config.layerSizes = {features::kNumFeatures, 16, 1};
    costmodel::CostModel model(config, 3);
    model.fit(samples, 2, 64, 1e-3);

    tuner::GraphTuner tuner(tasks, std::move(model),
                            sim::DeviceKind::A5000, fastOptions());
    double initial = tuner.networkLatency();
    tuner.tuneRounds(3);   // << number of tasks
    EXPECT_LE(tuner.networkLatency(), initial);
    EXPECT_TRUE(std::isfinite(tuner.networkLatency()));
}

} // namespace
} // namespace felix
